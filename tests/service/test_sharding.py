"""Consistent-hash ring: determinism, balance, and minimal remapping."""

from __future__ import annotations

import hashlib

import pytest

from repro.service.sharding import HashRing, shard_for


def _keys(n: int) -> list[str]:
    return ["j" + hashlib.sha256(str(i).encode()).hexdigest()[:16] for i in range(n)]


class TestHashRing:
    def test_owner_is_deterministic_across_instances(self):
        keys = _keys(200)
        a, b = HashRing(4), HashRing(4)
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_owner_in_range_and_single_shard_trivial(self):
        ring = HashRing(3)
        assert all(ring.owner(k) in range(3) for k in _keys(100))
        assert all(HashRing(1).owner(k) == 0 for k in _keys(20))

    def test_shard_for_matches_ring(self):
        keys = _keys(50)
        ring = HashRing(5)
        assert [shard_for(k, 5) for k in keys] == [ring.owner(k) for k in keys]

    def test_spread_is_roughly_uniform(self):
        keys = _keys(8000)
        spread = HashRing(4).spread(keys)
        assert sum(spread.values()) == len(keys)
        for shard, count in spread.items():
            # Within a factor of ~1.5 of uniform at 128 vnodes.
            assert 0.6 * 2000 < count < 1.5 * 2000, (shard, count)

    def test_adding_a_shard_remaps_a_minority(self):
        keys = _keys(4000)
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(1 for k in keys if before.owner(k) != after.owner(k))
        # Consistent hashing: ~1/5 of keys move; a naive mod-N rehash
        # would move ~4/5.  Allow generous slack.
        assert moved < len(keys) * 0.45

    def test_owns_agrees_with_owner(self):
        ring = HashRing(4)
        for key in _keys(32):
            owner = ring.owner(key)
            assert ring.owns(owner, key)
            assert not any(ring.owns(s, key) for s in range(4) if s != owner)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            HashRing(0)
