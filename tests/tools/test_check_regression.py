"""Unit tests for the benchmark regression gate's pure compare logic."""

from __future__ import annotations

import json

import pytest

from benchmarks.check_regression import (
    OBS_OVERHEAD_METRICS,
    SERVICE_LOAD_METRICS,
    compare,
    format_rows,
    main,
)


def _load_result(wall: float) -> dict:
    phase = {"wall_seconds": wall, "latency_mean_s": wall / 10}
    config = lambda: {"cold": dict(phase), "warm": dict(phase)}  # noqa: E731
    return {"serial": config(), "parallel": config(),
            "fleet": {"workers": {n: config() for n in ("1", "2", "4")}}}


def test_compare_flags_only_past_threshold():
    rows = compare(_load_result(1.0), _load_result(1.19), SERVICE_LOAD_METRICS, 0.2)
    assert all(r["status"] == "ok" for r in rows)
    rows = compare(_load_result(1.0), _load_result(1.25), SERVICE_LOAD_METRICS, 0.2)
    assert all(r["regressed"] for r in rows)
    assert rows[0]["delta"] == pytest.approx(0.25)


def test_compare_improvement_never_fails():
    rows = compare(_load_result(1.0), _load_result(0.5), SERVICE_LOAD_METRICS, 0.0)
    assert not any(r["regressed"] for r in rows)


def test_compare_missing_metric_is_reported_not_failed():
    baseline = {"ratio": 1.1}  # no hook_fraction recorded
    fresh = {"ratio": 1.1, "hook_fraction": 0.001}
    rows = compare(baseline, fresh, OBS_OVERHEAD_METRICS, 0.2)
    by_metric = {r["metric"]: r for r in rows}
    assert by_metric["obs hook_fraction"]["status"] == "missing"
    assert by_metric["obs hook_fraction"]["regressed"] is False
    assert by_metric["obs enabled/disabled ratio"]["status"] == "ok"


def test_compare_zero_baseline_is_not_comparable():
    rows = compare({"ratio": 0.0}, {"ratio": 1.0}, [("r", ("ratio",))], 0.2)
    assert rows[0]["status"] == "missing"


def test_format_rows_mentions_regressions():
    rows = compare({"ratio": 1.0}, {"ratio": 2.0}, [("r", ("ratio",))], 0.2)
    text = format_rows("t", rows, 0.2)
    assert "REGRESSED" in text and "+100.0%" in text


def test_main_exit_codes_with_stub_baselines(tmp_path, monkeypatch, capsys):
    """Drive main() against a synthetic obs baseline; skip the load bench."""
    import benchmarks.check_regression as cr

    # A fresh "measurement" that doubles the recorded ratio.
    monkeypatch.setattr(
        "benchmarks.bench_obs_overhead.measure",
        lambda repeats=5: {"ratio": 2.0, "hook_fraction": 0.002},
    )
    (tmp_path / "obs_overhead.json").write_text(
        json.dumps({"ratio": 1.0, "hook_fraction": 0.002})
    )
    args = ["--skip-load", "--skip-profiler", "--baseline-dir", str(tmp_path)]
    assert cr.main(args) == 1
    assert cr.main(args + ["--report-only"]) == 0
    assert cr.main(args + ["--threshold", "1.5"]) == 0
    out = capsys.readouterr()
    assert "REGRESSED" in out.out


def test_main_hook_fraction_contract_fails_even_without_baseline(tmp_path, monkeypatch):
    monkeypatch.setattr(
        "benchmarks.bench_obs_overhead.measure",
        lambda repeats=5: {"ratio": 1.0, "hook_fraction": 0.5},
    )
    args = ["--skip-load", "--skip-profiler", "--baseline-dir", str(tmp_path)]
    assert main(args) == 1
    assert main(args + ["--report-only"]) == 0


def test_main_profiler_budget_fails_even_without_baseline(tmp_path, monkeypatch):
    monkeypatch.setattr(
        "benchmarks.bench_obs_overhead.measure",
        lambda repeats=5: {"ratio": 1.0, "hook_fraction": 0.002},
    )
    monkeypatch.setattr(
        "benchmarks.bench_profiler_overhead.measure",
        lambda repeats=5: {"overhead_ratio": 1.25, "tick_fraction": 0.01},
    )
    args = ["--skip-load", "--baseline-dir", str(tmp_path)]
    assert main(args) == 1
    assert main(args + ["--report-only"]) == 0
    # Under budget, the absolute gate stays quiet.
    monkeypatch.setattr(
        "benchmarks.bench_profiler_overhead.measure",
        lambda repeats=5: {"overhead_ratio": 1.03, "tick_fraction": 0.01},
    )
    assert main(args) == 0
