"""Metrics: counters, gauges, and histograms with deterministic export.

The registry is a plain name-keyed store.  Names are dotted, lowercase,
``component.thing`` style (see ``docs/observability.md`` for the scheme
used across the package).  Snapshots are deterministic: names sort
lexicographically and histogram summaries carry a fixed key set, so two
sessions that observed the same values export identical structures
(wall-clock only ever appears in *values* of ``*_seconds`` metrics,
never in names or key order).

:data:`NOOP_REGISTRY` is the disabled fast path — method calls that do
nothing — mirroring the tracer's no-op singleton.
"""

from __future__ import annotations

import math

__all__ = ["Histogram", "MetricsRegistry", "NoopRegistry", "NOOP_REGISTRY"]


class Histogram:
    """A value distribution; exact (stores observations), meant for
    thousands of samples, not millions."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / len(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac

    def summary(self) -> dict:
        """Fixed-shape summary (stable keys, deterministic given the data)."""
        values = self._values
        return {
            "count": len(values),
            "sum": self.sum,
            "mean": self.mean,
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name-keyed counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writes -----------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # -- reads ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict:
        """Deterministic nested dict: names sorted, fixed histogram keys."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].summary() for k in sorted(self._histograms)},
        }


class NoopRegistry:
    """The disabled registry: accepts writes, stores nothing."""

    __slots__ = ()

    def inc(self, name: str, value: float = 1.0) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def counter(self, name: str) -> float:
        return 0.0

    def gauge(self, name: str) -> None:
        return None

    def histogram(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_REGISTRY = NoopRegistry()
