"""Scalability prediction and load-balance reporting."""

import pytest

from repro.core import ScalTool
from repro.core.balance import analyze_balance
from repro.core.prediction import ScalabilityPredictor, predict_speedups
from repro.errors import InsufficientDataError
from repro.runner.campaign import CampaignData


@pytest.fixture(scope="module")
def analysis(mini_campaign):
    return ScalTool(mini_campaign).analyze()


class TestPredictor:
    def test_reproduces_measured_counts_roughly(self, analysis):
        pred = ScalabilityPredictor(analysis)
        for n in analysis.curves.processor_counts:
            assert pred.predict_accumulated(n) == pytest.approx(
                analysis.curves.base[n], rel=0.35
            )

    def test_extrapolated_speedup_finite_and_positive(self, analysis):
        pred = ScalabilityPredictor(analysis)
        for n in (8, 16, 64):
            s = pred.predict_speedup(n)
            assert 0 < s < n * 3

    def test_components_nonnegative(self, analysis):
        pred = ScalabilityPredictor(analysis)
        for n in (1, 3, 8, 64):
            comp = pred.predict_components(n)
            assert all(v >= 0 for v in comp.values())

    def test_uniprocessor_has_no_imbalance(self, analysis):
        assert ScalabilityPredictor(analysis).predict_components(1)["imb"] == 0.0

    def test_sync_component_grows(self, analysis):
        pred = ScalabilityPredictor(analysis)
        assert pred.predict_components(64)["sync"] > pred.predict_components(4)["sync"]

    def test_saturation_count_reasonable(self, analysis):
        sat = ScalabilityPredictor(analysis).saturation_count()
        assert 1 <= sat <= 4096

    def test_leave_one_out(self, analysis):
        rows = ScalabilityPredictor(analysis).leave_one_out()
        assert rows  # at least the interior point n=2
        for row in rows:
            assert row["error"] < 0.6

    def test_rows_and_wrapper(self, analysis):
        rows = predict_speedups(analysis, [2, 8, 64])
        assert [r["n"] for r in rows] == [2, 8, 64]
        assert {"predicted speedup", "Sync", "Imb"} <= set(rows[0])

    def test_too_few_counts_rejected(self, analysis, mini_campaign):
        short = CampaignData(
            workload=mini_campaign.workload,
            s0=mini_campaign.s0,
            records=[r for r in mini_campaign.records if r.n_processors <= 2],
        )
        short_analysis = ScalTool(short).analyze()
        with pytest.raises(InsufficientDataError):
            ScalabilityPredictor(short_analysis)

    def test_bad_n_rejected(self, analysis):
        with pytest.raises(InsufficientDataError):
            ScalabilityPredictor(analysis).predict_components(0)


class TestBalance:
    def test_report_covers_counts(self, mini_campaign):
        report = analyze_balance(mini_campaign)
        assert [p.n_processors for p in report.points] == [1, 2, 4]

    def test_metrics_consistent(self, mini_campaign):
        report = analyze_balance(mini_campaign)
        for p in report.points:
            assert p.min_work <= p.mean_work <= p.max_work
            assert 0 < p.efficiency <= 1.0
            assert p.spread >= 1.0

    def test_uniprocessor_perfectly_balanced(self, mini_campaign):
        p = analyze_balance(mini_campaign).at(1)
        assert p.efficiency == pytest.approx(1.0)
        assert p.cv == pytest.approx(0.0)

    def test_serial_workload_flagged(self):
        from ..conftest import small_synthetic, tiny_machine_config
        from repro.runner.campaign import CampaignConfig, ScalToolCampaign

        wl = small_synthetic(iters=2, serial_frac=0.3)
        cfg = CampaignConfig(s0=16 * 1024, processor_counts=(1, 4), run_kernels=False)
        campaign = ScalToolCampaign(
            wl, cfg, machine_factory=lambda n: tiny_machine_config(n_processors=n)
        ).run()
        report = analyze_balance(campaign)
        assert report.at(4).spread > analyze_balance_spread_floor()

    def test_summary_renders(self, mini_campaign):
        text = analyze_balance(mini_campaign).summary()
        assert "load balance" in text and "verdict" in text

    def test_verdict_values(self, mini_campaign):
        assert analyze_balance(mini_campaign).verdict() in (
            "good load balance",
            "modest load imbalance",
            "significant load imbalance",
        )

    def test_missing_per_cpu_rejected(self, mini_campaign):
        stripped = CampaignData(
            workload=mini_campaign.workload,
            s0=mini_campaign.s0,
            records=[
                type(r)(**{**r.__dict__, "per_cpu": []}) for r in mini_campaign.records
            ],
        )
        with pytest.raises(InsufficientDataError):
            analyze_balance(stripped)


def analyze_balance_spread_floor() -> float:
    """Serial sections concentrate stores on cpu 0: expect visible spread."""
    return 1.02
