"""On-disk memoisation of campaigns.

Campaigns are deterministic (seeded simulator, seeded workloads), so a
campaign is fully identified by its inputs.  The cache keys on a hash of
(workload name + parameters, machine summary, campaign plan) and stores
the JSONL manifest, letting benchmarks and examples re-run instantly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .campaign import CampaignConfig, CampaignData, ProgressCallback, ScalToolCampaign
from .experiment import MachineFactory, default_machine_factory
from .records import load_records, save_records
from ..errors import CounterFormatError
from ..obs import runtime as obs
from ..obs.logs import get_logger, kv
from ..workloads.base import Workload

__all__ = ["campaign_cache_dir", "cached_campaign"]

_ENV_VAR = "SCALTOOL_CACHE_DIR"

_log = get_logger("runner.cache")


def campaign_cache_dir() -> Path:
    """Cache root: $SCALTOOL_CACHE_DIR or .scaltool_cache in the cwd."""
    return Path(os.environ.get(_ENV_VAR, ".scaltool_cache"))


def _campaign_key(workload: Workload, config: CampaignConfig, machine_summary: dict) -> str:
    ident = {
        "workload": workload.name,
        "params": workload.describe_params(),
        "machine": machine_summary,
        "s0": config.s0,
        "counts": list(config.processor_counts),
        "min_fraction_bytes": config.min_fraction_bytes,
        "sync_kernel_barriers": config.sync_kernel_barriers,
        "spin_kernel_episodes": config.spin_kernel_episodes,
        "run_kernels": config.run_kernels,
        "format": 3,
    }
    return hashlib.sha256(json.dumps(ident, sort_keys=True).encode()).hexdigest()[:20]


def _machine_summary(factory: MachineFactory) -> dict:
    cfg = factory(1)
    return {
        "l1": cfg.l1.size,
        "l2": cfg.l2.size,
        "line": cfg.line_size,
        "assoc": (cfg.l1.associativity, cfg.l2.associativity),
        "topology": cfg.interconnect.topology,
        "timing": cfg.timing.__dict__,
        "page": cfg.memory.page_size,
        "placement": cfg.memory.placement,
        "seed": cfg.seed,
    }


def cached_campaign(
    workload: Workload,
    config: CampaignConfig,
    machine_factory: MachineFactory | None = None,
    cache_dir: str | Path | None = None,
    refresh: bool = False,
    progress: ProgressCallback | None = None,
) -> CampaignData:
    """Run (or reload) the campaign for ``workload`` under ``config``.

    A manifest that exists but cannot be read back (corrupt JSONL, I/O
    error) or holds no records is *not* silently re-executed: the
    fall-through is logged with the path and reason and counted as a
    ``cache.corrupt`` metric, then the campaign re-runs and overwrites
    the bad manifest.  ``progress`` is forwarded to
    :meth:`ScalToolCampaign.run` when the campaign actually executes
    (cache hits produce no progress events).
    """
    factory = machine_factory or default_machine_factory()
    key = _campaign_key(workload, config, _machine_summary(factory))
    root = Path(cache_dir) if cache_dir else campaign_cache_dir()
    manifest = root / f"{workload.name}_{key}.jsonl"
    reg = obs.registry()

    if manifest.exists() and not refresh:
        try:
            records = load_records(manifest)
        except (CounterFormatError, OSError) as exc:
            reg.inc("cache.corrupt")
            _log.warning(
                "campaign cache manifest unreadable, re-running campaign %s",
                kv(path=manifest, reason=exc),
            )
        else:
            if records:
                reg.inc("cache.hit")
                _log.debug("campaign cache hit %s", kv(path=manifest, records=len(records)))
                return CampaignData(workload=workload.name, s0=config.s0, records=records)
            reg.inc("cache.corrupt")
            _log.warning(
                "campaign cache manifest empty, re-running campaign %s",
                kv(path=manifest, reason="no records"),
            )
    else:
        reg.inc("cache.refresh" if manifest.exists() else "cache.miss")

    data = ScalToolCampaign(workload, config, machine_factory=factory).run(progress=progress)
    save_records(data.records, manifest)
    return data
