"""Trace generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.generators import (
    gather_sweep,
    pointer_chase,
    random_access,
    stencil_sweep,
    strided_sweep,
    sweep,
    sweep_array,
)


class TestSweep:
    def test_covers_range_in_order(self):
        a, w = sweep(range(10, 14), refs_per_block=1, write_frac=0.0)
        assert a.tolist() == [10, 11, 12, 13]

    def test_refs_per_block_repeats(self):
        a, _ = sweep(range(0, 3), refs_per_block=3)
        assert a.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_reps_tile(self):
        a, _ = sweep(range(0, 2), refs_per_block=1, reps=3)
        assert a.tolist() == [0, 1, 0, 1, 0, 1]

    def test_write_frac_extremes(self):
        _, w0 = sweep(range(0, 50), write_frac=0.0)
        _, w1 = sweep(range(0, 50), write_frac=1.0)
        assert not w0.any() and w1.all()

    def test_write_frac_statistical(self, rng):
        _, w = sweep(range(0, 1000), refs_per_block=1, write_frac=0.3, rng=rng)
        assert 0.2 < w.mean() < 0.4

    def test_empty_range_rejected(self):
        with pytest.raises(TraceError):
            sweep(range(0, 0))

    def test_bad_refs_per_block(self):
        with pytest.raises(TraceError):
            sweep(range(0, 4), refs_per_block=0)


class TestSweepArray:
    def test_explicit_blocks(self):
        blocks = np.array([7, 3, 9], dtype=np.int64)
        a, _ = sweep_array(blocks, refs_per_block=2)
        assert a.tolist() == [7, 7, 3, 3, 9, 9]

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            sweep_array(np.empty(0, dtype=np.int64))


class TestStrided:
    def test_visits_all_once_per_pass(self):
        a, _ = strided_sweep(range(0, 12), stride=4, refs_per_block=1)
        assert sorted(a.tolist()) == list(range(12))

    def test_order_is_strided(self):
        a, _ = strided_sweep(range(0, 8), stride=4, refs_per_block=1)
        assert a.tolist()[:2] == [0, 4]

    def test_bad_stride(self):
        with pytest.raises(TraceError):
            strided_sweep(range(0, 8), stride=0)


class TestRandom:
    def test_in_range(self, rng):
        a, _ = random_access(range(100, 200), 500, rng=rng)
        assert a.min() >= 100 and a.max() < 200

    def test_count(self, rng):
        a, _ = random_access(range(0, 10), 77, rng=rng)
        assert len(a) == 77

    def test_deterministic(self):
        a1, _ = random_access(range(0, 50), 20, rng=np.random.default_rng(1))
        a2, _ = random_access(range(0, 50), 20, rng=np.random.default_rng(1))
        assert (a1 == a2).all()

    def test_negative_refs_rejected(self):
        with pytest.raises(TraceError):
            random_access(range(0, 4), -1)


class TestStencil:
    def test_halos_read_only(self):
        a, w = stencil_sweep(range(10, 20), halo_lo=range(8, 10), halo_hi=range(20, 22),
                             refs_per_block=2, write_frac=1.0)
        halo_mask = (a < 10) | (a >= 20)
        assert halo_mask.any()
        assert not w[halo_mask].any()

    def test_owned_blocks_written(self):
        a, w = stencil_sweep(range(10, 20), write_frac=1.0)
        assert w[(a >= 10) & (a < 20)].all()

    def test_no_halo(self):
        a, _ = stencil_sweep(range(0, 5), refs_per_block=1)
        assert sorted(set(a.tolist())) == list(range(5))


class TestGather:
    def test_rows_and_table_touched(self):
        a, w = gather_sweep(range(0, 10), table=range(100, 120), gathers_per_row=2,
                            refs_per_block=2)
        assert ((a >= 0) & (a < 10)).any()
        assert ((a >= 100) & (a < 120)).any()

    def test_table_never_written(self):
        a, w = gather_sweep(range(0, 20), table=range(100, 110), gathers_per_row=3)
        table_mask = a >= 100
        assert not w[table_mask].any()

    def test_rows_written(self):
        a, w = gather_sweep(range(0, 20), table=range(100, 110), write_frac=0.5)
        assert w[(a < 100)].any()

    def test_ref_count(self):
        a, _ = gather_sweep(range(0, 10), table=range(50, 60), gathers_per_row=2, refs_per_block=3)
        assert len(a) == 10 * (3 + 2)


class TestPointerChase:
    def test_visits_each_block_before_repeat(self):
        a, _ = pointer_chase(range(0, 16), 16)
        assert sorted(a.tolist()) == list(range(16))

    def test_wraps(self):
        a, _ = pointer_chase(range(0, 4), 10)
        assert len(a) == 10
        assert sorted(set(a.tolist())) == [0, 1, 2, 3]

    def test_not_sequential(self):
        a, _ = pointer_chase(range(0, 256), 256, rng=np.random.default_rng(0))
        diffs = np.diff(a)
        assert (diffs == 1).mean() < 0.1  # permutation, not a sweep

    def test_reads_only(self):
        _, w = pointer_chase(range(0, 8), 20)
        assert not w.any()
