"""The blame endpoint and the paginated job listing.

``GET /v1/jobs/<id>/blame`` must serve a report whose every finding
carries a diagnostics grade and lineage refs, publish per-segment loss
shares as labelled gauges on ``/metrics``, and agree byte-for-byte with
what ``scaltool blame`` prints for the same campaign.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import JobNotFoundError, ServiceError
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.http import ServiceServer

from .conftest import WARM_COUNTS, WARM_PAYLOAD, WARM_S0
from .test_cli_service import cli_stdout

WARM_ARGS = [
    "synthetic", "--s0", str(WARM_S0), "--counts", ",".join(map(str, WARM_COUNTS)),
]


@pytest.fixture(scope="module")
def server(warm_root):
    srv = ServiceServer(ServiceConfig(cache_dir=warm_root, workers=2), port=0).start()
    yield srv
    srv.shutdown(drain_timeout=30)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, timeout=30)


@pytest.fixture(scope="module")
def blame_job(client):
    """One finished blame job everybody in this module can share."""
    submitted = client.submit("blame", WARM_PAYLOAD)
    view = client.wait(submitted["id"], timeout=120)
    assert view["state"] == "done", view.get("error")
    return submitted["id"]


@pytest.fixture
def stub_server(tmp_path, stub_requests):
    srv = ServiceServer(
        ServiceConfig(cache_dir=tmp_path, workers=1, batch_window=0.0), port=0
    ).start()
    yield srv
    srv.service._draining = False
    stub_requests.release_all()
    srv.shutdown(drain_timeout=10)


class TestBlameEndpoint:
    def test_blame_job_serves_stored_report(self, client, blame_job):
        view = client.blame(blame_job)
        assert view["job"] == blame_job and view["kind"] == "blame"
        report = view["report"]
        assert report["workload"] == "synthetic"
        assert report["processor_counts"] == list(WARM_COUNTS)
        assert view["output"].startswith("scaling-loss blame")
        assert view["lineage"]

    def test_findings_carry_grade_and_lineage(self, client, blame_job):
        report = client.blame(blame_job)["report"]
        for finding in report["findings"]:
            assert finding["grade"] in ("ok", "warn", "suspect")
            assert finding["lineage_refs"]
            assert finding["root_cause"]
        for vertex in report["vertices"]:
            assert vertex["diagnostics"]["grade"] in ("ok", "warn", "suspect")

    def test_loss_share_gauges_on_metrics(self, client, blame_job):
        client.blame(blame_job)  # publish (idempotent)
        exposition = client.metrics()
        assert 'scaltool_blame_loss_share{segment="' in exposition

    def test_blame_derived_from_analyze_job(self, client, blame_job):
        submitted = client.submit("analyze", WARM_PAYLOAD)
        view = client.wait(submitted["id"], timeout=120)
        assert view["state"] == "done", view.get("error")
        derived = client.blame(submitted["id"])
        assert derived["kind"] == "analyze"
        # Same campaign -> same report, whichever job it hangs off.
        assert derived["report"] == client.blame(blame_job)["report"]

    def test_cli_json_matches_endpoint_report(self, client, blame_job, warm_root):
        out = cli_stdout(
            ["blame", *WARM_ARGS, "--cache-dir", str(warm_root), "--json"]
        )
        assert json.loads(out) == client.blame(blame_job)["report"]

    def test_unknown_job_404(self, client):
        with pytest.raises(JobNotFoundError):
            client.blame("j" + "f" * 16)

    def test_blame_of_non_campaign_job_rejected(self, stub_server, stub_requests):
        client = ServiceClient(stub_server.url, timeout=10)
        submitted = client.submit("stub", {"name": "a"})
        client.wait(submitted["id"], timeout=10)
        with pytest.raises(ServiceError, match="no campaign"):
            client.blame(submitted["id"])

    def test_blame_of_active_job_rejected(self, stub_server, stub_requests):
        client = ServiceClient(stub_server.url, timeout=10)
        gate = stub_requests.gate("slow")
        submitted = client.submit("stub", {"name": "slow"})
        try:
            with pytest.raises(ServiceError, match="needs a result"):
                client.blame(submitted["id"])
        finally:
            gate.set()


class TestJobsPagination:
    def _three_done_jobs(self, client, stub_requests):
        ids = []
        for name in ("a", "b", "c"):
            submitted = client.submit("stub", {"name": name})
            client.wait(submitted["id"], timeout=10)
            ids.append(submitted["id"])
        return ids

    def test_limit_and_offset_cut_the_page(self, stub_server, stub_requests):
        client = ServiceClient(stub_server.url, timeout=10)
        ids = self._three_done_jobs(client, stub_requests)
        page = client.jobs_page(limit=2)
        assert [j["id"] for j in page["jobs"]] == ids[:2]
        assert page["total"] == 3 and page["limit"] == 2 and page["offset"] == 0
        rest = client.jobs_page(offset=2)
        assert [j["id"] for j in rest["jobs"]] == ids[2:]
        assert rest["total"] == 3

    def test_state_filter(self, stub_server, stub_requests):
        client = ServiceClient(stub_server.url, timeout=10)
        self._three_done_jobs(client, stub_requests)
        stub_requests.fail_hard.add("broken")
        submitted = client.submit("stub", {"name": "broken"})
        client.wait(submitted["id"], timeout=10)
        assert client.jobs_page(state="done")["total"] == 3
        failed = client.jobs_page(state="failed")
        assert [j["id"] for j in failed["jobs"]] == [submitted["id"]]

    def test_fingerprint_filter_is_id_prefix(self, stub_server, stub_requests):
        client = ServiceClient(stub_server.url, timeout=10)
        ids = self._three_done_jobs(client, stub_requests)
        page = client.jobs_page(fingerprint=ids[0][:8])
        assert ids[0] in [j["id"] for j in page["jobs"]]
        assert client.jobs_page(fingerprint="zzz")["total"] == 0

    def test_since_filter(self, stub_server, stub_requests):
        client = ServiceClient(stub_server.url, timeout=10)
        self._three_done_jobs(client, stub_requests)
        assert client.jobs_page(since=0.0)["total"] == 3
        assert client.jobs_page(since=4e10)["total"] == 0

    def test_unknown_query_param_is_400(self, stub_server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(stub_server.url + "/v1/jobs?order=lifo")
        assert exc_info.value.code == 400

    def test_negative_limit_is_400(self, stub_server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(stub_server.url + "/v1/jobs?limit=-1")
        assert exc_info.value.code == 400

    def test_plain_jobs_stays_a_bare_list(self, stub_server, stub_requests):
        client = ServiceClient(stub_server.url, timeout=10)
        assert client.jobs() == []
        self._three_done_jobs(client, stub_requests)
        listing = client.jobs()
        assert isinstance(listing, list) and len(listing) == 3
