"""Legacy shim so `pip install -e .` works without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables the
setup.py-develop editable path on offline machines whose setuptools
cannot build PEP-660 wheels.
"""
from setuptools import setup

setup()
