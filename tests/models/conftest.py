"""Fixtures for the scalability-model suite tests.

One package-scoped contention-heavy synthetic campaign: the default
synthetic configuration scales *superlinearly* (aggregate cache growth),
which no closed-form contention law can represent, so the cross-model
agreement tests need a curve where the injected bottleneck — barriers,
imbalance, serial work — actually dominates.
"""

from __future__ import annotations

import pytest

from repro.core import ScalTool
from repro.runner import CampaignConfig, ScalToolCampaign
from repro.workloads import make_workload

CONTENTION_PARAMS = {
    "barriers_per_iter": 6,
    "imbalance_amp": 0.4,
    "serial_frac": 0.3,
    "sharing_frac": 0.2,
}
CONTENTION_S0 = 131072
CONTENTION_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="package")
def contention_campaign():
    workload = make_workload("synthetic", **CONTENTION_PARAMS)
    cfg = CampaignConfig(s0=CONTENTION_S0, processor_counts=CONTENTION_COUNTS)
    return ScalToolCampaign(workload, cfg).run()


@pytest.fixture(scope="package")
def contention_analysis(contention_campaign):
    return ScalTool(contention_campaign).analyze()
