"""The service request model: one class per request kind.

A request is ``(kind, payload)`` where ``payload`` is a JSON object.
:func:`compile_request` validates the payload, resolves defaults (data
set size, processor counts, ...) into a *canonical* payload, and returns
a :class:`CompiledRequest` that can

* enumerate the :class:`~repro.runner.engine.RunSpec` set the request
  needs (:meth:`CompiledRequest.specs`) — the planner's dedup unit, and
* execute end-to-end (:meth:`CompiledRequest.execute`), producing a
  :class:`RequestResult` whose ``output`` is **byte-identical** to what
  the corresponding ``scaltool`` CLI command prints: the CLI routes its
  ``analyze`` / ``sweep`` / ``whatif`` / ``predict`` / ``blame``
  subcommands through these same handlers.

The canonical payload also defines the request *fingerprint*
(:meth:`CompiledRequest.fingerprint`), which the service uses as the job
id: submitting the same request twice is idempotent by construction.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..core import ScalTool, WhatIf
from ..errors import ServiceError
from ..obs import lineage
from ..runner.campaign import CampaignConfig, ProgressCallback, ScalToolCampaign
from ..runner.cache import cached_campaign, campaign_cache_dir
from ..runner.engine import Executor, RunCache, RunSpec, SerialExecutor
from ..runner.experiment import default_machine_factory
from ..runner.sweep import ParameterSweep
from ..viz.tables import format_table
from ..workloads import make_workload

__all__ = [
    "REQUEST_KINDS",
    "RequestResult",
    "CompiledRequest",
    "compile_request",
    "request_fingerprint",
]

#: Campaign processor counts used when a request does not name any.
DEFAULT_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class RequestResult:
    """What a completed request produced.

    ``output`` is the exact text the equivalent CLI command writes to
    stdout; ``data`` is a JSON-able structured form of the same result;
    ``lineage`` records which runs fed it and where each came from
    (:class:`repro.obs.lineage.Lineage` in dict form) — provenance, kept
    out of ``output``/``data`` so those stay byte-identical between a
    cold and a warm cache.
    """

    output: str
    data: dict = field(default_factory=dict)
    lineage: dict | None = None

    def to_dict(self) -> dict:
        out = {"output": self.output, "data": self.data}
        if self.lineage is not None:
            out["lineage"] = self.lineage
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "RequestResult":
        return cls(
            output=d.get("output", ""),
            data=dict(d.get("data", {})),
            lineage=d.get("lineage"),
        )


def _require_str(payload: dict, name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value:
        raise ServiceError(f"request needs a non-empty string {name!r}")
    return value


def _int_or_none(payload: dict, name: str) -> int | None:
    value = payload.get(name)
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServiceError(f"bad {name!r}: {value!r} is not an integer") from None


def _counts(payload: dict, name: str, default: tuple[int, ...]) -> tuple[int, ...]:
    value = payload.get(name)
    if value is None:
        return default
    if isinstance(value, str):
        value = value.split(",")
    try:
        counts = tuple(int(v) for v in value)
    except (TypeError, ValueError):
        raise ServiceError(f"bad {name!r}: {value!r} is not a list of integers") from None
    if not counts:
        raise ServiceError(f"bad {name!r}: empty")
    return counts


def _float(payload: dict, name: str, default: float) -> float:
    value = payload.get(name, default)
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ServiceError(f"bad {name!r}: {value!r} is not a number") from None


def _params(payload: dict, name: str = "params") -> dict:
    value = payload.get(name, {})
    if not isinstance(value, dict):
        raise ServiceError(f"bad {name!r}: expected an object")
    return dict(value)


def _axes(payload: dict, name: str) -> dict:
    value = payload.get(name, {})
    if not isinstance(value, dict) or not all(
        isinstance(v, (list, tuple)) and v for v in value.values()
    ):
        raise ServiceError(f"bad {name!r}: expected an object of non-empty value lists")
    return {k: list(v) for k, v in value.items()}


class CompiledRequest:
    """A validated request: canonical payload + plan + execution.

    Subclasses set :attr:`kind` and implement :meth:`specs` and
    :meth:`_execute`.  ``canonical`` is the payload with every default
    resolved — two requests with the same canonical payload are the same
    request (same fingerprint, same job).
    """

    kind: str = ""

    def __init__(self, payload: dict) -> None:
        self.canonical = self._canonicalize(dict(payload or {}))

    # -- subclass hooks ---------------------------------------------------------

    def _canonicalize(self, payload: dict) -> dict:
        raise NotImplementedError

    def specs(self) -> list[RunSpec]:
        """Every engine run this request needs (the dedup/batch unit)."""
        raise NotImplementedError

    def _execute(
        self,
        cache_root: Path | None,
        executor: Executor,
        progress: ProgressCallback | None,
    ) -> RequestResult:
        raise NotImplementedError

    # -- shared -----------------------------------------------------------------

    def fingerprint(self) -> str:
        """The job id: a content address over (kind, canonical payload)."""
        return request_fingerprint(self.kind, self.canonical)

    def execute(
        self,
        cache_root: str | Path | None = None,
        executor: Executor | None = None,
        progress: ProgressCallback | None = None,
        run_cache: RunCache | None = None,
    ) -> RequestResult:
        """Run the request to completion through the engine + cache.

        Every engine batch inside runs under a lineage collector, so the
        result leaves with a full provenance record: each contributing
        RunSpec, whether it came from cache or was executed, the machine
        hash, and the code version.

        ``run_cache`` substitutes the per-run cache instance (it must be
        rooted at ``<cache_root>/runs``): the serving layer passes its
        shared memoised cache so assembly reuses already-parsed records
        instead of re-reading JSON per job.
        """
        root = Path(cache_root) if cache_root is not None else None
        self._run_cache = run_cache
        with lineage.collect() as col:
            result = self._execute(root, executor or SerialExecutor(), progress)
        result.lineage = col.build(self.kind, self.fingerprint()).to_dict()
        return result


#: Process-wide memo of completed ScalTool analyses, keyed by the campaign
#: identity (workload + params + s0 + counts).  The campaign is fully
#: deterministic given that identity — seeded workloads, fixed default
#: machine factory, content-addressed runs — so two jobs over the same
#: campaign produce the *same* analysis object; recomputing the fits
#: (bootstrap CIs included) per job was the dominant warm-path cost.
#: Consumers (report/what-if/predict/blame) only read the result.
_ANALYSIS_MEMO_CAP = 8
_analysis_lock = threading.Lock()
_analysis_memo: OrderedDict[str, "object"] = OrderedDict()


def _memoized_analysis(memo_key: str, campaign):
    with _analysis_lock:
        if memo_key in _analysis_memo:
            _analysis_memo.move_to_end(memo_key)
            return _analysis_memo[memo_key]
    # Computed outside the lock: concurrent first-comers may duplicate the
    # work, but the results are identical and the memo stays responsive.
    analysis = ScalTool(campaign).analyze()
    with _analysis_lock:
        _analysis_memo[memo_key] = analysis
        _analysis_memo.move_to_end(memo_key)
        while len(_analysis_memo) > _ANALYSIS_MEMO_CAP:
            _analysis_memo.popitem(last=False)
    return analysis


class _CampaignBacked(CompiledRequest):
    """Shared base for the request kinds that run the Table-3 campaign."""

    def _canonical_campaign(self, payload: dict) -> dict:
        workload_name = _require_str(payload, "workload")
        params = _params(payload)
        workload = make_workload(workload_name, **params)
        s0 = _int_or_none(payload, "s0") or workload.default_size()
        counts = _counts(payload, "counts", DEFAULT_COUNTS)
        CampaignConfig(s0=s0, processor_counts=counts)  # validate eagerly
        return {
            "workload": workload_name,
            "params": params,
            "s0": s0,
            "counts": list(counts),
        }

    def _campaign_parts(self):
        c = self.canonical
        workload = make_workload(c["workload"], **c["params"])
        config = CampaignConfig(s0=c["s0"], processor_counts=tuple(c["counts"]))
        return workload, config

    def specs(self) -> list[RunSpec]:
        workload, config = self._campaign_parts()
        return ScalToolCampaign(
            workload, config, machine_factory=default_machine_factory()
        ).compile_plan()

    def _campaign(self, cache_root, executor, progress):
        workload, config = self._campaign_parts()
        return cached_campaign(
            workload,
            config,
            cache_dir=cache_root,
            progress=progress,
            executor=executor,
            run_cache=getattr(self, "_run_cache", None),
        )

    def _analysis(self, campaign, cache_root):
        """The campaign's ScalTool analysis (memoised per process).

        The memo key includes the resolved cache root: two roots are two
        independent stores, and an analysis derived from one must never
        be served for a campaign assembled from the other.
        """
        c = self.canonical
        root = Path(cache_root) if cache_root is not None else campaign_cache_dir()
        memo_key = json.dumps(
            {
                "root": str(root.resolve()),
                "workload": c["workload"],
                "params": c["params"],
                "s0": c["s0"],
                "counts": c["counts"],
            },
            sort_keys=True,
        )
        return _memoized_analysis(memo_key, campaign)


class AnalyzeRequest(_CampaignBacked):
    kind = "analyze"

    def _canonicalize(self, payload: dict) -> dict:
        out = self._canonical_campaign(payload)
        out["markdown"] = bool(payload.get("markdown", False))
        return out

    def _execute(self, cache_root, executor, progress) -> RequestResult:
        campaign = self._campaign(cache_root, executor, progress)
        analysis = self._analysis(campaign, cache_root)
        if self.canonical["markdown"]:
            from ..core.report import export_markdown

            output = export_markdown(analysis) + "\n"
        else:
            output = analysis.report() + "\n"
        return RequestResult(
            output=output,
            data={
                "workload": analysis.workload,
                "processor_counts": list(analysis.curves.processor_counts),
                "records": len(campaign.records),
                "health": analysis.health,
                "diagnostics": (
                    analysis.diagnostics.to_dict() if analysis.diagnostics else None
                ),
            },
        )


class CampaignRequest(_CampaignBacked):
    kind = "campaign"

    def _canonicalize(self, payload: dict) -> dict:
        return self._canonical_campaign(payload)

    def _execute(self, cache_root, executor, progress) -> RequestResult:
        campaign = self._campaign(cache_root, executor, progress)
        manifest = "".join(rec.to_json() + "\n" for rec in campaign.records)
        return RequestResult(
            output=manifest,
            data={
                "workload": campaign.workload,
                "s0": campaign.s0,
                "records": len(campaign.records),
            },
        )


class WhatIfRequest(_CampaignBacked):
    kind = "whatif"

    def _canonicalize(self, payload: dict) -> dict:
        out = self._canonical_campaign(payload)
        for name in ("t2", "tm", "tsyn", "cpi0"):
            out[name] = _float(payload, name, 1.0)
        l2 = payload.get("l2")
        out["l2"] = None if l2 is None else _float(payload, "l2", 1.0)
        return out

    def _execute(self, cache_root, executor, progress) -> RequestResult:
        c = self.canonical
        campaign = self._campaign(cache_root, executor, progress)
        analysis = self._analysis(campaign, cache_root)
        whatif = WhatIf(analysis, campaign)
        if c["l2"] is not None:
            prediction = whatif.scale_l2(c["l2"])
        else:
            prediction = whatif.scale_parameters(
                cpi0_factor=c["cpi0"],
                t2_factor=c["t2"],
                tm_factor=c["tm"],
                tsyn_factor=c["tsyn"],
            )
        output = format_table(prediction.rows(), title=prediction.label) + "\n"
        if prediction.note:
            output += f"note: {prediction.note}\n"
        return RequestResult(
            output=output,
            data={"label": prediction.label, "rows": prediction.rows()},
        )


class PredictRequest(_CampaignBacked):
    kind = "predict"

    def _canonicalize(self, payload: dict) -> dict:
        out = self._canonical_campaign(payload)
        out["to"] = list(_counts(payload, "to", (48, 64, 128)))
        return out

    def _execute(self, cache_root, executor, progress) -> RequestResult:
        from ..core.prediction import ScalabilityPredictor

        campaign = self._campaign(cache_root, executor, progress)
        analysis = self._analysis(campaign, cache_root)
        predictor = ScalabilityPredictor(analysis)
        rows = predictor.rows(list(predictor.measured_counts) + list(self.canonical["to"]))
        output = (
            format_table(rows, title=f"{analysis.workload}: measured + predicted scaling")
            + "\n"
            + f"\npredicted saturation at ~{predictor.saturation_count()} processors\n"
            + format_table(predictor.leave_one_out(), title="leave-one-out validation")
            + "\n"
        )
        return RequestResult(
            output=output,
            data={"rows": rows, "saturation": predictor.saturation_count()},
        )


class BlameRequest(_CampaignBacked):
    kind = "blame"

    def _canonicalize(self, payload: dict) -> dict:
        out = self._canonical_campaign(payload)
        groups = payload.get("groups") or {}
        if not isinstance(groups, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in groups.items()
        ):
            raise ServiceError("bad 'groups': expected an object of name -> phase pattern")
        # {} means "default prefix grouping", resolved against the campaign
        # at execution time so the canonical payload stays data-independent.
        out["groups"] = {k: groups[k] for k in sorted(groups)}
        return out

    def _execute(self, cache_root, executor, progress) -> RequestResult:
        from ..analysis import blame_campaign
        from ..viz import render_blame

        campaign = self._campaign(cache_root, executor, progress)
        analysis = self._analysis(campaign, cache_root)
        report = blame_campaign(
            analysis, campaign, groups=self.canonical["groups"] or None
        )
        report_dict = report.to_dict()
        output = render_blame(report_dict) + "\n"
        return RequestResult(
            output=output,
            data={
                "workload": report.workload,
                "window": list(report.window),
                "total_loss": report.total_loss,
                "findings": len(report.findings),
                "report": report_dict,
            },
        )


class ModelsRequest(_CampaignBacked):
    """Fit / cross-validate / extrapolate the scalability-model suite.

    Two modes share one kind:

    * **campaign mode** — the payload names a workload campaign (same
      canonical fields as ``analyze``); the speedup curve is extracted
      from the base-size runs and the full Scal-Tool analysis joins the
      comparison (σ/κ ↔ category mapping included);
    * **dataset mode** — the payload embeds a speedup curve
      (``dataset``: the ``scaltool-speedup-v1`` JSON document, e.g. an
      external machine's measurements); no runs are planned and the
      closed-form models are compared among themselves.
    """

    kind = "models"

    def _canonicalize(self, payload: dict) -> dict:
        from ..models import ACTIONS, SpeedupDataset

        action = payload.get("action", "compare")
        if action not in ACTIONS:
            raise ServiceError(
                f"bad 'action': {action!r}; expected one of {', '.join(ACTIONS)}"
            )
        out: dict = {"action": action}
        if payload.get("dataset") is not None:
            dataset = payload["dataset"]
            if not isinstance(dataset, dict):
                raise ServiceError("bad 'dataset': expected a speedup-curve object")
            # Round-trip for validation and canonical point order.
            out["dataset"] = SpeedupDataset.from_dict(dataset).to_dict()
        else:
            out.update(self._canonical_campaign(payload))
        if action == "predict":
            out["to"] = list(_counts(payload, "to", (32, 64, 128)))
        return out

    def specs(self) -> list[RunSpec]:
        if "dataset" in self.canonical:
            return []
        return super().specs()

    def _execute(self, cache_root, executor, progress) -> RequestResult:
        from ..models import SpeedupDataset, run_action

        c = self.canonical
        if "dataset" in c:
            dataset = SpeedupDataset.from_dict(c["dataset"])
            analysis = None
        else:
            campaign = self._campaign(cache_root, executor, progress)
            analysis = self._analysis(campaign, cache_root)
            dataset = SpeedupDataset.from_campaign(campaign)
        output, data = run_action(c["action"], dataset, analysis, to=c.get("to"))
        return RequestResult(output=output, data=data)


class SweepRequest(CompiledRequest):
    kind = "sweep"

    def _canonicalize(self, payload: dict) -> dict:
        from dataclasses import fields as dc_fields

        from ..machine.counters import CounterSet

        workload_name = _require_str(payload, "workload")
        params = _params(payload)
        workload = make_workload(workload_name, **params)
        size = _int_or_none(payload, "size") or workload.default_size()
        n = _int_or_none(payload, "n") or 8
        metrics = payload.get("metrics") or ["cpi"]
        if not isinstance(metrics, (list, tuple)) or not metrics:
            raise ServiceError("bad 'metrics': expected a non-empty list of counter names")
        allowed = {f.name for f in dc_fields(CounterSet)} | {"cpi"}
        bad = [m for m in metrics if m not in allowed]
        if bad:
            raise ServiceError(
                f"unknown metric(s) {', '.join(bad)}; available: {', '.join(sorted(allowed))}"
            )
        return {
            "workload": workload_name,
            "params": params,
            "size": size,
            "n": n,
            "workload_axes": _axes(payload, "workload_axes"),
            "machine_axes": _axes(payload, "machine_axes"),
            "metrics": list(metrics),
        }

    def _sweep(self) -> ParameterSweep:
        c = self.canonical
        return ParameterSweep(
            base_workload=lambda **p: make_workload(c["workload"], **{**c["params"], **p}),
            size=c["size"],
            n_processors=c["n"],
            workload_grid=c["workload_axes"],
            machine_grid=c["machine_axes"],
        )

    def specs(self) -> list[RunSpec]:
        return self._sweep().compile_specs()

    def _execute(self, cache_root, executor, progress) -> RequestResult:
        c = self.canonical
        sweep = self._sweep()
        metrics = {m: (lambda rec, _m=m: getattr(rec.counters, _m)) for m in c["metrics"]}
        root = cache_root if cache_root is not None else campaign_cache_dir()
        total = len(sweep.points())

        def _report(outcome) -> None:
            if progress is not None:
                progress(outcome.index + 1, total, outcome.record)

        rows = sweep.run(
            metrics,
            executor=executor,
            cache=getattr(self, "_run_cache", None) or RunCache(Path(root) / "runs"),
            on_outcome=_report,
        )
        output = (
            format_table(rows, title=f"{c['workload']} sweep (n={c['n']})") + "\n"
        )
        return RequestResult(output=output, data={"rows": rows})


_KIND_CLASSES = {
    cls.kind: cls
    for cls in (
        AnalyzeRequest,
        BlameRequest,
        CampaignRequest,
        ModelsRequest,
        SweepRequest,
        WhatIfRequest,
        PredictRequest,
    )
}

#: The request kinds the service accepts.
REQUEST_KINDS = tuple(sorted(_KIND_CLASSES))


def compile_request(kind: str, payload: dict | None = None) -> CompiledRequest:
    """Validate ``(kind, payload)`` into an executable request.

    Raises :class:`~repro.errors.ServiceError` for an unknown kind and
    lets workload/config errors (all :class:`~repro.errors.ReproError`
    subclasses) propagate — both map to HTTP 400 at the API layer.
    """
    cls = _KIND_CLASSES.get(kind)
    if cls is None:
        raise ServiceError(
            f"unknown request kind {kind!r}; expected one of {', '.join(REQUEST_KINDS)}"
        )
    return cls(payload or {})


def request_fingerprint(kind: str, canonical_payload: dict) -> str:
    """Deterministic job id for a canonical request (``j`` + 16 hex chars)."""
    blob = json.dumps({"kind": kind, "payload": canonical_payload}, sort_keys=True)
    return "j" + hashlib.sha256(blob.encode()).hexdigest()[:16]
