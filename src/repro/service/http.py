"""The stdlib HTTP JSON API in front of :class:`AnalysisService`.

Routes (JSON unless noted)::

    GET  /healthz               -> {"status": "ok"|"draining"|"degraded",
                                    "jobs", "queue_depth", "inflight",
                                    "uptime_seconds", "store"}  (503 if degraded)
    GET  /metrics               -> Prometheus text exposition (0.0.4)
    GET  /v1/stats              -> service tallies + queue occupancy
    GET  /v1/jobs               -> {"jobs": [<summary>, ...], "total",
                                    "limit", "offset"}; filters/pagination
                                    via ?limit=&offset=&state=&fingerprint=
                                    &since= (epoch seconds)
    POST /v1/jobs               -> 202 {"id", "state", "deduped", "trace_id"?}
         body: {"kind": ..., "payload": {...}, "priority": 5}
         headers: traceparent / tracestate (optional) join the job to the
         caller's distributed trace
    GET  /v1/jobs/<id>          -> 200 <summary> | 404
    GET  /v1/jobs/<id>/result   -> 200 {"id","state","result","timeline"?} (done)
         [?wait=S]                 200 {"id","state","error","timeline"?}  (failed)
                                   202 {"id","state"}                      (pending)
         ``wait=S`` long-polls up to S seconds (capped at 60) for a
         terminal state before answering — the bundled client uses it
         instead of busy-polling.
    GET  /v1/jobs/<id>/trace    -> 200 {"job","trace_id","complete","spans"}
    GET  /v1/jobs/<id>/lineage  -> 200 {"job","kind","state","health","lineage"}
    GET  /v1/jobs/<id>/blame    -> 200 {"job","kind","state","output","report",
                                    "lineage","trace_id","wall_seconds_by_n"}
    GET  /v1/profile            -> 200 {"seconds","interval_s","shard","pid",
         [?seconds=S&interval_ms=M]  "profile"}; samples this worker's threads
                                   for S seconds (default 1, capped at 30) —
                                   the line-level "what is this worker doing"
                                   view (render with ``scaltool obs hot``)
    POST /v1/drain              -> 200 {"drained": true|false}

Backpressure semantics: a full queue answers **429** and a draining
service **503**, both with a ``Retry-After`` header carrying the
service's advisory back-off — well-behaved clients (the bundled
:class:`~repro.service.client.ServiceClient`) sleep and retry.  Invalid
requests (unknown kind, bad payload, unknown workload) answer **400**
with the validation error.  A service whose job store directory cannot
be written (mis-mounted cache root, read-only disk) starts *degraded*:
submits answer **503** with a structured JSON body instead of a bare
connection failure, while health/metrics/read endpoints keep working.

The server is a :class:`ThreadingHTTPServer`: request handling threads
only validate and enqueue; all heavy work happens on the service's own
queue/batcher machinery.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import (
    JobNotFoundError,
    QueueFullError,
    ReproError,
    StoreUnavailableError,
)
from ..obs import runtime as obs
from ..obs import telemetry as _telemetry
from ..obs.logs import get_logger, kv
from ..obs.trace import (
    TRACEPARENT_HEADER,
    TRACESTATE_HEADER,
    TraceSpan,
    new_span_id,
    parse_traceparent,
    parse_tracestate_name,
)
from .core import AnalysisService, ServiceConfig
from .store import Job

__all__ = ["ServiceServer", "serve"]

_log = get_logger("service.http")


def _jobs_query(raw_query: str) -> dict:
    """Parse ``GET /v1/jobs`` query parameters into jobs_view kwargs.

    Unknown parameters are rejected (400) rather than silently ignored —
    a typoed filter that returns everything is worse than an error.
    """
    from urllib.parse import parse_qsl

    kwargs: dict = {}
    for name, value in parse_qsl(raw_query, keep_blank_values=True):
        if name in ("limit", "offset"):
            try:
                kwargs[name] = int(value)
            except ValueError as exc:
                raise ReproError(f"bad {name!r}: expected an integer, got {value!r}") from exc
        elif name == "since":
            try:
                kwargs[name] = float(value)
            except ValueError as exc:
                raise ReproError(
                    f"bad 'since': expected an epoch timestamp, got {value!r}"
                ) from exc
        elif name in ("state", "fingerprint"):
            kwargs[name] = value
        else:
            raise ReproError(
                f"unknown query parameter {name!r}; "
                "expected limit, offset, state, fingerprint, or since"
            )
    return kwargs


def _wait_param(raw_query: str) -> float:
    """The ``?wait=S`` long-poll budget on the result route (0 = none).

    Other query parameters are ignored here (the route historically took
    none), and the budget is capped so a handler thread can never be
    parked indefinitely by a client.
    """
    from urllib.parse import parse_qsl

    for name, value in parse_qsl(raw_query, keep_blank_values=True):
        if name == "wait":
            try:
                return max(0.0, min(float(value), 60.0))
            except ValueError as exc:
                raise ReproError(
                    f"bad 'wait': expected seconds, got {value!r}"
                ) from exc
    return 0.0


def _profile_params(raw_query: str) -> tuple[float, float]:
    """``(seconds, interval_s)`` from a ``/v1/profile`` query string.

    Values are validated here and clamped by the service; unknown
    parameters are rejected so typos fail loudly instead of silently
    profiling with defaults.
    """
    from urllib.parse import parse_qsl

    seconds, interval_s = 1.0, 0.005
    for name, value in parse_qsl(raw_query, keep_blank_values=True):
        try:
            if name == "seconds":
                seconds = float(value)
            elif name == "interval_ms":
                interval_s = float(value) / 1e3
            else:
                raise ReproError(
                    f"unknown query parameter {name!r}; expected seconds or interval_ms"
                )
        except ValueError as exc:
            raise ReproError(f"bad {name!r}: expected a number, got {value!r}") from exc
    return seconds, interval_s


def _result_view(service: AnalysisService, job: Job) -> tuple[int, dict]:
    if job.state in ("done", "failed"):
        body = {"id": job.id, "state": job.state}
        if job.state == "done":
            body["result"] = job.result
        else:
            body["error"] = job.error
        if job.trace_id:
            timeline = service.store.get_timeline(job.id)
            if timeline is not None:
                body["timeline"] = {"trace_id": job.trace_id, "spans": timeline}
        return 200, body
    return 202, {"id": job.id, "state": job.state}


class _Handler(BaseHTTPRequestHandler):
    server_version = "scaltool-service"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ---------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        _log.debug("http %s", kv(client=self.client_address[0], line=fmt % args))

    def _send(self, status: int, body: dict, headers: dict | None = None) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("X-Scaltool-Shard", str(self.service.config.shard_index))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ReproError("request body must be a JSON object")
        return body

    # -- routes -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        obs.registry().inc("service.http.requests")
        self.service.telemetry.inc("service.http.requests")
        try:
            path, _, raw_query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            if parts == ["healthz"]:
                health = self.service.health()
                self._send(503 if health["status"] == "degraded" else 200, health)
            elif parts == ["metrics"]:
                self._send_text(
                    200, self.service.telemetry.prometheus_text(), _telemetry.CONTENT_TYPE
                )
            elif parts == ["v1", "stats"]:
                self._send(200, self.service.stats())
            elif parts == ["v1", "jobs"]:
                self._send(200, self.service.jobs_view(**_jobs_query(raw_query)))
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send(200, self.service.status(parts[2]).summary())
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
                # ?wait=S long-polls: park until terminal (or the budget
                # runs out) instead of making the client busy-poll.
                wait_s = _wait_param(raw_query)
                job = self.service.result(parts[2])
                if wait_s and job.state not in ("done", "failed"):
                    try:
                        job = self.service.wait(parts[2], timeout=wait_s)
                    except JobNotFoundError:
                        raise
                    except ReproError:
                        job = self.service.result(parts[2])  # budget expired
                status, body = _result_view(self.service, job)
                self._send(status, body)
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "trace":
                self._send(200, self.service.trace(parts[2]))
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "lineage":
                self._send(200, self.service.lineage(parts[2]))
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "blame":
                self._send(200, self.service.blame(parts[2]))
            elif parts == ["v1", "profile"]:
                seconds, interval_s = _profile_params(raw_query)
                self._send(200, self.service.profile_view(seconds, interval_s))
            else:
                self._send(404, {"error": f"no route {self.path!r}"})
        except JobNotFoundError as exc:
            self._send(404, {"error": str(exc)})
        except ReproError as exc:
            self._send(400, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        obs.registry().inc("service.http.requests")
        self.service.telemetry.inc("service.http.requests")
        try:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["v1", "jobs"]:
                arrived = time.time()
                body = self._body()
                kind = body.get("kind")
                if not isinstance(kind, str):
                    raise ReproError("request needs a string 'kind'")
                ctx = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
                if ctx is not None:
                    # The client's root span cannot be shipped to us (the
                    # client process moves on after the response), so record
                    # a placeholder for it now — it anchors the tree — and
                    # do it *before* submit so a fast job cannot finish and
                    # persist its timeline without it.
                    self.service.traces.record(
                        TraceSpan(
                            trace_id=ctx.trace_id,
                            span_id=ctx.span_id,
                            parent_id="",
                            name=parse_tracestate_name(self.headers.get(TRACESTATE_HEADER))
                            or "client.request",
                            start=arrived,
                            duration_s=0.0,
                            attrs={"remote": True},
                            pid=os.getpid(),
                        )
                    )
                try:
                    job, deduped = self.service.submit(
                        kind,
                        body.get("payload") or {},
                        priority=body.get("priority"),
                        trace_ctx=ctx,
                    )
                except ReproError:
                    if ctx is not None:  # nobody will pop the placeholder
                        self.service.traces.pop_trace(ctx.trace_id)
                    raise
                if ctx is not None:
                    if job.trace_id == ctx.trace_id:
                        self.service.traces.record(
                            TraceSpan(
                                trace_id=ctx.trace_id,
                                span_id=new_span_id(),
                                parent_id=ctx.span_id,
                                name="http.request",
                                start=arrived,
                                duration_s=time.time() - arrived,
                                attrs={"method": "POST", "path": "/v1/jobs", "status": 202},
                                pid=os.getpid(),
                            )
                        )
                    else:
                        # Deduped onto a job that belongs to another trace:
                        # nobody will ever pop ours, so drop it.
                        self.service.traces.pop_trace(ctx.trace_id)
                out = {"id": job.id, "state": job.state, "deduped": deduped}
                if job.trace_id:
                    out["trace_id"] = job.trace_id
                self._send(202, out)
            elif parts == ["v1", "drain"]:
                body = self._body()
                timeout = body.get("timeout")
                drained = self.service.drain(
                    timeout=float(timeout) if timeout is not None else None
                )
                self._send(200, {"drained": drained})
            else:
                self._send(404, {"error": f"no route {self.path!r}"})
        except StoreUnavailableError as exc:
            obs.registry().inc("service.http.rejected")
            self.service.telemetry.inc("service.http.rejected")
            self._send(503, {"error": str(exc), "status": "degraded", "store": {"writable": False}})
        except QueueFullError as exc:
            obs.registry().inc("service.http.rejected")
            self.service.telemetry.inc("service.http.rejected")
            self._send(
                503 if exc.draining else 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{max(1, round(exc.retry_after))}"},
            )
        except ReproError as exc:
            self._send(400, {"error": str(exc)})


class _ServiceHTTPServer(ThreadingHTTPServer):
    # The stdlib default listen backlog (5) drops connections when a
    # hundred clients reconnect in the same instant; size it for the
    # concurrency the service is built to absorb.
    request_queue_size = 128


class ServiceServer:
    """An :class:`AnalysisService` bound to a ThreadingHTTPServer.

    ``start()`` runs the HTTP loop on a background thread (tests, embedded
    use); ``serve_forever()`` runs it in the foreground (``scaltool
    serve``).  ``shutdown()`` drains the service before stopping, so an
    orderly exit never abandons admitted jobs.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = AnalysisService(config)
        self._httpd = _ServiceHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        self.service.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="scaltool-http",
            daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        self._thread.start()
        _log.debug("http server listening %s", kv(url=self.url))
        return self

    def serve_forever(self) -> None:
        self.service.start()
        _log.debug("http server listening %s", kv(url=self.url))
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self.shutdown()

    def shutdown(self, drain_timeout: float | None = 30.0) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.service.close(drain=True, timeout=drain_timeout)


def serve(
    config: ServiceConfig | None = None, host: str = "127.0.0.1", port: int = 8032
) -> ServiceServer:
    """Build (but do not start) a server — the ``scaltool serve`` entry."""
    return ServiceServer(config, host=host, port=port)
