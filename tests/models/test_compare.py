"""Cross-validation: two independent roads must name the same bottleneck."""

from __future__ import annotations

import json

import pytest

from repro.models import (
    PAYBACK_GAIN,
    ScalToolModel,
    SpeedupDataset,
    SpeedupPoint,
    USLModel,
    compare_models,
    payback_edge,
    predict_report,
    usl_speedup,
)
from repro.obs.diagnostics import GRADE_OK, GRADE_SUSPECT, GRADE_WARN


@pytest.fixture(scope="module")
def clean_report(contention_campaign, contention_analysis):
    dataset = SpeedupDataset.from_campaign(contention_campaign)
    return compare_models(dataset, analysis=contention_analysis)


class TestCleanCampaign:
    def test_agreement_grades_ok(self, clean_report):
        assert clean_report["grade"] == GRADE_OK
        assert clean_report["agreement"]["flags"] == []

    def test_acceptance_both_roads_rank_contention(self, clean_report):
        mapping = clean_report["mapping"]
        assert mapping["dominant_usl"] == "contention"
        assert mapping["dominant_scaltool"] == "sync+imb"
        usl = mapping["shares"]["usl"]
        scal = mapping["shares"]["scaltool"]
        assert usl["contention_share"] > usl["coherency_share"]
        assert scal["sync_imb_share"] > scal["l2lim_share"]

    def test_scaltool_projection_is_exact_at_measured_counts(self, clean_report):
        fit = clean_report["models"]["scaltool"]
        assert fit["r_squared"] == pytest.approx(1.0)
        assert fit["residual_rms"] == pytest.approx(0.0, abs=1e-12)

    def test_report_is_json_serializable(self, clean_report):
        text = json.dumps(clean_report, sort_keys=True)
        assert "Infinity" not in text and "NaN" not in text

    def test_per_fit_grades_travel_separately(self, clean_report):
        assert set(clean_report["fit_grades"]) == {"usl", "granularity", "scaltool"}
        assert clean_report["worst_fit_grade"] in (GRADE_OK, GRADE_WARN, GRADE_SUSPECT)


class TestAdversarialCurve:
    def test_mislabeled_retrograde_curve_grades_suspect(self, contention_analysis):
        # a heavy-coherency curve (kappa-dominant, retrograde) attributed
        # to the contention campaign's decomposition: the roads disagree
        points = [
            SpeedupPoint(n=n, speedup=usl_speedup(n, 0.02, 0.08)) for n in (1, 2, 4, 8)
        ]
        dataset = SpeedupDataset(label="mislabeled", points=points)
        report = compare_models(dataset, analysis=contention_analysis)
        assert report["grade"] == GRADE_SUSPECT
        flags = " ".join(report["agreement"]["flags"])
        assert "coherency" in flags or "drift" in flags or "dominan" in flags

    def test_dataset_only_compare_warns_no_decomposition(self):
        points = [
            SpeedupPoint(n=n, speedup=usl_speedup(n, 0.05, 0.001))
            for n in (1, 2, 4, 8, 16)
        ]
        report = compare_models(SpeedupDataset(label="external", points=points))
        assert report["agreement"]["details"]["has_decomposition"] is False
        assert report["grade"] == GRADE_WARN
        assert "scaltool" not in report["models"]


class TestScalToolModel:
    def test_requires_enough_analysis_counts(self):
        from types import SimpleNamespace

        from repro.errors import InsufficientDataError

        narrow = SimpleNamespace(curves=SimpleNamespace(processor_counts=[1, 2]))
        points = [SpeedupPoint(n=n, speedup=float(n)) for n in (1, 2, 4, 8)]
        with pytest.raises(InsufficientDataError) as err:
            ScalToolModel(narrow).fit(SpeedupDataset(label="short", points=points))
        assert err.value.inputs["counts"] == [1, 2]


class TestPredict:
    def test_report_extends_past_measured(self, contention_campaign, contention_analysis):
        dataset = SpeedupDataset.from_campaign(contention_campaign)
        report = predict_report(dataset, (16, 32), analysis=contention_analysis)
        ns = [row["n"] for row in report["rows"]]
        assert ns == sorted(set(dataset.counts) | {16, 32})
        for row in report["rows"]:
            if row["n"] in dataset.counts:
                assert row["measured"] is not None
            else:
                assert row["measured"] is None
            assert row["models"]["usl"]["speedup"] > 0

    def test_payback_edge_semantics(self):
        points = [
            SpeedupPoint(n=n, speedup=usl_speedup(n, 0.05, 0.002))
            for n in (1, 2, 4, 8, 16, 32)
        ]
        fit = USLModel().fit(SpeedupDataset(label="edge", points=points))
        edge = payback_edge(fit)
        assert edge > 1
        # the doubling that reached the edge paid; the next one does not
        assert fit.predict(edge) >= PAYBACK_GAIN * fit.predict(edge / 2)
        assert fit.predict(2 * edge) < PAYBACK_GAIN * fit.predict(edge)
        # for this curve the payback zone ends before the retrograde peak
        assert edge <= fit.peak_n

    def test_rejects_counts_below_one(self, contention_campaign):
        from repro.errors import EstimationError

        dataset = SpeedupDataset.from_campaign(contention_campaign)
        with pytest.raises(EstimationError):
            predict_report(dataset, (0, 32))
