"""Lock-based and false-sharing workloads."""

import pytest

from repro.errors import WorkloadError
from repro.machine.system import DsmMachine
from repro.workloads import FalseSharingWorkload, LockedRegions, make_workload

from ..conftest import tiny_machine_config


def run(wl, n=4, size=8 * 1024):
    return DsmMachine(tiny_machine_config(n_processors=n)).run(wl, size)


class TestLockedRegions:
    def test_runs_and_reconciles(self):
        res = run(LockedRegions(iters=2))
        assert res.ground_truth.total_cycles == pytest.approx(res.counters.cycles, rel=1e-9)

    def test_lock_acquires_counted(self):
        res = run(LockedRegions(iters=2, locks_per_iter=3), n=4)
        assert res.ground_truth.lock_acquires == 2 * 3 * 4  # iters x locks x cpus

    def test_event31_counts_two_fetchops_per_acquire(self):
        res = run(LockedRegions(iters=1, locks_per_iter=2), n=2)
        gt = res.ground_truth
        # two fetchops per lock passage + one per barrier arrival
        expected = 2 * gt.lock_acquires + gt.barriers
        assert res.counters.store_exclusive_to_shared == pytest.approx(expected)

    def test_contention_grows_with_cs_length(self):
        short = run(LockedRegions(iters=2, cs_instructions=50), n=4)
        long = run(LockedRegions(iters=2, cs_instructions=2000), n=4)
        assert long.ground_truth.sync_cycles > short.ground_truth.sync_cycles

    def test_registry(self):
        assert isinstance(make_workload("locked_regions", iters=1), LockedRegions)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LockedRegions(locks_per_iter=0)
        with pytest.raises(WorkloadError):
            LockedRegions(cs_instructions=-1)

    def test_deterministic(self):
        r1 = run(LockedRegions(iters=2))
        r2 = run(LockedRegions(iters=2))
        assert r1.counters == r2.counters


class TestFalseSharing:
    def test_ping_pong_upgrades(self):
        res = run(FalseSharingWorkload(iters=3), n=4)
        gt = res.ground_truth
        assert gt.upgrades_data > 0
        assert gt.coherence_misses > 0

    def test_contaminates_event31_heavily(self):
        res = run(FalseSharingWorkload(iters=3), n=4)
        c = res.counters
        barrier_ops = res.ground_truth.barriers
        assert c.store_exclusive_to_shared > 3 * barrier_ops

    def test_no_sharing_on_uniprocessor(self):
        res = run(FalseSharingWorkload(iters=3), n=1)
        assert res.ground_truth.coherence_misses == 0

    def test_sharing_scales_with_shared_frac(self):
        light = run(FalseSharingWorkload(iters=2, shared_frac=0.05), n=4)
        heavy = run(FalseSharingWorkload(iters=2, shared_frac=0.5), n=4)
        assert heavy.ground_truth.coherence_misses > light.ground_truth.coherence_misses

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FalseSharingWorkload(shared_frac=0.0)

    def test_registry(self):
        assert isinstance(make_workload("falseshare", iters=1), FalseSharingWorkload)
