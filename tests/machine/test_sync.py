"""Barrier and lock timing, spin/poll attribution."""

import pytest

from repro.errors import ConfigError
from repro.machine.counters import CounterSet, GroundTruth
from repro.machine.interconnect import Interconnect
from repro.machine.memory import NumaMemory
from repro.machine.sync import SyncEngine

from ..conftest import tiny_machine_config


def make_engine(n=4, **cfg_overrides):
    cfg = tiny_machine_config(n_processors=n, **cfg_overrides)
    ic = Interconnect(cfg.interconnect, n)
    mem = NumaMemory(cfg.memory, n, cfg.line_size)
    counters = [CounterSet() for _ in range(n)]
    gt = [GroundTruth() for _ in range(n)]
    return SyncEngine(cfg, ic, mem, counters, gt), counters, gt, cfg


class TestVariables:
    def test_allocation_homes_at_node0(self):
        engine, *_ = make_engine()
        var = engine.allocate_variable("bar")
        assert var.home == 0

    def test_variables_distinct(self):
        engine, *_ = make_engine()
        v1 = engine.allocate_variable("a")
        v2 = engine.allocate_variable("b")
        assert v1.block != v2.block


class TestBarrier:
    def test_clocks_advance_and_converge(self):
        engine, counters, gt, cfg = make_engine(4)
        var = engine.allocate_variable("bar")
        clocks = [0.0, 100.0, 200.0, 300.0]
        outcome = engine.barrier(var, clocks, cpi0=1.0)
        assert all(c >= 300.0 for c in clocks)
        # release skew is at most the network propagation
        assert max(clocks) - min(clocks) <= cfg.timing.t_hop * 8

    def test_early_arrival_books_imbalance(self):
        engine, counters, gt, _ = make_engine(2)
        var = engine.allocate_variable("bar")
        clocks = [0.0, 1000.0]
        engine.barrier(var, clocks, cpi0=1.0)
        assert gt[0].spin_cycles >= 900  # cpu 0 waited for cpu 1
        assert gt[1].spin_cycles < 100

    def test_balanced_arrivals_book_sync_only(self):
        engine, counters, gt, _ = make_engine(4)
        var = engine.allocate_variable("bar")
        clocks = [0.0] * 4
        engine.barrier(var, clocks, cpi0=1.0)
        for g in gt:
            assert g.spin_cycles == pytest.approx(0.0)
            assert g.sync_cycles > 0

    def test_ledger_matches_clock_advance(self):
        engine, counters, gt, _ = make_engine(4)
        var = engine.allocate_variable("bar")
        clocks = [0.0, 50.0, 10.0, 400.0]
        engine.barrier(var, clocks, cpi0=1.2)
        for cpu in range(4):
            advance = clocks[cpu] - [0.0, 50.0, 10.0, 400.0][cpu]
            assert gt[cpu].sync_cycles + gt[cpu].spin_cycles == pytest.approx(advance)

    def test_event31_counts_one_fetchop_each(self):
        engine, counters, gt, _ = make_engine(4)
        var = engine.allocate_variable("bar")
        clocks = [0.0] * 4
        engine.barrier(var, clocks, cpi0=1.0)
        engine.barrier(var, clocks, cpi0=1.0)
        for c in counters:
            assert c.store_exclusive_to_shared == 2
            assert c.graduated_stores == 2

    def test_serialization_grows_with_n(self):
        costs = {}
        for n in (2, 8):
            engine, counters, gt, _ = make_engine(n)
            var = engine.allocate_variable("bar")
            clocks = [0.0] * n
            engine.barrier(var, clocks, cpi0=1.0)
            costs[n] = sum(g.sync_cycles for g in gt) / n
        assert costs[8] > costs[2]

    def test_participants_subset(self):
        engine, counters, gt, _ = make_engine(4)
        var = engine.allocate_variable("bar")
        clocks = [0.0] * 4
        engine.barrier(var, clocks, cpi0=1.0, participants=[0, 2])
        assert clocks[1] == 0.0 and clocks[3] == 0.0
        assert clocks[0] > 0 and clocks[2] > 0

    def test_empty_participants_rejected(self):
        engine, *_ = make_engine(2)
        var = engine.allocate_variable("bar")
        with pytest.raises(ConfigError):
            engine.barrier(var, [0.0, 0.0], cpi0=1.0, participants=[])

    def test_barrier_counter(self):
        engine, counters, gt, _ = make_engine(2)
        var = engine.allocate_variable("bar")
        clocks = [0.0, 0.0]
        for _ in range(3):
            engine.barrier(var, clocks, cpi0=1.0)
        assert gt[0].barriers == 3


class TestLock:
    def test_serializes_critical_sections(self):
        engine, counters, gt, _ = make_engine(4)
        var = engine.allocate_variable("lock")
        clocks = [0.0] * 4
        engine.lock_section(var, clocks, cpi0=1.0, cs_instructions=100)
        # Completion times are strictly ordered: only one holder at a time.
        assert len({round(c, 3) for c in clocks}) == 4
        assert all(g.lock_acquires == 1 for g in gt)

    def test_contention_books_sync_wait(self):
        engine, counters, gt, _ = make_engine(4)
        var = engine.allocate_variable("lock")
        clocks = [0.0] * 4
        engine.lock_section(var, clocks, cpi0=1.0, cs_instructions=500)
        # the last acquirer waited for three critical sections
        total_sync = sum(g.sync_cycles for g in gt)
        assert total_sync > 3 * 500

    def test_two_fetchops_per_passage(self):
        engine, counters, gt, _ = make_engine(2)
        var = engine.allocate_variable("lock")
        clocks = [0.0, 0.0]
        engine.lock_section(var, clocks, cpi0=1.0, cs_instructions=10)
        for c in counters:
            assert c.store_exclusive_to_shared == 2

    def test_negative_cs_rejected(self):
        engine, *_ = make_engine(2)
        var = engine.allocate_variable("lock")
        with pytest.raises(ConfigError):
            engine.lock_section(var, [0.0, 0.0], cpi0=1.0, cs_instructions=-1)
