"""Ablation: interconnect topology and the tm(n) growth law (Section 2.6).

The paper's what-if list includes the interconnection network.  This
ablation measures the memory-latency kernel's mean L2-miss latency across
topologies and processor counts (round-robin placement so misses really go
remote), compares against the analytic expectation, and confirms the
ordering the machine geometry dictates.
"""

import pytest

from repro.machine.config import origin2000_scaled
from repro.machine.latency import topology_survey
from repro.viz.tables import format_table

COUNTS = (2, 8, 32)
TOPOLOGIES = ("hypercube", "mesh", "ring", "crossbar")


@pytest.fixture(scope="module")
def survey():
    return topology_survey(
        origin2000_scaled(n_processors=1),
        processor_counts=COUNTS,
        topologies=TOPOLOGIES,
        kernel_refs=2000,
        footprint_factor=6,
    )


def test_ablation_topology(benchmark, emit, survey):
    rows = benchmark(lambda: [p.row() for p in survey])
    emit(
        "ablation_topology",
        format_table(rows, title="tm(n) growth by interconnect topology"),
    )

    by = {(p.topology, p.n_processors): p for p in survey}
    # every topology's measured tm grows with machine size
    for topo in TOPOLOGIES:
        assert by[(topo, 32)].measured_tm > by[(topo, 2)].measured_tm
    # at 32 processors, geometry orders the latency: ring worst, crossbar best
    assert by[("ring", 32)].measured_tm > by[("mesh", 32)].measured_tm
    assert by[("mesh", 32)].measured_tm >= by[("hypercube", 32)].measured_tm * 0.95
    assert by[("hypercube", 32)].measured_tm > by[("crossbar", 32)].measured_tm
    # the analytic first-order model tracks the measurement
    for p in survey:
        assert p.measured_tm == pytest.approx(p.analytic_tm, rel=0.8)
