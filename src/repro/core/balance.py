"""Per-processor load-balance analysis (the Table 4 "Load Balance" column).

The paper characterises each application's load balance qualitatively
("good load balance", "large serial sections").  With per-processor
counters available (perfex reports per-thread counts), the balance can be
quantified directly:

* the **work spread** — max/mean of per-cpu compute-side instructions,
* the **imbalance coefficient of variation**,
* and an Amdahl-style **balance efficiency** (mean/max), the fraction of
  the machine doing useful work if everyone waited for the slowest.

This consumes only the per-cpu ``CounterSet``s (hardware-visible); it is
a measurement report, not a model estimate, and complements the model's
``frac_imb``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..runner.campaign import CampaignData

__all__ = ["BalancePoint", "BalanceReport", "analyze_balance"]


@dataclass(frozen=True)
class BalancePoint:
    """Load-balance metrics for one processor count."""

    n_processors: int
    mean_work: float
    max_work: float
    min_work: float
    cv: float

    @property
    def spread(self) -> float:
        """max/mean: 1.0 is perfect balance."""
        return self.max_work / self.mean_work if self.mean_work else 1.0

    @property
    def efficiency(self) -> float:
        """mean/max: the share of the machine kept busy until the barrier."""
        return self.mean_work / self.max_work if self.max_work else 1.0

    def row(self) -> dict:
        return {
            "n": self.n_processors,
            "mean stores": self.mean_work,
            "max stores": self.max_work,
            "min stores": self.min_work,
            "spread (max/mean)": self.spread,
            "efficiency": self.efficiency,
            "cv": self.cv,
        }


@dataclass
class BalanceReport:
    """Balance metrics across a campaign's processor counts."""

    workload: str
    points: list[BalancePoint] = field(default_factory=list)

    def at(self, n: int) -> BalancePoint:
        for p in self.points:
            if p.n_processors == n:
                return p
        raise InsufficientDataError(f"no balance point at n={n}")

    def verdict(self) -> str:
        """The Table 4-style qualitative call, from the largest count."""
        worst = self.points[-1]
        if worst.efficiency > 0.9:
            return "good load balance"
        if worst.efficiency > 0.7:
            return "modest load imbalance"
        return "significant load imbalance"

    def rows(self) -> list[dict]:
        return [p.row() for p in self.points]

    def summary(self) -> str:
        from ..viz.tables import format_table

        return (
            format_table(self.rows(), title=f"{self.workload}: per-processor load balance")
            + f"\nverdict: {self.verdict()}"
        )


def analyze_balance(campaign: CampaignData) -> BalanceReport:
    """Balance metrics from the base runs' per-cpu counters.

    Raw instruction counts are useless for this: spinning *adds*
    instructions to under-loaded processors, evening the counts out —
    which is exactly why the paper needs a model to see imbalance at all.
    The hardware-visible proxy used here is **graduated stores**: spin
    loops issue loads and branches but essentially no stores (one fetchop
    per barrier episode), so per-cpu store counts track real work.
    """
    base = campaign.base_runs()
    if not base:
        raise InsufficientDataError("campaign has no base runs")
    report = BalanceReport(workload=campaign.workload)
    for n in sorted(base):
        rec = base[n]
        if len(rec.per_cpu) != n:
            raise InsufficientDataError(
                f"base run at n={n} lacks per-cpu counters ({len(rec.per_cpu)})"
            )
        per_cpu = [c.graduated_stores for c in rec.per_cpu]
        mean = sum(per_cpu) / n
        var = sum((x - mean) ** 2 for x in per_cpu) / n
        report.points.append(
            BalancePoint(
                n_processors=n,
                mean_work=mean,
                max_work=max(per_cpu),
                min_work=min(per_cpu),
                cv=math.sqrt(var) / mean if mean else 0.0,
            )
        )
    return report
