"""Metrics: counters, gauges, and histograms with deterministic export.

The registry is a plain name-keyed store.  Names are dotted, lowercase,
``component.thing`` style (see ``docs/observability.md`` for the scheme
used across the package).  Snapshots are deterministic: names sort
lexicographically and histogram summaries carry a fixed key set, so two
sessions that observed the same values export identical structures
(wall-clock only ever appears in *values* of ``*_seconds`` metrics,
never in names or key order).

:data:`NOOP_REGISTRY` is the disabled fast path — method calls that do
nothing — mirroring the tracer's no-op singleton.
"""

from __future__ import annotations

import math

__all__ = [
    "Histogram",
    "BucketHistogram",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
]


class Histogram:
    """A value distribution; exact (stores observations), meant for
    thousands of samples, not millions."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / len(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac

    def summary(self) -> dict:
        """Fixed-shape summary (stable keys, deterministic given the data)."""
        values = self._values
        return {
            "count": len(values),
            "sum": self.sum,
            "mean": self.mean,
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def values(self) -> list[float]:
        """The raw observations, in observation order (spool merges)."""
        return list(self._values)


#: Log-spaced latency bucket bounds in seconds (Prometheus ``le`` style);
#: the implicit final bucket is +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class BucketHistogram:
    """A bounded-memory value distribution with estimated quantiles.

    Observations land in fixed log-spaced buckets (plus a +Inf overflow
    bucket), so memory stays O(buckets) no matter how long the process
    lives — the telemetry endpoint of a serving process must never grow
    with traffic, unlike the exact :class:`Histogram` used by bounded
    profiling sessions.  Quantiles are estimated by linear interpolation
    inside the bucket holding the target rank; the tracked ``min`` /
    ``max`` tighten the first and last occupied buckets, so the estimate
    degrades gracefully rather than inventing values outside the data.
    The bucket layout maps 1:1 onto the Prometheus histogram exposition
    (cumulative ``le`` buckets + ``sum`` + ``count``).
    """

    __slots__ = ("bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last slot is +Inf
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def percentile(self, p: float) -> float:
        """Estimated percentile, ``p`` in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._count:
            return 0.0
        rank = (p / 100.0) * self._count
        running = 0
        for i, n in enumerate(self._counts):
            if not n:
                continue
            lo = self.bounds[i - 1] if i > 0 else 0.0
            hi = self.bounds[i] if i < len(self.bounds) else self._max
            # Clamp to the observed range: the data never exceeds it.
            lo = max(lo, self._min if running == 0 else lo)
            hi = min(hi, self._max)
            if rank <= running + n:
                frac = (rank - running) / n
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            running += n
        return self._max  # pragma: no cover - rank <= count always lands above

    def summary(self) -> dict:
        """Same fixed key set as :meth:`Histogram.summary` (estimated)."""
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name-keyed counters, gauges, and histograms.

    ``histogram_factory`` picks the distribution type: the exact
    :class:`Histogram` (default — bounded profiling sessions) or
    :class:`BucketHistogram` (always-on serving telemetry).
    """

    def __init__(self, histogram_factory=Histogram) -> None:
        self._histogram_factory = histogram_factory
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writes -----------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = self._histogram_factory()
        hist.observe(value)

    def merge_dump(self, dump: dict) -> None:
        """Fold another registry's :meth:`dump` in (worker spool merge).

        Counters add, gauges take the incoming value (last write wins, in
        merge order), histogram observations append in recorded order.
        """
        for name, value in dump.get("counters", {}).items():
            self.inc(name, value)
        for name, value in dump.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, values in dump.get("histograms", {}).items():
            for value in values:
                self.observe(name, value)

    def dump(self) -> dict:
        """Lossless raw form for cross-process merging (sorted names).

        Unlike :meth:`snapshot`, histograms appear as their raw
        observation lists, so a parent can rebuild exact distributions.
        Only exact :class:`Histogram` instances can be dumped.
        """
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].values() for k in sorted(self._histograms)
            },
        }

    # -- reads ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict:
        """Deterministic nested dict: names sorted, fixed histogram keys."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].summary() for k in sorted(self._histograms)},
        }


class NoopRegistry:
    """The disabled registry: accepts writes, stores nothing."""

    __slots__ = ()

    def inc(self, name: str, value: float = 1.0) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def counter(self, name: str) -> float:
        return 0.0

    def gauge(self, name: str) -> None:
        return None

    def histogram(self, name: str) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_REGISTRY = NoopRegistry()
