"""Ablation A2: the L2-overflow filter on the (t2, tm) regression.

Section 2.3: "we use only data set sizes that overflow the L2 cache when
we generate the triplets", because tm "varies noticeably depending on
whether or not the data set size fits in the L2".  This ablation fits
with and without the filter and compares how well each fit predicts the
base-size uniprocessor run.
"""

import pytest

from repro.core.estimators import cpi0_run, fit_t2_tm
from repro.core.model import cpi_linear
from repro.viz.tables import format_table


def fit_variants(campaign, l2_bytes):
    uniproc = {s: r.without_ground_truth() for s, r in campaign.uniprocessor_runs().items()}
    cpi0 = cpi0_run(uniproc, l2_bytes).counters.cpi
    out = {}
    for label, overflow_only in (("filtered (paper)", True), ("unfiltered", False)):
        t2, tm, diag = fit_t2_tm(uniproc, cpi0, l2_bytes, overflow_only=overflow_only)
        # evaluate: predict the s0 run's CPI from its own (h2, hm)
        rec = uniproc[max(uniproc)]
        c = rec.counters
        predicted = cpi_linear(cpi0, c.h2, c.hm, t2, tm)
        out[label] = {
            "t2": t2,
            "tm": tm,
            "n_triplets": len(diag["sizes"]),
            "rms": diag["rms"],
            "pred_error_at_s0": abs(predicted - c.cpi) / c.cpi,
        }
    return out


def test_ablation_fit_filter(benchmark, emit, t3dheat_campaign):
    l2 = int(t3dheat_campaign.records[0].machine["l2_bytes"])
    results = benchmark(fit_variants, t3dheat_campaign, l2)

    rows = [{"variant": k, **v} for k, v in results.items()]
    emit("ablation_fit_filter", format_table(rows, title="A2: L2-overflow triplet filter"))

    filt = results["filtered (paper)"]
    unfilt = results["unfiltered"]
    # the unfiltered fit pools in-cache sizes whose tm regime differs
    assert unfilt["n_triplets"] > filt["n_triplets"]
    # the paper's filter predicts the overflowing base run at least as well
    assert filt["pred_error_at_s0"] <= unfilt["pred_error_at_s0"] + 0.01
    assert filt["pred_error_at_s0"] < 0.10


def test_ablation_triplet_count(benchmark, emit, t3dheat_campaign):
    """How many triplets are enough?  The paper uses 'about 3-4'."""
    l2 = int(t3dheat_campaign.records[0].machine["l2_bytes"])
    uniproc = {
        s: r.without_ground_truth() for s, r in t3dheat_campaign.uniprocessor_runs().items()
    }
    cpi0 = cpi0_run(uniproc, l2).counters.cpi
    overflow = sorted(
        (s for s in uniproc if s >= 1.2 * l2), reverse=True
    )

    def sweep_counts():
        out = []
        for k in range(2, len(overflow) + 1):
            subset = {s: uniproc[s] for s in overflow[:k]}
            try:
                t2, tm, diag = fit_t2_tm(subset, cpi0, l2)
                out.append({"triplets": k, "t2": t2, "tm": tm, "rms": diag["rms"]})
            except Exception:
                continue
        return out

    rows = benchmark(sweep_counts)
    emit("ablation_triplet_count", format_table(rows, title="A2b: fit vs triplet count"))
    assert len(rows) >= 2
    # with 3+ triplets the fitted tm stabilises (spread under 40%)
    tms = [r["tm"] for r in rows if r["triplets"] >= 3]
    assert max(tms) - min(tms) < 0.4 * max(tms)
