"""PhaseRunner: interleaving, chunking, and accounting semantics."""

import numpy as np
import pytest

from repro.machine.coherence import CoherenceController
from repro.machine.counters import CounterSet, GroundTruth
from repro.machine.hierarchy import CacheHierarchy
from repro.machine.interconnect import Interconnect
from repro.machine.memory import NumaMemory
from repro.machine.processor import PhaseRunner
from repro.trace.events import Phase, Segment

from ..conftest import tiny_machine_config


def build_runner(n=2, chunk=4):
    cfg = tiny_machine_config(n_processors=n, interleave_chunk=chunk)
    hier = [CacheHierarchy(i, cfg.l1, cfg.l2, seed=1) for i in range(n)]
    counters = [CounterSet() for _ in range(n)]
    gt = [GroundTruth() for _ in range(n)]
    ctrl = CoherenceController(
        cfg, hier, NumaMemory(cfg.memory, n, cfg.line_size),
        Interconnect(cfg.interconnect, n), counters, gt,
    )
    return PhaseRunner(ctrl, counters, gt, chunk), counters, gt


def seg(blocks, writes=False, n_instr=None):
    a = np.asarray(blocks, dtype=np.int64)
    w = np.full(len(a), writes, dtype=bool)
    return Segment(a, w, n_instr if n_instr is not None else max(1, len(a) * 3))


class TestExecution:
    def test_all_refs_executed(self):
        runner, counters, _ = build_runner()
        phase = Phase(name="p", segments=[seg(range(10)), seg(range(100, 125))])
        clocks = [0.0, 0.0]
        runner.run_phase(phase, cpi0=1.0, clocks=clocks)
        assert counters[0].mem_refs == 10
        assert counters[1].mem_refs == 25

    def test_clock_is_compute_plus_stalls(self):
        runner, counters, gt = build_runner(n=1)
        phase = Phase(name="p", segments=[seg(range(8), n_instr=100)])
        clocks = [0.0]
        runner.run_phase(phase, cpi0=1.5, clocks=clocks)
        stalls = gt[0].l2_hit_stall_cycles + gt[0].memory_stall_cycles + gt[0].writeback_cycles
        assert clocks[0] == pytest.approx(100 * 1.5 + stalls + gt[0].upgrade_cycles)

    def test_idle_slot_untouched(self):
        runner, counters, _ = build_runner()
        phase = Phase(name="p", segments=[seg(range(5)), None])
        clocks = [0.0, 42.0]
        runner.run_phase(phase, cpi0=1.0, clocks=clocks)
        assert clocks[1] == 42.0
        assert counters[1].graduated_instructions == 0

    def test_zero_ref_segment_still_charges_instructions(self):
        runner, counters, _ = build_runner()
        empty = Segment(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 500)
        phase = Phase(name="p", segments=[empty, None])
        clocks = [0.0, 0.0]
        runner.run_phase(phase, cpi0=2.0, clocks=clocks)
        assert clocks[0] == pytest.approx(1000.0)
        assert counters[0].graduated_instructions == 500

    def test_chunk_size_does_not_change_private_totals(self):
        # with disjoint per-cpu footprints, interleave granularity is moot
        results = {}
        for chunk in (1, 7, 64):
            runner, counters, _ = build_runner(chunk=chunk)
            phase = Phase(name="p", segments=[seg(range(0, 30)), seg(range(100, 130))])
            runner.run_phase(phase, cpi0=1.0, clocks=[0.0, 0.0])
            results[chunk] = CounterSet.total(counters)
        assert results[1] == results[7] == results[64]

    def test_interleaving_affects_shared_race_order(self):
        # both cpus write the same block: with chunk=1 the ownership
        # ping-pongs; with a huge chunk cpu0 finishes first
        def run(chunk):
            runner, counters, gt = build_runner(chunk=chunk)
            blocks = [7] * 20
            phase = Phase(name="p", segments=[seg(blocks, writes=True), seg(blocks, writes=True)])
            runner.run_phase(phase, cpi0=1.0, clocks=[0.0, 0.0])
            return GroundTruth.total(gt).coherence_misses

        assert run(1) > run(1000)

    def test_compute_instruction_ledger(self):
        runner, counters, gt = build_runner(n=1)
        phase = Phase(name="p", segments=[seg(range(4), n_instr=50)])
        runner.run_phase(phase, cpi0=1.0, clocks=[0.0])
        assert gt[0].compute_instructions == 50
        assert counters[0].graduated_instructions == 50
