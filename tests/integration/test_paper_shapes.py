"""The paper's qualitative results, asserted end-to-end (Section 4).

Each test states the claim from the paper it checks.  Absolute numbers are
ours (the substrate is a scaled simulator); the *shapes* — who dominates,
where knees fall, how validation behaves — are the paper's.
"""

import pytest

from repro.core import ScalTool, validate_mp
from repro.core.sharing import analyze_sharing


@pytest.fixture(scope="module")
def t3dheat(t3dheat_campaign):
    return ScalTool(t3dheat_campaign).analyze(), t3dheat_campaign


@pytest.fixture(scope="module")
def hydro2d(hydro2d_campaign):
    return ScalTool(hydro2d_campaign).analyze(), hydro2d_campaign


@pytest.fixture(scope="module")
def swim(swim_campaign):
    return ScalTool(swim_campaign).analyze(), swim_campaign


class TestT3dheat:
    """Figures 5-7: cache-hungry, barrier-bound."""

    def test_fig5_speedup_good_to_16_saturating_after(self, t3dheat):
        analysis, _ = t3dheat
        spd = dict(analysis.curves.speedups())
        assert spd[16] > 12  # "good speedups up to 16"
        assert spd[32] / spd[16] < 1.6  # "after that, the curve saturates"

    def test_fig6_l2lim_large_at_1_gone_by_16(self, t3dheat):
        analysis, _ = t3dheat
        c = analysis.curves
        assert c.l2lim_cost[1] / c.base[1] > 0.15  # significant conflict overhead
        assert c.l2lim_cost[16] / c.base[16] < 0.02
        assert c.l2lim_cost[32] / c.base[32] < 0.02

    def test_fig6_l2lim_monotone_decline(self, t3dheat):
        analysis, _ = t3dheat
        c = analysis.curves
        fractions = [c.l2lim_cost[n] / c.base[n] for n in c.processor_counts]
        assert fractions[0] == max(fractions)

    def test_fig6_mp_dominates_at_scale(self, t3dheat):
        analysis, _ = t3dheat
        # "multiprocessor overheads ... responsible for about 75% of the
        # cycles for 30 processors"
        assert analysis.mp_fraction(32) > 0.5

    def test_fig6_sync_dominates_mp(self, t3dheat):
        analysis, _ = t3dheat
        # "most of the multiprocessor overhead comes from synchronization"
        c = analysis.curves
        assert c.sync_cost[32] > 2 * c.imb_cost[32]

    def test_ssusage_caching_space_at_10(self, t3dheat, swim_campaign):
        # 40 MB / 4 MB L2 = 10 processors (scaled equivalently)
        _, campaign = t3dheat
        rec = campaign.base_runs()[1]
        assert rec.size_bytes / rec.machine["l2_bytes"] == pytest.approx(10.0)

    def test_fig7_validation_close(self, t3dheat):
        analysis, campaign = t3dheat
        v = validate_mp(analysis, campaign, exact=True)
        _, worst = v.max_divergence()
        assert worst < 0.10  # "remarkably similar"


class TestHydro2d:
    """Figures 8-10: serial sections, modest speedup."""

    def test_fig8_modest_speedup(self, hydro2d):
        analysis, _ = hydro2d
        spd = dict(analysis.curves.speedups())
        assert 6 < spd[32] < 20  # paper: ~9 at 32

    def test_fig9_l2lim_vanishes_early(self, hydro2d):
        analysis, _ = hydro2d
        c = analysis.curves
        # 10.3 MB / 4 MB: "the effect of limited caching space vanishes at
        # 2-3 processors"
        assert c.l2lim_cost[8] / c.base[8] < 0.03
        assert c.l2lim_cost[4] / c.base[4] < 0.10

    def test_fig9_imbalance_dominates_sync(self, hydro2d):
        analysis, _ = hydro2d
        c = analysis.curves
        assert c.imb_cost[32] > c.sync_cost[32]
        assert c.imb_cost[16] > c.sync_cost[16]

    def test_fig10_validation_within_paper_band(self, hydro2d):
        analysis, campaign = hydro2d
        # paper: 9% divergence at 32 processors
        v = validate_mp(analysis, campaign, exact=True)
        assert v.divergence(32) < 0.15
        _, worst = v.max_divergence()
        assert worst < 0.25


class TestSwim:
    """Figures 11-13: near-linear, imbalance-bound, sharing-contaminated."""

    def test_fig11_good_speedup(self, swim):
        analysis, _ = swim
        spd = dict(analysis.curves.speedups())
        assert spd[32] > 20  # paper: ~24 at 32

    def test_fig12_l2lim_small(self, swim):
        analysis, _ = swim
        c = analysis.curves
        assert c.l2lim_cost[1] / c.base[1] < 0.35  # "negligible" in the paper
        assert c.l2lim_cost[16] / c.base[16] < 0.02

    def test_fig12_imbalance_dominates(self, swim):
        analysis, _ = swim
        c = analysis.curves
        assert c.imb_cost[32] >= c.sync_cost[32]

    def test_fig13_agrees_until_16_diverges_at_32(self, swim):
        analysis, campaign = swim
        v = validate_mp(analysis, campaign, exact=True)
        # "while until 16 processors, estimated and measured curves agree,
        # they diverge for 32" (paper: 14%; sharing contamination)
        assert v.divergence(8) < 0.10
        assert v.divergence(32) > v.divergence(8)
        assert v.divergence(32) < 0.40

    def test_sharing_extension_reduces_divergence(self, swim):
        # Section 6: "with an extension to Scal-Tool to estimate the effect
        # of data sharing, the differences between the curves could be
        # reduced"
        analysis, campaign = swim
        sh = analyze_sharing(analysis, campaign)
        n = 32
        true_mp = campaign.base_runs()[n].ground_truth.multiprocessor_cycles
        raw_err = abs(analysis.curves.mp_cost(n) - true_mp)
        corrected_err = abs(
            sh.corrected_curves.sync_cost[n] + sh.corrected_curves.imb_cost[n] - true_mp
        )
        assert corrected_err < raw_err

    def test_event31_contamination_present(self, swim):
        analysis, campaign = swim
        sh = analyze_sharing(analysis, campaign)
        assert sh.contamination(32) > 0.3  # sharing ops dominate event 31


class TestCrossApplication:
    def test_dominant_bottlenecks_match_paper(self, t3dheat, hydro2d, swim):
        t3, _ = t3dheat
        hy, _ = hydro2d
        sw, _ = swim
        assert t3.dominant_bottleneck(32) == "synchronization"
        assert hy.dominant_bottleneck(32) == "load imbalance"
        assert sw.dominant_bottleneck(32) == "load imbalance"

    def test_tm_grows_with_machine_size(self, t3dheat):
        # Figure 4: cpi(inf,inf) increases with n because tm(n) does
        analysis, _ = t3dheat
        tm = analysis.params.tm_by_n
        assert tm[32] > tm[1]
