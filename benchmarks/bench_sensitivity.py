"""Extension: sensitivity of the MP estimate to the model's inputs.

The paper concedes the tool gives a *rough* quantification; this bench
measures the roughness directly by perturbing each estimated input +-10%
on T3dheat and reporting the elasticity of the 32-processor MP estimate.
"""

import pytest

from repro.core.sensitivity import analyze_sensitivity
from repro.viz.tables import format_table


def test_sensitivity(benchmark, emit, t3dheat_analysis, t3dheat_campaign):
    report = benchmark(analyze_sensitivity, t3dheat_analysis, t3dheat_campaign, 0.10)
    emit("sensitivity_t3dheat", report.summary())

    by = {r.parameter: r for r in report.results}
    # tsyn directly scales the dominant sync cost: |elasticity| is material
    assert abs(by["tsyn"].elasticity) > 0.2
    # no input may blow the estimate up catastrophically at +-10%
    for r in report.results:
        assert abs(r.mp_change) < 0.6
    # the probe sits at the largest measured count
    assert report.probe_n == 32
