"""Hardware event counters and the simulator's ground-truth ledger.

:class:`CounterSet` is everything Scal-Tool is allowed to see: the subset of
the MIPS R10000 event-counter catalog the paper uses (cycles, graduated
instructions/loads/stores, primary/secondary data-cache misses, and event 31
"store/prefetch exclusive to shared block", which the paper repurposes to
count synchronization operations, ``ntsyn``).

:class:`GroundTruth` is everything the real hardware could *not* report:
cycle attribution to sync/spin/compute, miss classification (cold vs
coherence vs replacement), local/remote split.  It exists purely so the
validation experiments (Figures 7, 10, 13) have an independent measurement
to compare against, in the role speedshop plays in the paper.

Derived quantities used throughout the model (Section 2 of the paper) are
exposed as properties on :class:`CounterSet`:

* ``cpi`` — cycles per graduated instruction,
* ``m_frac`` — (loads+stores)/instructions,
* ``l1_hit_rate`` — L1 hits per memory reference,
* ``l2_local_hit_rate`` — L2 hits per L1 miss (the paper's *local* hit
  rate ``L2hitr``),
* ``h2``/``hm`` — per-instruction frequencies of L1-miss-L2-hit and
  L2-miss events (Equation 6/7).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from ..errors import CounterFormatError
from ..units import safe_div

__all__ = ["CounterSet", "GroundTruth", "EVENT_CATALOG", "R10K_EVENTS"]


# R10000-style event catalog: event number -> (description, CounterSet field).
# Numbers follow the R10000 performance-counter event list cited by the
# paper ([18, 25]); only the events the model consumes are implemented.
R10K_EVENTS: dict[int, tuple[str, str]] = {
    0: ("Cycles", "cycles"),
    9: ("Primary instruction cache misses", "l1_instruction_misses"),
    15: ("Graduated instructions", "graduated_instructions"),
    18: ("Graduated loads", "graduated_loads"),
    19: ("Graduated stores", "graduated_stores"),
    23: ("TLB misses", "tlb_misses"),
    25: ("Primary data cache misses", "l1_data_misses"),
    26: ("Secondary data cache misses", "l2_misses"),
    31: ("Store/prefetch exclusive to shared block in scache", "store_exclusive_to_shared"),
}

EVENT_CATALOG = R10K_EVENTS  # public alias


@dataclass
class CounterSet:
    """Hardware-visible event counts for one run (or one processor)."""

    cycles: float = 0.0
    graduated_instructions: float = 0.0
    graduated_loads: float = 0.0
    graduated_stores: float = 0.0
    l1_data_misses: float = 0.0
    l2_misses: float = 0.0
    l1_instruction_misses: float = 0.0
    store_exclusive_to_shared: float = 0.0
    tlb_misses: float = 0.0

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "CounterSet") -> "CounterSet":
        return CounterSet(**{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)})

    def __iadd__(self, other: "CounterSet") -> "CounterSet":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "CounterSet":
        """All counters multiplied by ``factor`` (used by multiplex emulation)."""
        return CounterSet(**{f.name: getattr(self, f.name) * factor for f in fields(self)})

    @classmethod
    def total(cls, parts: list["CounterSet"]) -> "CounterSet":
        """Sum across processors — the paper's figures accumulate all CPUs."""
        out = cls()
        for p in parts:
            out += p
        return out

    # -- derived quantities (paper Section 2) --------------------------------

    @property
    def mem_refs(self) -> float:
        """Graduated loads + stores."""
        return self.graduated_loads + self.graduated_stores

    @property
    def cpi(self) -> float:
        """Cycles per graduated instruction (Equation 1's left side)."""
        return safe_div(self.cycles, self.graduated_instructions)

    @property
    def m_frac(self) -> float:
        """Fraction of instructions that are memory references, m(s, n)."""
        return safe_div(self.mem_refs, self.graduated_instructions)

    @property
    def l1_hit_rate(self) -> float:
        """L1 data-cache hits per memory reference, L1hitr(s, n)."""
        return 1.0 - safe_div(self.l1_data_misses, self.mem_refs)

    @property
    def l2_local_hit_rate(self) -> float:
        """L2 hits per L1 miss — the paper's local hit rate L2hitr(s, n)."""
        return 1.0 - safe_div(self.l2_misses, self.l1_data_misses)

    @property
    def h2(self) -> float:
        """Frequency of instructions that miss L1 and hit L2 (Eq. 6)."""
        return safe_div(self.l1_data_misses - self.l2_misses, self.graduated_instructions)

    @property
    def hm(self) -> float:
        """Frequency of instructions that miss L2 (Eq. 7)."""
        return safe_div(self.l2_misses, self.graduated_instructions)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "CounterSet":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CounterFormatError(f"unknown counter fields: {sorted(unknown)}")
        return cls(**{k: float(v) for k, v in data.items()})

    def rounded(self) -> "CounterSet":
        """Integer-valued copy, as real hardware counters would report."""
        return CounterSet(**{f.name: float(round(getattr(self, f.name))) for f in fields(self)})


@dataclass
class GroundTruth:
    """Simulator-internal attribution the validation experiments rely on.

    Cycle ledger (``*_cycles`` sums to the CounterSet's ``cycles``):

    * ``compute_cycles`` — instruction execution at the workload's cpi0;
    * ``l2_hit_stall_cycles`` / ``memory_stall_cycles`` — cache stalls;
    * ``sync_cycles`` — barrier/lock protocol work including fetchop
      latency and serialization (speedshop's barrier-routine bucket);
    * ``spin_cycles`` — idle waiting at barriers/locks (speedshop's
      wait-routine bucket, the paper's load imbalance);
    * ``writeback_cycles`` / ``upgrade_cycles`` — second-order costs that
      sit outside the paper's Equation 1 on purpose.
    """

    compute_cycles: float = 0.0
    l2_hit_stall_cycles: float = 0.0
    memory_stall_cycles: float = 0.0
    sync_cycles: float = 0.0
    spin_cycles: float = 0.0
    writeback_cycles: float = 0.0
    upgrade_cycles: float = 0.0
    tlb_stall_cycles: float = 0.0

    sync_instructions: float = 0.0
    spin_instructions: float = 0.0
    compute_instructions: float = 0.0

    cold_misses: int = 0
    coherence_misses: int = 0
    replacement_misses: int = 0
    victim_hits: int = 0
    local_misses: int = 0
    remote_misses: int = 0
    dirty_remote_misses: int = 0
    upgrades_data: int = 0
    upgrades_sync: int = 0
    writebacks: int = 0
    barriers: int = 0
    lock_acquires: int = 0

    def __add__(self, other: "GroundTruth") -> "GroundTruth":
        return GroundTruth(**{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)})

    def __iadd__(self, other: "GroundTruth") -> "GroundTruth":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def total(cls, parts: list["GroundTruth"]) -> "GroundTruth":
        out = cls()
        for p in parts:
            out += p
        return out

    @property
    def total_cycles(self) -> float:
        """Sum of the cycle ledger (must equal CounterSet.cycles)."""
        return (
            self.compute_cycles
            + self.l2_hit_stall_cycles
            + self.memory_stall_cycles
            + self.sync_cycles
            + self.spin_cycles
            + self.writeback_cycles
            + self.upgrade_cycles
            + self.tlb_stall_cycles
        )

    @property
    def total_misses(self) -> int:
        return self.cold_misses + self.coherence_misses + self.replacement_misses

    @property
    def multiprocessor_cycles(self) -> float:
        """Cycles speedshop would attribute to MP factors (Sync + Imb)."""
        return self.sync_cycles + self.spin_cycles

    def to_dict(self) -> dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "GroundTruth":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CounterFormatError(f"unknown ground-truth fields: {sorted(unknown)}")
        kwargs = {}
        for f in fields(cls):
            if f.name in data:
                kwargs[f.name] = type(f.default)(data[f.name]) if f.default is not None else data[f.name]
        return cls(**kwargs)
