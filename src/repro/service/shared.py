"""Cross-process shared state for the multi-worker service.

One process could keep its in-flight claim table and run-cache index in
memory (``planner.InFlightTable``, bare ``RunCache``).  With N worker
processes sharing one cache directory, both must move somewhere every
process can see *atomically*:

* :class:`SqliteClaimTable` — the in-flight claim table as a SQLite
  (WAL) table.  Claims carry an owner id (``pid:uuid``), a creation
  time, and a heartbeat; a claim whose owner is dead or whose heartbeat
  is older than the TTL is *expired* and can be reclaimed, so a worker
  SIGKILLed mid-batch never wedges its peers (satellite: stale-claim
  leakage fix).  Waiters poll the table — cross-process, there is no
  shared ``threading.Event`` — re-checking the run cache as they go.

* :class:`RunCacheIndex` + :class:`IndexedRunCache` — the run cache
  keeps its atomic per-spec JSON payloads (write-then-rename files; the
  engine contract), while a WAL-mode SQLite index makes membership a
  query instead of a ``stat`` and lets one process memoise parsed
  records safely: a record may be cached in memory only while the index
  row's generation matches, so a refresh by *any* process invalidates
  every process's memo.

SQLite is in the standard library, WAL mode gives multi-process
readers + single-writer semantics with no daemon, and every mutation
here is a single statement or one short ``BEGIN IMMEDIATE`` block —
well inside what WAL handles at this fan-in.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
import uuid
from pathlib import Path

from ..obs import runtime as obs
from ..runner.engine import RunCache, RunRecord, RunSpec

__all__ = [
    "SqliteClaimTable",
    "ClaimWaiter",
    "RunCacheIndex",
    "IndexedRunCache",
    "owner_alive",
]

#: A claim whose heartbeat is older than this is reclaimable even if the
#: owner pid still answers (a wedged worker must not block dedup forever).
DEFAULT_CLAIM_TTL = 60.0

#: How often waiters poll a cross-process claim (seconds).
POLL_INTERVAL = 0.02


def make_owner_id() -> str:
    """An owner token: ``pid:uuid`` — liveness-checkable and unique."""
    return f"{os.getpid()}:{uuid.uuid4().hex[:12]}"


def owner_alive(owner: str) -> bool:
    """Whether the claiming process still exists (best effort).

    ``os.kill(pid, 0)`` probes without signalling.  A recycled pid makes
    a dead owner look alive for up to one TTL — acceptable: TTL expiry
    is the backstop, liveness just reclaims *faster*.
    """
    try:
        pid = int(owner.split(":", 1)[0])
        os.kill(pid, 0)
    except (ValueError, ProcessLookupError):
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def _connect(path: Path) -> sqlite3.Connection:
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path), timeout=30.0, check_same_thread=False)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute("PRAGMA busy_timeout=30000")
    return conn


class ClaimWaiter:
    """Poll-based stand-in for the in-process ``threading.Event`` waiter.

    ``wait`` returns True once the claim row is gone (owner released) or
    expired+reclaimed-away; the planner's contract — "after wait(),
    re-check the cache; execute yourself what is still missing" — is
    unchanged, so a false-positive wake is merely a little extra work.
    """

    def __init__(self, table: "SqliteClaimTable", key: str) -> None:
        self._table = table
        self._key = key

    def wait(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if not self._table.is_claimed(self._key):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(POLL_INTERVAL)


class SqliteClaimTable:
    """The planner's in-flight table, shared across worker processes.

    Same shape as :class:`repro.service.planner.InFlightTable` —
    ``claim(keys) -> (claimed, waiting)``, ``release(keys)`` — plus
    ``heartbeat(keys)`` for long batches and TTL/owner-liveness expiry
    so claims die with their owner instead of leaking forever.
    """

    def __init__(
        self,
        path: str | Path,
        ttl: float = DEFAULT_CLAIM_TTL,
        owner: str | None = None,
    ) -> None:
        self.path = Path(path)
        self.ttl = float(ttl)
        self.owner = owner or make_owner_id()
        self._lock = threading.Lock()
        self._conn = _connect(self.path)
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS claims ("
                " key TEXT PRIMARY KEY,"
                " owner TEXT NOT NULL,"
                " created REAL NOT NULL,"
                " heartbeat REAL NOT NULL)"
            )
            self._conn.commit()

    # -- expiry -----------------------------------------------------------------

    def _expire_locked(self, now: float) -> int:
        """Drop claims whose owner is dead or whose heartbeat exceeded TTL."""
        rows = self._conn.execute(
            "SELECT key, owner, heartbeat FROM claims"
        ).fetchall()
        stale = [
            key
            for key, owner, hb in rows
            if now - hb > self.ttl or not owner_alive(owner)
        ]
        for key in stale:
            self._conn.execute("DELETE FROM claims WHERE key = ?", (key,))
        if stale:
            obs.registry().inc("service.claims.expired", len(stale))
        return len(stale)

    def expire(self) -> int:
        """Reap stale claims now; returns how many were dropped."""
        with self._lock:
            now = time.time()
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                n = self._expire_locked(now)
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return n

    # -- claim / release --------------------------------------------------------

    def claim(self, keys: list[str]) -> tuple[list[str], dict[str, ClaimWaiter]]:
        """Partition ``keys`` into (claimed by me, claimed elsewhere).

        Atomic over the whole key set (one IMMEDIATE transaction), the
        same all-or-partition guarantee the in-process table gives with
        its single lock.  Stale claims are expired inside the same
        transaction, so a dead worker's keys are reclaimed on the very
        next plan that wants them.
        """
        claimed: list[str] = []
        waiting: dict[str, ClaimWaiter] = {}
        if not keys:  # fully-cached plan: skip the write transaction
            return claimed, waiting
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._expire_locked(now)
                for key in keys:
                    cur = self._conn.execute(
                        "INSERT OR IGNORE INTO claims (key, owner, created, heartbeat)"
                        " VALUES (?, ?, ?, ?)",
                        (key, self.owner, now, now),
                    )
                    if cur.rowcount:
                        claimed.append(key)
                    else:
                        waiting[key] = ClaimWaiter(self, key)
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return claimed, waiting

    def release(self, keys: list[str]) -> None:
        """Drop claims (success *or* failure) so waiters can proceed."""
        if not keys:
            return
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                for key in keys:
                    self._conn.execute("DELETE FROM claims WHERE key = ?", (key,))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise

    def heartbeat(self, keys: list[str]) -> None:
        """Refresh my claims' heartbeats (call periodically during a batch)."""
        if not keys:
            return
        now = time.time()
        with self._lock:
            for key in keys:
                self._conn.execute(
                    "UPDATE claims SET heartbeat = ? WHERE key = ? AND owner = ?",
                    (now, key, self.owner),
                )
            self._conn.commit()

    def is_claimed(self, key: str) -> bool:
        """Whether a *live* claim on ``key`` exists (expired ones don't count)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT owner, heartbeat FROM claims WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return False
        owner, hb = row
        if time.time() - hb > self.ttl or not owner_alive(owner):
            # Reap lazily so waiters never spin a full TTL on a ghost.
            self.release([key])
            return False
        return True

    def owner_of(self, key: str) -> str | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT owner FROM claims WHERE key = ?", (key,)
            ).fetchone()
        return row[0] if row else None

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._conn.execute("SELECT COUNT(*) FROM claims").fetchone()
        return int(n)

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class RunCacheIndex:
    """WAL-mode SQLite membership index over the run cache.

    Rows are ``(key, generation)``.  The generation bumps whenever the
    entry is (re)written, which is what lets per-process record memos
    stay correct: a memo is valid only while its generation matches.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._conn = _connect(self.path)
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                " key TEXT PRIMARY KEY,"
                " generation INTEGER NOT NULL,"
                " created REAL NOT NULL)"
            )
            self._conn.commit()

    def add(self, key: str) -> int:
        """Record ``key`` as present; returns its new generation."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO runs (key, generation, created) VALUES (?, 1, ?)"
                    " ON CONFLICT(key) DO UPDATE SET generation = generation + 1",
                    (key, time.time()),
                )
                (gen,) = self._conn.execute(
                    "SELECT generation FROM runs WHERE key = ?", (key,)
                ).fetchone()
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return int(gen)

    def generation(self, key: str) -> int | None:
        """The key's generation, or None if unindexed."""
        with self._lock:
            row = self._conn.execute(
                "SELECT generation FROM runs WHERE key = ?", (key,)
            ).fetchone()
        return int(row[0]) if row else None

    def discard(self, key: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM runs WHERE key = ?", (key,))
            self._conn.commit()

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(n)

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class IndexedRunCache(RunCache):
    """A :class:`RunCache` backed by the shared index + a record memo.

    Payloads stay exactly where the engine contract puts them — one
    atomic JSON file per spec under ``<root>/`` — so a bare ``RunCache``
    pointed at the same directory (the CLI path) interoperates freely.
    On top of that:

    * ``contains`` consults the index first and falls back to ``stat``
      (a CLI-written entry predating the index is adopted on sight);
    * ``get`` memoises parsed records per process, keyed by (key,
      generation), so the service's warm path stops re-parsing JSON for
      every job — and stays correct across processes because any
      rewrite bumps the generation.
    """

    def __init__(self, root: str | Path, index: RunCacheIndex, memo_cap: int = 4096):
        super().__init__(root)
        self.index = index
        self._memo_cap = int(memo_cap)
        self._memo_lock = threading.Lock()
        self._memo: dict[str, tuple[int, RunRecord]] = {}

    def contains(self, spec: RunSpec) -> bool:
        key = spec.key()
        if self.index.generation(key) is not None:
            return True
        if self.path(spec).exists():
            self.index.add(key)
            return True
        return False

    def get(self, spec: RunSpec) -> RunRecord | None:
        key = spec.key()
        gen = self.index.generation(key)
        if gen is not None:
            with self._memo_lock:
                hit = self._memo.get(key)
                if hit is not None and hit[0] == gen:
                    obs.registry().inc("service.runcache.memo_hits")
                    return hit[1]
        record = super().get(spec)
        if record is None:
            if gen is not None and not self.path(spec).exists():
                self.index.discard(key)  # index row outlived its payload
            return None
        if gen is None:
            gen = self.index.add(key)
        with self._memo_lock:
            if len(self._memo) >= self._memo_cap:
                self._memo.clear()  # simple flush; cap >> working set
            self._memo[key] = (gen, record)
        return record

    def put(self, spec: RunSpec, record: RunRecord) -> Path:
        path = super().put(spec, record)
        gen = self.index.add(spec.key())
        with self._memo_lock:
            if len(self._memo) >= self._memo_cap:
                self._memo.clear()
            self._memo[spec.key()] = (gen, record)
        return path
