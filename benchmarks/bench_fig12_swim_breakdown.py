"""Figure 12: estimation of the scalability bottlenecks in Swim.

Paper: "the Base-L2Lim curve overlaps completely on top of the Base
curve" (limited caching space negligible); "of the multiprocessor
effects, load imbalance dominates by far over synchronization".
"""

from repro.core.report import curves_chart

from .conftest import breakdown_table


def test_fig12(benchmark, emit, swim_analysis):
    rows = benchmark(swim_analysis.curves.rows)
    emit(
        "fig12_swim_breakdown",
        curves_chart(swim_analysis) + "\n\n" + breakdown_table(swim_analysis),
    )

    c = swim_analysis.curves
    # caching space: small at 1 (paper: negligible), gone by 16
    assert c.l2lim_cost[1] / c.base[1] < 0.35
    assert c.l2lim_cost[16] / c.base[16] < 0.02
    # imbalance at least matches sync (paper: dominates by far)
    assert c.imb_cost[32] >= c.sync_cost[32]
    assert swim_analysis.dominant_bottleneck(32) == "load imbalance"
    # the MP cost stays a modest share: this is the well-scaling app
    assert swim_analysis.mp_fraction(32) < 0.6
