"""Multi-model scalability suite, cross-validated against Scal-Tool.

Three independent models of the same measured speedup curve:

* :class:`~repro.models.usl.USLModel` — Gunther's Universal Scalability
  Law (contention σ, coherency delay κ);
* :class:`~repro.models.granularity.GranularityModel` — the
  parallel-fraction / granularity tradeoff (serial fraction s, overhead
  slope θ);
* :class:`~repro.models.scaltool_model.ScalToolModel` — the paper's own
  Eq. 1–10 counter decomposition projected onto the speedup axis.

:mod:`~repro.models.compare` maps USL's σ onto Scal-Tool's sync+imbalance
categories and κ onto the caching category and grades their agreement;
:mod:`~repro.models.predict` extrapolates every model past the measured
machine with CI bands.  See ``docs/models.md``.
"""

from .base import MIN_FIT_POINTS, ModelFit, ScalabilityModel, validate_for_fit
from .compare import COMPARE_SCHEMA, agreement_diagnostics, compare_models, fit_all
from .dataset import SCHEMA as DATASET_SCHEMA
from .dataset import SpeedupDataset, SpeedupPoint
from .granularity import GranularityModel, granularity_speedup
from .predict import PAYBACK_GAIN, PREDICT_SCHEMA, payback_edge, predict_report
from .report import ACTIONS, run_action
from .scaltool_model import ScalToolModel, category_shares
from .usl import USLModel, usl_speedup

__all__ = [
    "MIN_FIT_POINTS",
    "ModelFit",
    "ScalabilityModel",
    "validate_for_fit",
    "COMPARE_SCHEMA",
    "DATASET_SCHEMA",
    "PREDICT_SCHEMA",
    "PAYBACK_GAIN",
    "SpeedupDataset",
    "SpeedupPoint",
    "USLModel",
    "usl_speedup",
    "GranularityModel",
    "granularity_speedup",
    "ScalToolModel",
    "category_shares",
    "fit_all",
    "compare_models",
    "agreement_diagnostics",
    "predict_report",
    "payback_edge",
    "ACTIONS",
    "run_action",
]
