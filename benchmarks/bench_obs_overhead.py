"""Observability overhead: disabled-mode instrumentation must be ~free.

The obs layer promises a near-zero cost when no session is active: the
instrumented call sites reduce to one global read plus an attribute read
(``obs.active()`` / ``obs.tracer()``), and the per-reference hot path
carries only plain integer tallies that exist with or without obs.

Two checks, in increasing strictness:

1. Micro cost: the disabled-mode hook operations (``active()``,
   ``tracer()``, a no-op span, a dropped counter bump), multiplied by the
   number of hook executions a campaign actually performs, must amount to
   < 5% of the measured disabled-mode campaign wall time.  This is the
   contract the instrumentation granularity was designed around and is
   stable under machine noise.
2. End-to-end ratio: the median wall time of a small campaign with a
   session enabled vs disabled.  Enabled mode does real work (spans,
   registry writes), so this is reported with a generous sanity bound
   rather than the 5% target.
"""

from __future__ import annotations

import json
import statistics
import time
import timeit
from pathlib import Path

from repro.obs import runtime as obs
from repro.obs.metrics import NOOP_REGISTRY
from repro.obs.spans import NOOP_TRACER
from repro.runner.campaign import CampaignConfig, ScalToolCampaign
from repro.workloads import SyntheticWorkload

REPEATS = 5


def _campaign() -> ScalToolCampaign:
    cfg = CampaignConfig(
        s0=32 * 1024,
        processor_counts=(1, 2),
        sync_kernel_barriers=10,
        spin_kernel_episodes=3,
    )
    return ScalToolCampaign(SyntheticWorkload(), cfg)


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _hook_executions(campaign: ScalToolCampaign) -> int:
    """Upper bound on disabled-mode hook executions for one campaign.

    Per run: the campaign experiment hook, the machine run/build/self-check
    spans, one span per phase, and the emit guard — call it 16 to stay
    comfortably above the real count.
    """
    return 16 * len(campaign.planned_runs())


def measure(repeats: int = REPEATS) -> dict:
    """The overhead measurement, importable (``check_regression`` reruns it).

    Returns the raw numbers; callers decide what to assert or compare.
    """
    campaign = _campaign()
    assert obs.active() is None

    disabled_s = _median_seconds(lambda: campaign.run(), repeats=repeats)

    # Cost of one disabled-mode hook visit: switch read + noop span + a
    # couple of dropped registry writes.
    def hook_ops():
        obs.active()
        with obs.tracer().span("bench", n=2):
            pass
        obs.registry().inc("bench", 1)
        obs.registry().observe("bench", 1.0)

    n_micro = 10_000
    per_hook_s = timeit.timeit(hook_ops, number=n_micro) / n_micro
    hook_cost_s = per_hook_s * _hook_executions(campaign)

    def run_enabled():
        with obs.session():
            campaign.run()

    enabled_s = _median_seconds(run_enabled, repeats=repeats)
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "ratio": enabled_s / disabled_s,
        "per_hook_ns": per_hook_s * 1e9,
        "hook_executions": _hook_executions(campaign),
        "hook_fraction": hook_cost_s / disabled_s,
    }


def format_measurement(m: dict) -> str:
    return "\n".join(
        [
            "obs disabled-mode overhead (synthetic, s0=32KiB, n=1,2)",
            f"{'campaign wall time, obs disabled':.<55s} {m['disabled_s'] * 1e3:>12.2f} ms",
            f"{'campaign wall time, obs enabled':.<55s} {m['enabled_s'] * 1e3:>12.2f} ms",
            f"{'enabled / disabled ratio':.<55s} {m['ratio']:>12.3f}",
            f"{'per-hook disabled cost':.<55s} {m['per_hook_ns']:>12.0f} ns",
            f"{'hook executions per campaign (bound)':.<55s} {m['hook_executions']:>12d}",
            f"{'total hook cost / campaign time':.<55s} {m['hook_fraction']:>12.4%}",
        ]
    )


def test_disabled_overhead_under_5_percent(emit):
    m = measure()
    emit("obs_overhead", format_measurement(m))
    (Path(__file__).parent / "results" / "obs_overhead.json").write_text(
        json.dumps(m, indent=2, sort_keys=True) + "\n"
    )

    # The contract: all disabled-mode hook visits together stay under 5%
    # of the campaign's wall time.
    assert m["hook_fraction"] < 0.05, f"disabled-mode hook cost {m['hook_fraction']:.2%} >= 5%"
    # Sanity: enabling a session must not blow the runtime up.  Generous
    # bound — enabled mode does real span/registry work.
    assert m["ratio"] < 1.5, f"enabled/disabled ratio {m['ratio']:.2f} unexpectedly high"

    # The no-op singletons really dropped everything.
    assert NOOP_TRACER.records == []
    assert NOOP_REGISTRY.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
