"""End-to-end campaigns for the lock-based and false-sharing workloads.

These exercise two paths the paper describes but its three applications do
not stress: lock synchronization counted through event 31 (two fetchops
per acquire), and heavy sharing contamination handled by the Section 6
extension.
"""

import pytest

from repro.core import ScalTool, validate_mp
from repro.core.sharing import analyze_sharing
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.workloads import FalseSharingWorkload, LockedRegions


@pytest.fixture(scope="module")
def locked_campaign(paper_cache_dir):
    wl = LockedRegions(iters=3, locks_per_iter=2, cs_instructions=800)
    cfg = CampaignConfig(s0=wl.default_size(), processor_counts=(1, 2, 4, 8))
    return cached_campaign(wl, cfg, cache_dir=paper_cache_dir)


@pytest.fixture(scope="module")
def falseshare_campaign(paper_cache_dir):
    wl = FalseSharingWorkload(iters=4, shared_frac=0.2)
    cfg = CampaignConfig(s0=wl.default_size(), processor_counts=(1, 2, 4, 8))
    return cached_campaign(wl, cfg, cache_dir=paper_cache_dir)


class TestLockedRegions:
    def test_analysis_runs(self, locked_campaign):
        analysis = ScalTool(locked_campaign).analyze()
        assert analysis.curves.processor_counts == [1, 2, 4, 8]

    def test_sync_cost_grows_with_contention(self, locked_campaign):
        analysis = ScalTool(locked_campaign).analyze()
        c = analysis.curves
        assert c.sync_cost[8] > c.sync_cost[2]

    def test_ground_truth_contention_serializes(self, locked_campaign):
        gt8 = locked_campaign.base_runs()[8].ground_truth
        gt2 = locked_campaign.base_runs()[2].ground_truth
        assert gt8.sync_cycles > gt2.sync_cycles
        assert gt8.lock_acquires == 8 * 3 * 2

    def test_validation_reasonable(self, locked_campaign):
        analysis = ScalTool(locked_campaign).analyze()
        v = validate_mp(analysis, locked_campaign, exact=True)
        _, worst = v.max_divergence()
        assert worst < 0.35


class TestFalseSharing:
    def test_contamination_extreme(self, falseshare_campaign):
        analysis = ScalTool(falseshare_campaign).analyze()
        sh = analyze_sharing(analysis, falseshare_campaign)
        assert sh.contamination(8) > 0.8

    def test_extension_repairs_sync_estimate(self, falseshare_campaign):
        analysis = ScalTool(falseshare_campaign).analyze()
        sh = analyze_sharing(analysis, falseshare_campaign)
        n = 8
        true_sync = falseshare_campaign.base_runs()[n].ground_truth.sync_cycles
        raw_err = abs(analysis.curves.sync_cost[n] - true_sync)
        fixed_err = abs(sh.corrected_curves.sync_cost[n] - true_sync)
        assert fixed_err < raw_err

    def test_coherence_misses_isolated(self, falseshare_campaign):
        analysis = ScalTool(falseshare_campaign).analyze()
        # the fractional-data-set surrogate sees the ping-pong as coherence
        assert analysis.cache.coherence(8) > analysis.cache.coherence(2) * 0.5
        assert analysis.cache.coherence(8) > 0.01
