"""Figure 6: estimation of the scalability bottlenecks in T3dheat.

Paper: at 1 processor the limited L2 is "responsible for nearly doubling
the execution time"; the effect "gradually decreases ... and becomes zero
at 8 processors"; past that, multiprocessor overheads grow until they are
"responsible for about 75% of the cycles for 30 processors", and "most of
the multiprocessor overhead comes from synchronization".
"""

from repro.core.report import curves_chart

from .conftest import breakdown_table


def test_fig6(benchmark, emit, t3dheat_analysis):
    rows = benchmark(t3dheat_analysis.curves.rows)
    emit(
        "fig6_t3dheat_breakdown",
        curves_chart(t3dheat_analysis) + "\n\n" + breakdown_table(t3dheat_analysis),
    )

    c = t3dheat_analysis.curves
    # L2Lim large at n=1 (paper: ~2x; ours: a significant fraction), fading
    assert c.l2lim_cost[1] / c.base_minus_l2lim[1] > 0.25
    assert c.l2lim_cost[8] / c.base[8] < 0.10
    assert c.l2lim_cost[16] / c.base[16] < 0.02
    # MP dominates at 32 (paper: ~75% at 30)
    assert t3dheat_analysis.mp_fraction(32) > 0.5
    # synchronization is the bulk of MP
    assert c.sync_cost[32] > 2 * c.imb_cost[32]
    assert t3dheat_analysis.dominant_bottleneck(32) == "synchronization"
