"""Figures 1-2: the model's curve anatomy and CPI breakdown.

Figure 1 sketches the three curves (Base / -L2Lim / -MP) the model
produces for any application; Figure 2 defines each curve's CPI algebra.
This bench regenerates both from a synthetic workload with every
bottleneck knob turned on, and asserts the structural relations of the
figures: curve ordering, the L2Lim gap shrinking with n, the MP gap
growing with n, and curve c's (1 - frac_syn - frac_imb) * cpi_infinf
construction.
"""

import pytest

from repro.core import ScalTool
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.viz.ascii_chart import ascii_chart
from repro.viz.tables import format_table
from repro.workloads import SyntheticWorkload


@pytest.fixture(scope="module")
def synthetic_analysis():
    wl = SyntheticWorkload(
        iters=4, barriers_per_iter=4, imbalance_amp=0.25, serial_frac=0.03, refs_per_block=6
    )
    cfg = CampaignConfig(s0=wl.default_size(), processor_counts=(1, 2, 4, 8, 16, 32))
    campaign = cached_campaign(wl, cfg)
    return ScalTool(campaign).analyze(), campaign


def curve_series(analysis):
    c = analysis.curves
    return {
        "Base": [(n, c.base[n]) for n in c.processor_counts],
        "-L2Lim": [(n, c.base_minus_l2lim[n]) for n in c.processor_counts],
        "-L2Lim-MP": [(n, c.base_minus_l2lim_mp[n]) for n in c.processor_counts],
    }


def test_fig1_curve_anatomy(benchmark, emit, synthetic_analysis):
    analysis, _ = synthetic_analysis
    series = benchmark(curve_series, analysis)
    chart = ascii_chart(series, title="Figure 1: execution under real and estimated conditions",
                        y_label="cycles")
    emit("fig1_model_curves", chart)

    c = analysis.curves
    counts = c.processor_counts
    # Figure 1's shape: L2Lim matters at low n and fades; MP starts at zero
    # and grows with n.
    l2lim_frac = {n: c.l2lim_cost[n] / c.base[n] for n in counts}
    mp_frac = {n: c.mp_cost(n) / c.base[n] for n in counts}
    assert l2lim_frac[1] > l2lim_frac[32]
    assert mp_frac[1] < 0.05
    assert mp_frac[32] > mp_frac[2]
    for n in counts:
        assert c.base[n] >= c.base_minus_l2lim[n] >= c.base_minus_l2lim_mp[n]


def test_fig2_cpi_breakdown(benchmark, emit, synthetic_analysis):
    analysis, campaign = synthetic_analysis

    def breakdown():
        rows = []
        for n in analysis.curves.processor_counts:
            inst = analysis.curves.instructions[n]
            fs = analysis.sync.frac_syn(n)
            fi = analysis.sync.frac_imb(n)
            rows.append(
                {
                    "n": n,
                    "cpi(s0,n)*inst": analysis.curves.base[n],
                    "cpi_inf*inst": analysis.curves.base_minus_l2lim[n],
                    "cpi_infinf*(1-fs-fi)*inst": analysis.curves.base_minus_l2lim_mp[n],
                    "frac_syn": fs,
                    "frac_imb": fi,
                }
            )
        return rows

    rows = benchmark(breakdown)
    emit("fig2_cpi_breakdown", format_table(rows, title="Figure 2: CPI-breakdown areas"))

    # Figure 2's identity: curve b minus curve c equals the shaded MP area
    # (cpi_syn frac_syn + cpi_imb frac_imb) * inst, up to clamping.
    c = analysis.curves
    for n in c.processor_counts[1:]:
        shaded = c.sync_cost[n] + c.imb_cost[n]
        gap = c.base_minus_l2lim[n] - c.base_minus_l2lim_mp[n]
        assert gap == pytest.approx(shaded, rel=0.15, abs=0.02 * c.base[n])
