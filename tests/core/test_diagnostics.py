"""Degenerate estimator inputs must grade, not crash.

Each scenario the issue calls out — collinear triplets, duplicate design
rows, no L2-overflowing size at all, negative measured CPI — produces a
``warn``/``suspect`` :class:`FitDiagnostics` (never an unhandled
exception), and the grade survives a round trip through JSON plus a
``revalidate`` (the `scaltool doctor` path).
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.estimators import (
    estimate_parameters,
    fit_t2_tm,
)
from repro.core.scaltool import _range_sanity
from repro.errors import EstimationError, InsufficientDataError
from repro.machine.counters import CounterSet
from repro.obs.diagnostics import (
    GRADE_OK,
    GRADE_SUSPECT,
    GRADE_WARN,
    AnalysisDiagnostics,
    FitDiagnostics,
    bootstrap_ci,
    linear_fit_diagnostics,
    plateau_diagnostics,
    revalidate,
    sanity_diagnostics,
    solve_diagnostics,
    worst_grade,
)
from repro.runner.records import RunRecord

L2_BYTES = 4096
L1_BYTES = 256

TRUE = dict(cpi0=1.2, t2=10.0, tm=70.0)


def fabricate(size, n=1, l1_miss_rate=0.1, l2_hit_of_miss=0.3, m=0.4, inst=100_000,
              tm=None, cpi0=None):
    """A record whose counters satisfy Eq. 1 exactly for the TRUE params."""
    tm = TRUE["tm"] if tm is None else tm
    cpi0 = TRUE["cpi0"] if cpi0 is None else cpi0
    refs = inst * m
    l1_misses = refs * l1_miss_rate
    l2_misses = l1_misses * (1 - l2_hit_of_miss)
    h2 = (l1_misses - l2_misses) / inst
    hm = l2_misses / inst
    cycles = inst * (cpi0 + h2 * TRUE["t2"] + hm * tm)
    counters = CounterSet(
        cycles=cycles,
        graduated_instructions=inst,
        graduated_loads=refs * 0.7,
        graduated_stores=refs * 0.3,
        l1_data_misses=l1_misses,
        l2_misses=l2_misses,
    )
    return RunRecord(
        workload="synthetic-math",
        params={},
        size_bytes=size,
        n_processors=n,
        role="app_frac" if n == 1 else "app_base",
        machine={"l1_bytes": L1_BYTES, "l2_bytes": L2_BYTES},
        counters=counters,
    )


def healthy_suite():
    return {
        32 * L2_BYTES: fabricate(32 * L2_BYTES, l2_hit_of_miss=0.05),
        8 * L2_BYTES: fabricate(8 * L2_BYTES, l2_hit_of_miss=0.15),
        2 * L2_BYTES: fabricate(2 * L2_BYTES, l2_hit_of_miss=0.45),
        L1_BYTES: fabricate(L1_BYTES, l1_miss_rate=0.01, l2_hit_of_miss=0.5),
    }


class TestGrades:
    def test_worst_grade_ordering(self):
        assert worst_grade([]) == GRADE_OK
        assert worst_grade([GRADE_OK, GRADE_WARN]) == GRADE_WARN
        assert worst_grade([GRADE_WARN, GRADE_SUSPECT, GRADE_OK]) == GRADE_SUSPECT

    def test_flag_escalates_but_never_downgrades(self):
        fd = FitDiagnostics(name="x", kind="sanity")
        fd.flag(GRADE_SUSPECT, "bad")
        fd.flag(GRADE_WARN, "meh")
        assert fd.grade == GRADE_SUSPECT
        assert len(fd.flags) == 2


class TestHealthyFit:
    def test_clean_fit_grades_ok_with_ci(self):
        est = estimate_parameters(healthy_suite(), {1: fabricate(32 * L2_BYTES)},
                                  L1_BYTES, L2_BYTES)
        fit = next(c for c in est.diagnostics if c.name == "t2_tm_fit")
        assert fit.grade == GRADE_OK
        assert fit.r_squared is not None and fit.r_squared > 0.99
        # bootstrap CIs bracket the recovered latencies
        for param in ("t2", "tm"):
            lo, hi = fit.ci[param]
            assert lo <= fit.estimates[param] <= hi

    def test_bootstrap_is_deterministic(self):
        design = np.array([[0.02, 0.03], [0.015, 0.08], [0.005, 0.12], [0.03, 0.01]])
        y = design @ np.array([10.0, 70.0]) + np.array([0.01, -0.02, 0.005, 0.0])
        a = bootstrap_ci(design, y, ("t2", "tm"))
        b = bootstrap_ci(design, y, ("t2", "tm"))
        assert a == b and set(a) == {"t2", "tm"}

    def test_bootstrap_needs_three_rows(self):
        design = np.array([[0.02, 0.03], [0.015, 0.08]])
        assert bootstrap_ci(design, design @ [10.0, 70.0], ("t2", "tm")) == {}


class TestDegenerateFits:
    def test_collinear_sizes_grade_suspect(self):
        # identical hit rates at every size: rank-deficient design, t2/tm
        # not separately identifiable — suspect, not a crash
        runs = {
            s: fabricate(s, l2_hit_of_miss=0.10)
            for s in (8 * L2_BYTES, 16 * L2_BYTES, 32 * L2_BYTES)
        }
        t2, tm, diag = fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)
        fit = diag["fit_check"]
        assert fit.grade == GRADE_SUSPECT
        assert fit.details["rank_deficient"]
        assert any("identifiable" in f for f in fit.flags)
        assert t2 >= 0 and tm >= 0

    def test_duplicate_sizes_grade_at_least_warn(self):
        # two distinct sizes with duplicated design rows: exactly
        # determined (no residual evidence) and rank deficient
        runs = {
            8 * L2_BYTES: fabricate(8 * L2_BYTES, l2_hit_of_miss=0.10),
            16 * L2_BYTES: fabricate(16 * L2_BYTES, l2_hit_of_miss=0.10),
        }
        _, _, diag = fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)
        fit = diag["fit_check"]
        assert fit.grade in (GRADE_WARN, GRADE_SUSPECT)
        assert fit.n_points == 2
        assert any("2 fit points" in f for f in fit.flags)

    def test_all_l2_resident_sizes_fall_back_suspect(self):
        # nothing overflows the L2: estimate_parameters refits over every
        # size instead of failing, and the diagnostics brand it suspect
        runs = {
            L2_BYTES // 2: fabricate(L2_BYTES // 2, l2_hit_of_miss=0.90),
            L2_BYTES // 4: fabricate(L2_BYTES // 4, l2_hit_of_miss=0.95),
            L1_BYTES: fabricate(L1_BYTES, l1_miss_rate=0.01, l2_hit_of_miss=0.98),
        }
        est = estimate_parameters(runs, {1: fabricate(L2_BYTES // 2)},
                                  L1_BYTES, L2_BYTES)
        fit = next(c for c in est.diagnostics if c.name == "t2_tm_fit")
        assert fit.grade == GRADE_SUSPECT
        assert fit.details["overflow_filter_dropped"]
        assert any("overflow" in w for w in est.warnings)

    def test_negative_measured_cpi_is_a_sanity_suspect(self):
        # corrupt counters (negative cycles) flow through the pipeline and
        # come out as a graded range-sanity violation, not an exception
        base = {1: fabricate(32 * L2_BYTES), 4: fabricate(32 * L2_BYTES, n=4, cpi0=-3.0)}
        est = estimate_parameters(healthy_suite(), base, L1_BYTES, L2_BYTES)
        sync = SimpleNamespace(frac_syn_by_n={}, frac_imb_by_n={})
        sanity = _range_sanity(base, est, sync)
        assert sanity.grade == GRADE_SUSPECT
        assert any("not positive" in f for f in sanity.flags)

    def test_too_few_sizes_raise_typed_error_naming_inputs(self):
        runs = {32 * L2_BYTES: fabricate(32 * L2_BYTES)}
        with pytest.raises(InsufficientDataError) as exc_info:
            fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)
        err = exc_info.value
        assert isinstance(err, EstimationError)
        assert err.inputs["triplet_sizes"] == [32 * L2_BYTES]
        assert err.inputs["available_sizes"] == [32 * L2_BYTES]
        assert "triplet_sizes" in str(err)  # inputs render into the message


class TestPlateau:
    def test_flat_curve_ok(self):
        curve = [(256, 0.89), (512, 0.889), (1024, 0.885), (2048, 0.7)]
        fd = plateau_diagnostics(curve, 0.11)
        assert fd.grade == GRADE_OK
        assert fd.details["plateau_points"] >= 2

    def test_still_rising_curve_flags(self):
        # hit rate climbing steeply at the smallest size: plateau missed
        curve = [(256, 0.95), (512, 0.80), (1024, 0.60)]
        fd = plateau_diagnostics(curve, 0.05)
        assert fd.grade == GRADE_SUSPECT
        assert any("plateau not reached" in f for f in fd.flags)

    def test_out_of_range_compulsory_suspect(self):
        fd = plateau_diagnostics([(256, 0.9), (512, 0.9)], compulsory=-0.2)
        assert fd.grade == GRADE_SUSPECT

    def test_single_size_warns(self):
        fd = plateau_diagnostics([(256, 0.9)], 0.1)
        assert fd.grade == GRADE_WARN


class TestSolve:
    def test_monotone_tm_ok(self):
        per_n = {1: {"tm": 70.0, "residual_rel": 0.0},
                 4: {"tm": 90.0, "residual_rel": 0.001}}
        assert solve_diagnostics(per_n, []).grade == GRADE_OK

    def test_decreasing_tm_flags(self):
        per_n = {1: {"tm": 70.0, "residual_rel": 0.0},
                 4: {"tm": 40.0, "residual_rel": 0.0}}
        fd = solve_diagnostics(per_n, [])
        assert fd.grade == GRADE_SUSPECT
        assert fd.details["monotone_violations"] == [4]

    def test_fallbacks_warn(self):
        per_n = {1: {"tm": 70.0, "residual_rel": 0.0},
                 8: {"tm": 70.0, "residual_rel": 0.3}}
        fd = solve_diagnostics(per_n, [8])
        assert fd.grade == GRADE_SUSPECT  # rms 0.3/sqrt(2) > 0.10 too
        assert any("fallback" in f for f in fd.flags)


class TestRoundTripAndRevalidate:
    def _suspect_fit(self):
        runs = {
            s: fabricate(s, l2_hit_of_miss=0.10)
            for s in (8 * L2_BYTES, 16 * L2_BYTES, 32 * L2_BYTES)
        }
        return fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)[2]["fit_check"]

    def test_dict_round_trip_preserves_grade(self):
        fit = self._suspect_fit()
        clone = FitDiagnostics.from_dict(fit.to_dict())
        assert clone.grade == fit.grade and clone.flags == fit.flags

    def test_revalidate_recomputes_same_grade_from_evidence(self):
        stored = self._suspect_fit().to_dict()
        fresh = revalidate(stored)
        assert fresh.grade == stored["grade"] == GRADE_SUSPECT

    def test_revalidate_catches_edited_grade(self):
        # doctor's whole point: a hand-edited grade is re-derived from the
        # numeric evidence, not trusted
        stored = self._suspect_fit().to_dict()
        stored["grade"] = GRADE_OK
        stored["flags"] = []
        assert revalidate(stored).grade == GRADE_SUSPECT

    def test_analysis_roll_up_and_publish(self):
        diag = AnalysisDiagnostics()
        diag.add(sanity_diagnostics([], checks=5))
        diag.add(linear_fit_diagnostics(
            "t2_tm_fit",
            np.array([[0.02, 0.03], [0.015, 0.08], [0.005, 0.12]]),
            np.array([2.3, 5.75, 8.45]),
            {"t2": 10.0, "tm": 70.0},
        ))
        assert diag.health in (GRADE_OK, GRADE_WARN, GRADE_SUSPECT)
        gauges = {}
        registry = SimpleNamespace(set_gauge=lambda name, value: gauges.__setitem__(name, value))
        diag.publish(registry)
        assert "diagnostics.health" in gauges
        assert gauges["diagnostics.checks.ok"] >= 1.0
        round_tripped = AnalysisDiagnostics.from_dict(diag.to_dict())
        assert round_tripped.health == diag.health
