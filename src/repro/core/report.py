"""Analysis report formatting: the tool's terminal output.

Combines the parameter estimates, the cache-space decomposition, the
sync/imbalance fractions, and the bottleneck curves into one readable
report, with an ASCII rendition of the Figure 6/9/12-style chart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..units import format_count, format_size
from ..viz.ascii_chart import ascii_chart
from ..viz.tables import format_table

if TYPE_CHECKING:  # pragma: no cover
    from .scaltool import ScalToolAnalysis

__all__ = ["format_analysis", "curves_chart", "speedup_chart", "cost_bars", "export_markdown"]


def curves_chart(analysis: "ScalToolAnalysis", width: int = 64, height: int = 14) -> str:
    """ASCII version of the paper's bottleneck-breakdown figures."""
    c = analysis.curves
    series = {
        "Base": [(n, c.base[n]) for n in c.processor_counts],
        "-L2Lim": [(n, c.base_minus_l2lim[n]) for n in c.processor_counts],
        "-L2Lim-Sync": [(n, c.base_minus_l2lim_sync[n]) for n in c.processor_counts],
        "-L2Lim-Imb": [(n, c.base_minus_l2lim_imb[n]) for n in c.processor_counts],
        "-L2Lim-MP": [(n, c.base_minus_l2lim_mp[n]) for n in c.processor_counts],
    }
    return ascii_chart(
        series,
        width=width,
        height=height,
        title=f"{analysis.workload}: accumulated cycles vs processors",
        y_label="cycles",
    )


def speedup_chart(analysis: "ScalToolAnalysis", width: int = 48, height: int = 12) -> str:
    """ASCII version of the speedup figures (5/8/11)."""
    pts = analysis.curves.speedups()
    ideal = [(n, float(n)) for n, _ in pts]
    return ascii_chart(
        {"speedup": pts, "ideal": ideal},
        width=width,
        height=height,
        title=f"{analysis.workload}: speedup",
        y_label="x",
    )


def cost_bars(analysis: "ScalToolAnalysis", width: int = 56) -> str:
    """Figure-2-style stacked view: per n, useful / L2Lim / Sync / Imb."""
    from ..viz.bars import stacked_bars

    c = analysis.curves
    rows = {}
    for n in c.processor_counts:
        rows[f"n={n}"] = {
            "useful": c.base_minus_l2lim_mp[n],
            "L2Lim": c.l2lim_cost[n],
            "Sync": c.sync_cost[n],
            "Imb": c.imb_cost[n],
        }
    return stacked_bars(rows, width=width, title=f"{analysis.workload}: cycle composition")


def format_analysis(analysis: "ScalToolAnalysis") -> str:
    """The full text report."""
    parts = [
        f"=== Scal-Tool analysis: {analysis.workload} "
        f"(s0 = {format_size(analysis.s0)}) ===",
        "",
        "-- model parameters (Sections 2.2-2.3) --",
        analysis.params.summary(),
        "",
    ]
    if analysis.diagnostics is not None:
        from ..viz.diagnostics_view import render_diagnostics

        parts += [
            "-- estimation diagnostics --",
            render_diagnostics(analysis.diagnostics.to_dict(), title="health"),
            "",
        ]
    parts += [
        "-- caching space (Section 2.4.1) --",
        analysis.cache.summary(),
        "",
        "-- synchronization & load imbalance (Section 2.4.2) --",
        analysis.sync.summary(),
        "",
        "-- bottleneck curves (accumulated cycles) --",
        format_table(
            analysis.curves.rows(),
            columns=[
                "n",
                "base",
                "base-L2Lim",
                "base-L2Lim-Sync",
                "base-L2Lim-Imb",
                "base-L2Lim-MP",
            ],
        ),
        "",
        curves_chart(analysis),
        "",
        cost_bars(analysis),
        "",
        "-- speedup --",
        format_table(
            [{"n": n, "speedup": s} for n, s in analysis.curves.speedups()],
            columns=["n", "speedup"],
        ),
    ]
    peak_n = analysis.curves.processor_counts[-1]
    parts += [
        "",
        f"dominant bottleneck at n={peak_n}: {analysis.dominant_bottleneck(peak_n)} "
        f"(MP = {format_count(analysis.curves.mp_cost(peak_n))} cycles, "
        f"{analysis.mp_fraction(peak_n):.0%} of base)",
    ]
    if analysis.warnings:
        parts += ["", "-- warnings --"] + [f"  {w}" for w in analysis.warnings]
    return "\n".join(parts)


def _md_table(rows: list[dict], columns: list[str]) -> str:
    def cell(v) -> str:
        if isinstance(v, float):
            return f"{v:,.0f}" if abs(v) >= 100 else f"{v:.4g}"
        return str(v)

    lines = ["| " + " | ".join(columns) + " |", "|" + "---|" * len(columns)]
    for row in rows:
        lines.append("| " + " | ".join(cell(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def export_markdown(analysis: "ScalToolAnalysis") -> str:
    """The analysis as a self-contained markdown document.

    Suitable for dropping into a repository or issue: parameter table,
    bottleneck-curve table, speedup table, per-count cost shares, and the
    estimation warnings.
    """
    p = analysis.params
    c = analysis.curves
    doc = [
        f"# Scal-Tool analysis: {analysis.workload}",
        "",
        f"Base data-set size s0 = {format_size(analysis.s0)}; processor counts "
        f"{c.processor_counts}.",
        "",
        "## Model parameters (Sections 2.2–2.3)",
        "",
        _md_table(
            [
                {"parameter": "cpi0 (biased)", "value": p.cpi0_biased},
                {"parameter": "cpi0 (unbiased, Eq. 2)", "value": p.cpi0},
                {"parameter": "t2", "value": p.t2},
                {"parameter": "tm(1)", "value": p.tm1},
                {"parameter": "fit triplets", "value": p.n_triplets},
                {"parameter": "compulsory miss rate", "value": analysis.cache.compulsory},
            ],
            ["parameter", "value"],
        ),
        "",
        "## Bottleneck curves (accumulated cycles)",
        "",
        _md_table(
            c.rows(),
            ["n", "base", "base-L2Lim", "base-L2Lim-Sync", "base-L2Lim-Imb", "base-L2Lim-MP"],
        ),
        "",
        "## Isolated costs and speedup",
        "",
        _md_table(
            [
                {
                    "n": n,
                    "L2Lim %": f"{c.l2lim_cost[n] / c.base[n]:.1%}",
                    "Sync %": f"{c.sync_cost[n] / c.base[n]:.1%}",
                    "Imb %": f"{c.imb_cost[n] / c.base[n]:.1%}",
                    "speedup": f"{dict(c.speedups())[n]:.2f}",
                }
                for n in c.processor_counts
            ],
            ["n", "L2Lim %", "Sync %", "Imb %", "speedup"],
        ),
        "",
        f"**Dominant bottleneck at n={c.processor_counts[-1]}:** "
        f"{analysis.dominant_bottleneck(c.processor_counts[-1])}",
    ]
    if analysis.diagnostics is not None:
        d = analysis.diagnostics
        doc += ["", "## Estimation diagnostics", "", f"Health: **{d.health}**", ""]
        doc.append(
            _md_table(
                [
                    {
                        "check": ch.name,
                        "equation": ch.equation,
                        "grade": ch.grade,
                        "R²": f"{ch.r_squared:.4f}" if ch.r_squared is not None else "-",
                        "rms": f"{ch.residual_rms:.4g}" if ch.residual_rms is not None else "-",
                    }
                    for ch in d.checks
                ],
                ["check", "equation", "grade", "R²", "rms"],
            )
        )
        flags = d.all_flags()
        if flags:
            doc += [""] + [f"- {f}" for f in flags]
    if analysis.warnings:
        doc += ["", "## Estimation warnings", ""]
        doc += [f"- {w}" for w in analysis.warnings]
    doc.append("")
    return "\n".join(doc)
