"""Run records: the serialisable measurement unit of a campaign.

A :class:`RunRecord` is "one output file" in the paper's resource
accounting: the hardware counter values of one program run at one
(data-set size, processor count) point, plus enough metadata to identify
it.  The simulator's ground truth rides along in a clearly separated field
that only the validation tools read.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CounterFormatError
from ..machine.counters import CounterSet, GroundTruth
from ..machine.system import RunResult

__all__ = ["RunRecord", "save_records", "load_records"]

# Record roles, set by the campaign: which part of the Table 3 plan (or the
# Section 2.4.2 kernel suite) a run belongs to.
ROLE_APP_BASE = "app_base"  # base size s0 at some processor count
ROLE_APP_FRAC = "app_frac"  # fractional size on a uniprocessor
ROLE_SYNC_KERNEL = "sync_kernel"
ROLE_SPIN_KERNEL = "spin_kernel"
ROLE_LATENCY_KERNEL = "latency_kernel"


@dataclass
class RunRecord:
    """One run's measurements."""

    workload: str
    params: dict
    size_bytes: int
    n_processors: int
    role: str
    machine: dict
    counters: CounterSet
    per_cpu: list[CounterSet] = field(default_factory=list)
    wall_cycles: float = 0.0
    phase_counters: list[tuple[str, CounterSet]] = field(default_factory=list)
    ground_truth: GroundTruth | None = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_result(
        cls,
        result: RunResult,
        role: str = ROLE_APP_BASE,
        keep_ground_truth: bool = True,
        keep_phases: bool = True,
    ) -> "RunRecord":
        cfg = result.config
        machine = {
            "l1_bytes": cfg.l1.size,
            "l2_bytes": cfg.l2.size,
            "line_size": cfg.line_size,
            "l1_associativity": cfg.l1.associativity,
            "l2_associativity": cfg.l2.associativity,
            "topology": cfg.interconnect.topology,
            "page_size": cfg.memory.page_size,
            "placement": cfg.memory.placement,
        }
        return cls(
            workload=result.workload_name,
            params=dict(result.metadata.get("workload_params", {})),
            size_bytes=result.size_bytes,
            n_processors=result.n_processors,
            role=role,
            machine=machine,
            counters=result.counters,
            per_cpu=list(result.per_cpu_counters),
            wall_cycles=result.wall_cycles,
            phase_counters=list(result.phase_counters) if keep_phases else [],
            ground_truth=result.ground_truth if keep_ground_truth else None,
        )

    def without_ground_truth(self) -> "RunRecord":
        """The record as Scal-Tool is allowed to see it."""
        return RunRecord(
            workload=self.workload,
            params=self.params,
            size_bytes=self.size_bytes,
            n_processors=self.n_processors,
            role=self.role,
            machine=self.machine,
            counters=self.counters,
            per_cpu=self.per_cpu,
            wall_cycles=self.wall_cycles,
            phase_counters=self.phase_counters,
            ground_truth=None,
        )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "workload": self.workload,
            "params": self.params,
            "size_bytes": self.size_bytes,
            "n_processors": self.n_processors,
            "role": self.role,
            "machine": self.machine,
            "counters": self.counters.to_dict(),
            "per_cpu": [c.to_dict() for c in self.per_cpu],
            "wall_cycles": self.wall_cycles,
            "phase_counters": [[name, c.to_dict()] for name, c in self.phase_counters],
        }
        if self.ground_truth is not None:
            out["ground_truth"] = self.ground_truth.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        try:
            return cls(
                workload=data["workload"],
                params=dict(data.get("params", {})),
                size_bytes=int(data["size_bytes"]),
                n_processors=int(data["n_processors"]),
                role=data.get("role", ROLE_APP_BASE),
                machine=dict(data.get("machine", {})),
                counters=CounterSet.from_dict(data["counters"]),
                per_cpu=[CounterSet.from_dict(c) for c in data.get("per_cpu", [])],
                wall_cycles=float(data.get("wall_cycles", 0.0)),
                phase_counters=[
                    (name, CounterSet.from_dict(c)) for name, c in data.get("phase_counters", [])
                ],
                ground_truth=(
                    GroundTruth.from_dict(data["ground_truth"]) if "ground_truth" in data else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CounterFormatError(f"bad run record: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise CounterFormatError(f"bad run record JSON: {exc}") from exc

    def key(self) -> tuple:
        """Identity of the measurement point."""
        return (self.workload, self.role, self.size_bytes, self.n_processors)


def save_records(records: list[RunRecord], path: str | Path) -> None:
    """Write records as JSON lines (one file per campaign manifest).

    The write is atomic (write-then-rename): concurrent exporters of the
    same manifest — e.g. two service jobs that resolved to the same
    campaign — never leave a torn file behind.  The temp name includes
    the thread id because those concurrent exporters share a pid.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
    with tmp.open("w") as fh:
        for rec in records:
            fh.write(rec.to_json())
            fh.write("\n")
    os.replace(tmp, path)


def load_records(path: str | Path) -> list[RunRecord]:
    """Read a JSONL manifest written by :func:`save_records`."""
    out = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(RunRecord.from_json(line))
    return out
