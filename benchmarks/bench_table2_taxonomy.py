"""Table 2: bottlenecks that affect scalability and their effects.

Regenerates the taxonomy and cross-checks that every quantified bottleneck
maps to an implemented analysis module.
"""

import importlib

from repro.core.bottlenecks import BOTTLENECK_TAXONOMY
from repro.viz.tables import format_table


def regenerate():
    return [
        {
            "Bottleneck": row["bottleneck"],
            "Category": row["category"],
            "Effects": row["effects"],
            "Quantified by": row["quantified_by"],
        }
        for row in BOTTLENECK_TAXONOMY
    ]


def test_table2(benchmark, emit):
    rows = benchmark(regenerate)
    emit("table2_taxonomy", format_table(rows, title="Table 2: bottlenecks and effects"))

    assert len(rows) == 5
    names = [r["Bottleneck"] for r in rows]
    assert names[0] == "Insufficient Caching Space"
    assert {"Synchronization", "Load Imbalance", "True Sharing", "False Sharing"} <= set(names)
    # every referenced module exists
    for row in rows:
        module = "repro." + row["Quantified by"].split(" ")[0]
        importlib.import_module(module)
