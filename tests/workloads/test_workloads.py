"""Application workload models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.machine.system import DsmMachine
from repro.workloads import Hydro2d, Swim, SyntheticWorkload, T3dheat
from repro.workloads.registry import available_workloads, make_workload

from ..conftest import tiny_machine_config


def run_small(wl, n=2, size=8 * 1024):
    machine = DsmMachine(tiny_machine_config(n_processors=n))
    return machine.run(wl, size)


SMALL_PARAMS = {
    T3dheat: dict(iters=1, inner_steps=2, spmv_splits=1, dot_splits=1),
    Hydro2d: dict(iters=1),
    Swim: dict(iters=1),
    SyntheticWorkload: dict(iters=1),
}


class TestAllApplications:
    @pytest.mark.parametrize("cls", [T3dheat, Hydro2d, Swim, SyntheticWorkload])
    def test_runs_and_reconciles(self, cls):
        res = run_small(cls(**SMALL_PARAMS[cls]))
        assert res.counters.cycles > 0
        assert res.ground_truth.total_cycles == pytest.approx(res.counters.cycles, rel=1e-9)

    @pytest.mark.parametrize("cls", [T3dheat, Hydro2d, Swim, SyntheticWorkload])
    def test_deterministic(self, cls):
        r1 = run_small(cls(**SMALL_PARAMS[cls]))
        r2 = run_small(cls(**SMALL_PARAMS[cls]))
        assert r1.counters == r2.counters

    @pytest.mark.parametrize("cls", [T3dheat, Hydro2d, Swim])
    def test_paper_footprint_set(self, cls):
        assert cls.paper_footprint_bytes > 1024 * 1024
        assert cls(**SMALL_PARAMS[cls]).default_size(scale=64) == cls.paper_footprint_bytes // 64

    @pytest.mark.parametrize("cls", [T3dheat, Hydro2d, Swim, SyntheticWorkload])
    def test_size_scales_footprint(self, cls):
        small = run_small(cls(**SMALL_PARAMS[cls]), size=4 * 1024)
        big = run_small(cls(**SMALL_PARAMS[cls]), size=16 * 1024)
        assert big.counters.mem_refs > small.counters.mem_refs

    def test_too_small_size_rejected(self):
        with pytest.raises(WorkloadError):
            run_small(T3dheat(iters=1), n=2, size=16)


class TestT3dheat:
    def test_barrier_count_matches_structure(self):
        wl = T3dheat(iters=2, inner_steps=3, spmv_splits=2, dot_splits=2)
        res = run_small(wl)
        expected_phases = 1 + 2 * (2 + 3 * 2)  # init + iters*(spmv_splits + steps*dot_splits)
        assert res.ground_truth.barriers / res.n_processors == expected_phases

    def test_balanced_load(self):
        res = run_small(T3dheat(iters=1, inner_steps=2), n=4, size=32 * 1024)
        per_cpu = [g.compute_instructions for g in res.per_cpu_ground_truth]
        assert max(per_cpu) / min(per_cpu) < 1.2

    def test_param_validation(self):
        with pytest.raises(WorkloadError):
            T3dheat(matrix_frac=0.95)
        with pytest.raises(WorkloadError):
            T3dheat(inner_steps=0)
        with pytest.raises(WorkloadError):
            T3dheat(gather_spread=2.0)
        with pytest.raises(WorkloadError):
            T3dheat(dot_splits=0)

    def test_describe_params_complete(self):
        p = T3dheat().describe_params()
        assert {"iters", "inner_steps", "matrix_frac", "gather_spread"} <= set(p)


class TestHydro2d:
    def test_serial_sections_create_spin(self):
        wl = Hydro2d(iters=2, serial_frac=0.2, imbalance_amp=0.0, shift_frac=0.0)
        res = run_small(wl, n=4, size=16 * 1024)
        assert res.ground_truth.spin_cycles > 0
        # cpu0 does the serial work, so it spins least
        spins = [g.spin_cycles for g in res.per_cpu_ground_truth]
        assert spins[0] < max(spins[1:])

    def test_no_serial_when_zero(self):
        wl = Hydro2d(iters=1, serial_frac=0.0, imbalance_amp=0.0, shift_frac=0.0)
        res = run_small(wl, n=2, size=16 * 1024)
        assert res.ground_truth.spin_cycles < res.counters.cycles * 0.02

    def test_shift_creates_coherence_misses(self):
        base = run_small(Hydro2d(iters=2, shift_frac=0.0, serial_frac=0.0), n=4, size=16 * 1024)
        shifted = run_small(Hydro2d(iters=2, shift_frac=0.5, serial_frac=0.0), n=4, size=16 * 1024)
        assert shifted.ground_truth.coherence_misses > base.ground_truth.coherence_misses

    def test_param_validation(self):
        with pytest.raises(WorkloadError):
            Hydro2d(serial_frac=0.6)
        with pytest.raises(WorkloadError):
            Hydro2d(shift_frac=1.5)
        with pytest.raises(WorkloadError):
            Hydro2d(sweeps_per_iter=0)


class TestSwim:
    def test_halo_sharing_pollutes_event31(self):
        clean = run_small(Swim(iters=3, halo_blocks=0, imbalance_amp=0.0), n=4, size=16 * 1024)
        shared = run_small(Swim(iters=3, halo_blocks=2, imbalance_amp=0.0), n=4, size=16 * 1024)
        assert (
            shared.counters.store_exclusive_to_shared
            > clean.counters.store_exclusive_to_shared
        )
        assert shared.ground_truth.upgrades_data > 0

    def test_jitter_creates_imbalance(self):
        balanced = run_small(Swim(iters=3, imbalance_amp=0.0, halo_blocks=0), n=4, size=16 * 1024)
        jittered = run_small(Swim(iters=3, imbalance_amp=0.4, halo_blocks=0), n=4, size=16 * 1024)
        assert jittered.ground_truth.spin_cycles > balanced.ground_truth.spin_cycles

    def test_no_sharing_on_uniprocessor(self):
        res = run_small(Swim(iters=2), n=1, size=16 * 1024)
        assert res.ground_truth.upgrades_data == 0

    def test_param_validation(self):
        with pytest.raises(WorkloadError):
            Swim(halo_blocks=-1)
        with pytest.raises(WorkloadError):
            Swim(imbalance_amp=1.0)


class TestSynthetic:
    def test_serial_knob(self):
        res = run_small(SyntheticWorkload(iters=2, serial_frac=0.3), n=4, size=16 * 1024)
        assert res.ground_truth.spin_cycles > 0

    def test_sharing_knob(self):
        clean = run_small(SyntheticWorkload(iters=2, sharing_frac=0.0), n=4, size=16 * 1024)
        shared = run_small(SyntheticWorkload(iters=2, sharing_frac=0.2), n=4, size=16 * 1024)
        assert shared.ground_truth.coherence_misses > clean.ground_truth.coherence_misses

    def test_barrier_knob(self):
        few = run_small(SyntheticWorkload(iters=2, barriers_per_iter=1), n=4)
        many = run_small(SyntheticWorkload(iters=2, barriers_per_iter=6), n=4)
        assert many.ground_truth.barriers > few.ground_truth.barriers

    def test_param_validation(self):
        for bad in (
            dict(barriers_per_iter=0),
            dict(imbalance_amp=1.0),
            dict(sharing_frac=0.9),
            dict(serial_frac=0.7),
        ):
            with pytest.raises(WorkloadError):
                SyntheticWorkload(**bad)


class TestRegistry:
    def test_lists_all(self):
        names = available_workloads()
        assert {"t3dheat", "hydro2d", "swim", "synthetic"} <= set(names)

    def test_make_with_params(self):
        wl = make_workload("swim", iters=2)
        assert isinstance(wl, Swim) and wl.iters == 2

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            make_workload("linpack")
