"""The multi-process front: dispatcher + N worker processes.

``scaltool serve --workers N`` (N >= 2) starts this instead of a single
:class:`~repro.service.http.ServiceServer`::

    client ──► Dispatcher (ThreadingHTTPServer, this process)
                  │  consistent-hash(job fingerprint) -> home shard
                  ▼
               worker 0..N-1 (subprocess, python -m repro.service.worker)
                  │  shared cache root: run cache + SQLite index,
                  ▼  SQLite claim table, job store (shard-filtered)

Routing: every job-scoped request (submit, status, result, trace,
lineage, blame) is forwarded — raw bytes, untouched — to the job's home
shard, chosen by consistent-hashing the content-addressed fingerprint.
Identical requests therefore land on the same worker and dedup there;
no cross-process dedup race exists by construction.  Spec-level overlap
*between different jobs* on different shards is handled by the shared
SQLite claim table underneath.

Whole-system views fan out and merge: ``/healthz`` and ``/v1/stats``
aggregate worker answers, ``/metrics`` merges the Prometheus
expositions (:func:`repro.obs.telemetry.merge_prometheus`),
``GET /v1/jobs`` merges listings, and ``GET /v1/profile`` folds every
worker's sampling profile into one
(:meth:`repro.obs.sampler.SampleProfile.merge`).  Responses proxied from a worker
carry ``X-Scaltool-Worker: <shard>`` for observability.

Supervision: a background thread restarts any worker that dies (the
replacement re-registers on the same shard and *recovers* the dead
worker's persisted jobs — interrupted ones are re-queued, so a SIGKILL
mid-job converges to the same byte-identical result).  Forwarding
retries across a restart window instead of failing the client.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..errors import ReproError, ServiceError
from ..obs import telemetry as _telemetry
from ..obs.logs import get_logger, kv
from ..runner.engine import default_cache_root
from . import requests as _requests
from .core import ServiceConfig
from .sharding import HashRing

__all__ = ["Dispatcher", "WorkerHandle", "serve_dispatcher"]

_log = get_logger("service.dispatcher")

#: How long a forward waits out a worker restart before giving up.
RESTART_GRACE = 30.0

#: Supervisor poll cadence (seconds).
SUPERVISE_INTERVAL = 0.2


class WorkerHandle:
    """One spawned worker process and how to reach it."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None
        self.pid: int | None = None
        self.restarts = -1  # first spawn brings it to 0
        self.port_file: Path | None = None
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    @property
    def url(self) -> str | None:
        return f"http://127.0.0.1:{self.port}" if self.port else None

    def connection(self, timeout: float) -> http.client.HTTPConnection:
        """A keep-alive connection to this worker, one per calling thread.

        Invalidated (closed + rebuilt) whenever the worker's port moved
        — i.e. after a restart.
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "port", None) == self.port:
            conn.timeout = timeout
            return conn
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already dead
                pass
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        self._local.conn = conn
        self._local.port = self.port
        return conn

    def drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            self._local.conn = None

    def view(self) -> dict:
        return {
            "shard": self.shard,
            "pid": self.pid,
            "url": self.url,
            "alive": self.alive,
            "restarts": max(0, self.restarts),
        }


class _DispatchHTTPServer(ThreadingHTTPServer):
    # Stdlib default backlog (5) resets connections under a burst of
    # reconnecting clients; the dispatcher fronts the whole fleet.
    request_queue_size = 128


class Dispatcher:
    """Spawns, supervises, and routes to the worker fleet."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        worker_count: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_timeout: float = 30.0,
    ) -> None:
        if worker_count < 1:
            raise ServiceError("worker_count must be >= 1")
        base = config or ServiceConfig()
        self.config = base
        self.worker_count = worker_count
        self.root = (
            Path(base.cache_dir) if base.cache_dir is not None else default_cache_root()
        )
        self.ring = HashRing(worker_count)
        self.spawn_timeout = spawn_timeout
        self.workers = [WorkerHandle(i) for i in range(worker_count)]
        self.started_at = time.time()
        self._port_dir = Path(tempfile.mkdtemp(prefix="scaltool-workers-"))
        self._stopping = False
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._supervisor: threading.Thread | None = None
        self._httpd = _DispatchHTTPServer((host, port), _DispatchHandler)
        self._httpd.daemon_threads = True
        self._httpd.dispatcher = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "Dispatcher":
        for handle in self.workers:
            self._spawn(handle)
        self._supervisor = threading.Thread(
            target=self._supervise, name="scaltool-supervisor", daemon=True
        )
        self._supervisor.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="scaltool-dispatch-http",
            daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        self._thread.start()
        _log.debug(
            "dispatcher up %s",
            kv(url=self.url, workers=self.worker_count, root=self.root),
        )
        return self

    def serve_forever(self) -> None:
        for handle in self.workers:
            self._spawn(handle)
        self._supervisor = threading.Thread(
            target=self._supervise, name="scaltool-supervisor", daemon=True
        )
        self._supervisor.start()
        _log.debug(
            "dispatcher up %s",
            kv(url=self.url, workers=self.worker_count, root=self.root),
        )
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self.shutdown()

    def shutdown(self, drain_timeout: float | None = 30.0) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._supervisor is not None:
            self._supervisor.join(timeout=5)
            self._supervisor = None
        deadline = time.monotonic() + (drain_timeout if drain_timeout else 10.0)
        for handle in self.workers:
            if handle.proc is not None and handle.proc.poll() is None:
                handle.proc.terminate()  # SIGTERM -> worker drains + exits
        for handle in self.workers:
            if handle.proc is None:
                continue
            remaining = max(0.5, deadline - time.monotonic())
            try:
                handle.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                handle.proc.kill()
                handle.proc.wait(timeout=5)
        _log.debug("dispatcher stopped")

    # -- supervision ------------------------------------------------------------

    def _spawn(self, handle: WorkerHandle) -> None:
        port_file = self._port_dir / f"worker-{handle.shard}.json"
        try:
            port_file.unlink()
        except FileNotFoundError:
            pass
        cfg = self.config
        cmd = [
            sys.executable,
            "-m",
            "repro.service.worker",
            "--cache-dir", str(self.root),
            "--shard-index", str(handle.shard),
            "--shard-count", str(self.worker_count),
            "--port-file", str(port_file),
            "--jobs", str(cfg.jobs),
            "--concurrency", str(cfg.workers),
            "--max-queue", str(cfg.max_queue),
            "--job-timeout", str(cfg.job_timeout),
            "--batch-window", str(cfg.batch_window),
            "--claim-ttl", str(cfg.claim_ttl),
        ]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        handle.proc = subprocess.Popen(cmd, env=env)
        handle.port_file = port_file
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            if handle.proc.poll() is not None:
                raise ServiceError(
                    f"worker {handle.shard} exited during startup"
                    f" (code {handle.proc.returncode})"
                )
            try:
                info = json.loads(port_file.read_text())
                handle.port = int(info["port"])
                handle.pid = int(info["pid"])
                break
            except (OSError, ValueError, KeyError):
                time.sleep(0.02)
        else:  # pragma: no cover - startup hang
            handle.proc.kill()
            raise ServiceError(f"worker {handle.shard} did not report a port in time")
        handle.restarts += 1
        if handle.restarts:
            self._tally("workers.restarted")
        _log.debug(
            "worker spawned %s",
            kv(shard=handle.shard, pid=handle.pid, port=handle.port, restarts=handle.restarts),
        )

    def _supervise(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
            for handle in self.workers:
                if handle.proc is not None and handle.proc.poll() is not None:
                    with self._lock:
                        if self._stopping:
                            return
                    _log.warning(
                        "worker died; restarting %s",
                        kv(shard=handle.shard, code=handle.proc.returncode),
                    )
                    self._tally("workers.died")
                    try:
                        self._spawn(handle)
                    except ServiceError as exc:  # pragma: no cover - respawn loop
                        _log.warning(
                            "worker respawn failed %s", kv(shard=handle.shard, reason=exc)
                        )
                        time.sleep(1.0)
            time.sleep(SUPERVISE_INTERVAL)

    def _tally(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    # -- routing ----------------------------------------------------------------

    def shard_of(self, job_id: str) -> WorkerHandle:
        return self.workers[self.ring.owner(job_id)]

    def forward(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
        timeout: float = 120.0,
    ) -> tuple[int, dict, bytes]:
        """Proxy one request to a worker; returns (status, headers, body).

        Bytes in, bytes out — the dispatcher never re-serialises a
        worker response, which is what keeps service output byte-
        identical through the extra hop.  A connection failure (worker
        just died / is restarting) retries against the shard until the
        supervisor has it back or :data:`RESTART_GRACE` expires.
        """
        deadline = time.monotonic() + RESTART_GRACE
        last: Exception | None = None
        while time.monotonic() < deadline:
            if not handle.alive or handle.port is None:
                time.sleep(0.05)
                continue
            conn = handle.connection(timeout)
            try:
                conn.request(method, path, body=body, headers=headers or {})
                resp = conn.getresponse()
                payload = resp.read()
                resp_headers = {k: v for k, v in resp.getheaders()}
                return resp.status, resp_headers, payload
            except (http.client.HTTPException, OSError) as exc:
                last = exc
                handle.drop_connection()
                self._tally("forward.retries")
                time.sleep(0.05)
        raise ServiceError(
            f"worker {handle.shard} unreachable past restart grace: {last}"
        )

    def fan_out(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout: float = 120.0,
    ) -> list[tuple[WorkerHandle, int, bytes]]:
        """The same request to every worker; skips ones that stay down."""
        out = []
        for handle in self.workers:
            try:
                status, _, payload = self.forward(
                    handle, method, path, body=body, timeout=timeout
                )
                out.append((handle, status, payload))
            except ServiceError:
                continue
        return out

    # -- merged whole-system views ----------------------------------------------

    def health(self) -> tuple[int, dict]:
        answers = self.fan_out("GET", "/healthz", timeout=10.0)
        views = []
        for handle, _status, payload in answers:
            try:
                views.append(json.loads(payload))
            except json.JSONDecodeError:  # pragma: no cover - torn worker reply
                continue
        jobs = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for view in views:
            for state, count in view.get("jobs", {}).items():
                jobs[state] = jobs.get(state, 0) + count
        statuses = [v.get("status") for v in views]
        missing = self.worker_count - len(views)
        if missing or "degraded" in statuses:
            status = "degraded"
        elif statuses and all(s == "draining" for s in statuses):
            status = "draining"
        else:
            status = "ok"
        body = {
            "status": status,
            "draining": any(v.get("draining") for v in views),
            "jobs": jobs,
            "queue_depth": sum(v.get("queue_depth", 0) for v in views),
            "inflight": sum(v.get("inflight", 0) for v in views),
            "uptime_seconds": round(max(0.0, time.time() - self.started_at), 3),
            "store": views[0].get("store") if views else {"writable": False},
            "topology": {
                "mode": "dispatcher",
                "workers": [h.view() for h in self.workers],
                "missing": missing,
            },
        }
        return (503 if status == "degraded" else 200), body

    def metrics(self) -> str:
        answers = self.fan_out("GET", "/metrics", timeout=10.0)
        texts = [payload.decode() for _, status, payload in answers if status == 200]
        merged = _telemetry.merge_prometheus(texts)
        with self._lock:
            counters = dict(self._counters)
        extra = [
            "# TYPE scaltool_dispatcher_workers gauge",
            f"scaltool_dispatcher_workers {self.worker_count}",
            "# TYPE scaltool_dispatcher_workers_alive gauge",
            f"scaltool_dispatcher_workers_alive {sum(1 for h in self.workers if h.alive)}",
        ]
        for name in sorted(counters):
            metric = _telemetry.prometheus_name(f"dispatcher.{name}") + "_total"
            extra.append(f"# TYPE {metric} counter")
            extra.append(f"{metric} {counters[name]}")
        return merged + "\n".join(extra) + "\n"

    def stats(self) -> dict:
        answers = self.fan_out("GET", "/v1/stats", timeout=10.0)
        views = [json.loads(payload) for _, status, payload in answers if status == 200]
        counters: dict[str, float] = {}
        jobs = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for view in views:
            for name, value in view.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for state, count in view.get("jobs", {}).items():
                jobs[state] = jobs.get(state, 0) + count
        executed = counters.get("batch.specs", 0)
        planned = counters.get("plan.specs", 0)
        with self._lock:
            own = dict(self._counters)
        return {
            "draining": any(v.get("draining") for v in views),
            "jobs": jobs,
            "counters": {k: counters[k] for k in sorted(counters)},
            "dedup_hit_ratio": round(1.0 - executed / planned, 4) if planned else 0.0,
            "dispatcher": {
                "workers": self.worker_count,
                "alive": sum(1 for h in self.workers if h.alive),
                "counters": own,
            },
        }

    def profile_view(self, raw_query: str) -> dict:
        """Merged ``GET /v1/profile``: every worker samples itself, the
        dispatcher folds the profiles into one.

        The merge is the same deterministic fold the engine uses for
        worker spools (:meth:`repro.obs.sampler.SampleProfile.merge`),
        so the merged ``profile`` object is byte-stable in structure —
        same keys, same sort orders — regardless of worker count or
        reply arrival order.
        """
        from ..obs.sampler import SampleProfile
        from .http import _profile_params

        seconds, interval_s = _profile_params(raw_query)
        downstream = "/v1/profile"
        if raw_query:
            downstream += f"?{raw_query}"
        # The budget covers the workers' own sampling windows (clamped
        # worker-side to <= 30 s) plus transport slack.
        answers = self.fan_out("GET", downstream, timeout=min(seconds, 30.0) + 30.0)
        merged = SampleProfile(interval_s=max(0.001, min(interval_s, 1.0)))
        workers = []
        for handle, status, payload in answers:
            if status != 200:
                continue
            try:
                view = json.loads(payload)
            except json.JSONDecodeError:  # pragma: no cover - torn worker reply
                continue
            worker_profile = SampleProfile.from_dict(view.get("profile", {}))
            merged.merge(worker_profile)
            workers.append(
                {
                    "shard": view.get("shard"),
                    "pid": view.get("pid"),
                    "n_samples": worker_profile.n_samples,
                    "overhead_ratio": worker_profile.overhead_ratio(),
                }
            )
        workers.sort(key=lambda w: (w["shard"] is None, w["shard"]))
        self._tally("profile.requests")
        return {
            "seconds": seconds,
            "interval_s": interval_s,
            "workers": workers,
            "missing": self.worker_count - len(workers),
            "profile": merged.to_dict(),
        }

    def jobs_view(self, raw_query: str) -> dict:
        """Merged ``GET /v1/jobs``: filters pushed down, paging done here."""
        from urllib.parse import parse_qsl, urlencode

        params = dict(parse_qsl(raw_query, keep_blank_values=True))
        limit = params.pop("limit", None)
        offset = params.pop("offset", None)
        try:
            limit = int(limit) if limit is not None else None
            offset = int(offset) if offset is not None else 0
        except ValueError as exc:
            raise ReproError(f"bad limit/offset: {exc}") from None
        if (limit is not None and limit < 0) or offset < 0:
            raise ReproError("limit/offset must be non-negative")
        downstream = "/v1/jobs" + (f"?{urlencode(params)}" if params else "")
        merged: dict[str, dict] = {}
        for _handle, status, payload in self.fan_out("GET", downstream, timeout=30.0):
            if status != 200:
                body = {}
                try:
                    body = json.loads(payload)
                except json.JSONDecodeError:
                    pass
                raise ReproError(body.get("error", f"worker answered {status}"))
            for summary in json.loads(payload).get("jobs", []):
                merged.setdefault(summary["id"], summary)
        ordered = sorted(merged.values(), key=lambda j: j["created"])
        total = len(ordered)
        page = ordered[offset:] if limit is None else ordered[offset : offset + limit]
        return {"jobs": page, "total": total, "limit": limit, "offset": offset}

    def drain(self, timeout: float | None) -> bool:
        body = json.dumps({} if timeout is None else {"timeout": timeout}).encode()
        drained = True
        for _handle, status, payload in self.fan_out(
            "POST",
            "/v1/drain",
            body=body,
            timeout=(timeout or 30.0) + 10.0,
        ):
            try:
                drained = drained and status == 200 and json.loads(payload)["drained"]
            except (json.JSONDecodeError, KeyError):
                drained = False
        return drained

    def workers_view(self) -> dict:
        return {
            "mode": "dispatcher",
            "count": self.worker_count,
            "ring_vnodes": self.ring.vnodes,
            "workers": [h.view() for h in self.workers],
        }


class _DispatchHandler(BaseHTTPRequestHandler):
    server_version = "scaltool-dispatcher"
    protocol_version = "HTTP/1.1"

    #: Request headers worth carrying to the worker.
    _FORWARD_HEADERS = ("content-type", "traceparent", "tracestate")

    @property
    def dispatcher(self) -> Dispatcher:
        return self.server.dispatcher  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        _log.debug("http %s", kv(client=self.client_address[0], line=fmt % args))

    def _send_json(self, status: int, body: dict, headers: dict | None = None) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _relay(self, handle: WorkerHandle, status: int, headers: dict, payload: bytes) -> None:
        """Pass a worker response through byte-for-byte."""
        self.send_response(status)
        self.send_header(
            "Content-Type", headers.get("Content-Type", "application/json")
        )
        self.send_header("Content-Length", str(len(payload)))
        if "Retry-After" in headers:
            self.send_header("Retry-After", headers["Retry-After"])
        self.send_header("X-Scaltool-Worker", str(handle.shard))
        self.end_headers()
        self.wfile.write(payload)

    def _proxy(self, handle: WorkerHandle, timeout: float = 120.0) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        headers = {
            name: value
            for name, value in self.headers.items()
            if name.lower() in self._FORWARD_HEADERS
        }
        if body is not None:
            headers["Content-Length"] = str(len(body))
        try:
            status, resp_headers, payload = self.dispatcher.forward(
                handle, self.command, self.path, body=body, headers=headers, timeout=timeout
            )
        except ServiceError as exc:
            self._send_json(503, {"error": str(exc)})
            return
        self._relay(handle, status, resp_headers, payload)

    def _route_job(self, job_id: str) -> WorkerHandle:
        return self.dispatcher.shard_of(job_id)

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        try:
            path, _, raw_query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            if parts == ["healthz"]:
                status, body = self.dispatcher.health()
                self._send_json(status, body)
            elif parts == ["metrics"]:
                text = self.dispatcher.metrics().encode()
                self.send_response(200)
                self.send_header("Content-Type", _telemetry.CONTENT_TYPE)
                self.send_header("Content-Length", str(len(text)))
                self.end_headers()
                self.wfile.write(text)
            elif parts == ["v1", "stats"]:
                self._send_json(200, self.dispatcher.stats())
            elif parts == ["v1", "workers"]:
                self._send_json(200, self.dispatcher.workers_view())
            elif parts == ["v1", "jobs"]:
                self._send_json(200, self.dispatcher.jobs_view(raw_query))
            elif parts == ["v1", "profile"]:
                self._send_json(200, self.dispatcher.profile_view(raw_query))
            elif len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
                # Job-scoped: status/result/trace/lineage/blame — long
                # polls included — go to the job's home shard untouched.
                self._proxy(self._route_job(parts[2]))
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        try:
            path = self.path.partition("?")[0]
            parts = [p for p in path.split("/") if p]
            if parts == ["v1", "jobs"]:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else b""
                try:
                    parsed = json.loads(body or b"{}")
                except json.JSONDecodeError as exc:
                    raise ReproError(f"request body is not valid JSON: {exc}") from None
                if not isinstance(parsed, dict) or not isinstance(
                    parsed.get("kind"), str
                ):
                    raise ReproError("request needs a string 'kind'")
                # The fingerprint *is* the route: identical submits home
                # to the same worker and dedup there.
                request = _requests.compile_request(
                    parsed["kind"], parsed.get("payload") or {}
                )
                handle = self._route_job(request.fingerprint())
                headers = {
                    name: value
                    for name, value in self.headers.items()
                    if name.lower() in self._FORWARD_HEADERS
                }
                headers["Content-Length"] = str(len(body))
                try:
                    status, resp_headers, payload = self.dispatcher.forward(
                        handle, "POST", self.path, body=body, headers=headers
                    )
                except ServiceError as exc:
                    self._send_json(503, {"error": str(exc)})
                    return
                self._relay(handle, status, resp_headers, payload)
            elif parts == ["v1", "drain"]:
                length = int(self.headers.get("Content-Length") or 0)
                body = json.loads(self.rfile.read(length) or b"{}") if length else {}
                timeout = body.get("timeout")
                drained = self.dispatcher.drain(
                    float(timeout) if timeout is not None else None
                )
                self._send_json(200, {"drained": drained})
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})


def serve_dispatcher(
    config: ServiceConfig | None = None,
    worker_count: int = 2,
    host: str = "127.0.0.1",
    port: int = 8032,
) -> Dispatcher:
    """Build (but do not start) a dispatcher — ``scaltool serve --workers N``."""
    return Dispatcher(config, worker_count=worker_count, host=host, port=port)
