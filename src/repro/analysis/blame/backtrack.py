"""Walk flagged vertices back along graph edges to root-cause candidates.

The detector says *where* cycles are being lost; this module says *why*
and *who else to look at*:

* for each **material** stall category (carrying more than
  ``MATERIAL_FRACTION`` of the top count's base cycles among credible
  vertices) it names the dominant vertex plus every vertex holding at
  least a quarter of the category, ranked by stall level;
* each finding is assigned a root-cause reading from the campaign-level
  evidence — the Eq. 9/10 sync/imbalance split for synchronization
  stalls, the shape of the L2-limited cost curve for memory stalls;
* candidates are collected by walking edges *into* the blamed vertex:
  ``sync`` predecessors are the work a barrier inside the segment waits
  out, ``program_order`` predecessors are the producers of the data the
  segment misses on.

Every finding carries the vertex's evidence grade and the lineage refs
of the base runs that fed it, so nothing here is an unexplainable
number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .detect import CATEGORY_LABELS, MATERIAL_FRACTION, Detection
from .graph import ScalingGraph

__all__ = ["BlameFinding", "backtrack"]

#: A vertex must hold this share of a material category to be named
#: alongside the dominant vertex.
CO_BLAME_SHARE = 0.25


@dataclass
class BlameFinding:
    """One ranked (category, vertex) attribution with provenance."""

    rank: int
    category: str
    category_label: str
    vertex: str
    grade: str
    share: float  # of the credible category total at n_hi
    level_cycles: float  # stall cycles at n_hi
    growth_cycles: float  # change over the loss window
    dominant: bool
    root_cause: str
    candidates: list[str] = field(default_factory=list)
    narrative: str = ""
    lineage_refs: list[str] = field(default_factory=list)
    efficiencies: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "category": self.category,
            "category_label": self.category_label,
            "vertex": self.vertex,
            "grade": self.grade,
            "share": self.share,
            "level_cycles": self.level_cycles,
            "growth_cycles": self.growth_cycles,
            "dominant": self.dominant,
            "root_cause": self.root_cause,
            "candidates": list(self.candidates),
            "narrative": self.narrative,
            "lineage_refs": list(self.lineage_refs),
            "efficiencies": dict(self.efficiencies),
        }


def _sync_root_cause(graph: ScalingGraph, n_hi: int) -> str:
    """Read the Eq. 9/10 split: true sync vs imbalance aliased into sync."""
    syn = graph.frac_syn.get(n_hi, 0.0)
    imb = graph.frac_imb.get(n_hi, 0.0)
    if syn <= 0.0 and imb <= 0.0:
        return "synchronization stalls (Eq. 9/10 split unavailable)"
    if imb > syn:
        return (
            f"load imbalance surfacing at barriers (Eq. 10 frac_imb={imb:.2f} "
            f"> frac_syn={syn:.2f} at n={n_hi})"
        )
    return (
        f"true synchronization in-segment (Eq. 9 frac_syn={syn:.2f} "
        f">= frac_imb={imb:.2f} at n={n_hi})"
    )


def _memory_root_cause(graph: ScalingGraph, n_hi: int) -> str:
    """Read the L2-limited cost curve: caching space vs MP sharing costs."""
    base = graph.curves["base"]
    l2lim = graph.curves["l2lim"]
    peak_n = max(l2lim, key=lambda n: l2lim[n])
    peak_share = l2lim[peak_n] / base[peak_n] if base.get(peak_n) else 0.0
    if peak_share > MATERIAL_FRACTION and peak_n <= graph.processor_counts[len(graph.processor_counts) // 2]:
        return (
            "conflict misses from insufficient caching space (Eq. 4: L2-limited "
            f"cost peaks at n={peak_n} with {peak_share:.0%} of base cycles)"
        )
    top_share = l2lim.get(n_hi, 0.0) / base[n_hi] if base.get(n_hi) else 0.0
    if top_share > MATERIAL_FRACTION:
        return (
            "capacity/conflict misses persisting at scale (Eq. 4 L2-limited "
            f"cost still {top_share:.0%} of base at n={n_hi})"
        )
    return (
        "multiprocessor sharing costs — dispersion of data, invalidations and "
        "cold misses (Eqs. 5-8) — rather than caching space"
    )


def _root_cause(graph: ScalingGraph, category: str, n_hi: int) -> str:
    if category == "sync":
        return _sync_root_cause(graph, n_hi)
    if category in ("memory", "l2"):
        return _memory_root_cause(graph, n_hi)
    return "unmodeled residual cycles; likely load imbalance inside the segment"


def _candidates(graph: ScalingGraph, vertex: str, category: str) -> list[str]:
    kind = "sync" if category in ("sync", "imbalance") else "program_order"
    return [v.name for v in graph.predecessors(vertex, kind=kind)]


def backtrack(graph: ScalingGraph, detection: Detection) -> list[BlameFinding]:
    """Ranked findings for every material category, most cycles first."""
    n_lo, n_hi = detection.window
    base_hi = graph.curves["base"].get(n_hi, 0.0)
    raw: list[BlameFinding] = []
    for category, total in detection.category_totals.items():
        if base_hi <= 0 or total <= MATERIAL_FRACTION * base_hi:
            continue
        shares = detection.category_shares[category]
        ranked = sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))
        for i, (vertex, share) in enumerate(ranked):
            dominant = i == 0
            if not dominant and share < CO_BLAME_SHARE:
                continue
            vl = detection.per_vertex[vertex]
            cause = _root_cause(graph, category, n_hi)
            cands = _candidates(graph, vertex, category)
            v = graph.vertices[vertex]
            narrative = (
                f"segment '{vertex}' holds {share:.0%} of credible "
                f"{CATEGORY_LABELS[category]} cycles at n={n_hi} "
                f"({vl.category_level[category]:,.0f} cycles, "
                f"{vl.category_growth[category]:+,.0f} over n={n_lo}->{n_hi}); "
                f"root cause: {cause}"
            )
            if cands:
                narrative += f"; upstream candidates: {', '.join(cands)}"
            narrative += f" [evidence grade: {vl.grade}]"
            raw.append(
                BlameFinding(
                    rank=0,  # assigned after the global sort
                    category=category,
                    category_label=CATEGORY_LABELS[category],
                    vertex=vertex,
                    grade=vl.grade,
                    share=float(share),
                    level_cycles=float(vl.category_level[category]),
                    growth_cycles=float(vl.category_growth[category]),
                    dominant=dominant,
                    root_cause=cause,
                    candidates=cands,
                    narrative=narrative,
                    lineage_refs=list(v.lineage_refs),
                    efficiencies=dict(vl.efficiencies),
                )
            )
    raw.sort(key=lambda f: (-f.level_cycles, f.category, f.vertex))
    for i, finding in enumerate(raw, start=1):
        finding.rank = i
    return raw
