"""Figure 10: validation of the model for Hydro2d.

Paper: "for 32 processors, the predicted and the measured Base-MP curves
differ by only 9% of the accumulated cycles of all processors."
"""

from repro.core.validation import validate_mp


def test_fig10(benchmark, emit, hydro2d_analysis, hydro2d_campaign):
    comparison = benchmark(validate_mp, hydro2d_analysis, hydro2d_campaign, exact=True)
    emit("fig10_hydro2d_validation", comparison.summary())

    # paper band at 32 processors: 9%; we allow modest slack
    assert comparison.divergence(32) < 0.15
    _, worst = comparison.max_divergence()
    assert worst < 0.25
