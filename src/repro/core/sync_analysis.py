"""Synchronization and load-imbalance isolation (Section 2.4.2, Eqs. 9–10).

The unknowns of Equation 9 and how each is obtained:

* ``cpi_sync(n)`` — measured CPI of the synchronization micro-kernel
  ("a loop where processors come in and out of barriers"); a function of
  n because of fetchop serialization at the sync variable's home;
* ``cpi_imb`` — measured CPI of the spin micro-kernel's idle processors
  (cached-flag spinning, close to 1);
* ``tsyn(n)`` — the fetchop access latency, extracted from the sync
  kernel the way tm is extracted from application runs: the kernel's
  cycles beyond its instructions-at-base-CPI, divided by its fetchop
  count;
* ``frac_syn`` — from the event-31 counter ``ntsyn`` via Eq. 10:
  ``cost_syn = ntsyn (cpi0 + tsyn)`` and
  ``frac_syn = cost_syn / (cpi_sync · inst)``;
* ``frac_imb`` — the only remaining unknown of Eq. 9.

The paper notes frac_syn's weakness explicitly: event 31 also counts
stores to shared *data* lines, so applications with true sharing (Swim)
overestimate synchronization — reproduced here and quantified by the
sharing ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..runner.records import RunRecord
from ..units import clamp, safe_div

__all__ = ["SyncAnalysis", "analyze_sync", "cpi_sync_by_n", "cpi_imb_estimate", "tsyn_by_n"]


def cpi_sync_by_n(sync_kernel_runs: dict[int, RunRecord]) -> dict[int, float]:
    """Measured CPI of the barrier kernel at every processor count."""
    if not sync_kernel_runs:
        raise InsufficientDataError("no synchronization-kernel runs")
    return {n: sync_kernel_runs[n].counters.cpi for n in sorted(sync_kernel_runs)}


def cpi_imb_estimate(spin_kernel_runs: dict[int, RunRecord]) -> float:
    """CPI of idle spinning, from the spin kernel's non-working processors.

    Processor 0 does the kernel's work; every other processor's counters
    are almost entirely spin loop.  The estimate pools all idle processors
    across the multi-processor kernel runs.
    """
    cycles = 0.0
    instructions = 0.0
    for n, rec in spin_kernel_runs.items():
        if n < 2 or len(rec.per_cpu) < n:
            continue
        for cpu in range(1, n):
            cycles += rec.per_cpu[cpu].cycles
            instructions += rec.per_cpu[cpu].graduated_instructions
    if instructions <= 0:
        raise InsufficientDataError(
            "spin kernel needs at least one multi-processor run with per-cpu counters"
        )
    return cycles / instructions


def tsyn_by_n(
    sync_kernel_runs: dict[int, RunRecord],
    base_cpi: float,
) -> dict[int, float]:
    """Fetchop latency per synchronization operation at each n.

    From the sync kernel:  cycles ≈ inst · base_cpi + ntsyn · tsyn(n),
    where ``base_cpi`` prices the kernel's non-fetchop instructions (the
    idle-loop CPI is the natural choice — barrier bookkeeping and polls
    are simple integer code).
    """
    out: dict[int, float] = {}
    for n in sorted(sync_kernel_runs):
        c = sync_kernel_runs[n].counters
        ntsyn = c.store_exclusive_to_shared
        if ntsyn <= 0:
            raise InsufficientDataError(f"sync kernel at n={n} recorded no fetchops")
        tsyn = (c.cycles - c.graduated_instructions * base_cpi) / ntsyn
        out[n] = max(0.0, tsyn)
    return out


@dataclass
class SyncAnalysis:
    """Per-processor-count sync/imbalance fractions and CPIs."""

    cpi_sync_by_n: dict[int, float] = field(default_factory=dict)
    cpi_imb: float = 1.0
    tsyn_by_n: dict[int, float] = field(default_factory=dict)
    frac_syn_by_n: dict[int, float] = field(default_factory=dict)
    frac_imb_by_n: dict[int, float] = field(default_factory=dict)
    cost_syn_by_n: dict[int, float] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    def cpi_sync(self, n: int) -> float:
        return self._at(self.cpi_sync_by_n, n, "cpi_sync")

    def tsyn(self, n: int) -> float:
        return self._at(self.tsyn_by_n, n, "tsyn")

    def frac_syn(self, n: int) -> float:
        return self._at(self.frac_syn_by_n, n, "frac_syn")

    def frac_imb(self, n: int) -> float:
        return self._at(self.frac_imb_by_n, n, "frac_imb")

    @staticmethod
    def _at(table: dict[int, float], n: int, what: str) -> float:
        try:
            return table[n]
        except KeyError:
            raise InsufficientDataError(f"{what} not available for n={n}") from None

    def summary(self) -> str:
        lines = [f"cpi_imb: {self.cpi_imb:.3f}"]
        for n in sorted(self.cpi_sync_by_n):
            lines.append(
                f"n={n:3d}: cpi_sync={self.cpi_sync_by_n[n]:8.2f} "
                f"tsyn={self.tsyn_by_n.get(n, float('nan')):8.1f} "
                f"frac_syn={self.frac_syn_by_n.get(n, float('nan')):.5f} "
                f"frac_imb={self.frac_imb_by_n.get(n, float('nan')):.5f}"
            )
        for w in self.warnings:
            lines.append(f"warning: {w}")
        return "\n".join(lines)


def analyze_sync(
    base_runs: dict[int, RunRecord],
    sync_kernel_runs: dict[int, RunRecord],
    spin_kernel_runs: dict[int, RunRecord],
    cpi0: float,
    cpi_inf_by_n: dict[int, float],
    cpi_infinf_by_n: dict[int, float],
) -> SyncAnalysis:
    """Solve Eqs. 9–10 at every processor count.

    ``cpi_inf_by_n`` / ``cpi_infinf_by_n`` come from the cache-space
    analysis (curves b and c of Figure 2).
    """
    analysis = SyncAnalysis(
        cpi_sync_by_n=cpi_sync_by_n(sync_kernel_runs),
        cpi_imb=cpi_imb_estimate(spin_kernel_runs),
    )
    analysis.tsyn_by_n = tsyn_by_n(sync_kernel_runs, analysis.cpi_imb)

    for n in sorted(base_runs):
        c = base_runs[n].counters
        inst = c.graduated_instructions
        ntsyn = c.store_exclusive_to_shared
        cpi_sync = analysis.cpi_sync_by_n.get(n)
        tsyn = analysis.tsyn_by_n.get(n)
        if cpi_sync is None or tsyn is None:
            analysis.warnings.append(f"no sync kernel at n={n}; frac_syn set to 0")
            cpi_sync, tsyn = analysis.cpi_imb, 0.0

        # Equation 10: the spin-free synchronization cost in cycles.
        cost_syn = ntsyn * (cpi0 + tsyn)
        frac_syn = clamp(safe_div(cost_syn, cpi_sync * inst), 0.0, 1.0)

        # Equation 9, solved for frac_imb.
        cpi_inf = cpi_inf_by_n[n]
        cpi_infinf = cpi_infinf_by_n[n]
        denom = analysis.cpi_imb - cpi_infinf
        if abs(denom) < 1e-9:
            analysis.warnings.append(
                f"n={n}: cpi_imb ~ cpi_infinf; frac_imb unidentifiable, set to 0"
            )
            frac_imb = 0.0
        else:
            frac_imb = (cpi_inf - cpi_infinf * (1.0 - frac_syn) - cpi_sync * frac_syn) / denom
        raw = frac_imb
        frac_imb = clamp(frac_imb, 0.0, 1.0 - frac_syn)
        if n == 1:
            # One processor cannot be imbalanced against itself.
            frac_imb = 0.0
        elif raw < -0.01:
            analysis.warnings.append(
                f"n={n}: Eq. 9 gave frac_imb={raw:.4f} < 0 (clamped); "
                "model residuals exceed the imbalance signal"
            )

        analysis.cost_syn_by_n[n] = cost_syn
        analysis.frac_syn_by_n[n] = frac_syn
        analysis.frac_imb_by_n[n] = frac_imb
    return analysis
