"""Property-based tests: record serialisation and the barrier engine."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.machine.counters import CounterSet, GroundTruth
from repro.machine.interconnect import Interconnect
from repro.machine.memory import NumaMemory
from repro.machine.sync import SyncEngine
from repro.runner.records import RunRecord

from ..conftest import tiny_machine_config

finite = st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False)

counter_sets = st.builds(
    CounterSet,
    cycles=finite,
    graduated_instructions=finite,
    graduated_loads=finite,
    graduated_stores=finite,
    l1_data_misses=finite,
    l2_misses=finite,
    l1_instruction_misses=finite,
    store_exclusive_to_shared=finite,
    tlb_misses=finite,
)

records = st.builds(
    RunRecord,
    workload=st.sampled_from(["a", "b", "long-name_3"]),
    params=st.dictionaries(st.sampled_from(["iters", "seed"]), st.integers(0, 100), max_size=2),
    size_bytes=st.integers(min_value=1, max_value=2**40),
    n_processors=st.integers(min_value=1, max_value=128),
    role=st.sampled_from(["app_base", "app_frac", "sync_kernel"]),
    machine=st.dictionaries(st.sampled_from(["l1_bytes", "l2_bytes"]), st.integers(1, 2**30), max_size=2),
    counters=counter_sets,
)


@settings(max_examples=80, deadline=None)
@given(rec=records)
def test_record_json_roundtrip(rec):
    back = RunRecord.from_json(rec.to_json())
    assert back.counters == rec.counters
    assert back.key() == rec.key()
    assert back.machine == rec.machine


@settings(max_examples=80, deadline=None)
@given(c=counter_sets)
def test_counterset_derived_quantities_bounded(c):
    assert c.h2 >= 0 or c.l2_misses > c.l1_data_misses
    assert c.hm >= 0
    if c.mem_refs > 0 and c.l1_data_misses <= c.mem_refs:
        assert 0.0 <= c.l1_hit_rate <= 1.0


@settings(max_examples=80, deadline=None)
@given(a=counter_sets, b=counter_sets)
def test_counterset_addition_commutes(a, b):
    left = a + b
    right = b + a
    assert left == right
    assert left.cycles == pytest.approx(a.cycles + b.cycles)


def _engine(n):
    cfg = tiny_machine_config(n_processors=n)
    counters = [CounterSet() for _ in range(n)]
    gt = [GroundTruth() for _ in range(n)]
    engine = SyncEngine(
        cfg,
        Interconnect(cfg.interconnect, n),
        NumaMemory(cfg.memory, n, cfg.line_size),
        counters,
        gt,
    )
    return engine, counters, gt


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    arrivals=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=8, max_size=8),
    cpi0=st.floats(min_value=0.5, max_value=3.0),
)
def test_barrier_conservation(n, arrivals, cpi0):
    """Clocks never regress; ledger equals the advance; all converge."""
    engine, counters, gt = _engine(n)
    var = engine.allocate_variable("bar")
    clocks = list(arrivals[:n])
    before = clocks[:]
    engine.barrier(var, clocks, cpi0)
    for cpu in range(n):
        advance = clocks[cpu] - before[cpu]
        assert advance > 0
        assert gt[cpu].sync_cycles + gt[cpu].spin_cycles == pytest.approx(advance)
        assert clocks[cpu] >= max(before)  # nobody leaves before the last arrival
    # release skew bounded by propagation
    assert max(clocks) - min(clocks) <= engine.cfg.timing.t_hop * 16 + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    arrivals=st.lists(st.floats(min_value=0, max_value=1e5, allow_nan=False), min_size=8, max_size=8),
    episodes=st.integers(min_value=1, max_value=5),
)
def test_barrier_event31_is_exactly_arrivals(n, arrivals, episodes):
    engine, counters, gt = _engine(n)
    var = engine.allocate_variable("bar")
    clocks = list(arrivals[:n])
    for _ in range(episodes):
        engine.barrier(var, clocks, 1.0)
    for cpu in range(n):
        assert counters[cpu].store_exclusive_to_shared == episodes
        assert gt[cpu].barriers == episodes


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    cs=st.integers(min_value=0, max_value=2000),
)
def test_lock_mutual_exclusion(n, cs):
    """Hold intervals of a lock never overlap."""
    engine, counters, gt = _engine(n)
    var = engine.allocate_variable("lock")
    clocks = [0.0] * n
    engine.lock_section(var, clocks, 1.0, cs)
    finish = sorted(clocks)
    for a, b in zip(finish, finish[1:]):
        assert b - a >= cs * 1.0 - 1e-6  # at least one critical section apart
