#!/usr/bin/env python3
"""Reproduce the paper's T3dheat study (Section 4.1, Figures 5-7).

T3dheat is the paper's cache-hungry, barrier-bound application: it scales
beautifully to 16 processors *only because* extra processors bring extra
L2 space, and saturates beyond that as synchronization cost explodes.

This script runs the full campaign (cached on disk after the first run),
prints the speedup curve, the bottleneck breakdown, and the speedshop
validation, and then drills into the machine state of one run.

Run:  python examples/analyze_t3dheat.py
"""

from repro.core import ScalTool, validate_mp
from repro.core.report import curves_chart, speedup_chart
from repro.machine.stats import snapshot
from repro.machine.system import DsmMachine
from repro.machine.config import origin2000_scaled
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.tools.ssusage import caching_space_processors, data_set_size
from repro.workloads import T3dheat


def main() -> None:
    workload = T3dheat()
    s0 = workload.default_size()
    config = CampaignConfig(s0=s0, processor_counts=(1, 2, 4, 8, 16, 32))

    print(f"T3dheat campaign: s0 = {s0} bytes, counts {config.processor_counts}")
    print("(first run simulates ~30 program executions; later runs hit the cache)\n")
    campaign = cached_campaign(workload, config)

    analysis = ScalTool(campaign).analyze()

    # Figure 5: the speedup curve.
    print(speedup_chart(analysis))
    print()

    # Figure 6: the bottleneck breakdown.
    print(curves_chart(analysis))
    c = analysis.curves
    print()
    for n in c.processor_counts:
        print(
            f"  n={n:2d}: L2Lim {c.l2lim_cost[n] / c.base[n]:6.1%}  "
            f"Sync {c.sync_cost[n] / c.base[n]:6.1%}  "
            f"Imb {c.imb_cost[n] / c.base[n]:6.1%} of the accumulated cycles"
        )

    # The paper's ssusage cross-check: 40 MB / 4 MB L2 -> caching space
    # suffices at ~10 processors, which is where L2Lim should vanish.
    machine = DsmMachine(origin2000_scaled(n_processors=1))
    machine.run(workload, s0)
    footprint = data_set_size(machine)
    rec = campaign.base_runs()[1]
    print(
        f"\nssusage: data set {footprint} bytes; caching space sufficient at "
        f"~{caching_space_processors(rec, footprint):.0f} processors"
    )

    # Figure 7: validation against speedshop.
    print()
    print(validate_mp(analysis, campaign).summary())

    # A look inside the machine after the uniprocessor run.
    print("\nMachine state after the uniprocessor run:")
    print(snapshot(machine).describe())


if __name__ == "__main__":
    main()
