"""ssusage emulation: the maximum resident data-set size of a run.

The paper uses ``ssusage`` to validate the L2Lim predictions by dividing
the measured data-set size by the aggregate L2 capacity (e.g. T3dheat's
40 MB / 4 MB -> caching space suffices at ~10 processors).  Our equivalent
reports the bytes actually allocated by the workload during a run.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..machine.system import DsmMachine, RunResult

__all__ = ["data_set_size", "caching_space_processors"]


def data_set_size(machine: DsmMachine) -> int:
    """Bytes allocated on ``machine`` by the last run (regions x line size).

    Synchronization variables are excluded, as they are runtime overhead
    rather than application data (and are below page granularity anyway).
    """
    total_blocks = sum(
        r.n_blocks for r in machine.allocator.regions() if not r.name.startswith("__sync_")
    )
    return total_blocks * machine.line_size


def caching_space_processors(result, data_bytes: int | None = None) -> float:
    """Processors needed for the aggregate L2 to hold the data set.

    This is the paper's validation arithmetic: "given that the L2 cache
    sizes are 4 Mbytes ... there will be enough caching space with 10
    processors (40 Mbytes / 4 Mbytes)".  Accepts a live
    :class:`~repro.machine.system.RunResult` or a stored
    :class:`~repro.runner.records.RunRecord`.
    """
    if hasattr(result, "config"):
        l2 = result.config.l2.size
    else:
        l2 = int(result.machine.get("l2_bytes", 0))
    if l2 <= 0:
        raise ValidationError("machine has no L2")
    size = data_bytes if data_bytes is not None else result.size_bytes
    return size / l2
