"""Tier-1 smoke run of the service load benchmark (8 concurrent clients)."""


def test_service_load_benchmark_smoke(tmp_path):
    from benchmarks.bench_service_load import run_benchmark

    result = run_benchmark(
        clients=8,
        requests_per_client=1,
        engine_jobs=1,
        cache_dir=tmp_path / "cache",
        results_dir=tmp_path / "results",
    )
    for cfg in (result["serial"], result["parallel"]):
        assert cfg["jobs_failed"] == 0
        assert cfg["jobs_done"] == 16  # 8 cold + 8 warm
        # 16 campaign-backed jobs, each spec executed exactly once.
        assert cfg["batch_specs"] <= cfg["plan_specs"] / 8
        assert cfg["dedup_hit_ratio"] > 0.9
        assert cfg["warm"]["wall_seconds"] <= cfg["cold"]["wall_seconds"]
    assert (tmp_path / "results" / "service_load.json").exists()
    assert (tmp_path / "results" / "service_load.txt").exists()
