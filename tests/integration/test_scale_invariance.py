"""Scale invariance: the DESIGN.md §6 claim, tested.

The substrate shrinks every capacity by a constant factor while data sets
shrink by the same factor.  Everything the model consumes is a ratio, so
the ratios must be approximately invariant across scales: L2 hit rates,
the memory-instruction fraction, and the ground-truth MP share of cycles.
"""

import pytest

from repro.machine.config import origin2000_scaled
from repro.machine.system import DsmMachine
from repro.workloads import Swim, T3dheat


def run_at_scale(workload_cls, scale, n, **params):
    wl = workload_cls(**params)
    cfg = origin2000_scaled(n_processors=n, scale=scale)
    return DsmMachine(cfg).run(wl, wl.default_size(scale=scale))


class TestScaleInvariance:
    @pytest.mark.parametrize("n", [1, 4])
    def test_swim_hit_rates_invariant(self, n):
        a = run_at_scale(Swim, 64, n, iters=2)
        b = run_at_scale(Swim, 128, n, iters=2)
        assert a.counters.l2_local_hit_rate == pytest.approx(
            b.counters.l2_local_hit_rate, abs=0.08
        )
        assert a.counters.m_frac == pytest.approx(b.counters.m_frac, abs=0.03)

    def test_t3dheat_mp_share_invariant(self):
        a = run_at_scale(T3dheat, 64, 8, iters=1, inner_steps=6)
        b = run_at_scale(T3dheat, 128, 8, iters=1, inner_steps=6)
        # sync costs do NOT scale with capacity, so the MP share shifts a
        # little between scales; it must stay in the same regime
        share_a = a.ground_truth.multiprocessor_cycles / a.counters.cycles
        share_b = b.ground_truth.multiprocessor_cycles / b.counters.cycles
        assert share_b == pytest.approx(share_a, abs=0.12)

    def test_caching_knee_arithmetic_preserved(self):
        # the T3dheat knee ratio 40 MB / 4 MB = 10 holds at any scale
        for scale in (32, 64, 128):
            cfg = origin2000_scaled(n_processors=1, scale=scale)
            s0 = T3dheat().default_size(scale=scale)
            assert s0 / cfg.l2.size == pytest.approx(10.0, rel=0.05)

    def test_footprint_scales_linearly(self):
        a = run_at_scale(Swim, 64, 2, iters=1)
        b = run_at_scale(Swim, 128, 2, iters=1)
        assert a.size_bytes == pytest.approx(2 * b.size_bytes, rel=0.01)
