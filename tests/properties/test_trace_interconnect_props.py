"""Property-based tests: trace generators and interconnect metrics."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.machine.config import InterconnectConfig
from repro.machine.interconnect import Interconnect
from repro.trace.generators import pointer_chase, random_access, sweep
from repro.trace.synth import concat_traces, interleave_traces, split_trace


@settings(max_examples=50, deadline=None)
@given(
    lo=st.integers(min_value=0, max_value=1000),
    n=st.integers(min_value=1, max_value=64),
    rpb=st.integers(min_value=1, max_value=8),
    reps=st.integers(min_value=1, max_value=4),
)
def test_sweep_length_and_coverage(lo, n, rpb, reps):
    a, w = sweep(range(lo, lo + n), refs_per_block=rpb, reps=reps)
    assert len(a) == len(w) == n * rpb * reps
    assert set(np.unique(a)) == set(range(lo, lo + n))


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    refs=st.integers(min_value=0, max_value=256),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_pointer_chase_balanced_coverage(n, refs, seed):
    a, _ = pointer_chase(range(0, n), refs, rng=np.random.default_rng(seed))
    assert len(a) == refs
    if refs >= n:
        counts = np.bincount(a, minlength=n)
        assert counts.max() - counts.min() <= 1  # perfectly even wrap


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=4),
    gran=st.integers(min_value=1, max_value=5),
)
def test_interleave_is_permutation_of_concat(sizes, gran):
    rng = np.random.default_rng(0)
    traces = [random_access(range(0, 50), k, rng=rng) for k in sizes]
    inter = interleave_traces(*traces, granularity=gran)
    cat = concat_traces(*traces)
    assert sorted(inter[0].tolist()) == sorted(cat[0].tolist())
    assert inter[1].sum() == cat[1].sum()


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=100),
    parts=st.integers(min_value=1, max_value=10),
)
def test_split_preserves_order_and_content(n, parts):
    a, w = sweep(range(0, max(1, n)), refs_per_block=1)
    chunks = split_trace((a, w), parts)
    assert len(chunks) == parts
    rejoined = np.concatenate([c[0] for c in chunks])
    assert rejoined.tolist() == a.tolist()


@settings(max_examples=60, deadline=None)
@given(
    topology=st.sampled_from(["hypercube", "mesh", "ring", "crossbar"]),
    n=st.integers(min_value=1, max_value=40),
    bristle=st.integers(min_value=1, max_value=4),
)
def test_interconnect_metric_axioms(topology, n, bristle):
    ic = Interconnect(InterconnectConfig(topology=topology, bristle=bristle), n)
    import random

    rnd = random.Random(0)
    cpus = list(range(n))
    for _ in range(30):
        a, b, c = rnd.choice(cpus), rnd.choice(cpus), rnd.choice(cpus)
        assert ic.hops(a, a) == 0
        assert ic.hops(a, b) == ic.hops(b, a) >= 0
        assert ic.hops(a, c) <= ic.hops(a, b) + ic.hops(b, c)  # triangle
    assert 0 <= ic.mean_distance() <= ic.diameter()
