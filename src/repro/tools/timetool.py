"""time(1) emulation: wall-clock execution time of a run.

The paper's Table 1 example measures execution time with ``time``; our
equivalent converts a run's wall cycles at the Origin 2000's 250 MHz.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..machine.system import RunResult

__all__ = ["CLOCK_HZ", "execution_seconds", "speedup_series"]

#: The paper's machine: 250 MHz MIPS R10000 (Section 3).
CLOCK_HZ = 250_000_000


def execution_seconds(result: RunResult, clock_hz: int = CLOCK_HZ) -> float:
    """Wall-clock seconds of one run."""
    if clock_hz <= 0:
        raise ValidationError("clock_hz must be positive")
    return result.wall_cycles / clock_hz


def speedup_series(results: list[RunResult]) -> list[tuple[int, float]]:
    """(n, speedup) pairs relative to the 1-processor run in ``results``.

    This is how Figures 5, 8, and 11 are produced.
    """
    by_n = {r.n_processors: r for r in results}
    if 1 not in by_n:
        raise ValidationError("speedup series needs a 1-processor run")
    base = by_n[1].wall_cycles
    return [(n, base / by_n[n].wall_cycles) for n in sorted(by_n)]
