"""Parameter-sweep orchestration.

Ablations keep re-running the same pattern: a grid of workload and/or
machine variations, one run each, gathered into a tidy table.  This module
provides that harness with deterministic caching-friendly structure.

Example::

    grid = ParameterSweep(
        base_workload=lambda **p: Swim(**p),
        workload_grid={"halo_blocks": [0, 1, 2]},
        machine_grid={"protocol": ["mesi", "msi"]},
        n_processors=8,
        size=Swim().default_size(),
    )
    rows = grid.run(metrics={
        "event31": lambda res: res.counters.store_exclusive_to_shared,
    })
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable

from ..errors import ConfigError
from ..machine.config import MachineConfig, origin2000_scaled
from ..machine.system import DsmMachine, RunResult

__all__ = ["ParameterSweep", "sweep_grid"]

Metric = Callable[[RunResult], float]


def sweep_grid(**axes) -> list[dict]:
    """Cartesian product of named value lists as a list of dicts."""
    if not axes:
        return [{}]
    names = list(axes)
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ConfigError(f"axis {name!r} must be a non-empty list")
    return [dict(zip(names, combo)) for combo in itertools.product(*axes.values())]


@dataclass
class ParameterSweep:
    """A (workload params) x (machine params) grid of single runs."""

    base_workload: Callable[..., object]
    size: int
    n_processors: int = 8
    workload_grid: dict = field(default_factory=dict)
    machine_grid: dict = field(default_factory=dict)
    base_machine: MachineConfig | None = None

    def points(self) -> list[tuple[dict, dict]]:
        return [
            (wp, mp)
            for wp in sweep_grid(**self.workload_grid)
            for mp in sweep_grid(**self.machine_grid)
        ]

    def _machine_config(self, machine_params: dict) -> MachineConfig:
        cfg = self.base_machine or origin2000_scaled(n_processors=self.n_processors)
        cfg = cfg.with_processors(self.n_processors)
        if machine_params:
            try:
                cfg = replace(cfg, **machine_params)
            except TypeError as exc:
                raise ConfigError(f"bad machine parameter: {exc}") from exc
        return cfg

    def run(self, metrics: dict[str, Metric]) -> list[dict]:
        """Execute the grid; one row per point with the requested metrics."""
        if not metrics:
            raise ConfigError("at least one metric is required")
        rows = []
        for workload_params, machine_params in self.points():
            workload = self.base_workload(**workload_params)
            machine = DsmMachine(self._machine_config(machine_params))
            result = machine.run(workload, self.size)
            row: dict = {**workload_params, **machine_params}
            for name, fn in metrics.items():
                row[name] = fn(result)
            rows.append(row)
        return rows
