"""Cross-layer analyses built *on top of* the Section 2 pipeline.

:mod:`repro.core` answers the paper's per-category questions (how much
does synchronization cost at n?); this package answers the follow-up a
user actually asks: *which part of the program is responsible?*  The
first resident is :mod:`repro.analysis.blame` — graph-based scaling-loss
localization over segments, traces, and lineage.
"""

from .blame import BlameReport, blame_campaign, diff_reports

__all__ = ["BlameReport", "blame_campaign", "diff_reports"]
