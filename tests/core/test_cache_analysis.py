"""Cache-space decomposition (Section 2.4.1) on fabricated data."""

import pytest

from repro.core.cache_analysis import (
    analyze_cache_space,
    compulsory_miss_rate,
    hit_rate_curve,
    interpolate_uniproc,
)
from repro.errors import InsufficientDataError
from repro.machine.counters import CounterSet
from repro.runner.records import RunRecord


def rec(size, n=1, l2_hit=0.5, l1_hit=0.9, m=0.4, inst=10_000):
    refs = inst * m
    l1_misses = refs * (1 - l1_hit)
    counters = CounterSet(
        cycles=inst * 2.0,
        graduated_instructions=inst,
        graduated_loads=refs * 0.7,
        graduated_stores=refs * 0.3,
        l1_data_misses=l1_misses,
        l2_misses=l1_misses * (1 - l2_hit),
    )
    return RunRecord(
        workload="w", params={}, size_bytes=size, n_processors=n,
        role="app_frac" if n == 1 else "app_base", machine={}, counters=counters,
    )


def uniproc():
    # hit rate rises as the data set shrinks, plateauing at 0.96 (compulsory 0.04)
    return {
        65536: rec(65536, l2_hit=0.20),
        32768: rec(32768, l2_hit=0.35),
        16384: rec(16384, l2_hit=0.70),
        8192: rec(8192, l2_hit=0.96),
        4096: rec(4096, l2_hit=0.95),  # slight droop at tiny sizes
    }


class TestCurve:
    def test_sorted_by_size(self):
        curve = hit_rate_curve(uniproc())
        assert [s for s, _ in curve] == sorted(s for s, _ in curve)

    def test_compulsory_is_plateau(self):
        assert compulsory_miss_rate(uniproc()) == pytest.approx(0.04)

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            hit_rate_curve({})


class TestInterpolation:
    def test_exact_size_returned(self):
        r = interpolate_uniproc(uniproc(), 16384)
        assert r.l2_hit_rate == pytest.approx(0.70)

    def test_between_sizes_log_linear(self):
        r = interpolate_uniproc(uniproc(), 23170)  # geometric mean of 16k and 32k
        assert 0.35 < r.l2_hit_rate < 0.70
        assert r.l2_hit_rate == pytest.approx((0.35 + 0.70) / 2, abs=0.02)

    def test_clamps_below_range(self):
        r = interpolate_uniproc(uniproc(), 100)
        assert r.l2_hit_rate == pytest.approx(0.95)

    def test_clamps_above_range(self):
        r = interpolate_uniproc(uniproc(), 10**9)
        assert r.l2_hit_rate == pytest.approx(0.20)


class TestAnalysis:
    def base_runs(self):
        return {
            1: rec(65536, n=1, l2_hit=0.20),
            4: rec(65536, n=4, l2_hit=0.60),  # vs surrogate s0/4=16384 at 0.70
            8: rec(65536, n=8, l2_hit=0.85),  # vs surrogate s0/8=8192 at 0.96
        }

    def test_coherence_from_surrogate(self):
        a = analyze_cache_space(uniproc(), self.base_runs(), s0=65536)
        assert a.coherence(1) == 0.0
        assert a.coherence(4) == pytest.approx(0.70 - 0.60, abs=1e-6)
        assert a.coherence(8) == pytest.approx(0.96 - 0.85, abs=1e-6)

    def test_l2hitr_inf(self):
        a = analyze_cache_space(uniproc(), self.base_runs(), s0=65536)
        assert a.l2hitr_inf(1) == pytest.approx(1 - 0.04)
        assert a.l2hitr_inf(4) == pytest.approx(1 - 0.04 - 0.10)

    def test_l2hitr_infinf_is_compulsory_only(self):
        a = analyze_cache_space(uniproc(), self.base_runs(), s0=65536)
        assert a.l2hitr_infinf == pytest.approx(0.96)

    def test_conflict_decomposition(self):
        a = analyze_cache_space(uniproc(), self.base_runs(), s0=65536)
        # conflict(1): everything between measured 0.20 and 0.96
        assert a.conflict_rate(1) == pytest.approx(0.76)
        # at n=8 the measured is close to the surrogate -> conflicts shrink
        assert a.conflict_rate(8) < a.conflict_rate(1)

    def test_inf_curve_converges_to_measured(self):
        # paper: "in the limit the curves converge"
        a = analyze_cache_space(uniproc(), self.base_runs(), s0=65536)
        gap1 = a.l2hitr_inf(1) - a.measured_l2hitr_by_n[1]
        gap8 = a.l2hitr_inf(8) - a.measured_l2hitr_by_n[8]
        assert gap8 < gap1

    def test_summary_renders(self):
        a = analyze_cache_space(uniproc(), self.base_runs(), s0=65536)
        assert "compulsory" in a.summary()

    def test_missing_base_runs_rejected(self):
        with pytest.raises(InsufficientDataError):
            analyze_cache_space(uniproc(), {}, s0=65536)
