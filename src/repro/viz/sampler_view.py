"""Render a sampling profile (``scaltool profile --lines`` / ``obs hot``).

Takes the JSON-able dict form of :class:`repro.obs.sampler.SampleProfile`
(so a freshly taken profile and one reloaded from a saved
``hotpath_*.json`` artifact render identically) and produces the
dotted-fill report idiom the rest of the tooling uses: hot lines with
their span attribution, hot functions (self + cumulative), samples per
span, and the sampler's own overhead accounting.
"""

from __future__ import annotations

__all__ = ["render_hot_profile"]

_FILL = 52


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else "…" + text[-(width - 1) :]


def _pct(part: float, whole: float) -> str:
    return f"{part / whole:6.1%}" if whole else "   0.0%"


def render_hot_profile(data: dict, limit: int = 15, show_spans: bool = True) -> str:
    """Text report for one profile dict (``SampleProfile.to_dict()``)."""
    n = int(data.get("n_samples", 0))
    interval = float(data.get("interval_s", 0.0))
    lines = ["# scaltool hot-path report"]
    lines.append(
        f"# meta: samples={n} interval_ms={interval * 1e3:.1f} "
        f"duration_s={float(data.get('duration_s', 0.0)):.3f} "
        f"overhead_ratio={float(data.get('overhead_ratio', 1.0)):.4f}"
    )
    if not n:
        lines.append("")
        lines.append("(no samples recorded)")
        lines.append("")
        return "\n".join(lines)

    rows = data.get("lines") or []
    shown = rows[: max(1, limit)]
    lines.append("")
    lines.append(f"Hot lines (top {len(shown)} of {len(rows)} by self samples):")
    for row in shown:
        label = _clip(f"{row['file']}:{row['line']} {row['func']}", _FILL)
        lines.append(
            f"  {label:.<{_FILL}s} {row['self']:>7d} {_pct(row['self'], n)}"
        )
        if show_spans and row.get("spans"):
            span, count = next(iter(row["spans"].items()))
            lines.append(f"      └ {_clip(span, _FILL + 4)}  ({count} samples)")

    funcs = data.get("functions") or []
    shown_f = funcs[: max(1, limit)]
    lines.append("")
    lines.append(f"Hot functions (top {len(shown_f)} of {len(funcs)} by self samples):")
    lines.append(f"  {'':<{_FILL}s} {'self':>7s} {'cumul':>7s}")
    for row in shown_f:
        label = _clip(f"{row['file']} {row['func']}", _FILL)
        lines.append(
            f"  {label:.<{_FILL}s} {row['self']:>7d} {row['cumulative']:>7d}"
            f" {_pct(row['cumulative'], n)}"
        )

    spans = data.get("spans") or []
    if show_spans and spans:
        shown_s = spans[: max(1, limit)]
        lines.append("")
        lines.append(f"Samples per span (top {len(shown_s)} of {len(spans)}):")
        for row in shown_s:
            lines.append(
                f"  {_clip(row['span'], _FILL):.<{_FILL}s} {row['samples']:>7d}"
                f" {_pct(row['samples'], n)}"
            )

    memory = data.get("memory")
    if memory:
        lines.append("")
        lines.append(f"Memory peak: {memory.get('peak_bytes', 0):,} bytes; top allocators:")
        for entry in (memory.get("top") or [])[:5]:
            label = _clip(f"{entry['file']}:{entry['line']}", _FILL)
            lines.append(f"  {label:.<{_FILL}s} {entry['size_bytes']:>12,d} B")

    lines.append("")
    return "\n".join(lines)
