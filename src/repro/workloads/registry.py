"""Name-based workload factory (used by the CLI and the campaign runner)."""

from __future__ import annotations

from ..errors import WorkloadError
from .base import Workload
from .contention import FalseSharingWorkload, LockedRegions
from .hydro2d import Hydro2d
from .kernels import CacheFitKernel, MemoryLatencyKernel, SpinKernel, SyncKernel
from .swim import Swim
from .synthetic import SyntheticWorkload
from .t3dheat import T3dheat

__all__ = ["make_workload", "available_workloads", "WORKLOADS"]

WORKLOADS: dict[str, type[Workload]] = {
    T3dheat.name: T3dheat,
    Hydro2d.name: Hydro2d,
    Swim.name: Swim,
    SyntheticWorkload.name: SyntheticWorkload,
    LockedRegions.name: LockedRegions,
    FalseSharingWorkload.name: FalseSharingWorkload,
    SyncKernel.name: SyncKernel,
    SpinKernel.name: SpinKernel,
    MemoryLatencyKernel.name: MemoryLatencyKernel,
    CacheFitKernel.name: CacheFitKernel,
}


def available_workloads() -> list[str]:
    """Registered workload names, sorted."""
    return sorted(WORKLOADS)


def make_workload(name: str, **params) -> Workload:
    """Instantiate a workload by registry name with keyword parameters."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from None
    return cls(**params)
