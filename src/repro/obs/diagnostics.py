"""Estimator fit diagnostics: evidence that a Scal-Tool number is sound.

Every estimation step of the Section 2 pipeline produces a
:class:`FitDiagnostics` record alongside its numbers:

* the (t2, tm) least-squares fit (Eq. 3) — residuals, R², the condition
  number of the [h2 hm] design matrix, and bootstrap confidence
  intervals for the fitted latencies;
* the per-n inversion of Eq. 1 for tm(n) — per-count solve residuals,
  fallback count, and a monotonicity check (memory is never faster on a
  larger machine);
* the compulsory-miss plateau of Figure 3-a — how many sizes actually
  support the plateau and whether the hit-rate curve has flattened;
* range sanity — hit rates in [0, 1], non-negative latencies, positive
  CPIs, the Eq. 9 fractions summing to at most ~1.

Records are *graded* (``ok`` / ``warn`` / ``suspect``) by a pure rule
table keyed on the record's ``kind``.  The grade is always derived from
the stored numeric evidence, never asserted free-hand, so a persisted
record can be re-validated later (``scaltool doctor``) by re-running the
same rules over the same evidence — :func:`revalidate`.

The per-analysis roll-up is :class:`AnalysisDiagnostics`; its ``health``
is the worst grade across all checks and is what
``scaltool analyze`` prints and the service exports as the
``diagnostics.health`` gauge family.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = [
    "GRADE_OK",
    "GRADE_WARN",
    "GRADE_SUSPECT",
    "GRADES",
    "FitDiagnostics",
    "AnalysisDiagnostics",
    "worst_grade",
    "grade_score",
    "apply_rules",
    "revalidate",
    "linear_fit_diagnostics",
    "plateau_diagnostics",
    "solve_diagnostics",
    "sanity_diagnostics",
    "bootstrap_ci",
]

GRADE_OK = "ok"
GRADE_WARN = "warn"
GRADE_SUSPECT = "suspect"
#: Grades from best to worst; the roll-up takes the worst present.
GRADES = (GRADE_OK, GRADE_WARN, GRADE_SUSPECT)

_SCORE = {GRADE_OK: 0, GRADE_WARN: 1, GRADE_SUSPECT: 2}

# -- thresholds (one place, shared by build-time grading and `doctor`) --------

#: R² of the (t2, tm) fit below these grades warn / suspect.
R2_WARN = 0.95
R2_SUSPECT = 0.50
#: Condition number of the [h2 hm] design matrix.
COND_WARN = 1e6
COND_SUSPECT = 1e10
#: Bootstrap CI wider than this multiple of |estimate| is a warning.
CI_WIDTH_WARN = 2.0
#: Hit-rate slack when counting plateau support points.
PLATEAU_EPS = 0.01
#: Hit-rate gain at the small-size end that means the plateau was not reached.
PLATEAU_GAIN_WARN = 0.02
PLATEAU_GAIN_SUSPECT = 0.10
#: Relative per-n solve residual for tm(n).
SOLVE_RMS_WARN = 0.02
SOLVE_RMS_SUSPECT = 0.10
#: Relative tolerance for the tm(n) monotonicity check.
MONOTONE_TOL = 0.05
#: Tolerance on the Eq. 9 fraction budget (frac_syn + frac_imb <= 1).
FRAC_SUM_TOL = 1e-6

#: Blame evidence: modeled/measured cycle ratio per segment.  tm(n) is a
#: whole-run average, so a segment whose modeled stalls exceed its own
#: measured cycles by this much is absorbing another segment's latency.
OVERSHOOT_WARN = 1.05
OVERSHOOT_SUSPECT = 1.5
#: Blame evidence: residual share of the segment's cycles at the top count.
BLAME_RESIDUAL_WARN = 0.25

#: Model-suite evidence (repro.models): two independent models of the same
#: speedup curve disagreeing by this relative RMS is evidence one of them
#: (or the measurement) is wrong.
AGREE_RMS_WARN = 0.15
AGREE_RMS_SUSPECT = 0.35
#: Dominance calls closer than this relative margin are noise, not signal;
#: shares below the floor never decide a dominance mismatch.
AGREE_DOMINANCE_MARGIN = 1.25
AGREE_SHARE_FLOOR = 0.02
#: Predicted peak-speedup counts further apart than this factor disagree.
PEAK_RATIO_WARN = 4.0


def grade_score(grade: str) -> int:
    """Numeric severity (0 ok, 1 warn, 2 suspect) for gauges and ordering."""
    return _SCORE.get(grade, _SCORE[GRADE_SUSPECT])


def worst_grade(grades) -> str:
    """The worst grade present (``ok`` for an empty sequence)."""
    worst = GRADE_OK
    for g in grades:
        if grade_score(g) > grade_score(worst):
            worst = g
    return worst


@dataclass
class FitDiagnostics:
    """One estimation step's quality evidence, graded.

    ``kind`` selects the rule family (``linear_fit`` / ``plateau`` /
    ``solve`` / ``sanity``); ``equation`` points at the paper equation
    the step implements.  ``estimates`` holds the fitted values the
    confidence intervals in ``ci`` cover.  ``details`` is free-form
    numeric evidence the rules read.
    """

    name: str
    kind: str
    equation: str = ""
    grade: str = GRADE_OK
    n_points: int = 0
    r_squared: float | None = None
    residual_rms: float | None = None
    residuals: list[float] = field(default_factory=list)
    condition_number: float | None = None
    estimates: dict[str, float] = field(default_factory=dict)
    ci: dict[str, list[float]] = field(default_factory=dict)
    flags: list[str] = field(default_factory=list)
    details: dict = field(default_factory=dict)

    def flag(self, grade: str, message: str) -> None:
        """Record a finding and escalate the grade if it is worse."""
        self.flags.append(f"[{grade}] {message}")
        if grade_score(grade) > grade_score(self.grade):
            self.grade = grade

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FitDiagnostics":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass
class AnalysisDiagnostics:
    """Every check one analysis produced, plus the health roll-up."""

    checks: list[FitDiagnostics] = field(default_factory=list)

    @property
    def health(self) -> str:
        return worst_grade(c.grade for c in self.checks)

    def check(self, name: str) -> FitDiagnostics | None:
        for c in self.checks:
            if c.name == name:
                return c
        return None

    def add(self, check: FitDiagnostics) -> FitDiagnostics:
        self.checks.append(check)
        return check

    def all_flags(self) -> list[str]:
        return [f"{c.name}: {flag}" for c in self.checks for flag in c.flags]

    def summary(self) -> str:
        lines = [f"health: {self.health}"]
        for c in self.checks:
            bits = [f"{c.name} [{c.grade}]"]
            if c.r_squared is not None:
                bits.append(f"R2={c.r_squared:.4f}")
            if c.residual_rms is not None:
                bits.append(f"rms={c.residual_rms:.4g}")
            if c.condition_number is not None:
                bits.append(f"cond={c.condition_number:.3g}")
            for param, (lo, hi) in sorted(c.ci.items()):
                bits.append(f"{param}95%=[{lo:.2f}, {hi:.2f}]")
            lines.append("  " + " ".join(bits))
            for flag in c.flags:
                lines.append(f"    {flag}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"health": self.health, "checks": [c.to_dict() for c in self.checks]}

    @classmethod
    def from_dict(cls, d: dict) -> "AnalysisDiagnostics":
        return cls(checks=[FitDiagnostics.from_dict(c) for c in d.get("checks", [])])

    def publish(self, registry, telemetry=None) -> None:
        """Export ``diagnostics.*`` gauges to a metrics registry.

        ``registry`` is any object with ``set_gauge(name, value)`` (the
        obs session registry); ``telemetry`` additionally receives the
        labelled ``diagnostics.health{grade=...}`` gauge family used by
        the service ``/metrics`` endpoint.
        """
        registry.set_gauge("diagnostics.health", float(grade_score(self.health)))
        for grade in GRADES:
            count = sum(1 for c in self.checks if c.grade == grade)
            registry.set_gauge(f"diagnostics.checks.{grade}", float(count))
        fit = self.check("t2_tm_fit")
        if fit is not None:
            if fit.r_squared is not None:
                registry.set_gauge("diagnostics.fit.r_squared", fit.r_squared)
            if fit.condition_number is not None and np.isfinite(fit.condition_number):
                registry.set_gauge(
                    "diagnostics.fit.condition_number", fit.condition_number
                )
        if telemetry is not None:
            for grade in GRADES:
                telemetry.set_gauge(
                    "diagnostics.health",
                    1.0 if grade == self.health else 0.0,
                    grade=grade,
                )
            for c in self.checks:
                if c.r_squared is not None:
                    telemetry.set_gauge(
                        "diagnostics.r_squared", c.r_squared, check=c.name
                    )


# -- the rule table -----------------------------------------------------------


def _rules_linear_fit(fd: FitDiagnostics) -> None:
    if fd.n_points < 3:
        fd.flag(
            GRADE_WARN,
            f"only {fd.n_points} fit points for 2 unknowns; "
            "the fit is (nearly) exactly determined and residuals carry no evidence",
        )
    if fd.details.get("overflow_filter_dropped"):
        fd.flag(
            GRADE_SUSPECT,
            "fit includes L2-resident data-set sizes (overflow filter off); "
            "the paper finds tm unstable there",
        )
    if fd.details.get("rank_deficient"):
        fd.flag(GRADE_SUSPECT, "design matrix is rank deficient; t2 and tm are not separately identifiable")
    elif fd.details.get("constrained"):
        fd.flag(GRADE_WARN, "unconstrained fit went negative; refit under t2, tm >= 0")
    if fd.condition_number is not None:
        if not np.isfinite(fd.condition_number) or fd.condition_number > COND_SUSPECT:
            fd.flag(GRADE_SUSPECT, f"design matrix near singular (cond={fd.condition_number:.3g})")
        elif fd.condition_number > COND_WARN:
            fd.flag(GRADE_WARN, f"design matrix ill conditioned (cond={fd.condition_number:.3g})")
    if fd.r_squared is not None and fd.n_points >= 3:
        if fd.r_squared < R2_SUSPECT:
            fd.flag(GRADE_SUSPECT, f"fit explains little of the CPI variation (R2={fd.r_squared:.3f})")
        elif fd.r_squared < R2_WARN:
            fd.flag(GRADE_WARN, f"weak fit (R2={fd.r_squared:.3f})")
    for param, value in sorted(fd.estimates.items()):
        if value < 0:
            fd.flag(GRADE_SUSPECT, f"negative latency {param}={value:.3f}")
        interval = fd.ci.get(param)
        if interval and abs(value) > 0:
            lo, hi = interval
            if (hi - lo) > CI_WIDTH_WARN * abs(value):
                fd.flag(
                    GRADE_WARN,
                    f"{param} bootstrap 95% CI [{lo:.2f}, {hi:.2f}] is wide "
                    f"relative to the estimate {value:.2f}",
                )


def _rules_plateau(fd: FitDiagnostics) -> None:
    compulsory = fd.estimates.get("compulsory")
    if compulsory is not None and not (0.0 <= compulsory <= 1.0):
        fd.flag(GRADE_SUSPECT, f"compulsory miss rate out of [0, 1]: {compulsory:.4f}")
    if fd.n_points < 2:
        fd.flag(GRADE_WARN, "hit-rate curve has a single size; plateau cannot be confirmed")
        return
    if fd.details.get("plateau_points", 0) < 2:
        fd.flag(GRADE_WARN, "compulsory plateau supported by a single data-set size")
    gain = fd.details.get("head_gain", 0.0)
    if gain > PLATEAU_GAIN_SUSPECT:
        fd.flag(
            GRADE_SUSPECT,
            f"hit rate still rising at the smallest size (+{gain:.3f}); plateau not reached",
        )
    elif gain > PLATEAU_GAIN_WARN:
        fd.flag(
            GRADE_WARN,
            f"hit rate not flat at the smallest size (+{gain:.3f}); plateau uncertain",
        )


def _rules_solve(fd: FitDiagnostics) -> None:
    fallbacks = fd.details.get("fallbacks", [])
    if fallbacks:
        fd.flag(
            GRADE_WARN,
            f"tm unidentifiable at n={fallbacks}; interconnect-floor fallback used",
        )
    violations = fd.details.get("monotone_violations", [])
    if violations:
        grade = GRADE_SUSPECT if len(violations) * 2 > max(1, fd.n_points - 1) else GRADE_WARN
        fd.flag(grade, f"tm(n) decreases at n={violations}; memory never gets faster with scale")
    if fd.residual_rms is not None:
        if fd.residual_rms > SOLVE_RMS_SUSPECT:
            fd.flag(
                GRADE_SUSPECT,
                f"Eq. 1 solve residual rms {fd.residual_rms:.3f} exceeds {SOLVE_RMS_SUSPECT:.0%} of CPI",
            )
        elif fd.residual_rms > SOLVE_RMS_WARN:
            fd.flag(GRADE_WARN, f"Eq. 1 solve residual rms {fd.residual_rms:.3f}")


def _rules_sanity(fd: FitDiagnostics) -> None:
    for violation in fd.details.get("violations", []):
        fd.flag(violation.get("grade", GRADE_SUSPECT), violation.get("message", "range violation"))


def _rules_scaling_loss(fd: FitDiagnostics) -> None:
    """Blame-vertex evidence quality (see analysis/blame/detect.py)."""
    if fd.n_points < 3:
        fd.flag(GRADE_WARN, f"loss measured over only {fd.n_points} processor counts")
    overshoot = fd.details.get("max_overshoot", 0.0)
    if overshoot > OVERSHOOT_SUSPECT:
        fd.flag(
            GRADE_SUSPECT,
            f"modeled cycles exceed measured by {overshoot:.2f}x at "
            f"n={fd.details.get('overshoot_counts', [])}; whole-run tm(n) "
            "average misattributes other segments' latency here",
        )
    elif overshoot > OVERSHOOT_WARN:
        fd.flag(GRADE_WARN, f"modeled cycles exceed measured by {overshoot:.2f}x")
    residual = fd.details.get("residual_fraction_top", 0.0)
    if residual > BLAME_RESIDUAL_WARN:
        fd.flag(
            GRADE_WARN,
            f"{residual:.0%} of top-count cycles are unmodeled residual",
        )
    if fd.details.get("loss_sign_changes", 0) > 1:
        fd.flag(GRADE_WARN, "cycle loss oscillates across the sweep; trend is noisy")


def _rules_model_fit(fd: FitDiagnostics) -> None:
    """Closed-form scalability-model fit quality (see repro.models)."""
    if fd.n_points < 4:
        fd.flag(
            GRADE_WARN,
            f"only {fd.n_points} speedup points for 2 coefficients; "
            "the fit is (nearly) exactly determined",
        )
    clamped = fd.details.get("clamped", [])
    if clamped:
        fd.flag(
            GRADE_WARN,
            f"unconstrained fit went negative for {', '.join(clamped)}; "
            "refit under non-negativity",
        )
    superlinear = fd.details.get("superlinear_counts", [])
    if superlinear:
        fd.flag(
            GRADE_WARN,
            f"measured speedup exceeds n at n={superlinear}; closed-form "
            "models bound speedup by n and cannot represent the cache gain",
        )
    if fd.r_squared is not None:
        if fd.r_squared < R2_SUSPECT:
            fd.flag(
                GRADE_SUSPECT,
                f"model explains little of the speedup variation (R2={fd.r_squared:.3f})",
            )
        elif fd.r_squared < R2_WARN:
            fd.flag(GRADE_WARN, f"weak model fit (R2={fd.r_squared:.3f})")
    for param, value in sorted(fd.estimates.items()):
        interval = fd.ci.get(param)
        if interval and abs(value) > 0:
            lo, hi = interval
            if (hi - lo) > CI_WIDTH_WARN * abs(value):
                fd.flag(
                    GRADE_WARN,
                    f"{param} bootstrap 95% CI [{lo:.4f}, {hi:.4f}] is wide "
                    f"relative to the estimate {value:.4f}",
                )


def _rules_model_agreement(fd: FitDiagnostics) -> None:
    """Cross-validation of the model suite against Scal-Tool's decomposition.

    The evidence (stored in ``details``) is the per-model penalty shares at
    the top measured count plus cross-model residuals; the grade is what
    ``scaltool models compare`` reports and ``doctor`` re-derives.
    """
    d = fd.details
    mismatch = d.get("dominance_mismatch")
    if mismatch:
        shares = d.get("shares", {})
        margin = d.get("dominance_margin", 0.0)
        decisive = (
            margin >= AGREE_DOMINANCE_MARGIN
            and d.get("dominant_share", 0.0) >= AGREE_SHARE_FLOOR
        )
        fd.flag(
            GRADE_SUSPECT if decisive else GRADE_WARN,
            f"dominant bottleneck disagrees at n={d.get('top_n', '?')}: "
            f"USL says {d.get('dominant_usl', '?')}, Scal-Tool says "
            f"{d.get('dominant_scaltool', '?')} (shares: {shares})",
        )
    rms = d.get("cross_model_rms")
    if rms is not None:
        if rms > AGREE_RMS_SUSPECT:
            fd.flag(
                GRADE_SUSPECT,
                f"models disagree on the speedup curve (relative rms {rms:.3f})",
            )
        elif rms > AGREE_RMS_WARN:
            fd.flag(GRADE_WARN, f"models drift apart (relative rms {rms:.3f})")
    ratio = d.get("peak_ratio")
    if ratio is not None and (ratio > PEAK_RATIO_WARN or ratio < 1.0 / PEAK_RATIO_WARN):
        fd.flag(
            GRADE_WARN,
            f"predicted peak-speedup counts differ by {ratio:.2f}x "
            f"({d.get('peaks', {})})",
        )
    if not d.get("has_decomposition", True):
        fd.flag(
            GRADE_WARN,
            "no Scal-Tool decomposition for this dataset; agreement checked "
            "across closed-form models only",
        )


_RULES = {
    "linear_fit": _rules_linear_fit,
    "plateau": _rules_plateau,
    "solve": _rules_solve,
    "sanity": _rules_sanity,
    "scaling_loss": _rules_scaling_loss,
    "model_fit": _rules_model_fit,
    "model_agreement": _rules_model_agreement,
}


def apply_rules(fd: FitDiagnostics) -> FitDiagnostics:
    """Grade ``fd`` from its stored evidence (idempotent on a fresh record)."""
    rules = _RULES.get(fd.kind)
    if rules is None:
        fd.flag(GRADE_WARN, f"no grading rules for kind {fd.kind!r}")
        return fd
    rules(fd)
    return fd


def revalidate(d: dict) -> FitDiagnostics:
    """Re-grade a persisted check from its evidence alone.

    The stored ``grade``/``flags`` are discarded and recomputed, so a
    record whose evidence was edited (or graded by older rules) is
    re-judged by the current rule table — this is what
    ``scaltool doctor`` runs over a stored result.
    """
    fd = FitDiagnostics.from_dict(d)
    fd.grade = GRADE_OK
    fd.flags = []
    return apply_rules(fd)


# -- evidence builders --------------------------------------------------------


def bootstrap_ci(
    design: np.ndarray,
    y: np.ndarray,
    names: tuple[str, ...],
    n_boot: int = 200,
    seed: int = 20260806,
    alpha: float = 0.05,
) -> dict[str, list[float]]:
    """Percentile bootstrap CIs for an unconstrained least-squares fit.

    Deterministic (seeded) so analysis output is byte-stable.  Returns
    an empty dict when there are fewer than 3 rows (resampling two rows
    mostly yields singular draws) or when too few resamples solve.
    """
    n = len(y)
    if n < 3:
        return {}
    rng = np.random.default_rng(seed)
    samples: dict[str, list[float]] = {name: [] for name in names}
    for _ in range(n_boot):
        idx = rng.integers(0, n, n)
        sub = design[idx]
        if np.linalg.matrix_rank(sub) < design.shape[1]:
            continue
        try:
            sol, _, _, _ = np.linalg.lstsq(sub, y[idx], rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - rank check above
            continue
        for name, value in zip(names, sol):
            samples[name].append(float(value))
    out: dict[str, list[float]] = {}
    for name, values in samples.items():
        if len(values) >= max(10, n_boot // 4):
            lo, hi = np.percentile(values, [100 * alpha / 2, 100 * (1 - alpha / 2)])
            out[name] = [float(lo), float(hi)]
    return out


def linear_fit_diagnostics(
    name: str,
    design: np.ndarray,
    y: np.ndarray,
    estimates: dict[str, float],
    equation: str = "Eq. 3",
    constrained: bool = False,
    rank_deficient: bool = False,
    overflow_filter_dropped: bool = False,
    sizes: list[int] | None = None,
) -> FitDiagnostics:
    """Evidence + grade for a least-squares latency fit."""
    design = np.asarray(design, dtype=float)
    y = np.asarray(y, dtype=float)
    solution = np.array([estimates[k] for k in estimates], dtype=float)
    residuals = y - design @ solution
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2)) if len(y) else 0.0
    if ss_tot > 0:
        r_squared = 1.0 - ss_res / ss_tot
    else:
        # All targets identical: R² is undefined; a perfect prediction is
        # still "explains everything", anything else explains nothing.
        r_squared = 1.0 if ss_res < 1e-12 else 0.0
    try:
        cond = float(np.linalg.cond(design))
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        cond = float("inf")
    fd = FitDiagnostics(
        name=name,
        kind="linear_fit",
        equation=equation,
        n_points=len(y),
        r_squared=r_squared,
        residual_rms=float(np.sqrt(np.mean(residuals**2))) if len(y) else 0.0,
        residuals=[float(r) for r in residuals],
        condition_number=cond,
        estimates={k: float(v) for k, v in estimates.items()},
        ci=bootstrap_ci(design, y, tuple(estimates)),
        details={
            "constrained": bool(constrained),
            "rank_deficient": bool(rank_deficient),
            "overflow_filter_dropped": bool(overflow_filter_dropped),
            "sizes": list(sizes or []),
        },
    )
    return apply_rules(fd)


def plateau_diagnostics(
    curve: list[tuple[int, float]], compulsory: float
) -> FitDiagnostics:
    """Evidence + grade for the Figure 3-a compulsory-miss plateau.

    ``curve`` is the (size, L2hitr(s, 1)) curve sorted by size.  The
    plateau lives at the *small* end (only compulsory misses remain once
    the data set fits); quality is how many sizes sit within
    :data:`PLATEAU_EPS` of the best hit rate and whether the hit rate is
    still climbing at the smallest measured size.
    """
    hrs = [hr for _, hr in curve]
    best = max(hrs) if hrs else 0.0
    plateau_points = sum(1 for hr in hrs if hr >= best - PLATEAU_EPS)
    head_gain = (hrs[0] - hrs[1]) if len(hrs) >= 2 else 0.0
    fd = FitDiagnostics(
        name="compulsory_plateau",
        kind="plateau",
        equation="Fig. 3-a",
        n_points=len(curve),
        estimates={"compulsory": float(compulsory)},
        details={
            "plateau_points": int(plateau_points),
            "head_gain": float(head_gain),
            "best_hit_rate": float(best),
            "curve": [[int(s), float(hr)] for s, hr in curve],
        },
    )
    return apply_rules(fd)


def solve_diagnostics(
    per_n: dict[int, dict],
    fallbacks: list[int],
) -> FitDiagnostics:
    """Evidence + grade for the per-n Eq. 1 inversion of tm(n).

    ``per_n`` maps n -> {"tm", "residual_rel"}: the final tm and the
    relative CPI reconstruction error |cpi_model − cpi| / cpi at that n.
    """
    counts = sorted(per_n)
    violations = [
        n_hi
        for n_lo, n_hi in zip(counts, counts[1:])
        if per_n[n_hi]["tm"] < per_n[n_lo]["tm"] * (1.0 - MONOTONE_TOL)
    ]
    residuals = [per_n[n]["residual_rel"] for n in counts]
    fd = FitDiagnostics(
        name="tm_by_n",
        kind="solve",
        equation="Eq. 1",
        n_points=len(counts),
        residual_rms=float(np.sqrt(np.mean(np.square(residuals)))) if residuals else 0.0,
        residuals=[float(r) for r in residuals],
        estimates={f"tm({n})": float(per_n[n]["tm"]) for n in counts},
        details={
            "fallbacks": [int(n) for n in fallbacks],
            "monotone_violations": [int(n) for n in violations],
            "per_n": {str(n): {k: float(v) for k, v in per_n[n].items()} for n in counts},
        },
    )
    return apply_rules(fd)


def sanity_diagnostics(violations: list[tuple[str, str]], checks: int) -> FitDiagnostics:
    """Evidence + grade for the range-sanity sweep.

    ``violations`` is a list of (grade, message); ``checks`` the number
    of conditions examined (for the report's "x of y" framing).
    """
    fd = FitDiagnostics(
        name="range_sanity",
        kind="sanity",
        equation="Eqs. 6-10",
        n_points=int(checks),
        details={
            "violations": [{"grade": g, "message": m} for g, m in violations],
        },
    )
    return apply_rules(fd)
