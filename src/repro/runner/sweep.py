"""Parameter-sweep orchestration.

Ablations keep re-running the same pattern: a grid of workload and/or
machine variations, one run each, gathered into a tidy table.  This module
provides that harness on top of the shared execution engine: every grid
point compiles to a :class:`~repro.runner.engine.RunSpec` and executes
through :func:`~repro.runner.experiment.run_experiment` — so sweep runs
emit the same obs spans/metrics and simulator self-checks as campaign
runs, can fan out over a
:class:`~repro.runner.engine.ParallelExecutor`, and memoise per run in a
:class:`~repro.runner.engine.RunCache` (an unchanged grid re-runs with
zero machine executions).

Example::

    grid = ParameterSweep(
        base_workload=lambda **p: Swim(**p),
        workload_grid={"halo_blocks": [0, 1, 2]},
        machine_grid={"protocol": ["mesi", "msi"]},
        n_processors=8,
        size=Swim().default_size(),
    )
    rows = grid.run(metrics={
        "event31": lambda rec: rec.counters.store_exclusive_to_shared,
    })
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable

from ..errors import ConfigError
from ..machine.config import MachineConfig, origin2000_scaled
from ..obs import runtime as obs
from .engine import Executor, OnOutcome, RunCache, RunSpec, SerialExecutor
from .records import RunRecord

__all__ = ["ParameterSweep", "sweep_grid"]

#: Metrics read the completed :class:`RunRecord` (``rec.counters.*`` etc.).
Metric = Callable[[RunRecord], float]


def sweep_grid(**axes) -> list[dict]:
    """Cartesian product of named value lists as a list of dicts."""
    if not axes:
        return [{}]
    names = list(axes)
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ConfigError(f"axis {name!r} must be a non-empty list")
    return [dict(zip(names, combo)) for combo in itertools.product(*axes.values())]


@dataclass
class ParameterSweep:
    """A (workload params) x (machine params) grid of single runs."""

    base_workload: Callable[..., object]
    size: int
    n_processors: int = 8
    workload_grid: dict = field(default_factory=dict)
    machine_grid: dict = field(default_factory=dict)
    base_machine: MachineConfig | None = None

    def points(self) -> list[tuple[dict, dict]]:
        return [
            (wp, mp)
            for wp in sweep_grid(**self.workload_grid)
            for mp in sweep_grid(**self.machine_grid)
        ]

    def _machine_config(self, machine_params: dict) -> MachineConfig:
        cfg = self.base_machine or origin2000_scaled(n_processors=self.n_processors)
        cfg = cfg.with_processors(self.n_processors)
        if machine_params:
            try:
                cfg = replace(cfg, **machine_params)
            except TypeError as exc:
                raise ConfigError(f"bad machine parameter: {exc}") from exc
        return cfg

    def compile_specs(self) -> list[RunSpec]:
        """One engine spec per grid point, in :meth:`points` order."""
        return [
            RunSpec.compile(
                self.base_workload(**wp),
                self.size,
                self.n_processors,
                machine=self._machine_config(mp),
            )
            for wp, mp in self.points()
        ]

    def run(
        self,
        metrics: dict[str, Metric],
        executor: Executor | None = None,
        cache: RunCache | None = None,
        refresh: bool = False,
        on_outcome: OnOutcome | None = None,
    ) -> list[dict]:
        """Execute the grid; one row per point with the requested metrics.

        With a ``cache``, previously executed points load from disk
        (``engine.cache.hit``) and an unchanged grid re-runs without a
        single machine execution.
        """
        if not metrics:
            raise ConfigError("at least one metric is required")
        points = self.points()
        specs = self.compile_specs()
        executor = executor or SerialExecutor()
        with obs.tracer().span("sweep.run", points=len(specs)):
            records = executor.run(
                specs, cache=cache, refresh=refresh, on_outcome=on_outcome
            )
        rows = []
        for (workload_params, machine_params), record in zip(points, records):
            row: dict = {**workload_params, **machine_params}
            for name, fn in metrics.items():
                row[name] = fn(record)
            rows.append(row)
        return rows
