"""Minimal ASCII line charts for the figure-regeneration benches.

Renders one or more named series over a shared x axis into a fixed-size
character grid — enough to eyeball the curve shapes the paper's figures
show (knees, crossovers, saturation) straight from a terminal.
"""

from __future__ import annotations

__all__ = ["ascii_chart"]

_MARKS = "*o+x#@%&"


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a text chart.

    Series are drawn in insertion order with distinct marks; a legend maps
    marks to names.  X positions are scaled linearly between the global
    min and max.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top = f"{y_hi:.3g}"
    bottom = f"{y_lo:.3g}"
    label_w = max(len(top), len(bottom), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top.rjust(label_w)
        elif i == height - 1:
            prefix = bottom.rjust(label_w)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + "-" * (width + 2))
    lines.append(
        " " * label_w + f" {x_lo:.3g}".ljust(width // 2) + f"{x_hi:.3g}".rjust(width // 2)
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_w + " " + legend)
    return "\n".join(lines)
