"""Run-plan and resource accounting (paper Tables 1 and 3).

Table 1 arithmetic lives in :mod:`repro.tools.cost`; this module adds the
Table 3 run matrix (which (size, processor-count) points the campaign
executes) and ties both to an actual :class:`CampaignConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..tools.cost import ToolCost, existing_tools_cost, scal_tool_cost, table1_rows
from ..units import format_size, log2_int

__all__ = ["Table3Matrix", "table3_matrix", "table1_rows", "campaign_resources"]


@dataclass(frozen=True)
class Table3Matrix:
    """The Table 3 grid: rows are data-set sizes, columns processor counts."""

    s0: int
    processor_counts: tuple[int, ...]
    sizes: tuple[int, ...]
    cells: tuple[tuple[bool, ...], ...]  # cells[row][col]

    def runs(self) -> int:
        return sum(sum(row) for row in self.cells)

    def processors(self) -> int:
        total = 0
        for row, size_row in zip(self.cells, self.sizes):
            for marked, n in zip(row, self.processor_counts):
                if marked:
                    total += n
        return total

    def format(self) -> str:
        header = "Data Set Size".ljust(16) + "".join(f"{n:>6d}" for n in self.processor_counts)
        lines = [header, "-" * len(header)]
        for size, row in zip(self.sizes, self.cells):
            label = ("s0" if size == self.s0 else f"s0/{self.s0 // size}").ljust(10)
            label += format_size(size).rjust(6)
            lines.append(label + "".join(("     x" if m else "     .") for m in row))
        lines.append(f"runs: {self.runs()}   processors: {self.processors()}")
        return "\n".join(lines)


def table3_matrix(s0: int, processor_counts: tuple[int, ...]) -> Table3Matrix:
    """The paper's Table 3 for base size ``s0`` and the given counts.

    Base size runs at every processor count; each fractional size s0/2^i
    (down to s0/2^(k-1) for k counts) runs on the uniprocessor only.
    """
    if s0 < 1:
        raise ConfigError("s0 must be positive")
    for n in processor_counts:
        log2_int(n)  # must be powers of two, as in the paper
    k = len(processor_counts)
    sizes = [s0 // (2**i) for i in range(k)]
    cells = []
    for i, _size in enumerate(sizes):
        if i == 0:
            cells.append(tuple(True for _ in processor_counts))
        else:
            cells.append(tuple(n == 1 for n in processor_counts))
    return Table3Matrix(
        s0=s0,
        processor_counts=tuple(processor_counts),
        sizes=tuple(sizes),
        cells=tuple(cells),
    )


def campaign_resources(s0: int, processor_counts: tuple[int, ...]) -> dict[str, ToolCost]:
    """Both methodologies' Table 1 costs for an actual campaign shape."""
    n = len(processor_counts)
    return {
        "existing": existing_tools_cost(n),
        "scal_tool": scal_tool_cost(n),
    }
