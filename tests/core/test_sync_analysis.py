"""Sync/imbalance isolation (Eqs. 9-10) on the mini campaign."""

import pytest

from repro.core import ScalTool
from repro.core.sync_analysis import analyze_sync, cpi_imb_estimate, cpi_sync_by_n, tsyn_by_n
from repro.errors import InsufficientDataError

from ..conftest import tiny_machine_config


@pytest.fixture(scope="module")
def analysis(mini_campaign):
    return ScalTool(mini_campaign).analyze()


class TestKernelDerived:
    def test_cpi_sync_per_count(self, mini_campaign):
        table = cpi_sync_by_n(mini_campaign.sync_kernel_runs())
        assert sorted(table) == [1, 2, 4]
        assert all(v > 1.0 for v in table.values())

    def test_cpi_imb_close_to_machine_spin_cpi(self, mini_campaign):
        est = cpi_imb_estimate(mini_campaign.spin_kernel_runs())
        true = tiny_machine_config().timing.spin_cpi
        assert est == pytest.approx(true, rel=0.2)

    def test_cpi_imb_needs_multiprocessor_run(self, mini_campaign):
        only_uni = {1: mini_campaign.spin_kernel_runs()[1]}
        with pytest.raises(InsufficientDataError):
            cpi_imb_estimate(only_uni)

    def test_tsyn_positive_everywhere(self, mini_campaign):
        imb = cpi_imb_estimate(mini_campaign.spin_kernel_runs())
        tsyn = tsyn_by_n(mini_campaign.sync_kernel_runs(), imb)
        assert all(v > 0 for v in tsyn.values())

    def test_tsyn_magnitude_near_fetchop_roundtrip(self, mini_campaign):
        imb = cpi_imb_estimate(mini_campaign.spin_kernel_runs())
        tsyn = tsyn_by_n(mini_campaign.sync_kernel_runs(), imb)
        t = tiny_machine_config().timing
        assert tsyn[1] == pytest.approx(t.t_fetchop + t.t_fetchop_service, rel=0.6)

    def test_empty_kernels_rejected(self):
        with pytest.raises(InsufficientDataError):
            cpi_sync_by_n({})


class TestFractions:
    def test_uniprocessor_has_no_imbalance(self, analysis):
        assert analysis.sync.frac_imb(1) == 0.0

    def test_fractions_bounded(self, analysis):
        for n in (1, 2, 4):
            fs, fi = analysis.sync.frac_syn(n), analysis.sync.frac_imb(n)
            assert 0.0 <= fs <= 1.0
            assert 0.0 <= fi <= 1.0
            assert fs + fi <= 1.0

    def test_imbalanced_workload_shows_imbalance(self, analysis, mini_campaign):
        # the mini campaign's synthetic workload has imbalance_amp=0.2
        true_spin = mini_campaign.base_runs()[4].ground_truth.spin_cycles
        assert true_spin > 0
        assert analysis.sync.frac_imb(4) > 0

    def test_eq10_cost_formula(self, analysis, mini_campaign):
        n = 4
        rec = mini_campaign.base_runs()[n]
        expected = rec.counters.store_exclusive_to_shared * (
            analysis.params.cpi0 + analysis.sync.tsyn(n)
        )
        assert analysis.sync.cost_syn_by_n[n] == pytest.approx(expected)

    def test_summary_renders(self, analysis):
        text = analysis.sync.summary()
        assert "cpi_imb" in text and "frac_syn" in text
