"""Shared fixtures for the table/figure regeneration benches.

Campaigns for the three paper applications run once (disk-cached under
``.scaltool_cache``), and every bench writes its regenerated table/figure
both to stdout and to ``benchmarks/results/<name>.txt`` so the artifacts
survive pytest's output capturing.  EXPERIMENTS.md is written from these
artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import ScalTool
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.workloads import Hydro2d, Swim, T3dheat

PAPER_COUNTS = (1, 2, 4, 8, 16, 32)
RESULTS_DIR = Path(__file__).parent / "results"


def _campaign(workload):
    cfg = CampaignConfig(s0=workload.default_size(), processor_counts=PAPER_COUNTS)
    return cached_campaign(workload, cfg)


@pytest.fixture(scope="session")
def t3dheat_campaign():
    return _campaign(T3dheat())


@pytest.fixture(scope="session")
def hydro2d_campaign():
    return _campaign(Hydro2d())


@pytest.fixture(scope="session")
def swim_campaign():
    return _campaign(Swim())


@pytest.fixture(scope="session")
def t3dheat_analysis(t3dheat_campaign):
    return ScalTool(t3dheat_campaign).analyze()


@pytest.fixture(scope="session")
def hydro2d_analysis(hydro2d_campaign):
    return ScalTool(hydro2d_campaign).analyze()


@pytest.fixture(scope="session")
def swim_analysis(swim_campaign):
    return ScalTool(swim_campaign).analyze()


@pytest.fixture(scope="session")
def emit():
    """Write a regenerated artifact to stdout and benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def breakdown_table(analysis) -> str:
    """The Figure 6/9/12 data as a table (accumulated cycles)."""
    from repro.viz.tables import format_table

    return format_table(
        analysis.curves.rows(),
        columns=[
            "n",
            "base",
            "base-L2Lim",
            "base-L2Lim-Sync",
            "base-L2Lim-Imb",
            "base-L2Lim-MP",
            "L2Lim",
            "Sync",
            "Imb",
        ],
        title=f"{analysis.workload}: accumulated cycles and isolated bottleneck costs",
    )


def speedup_table(analysis) -> str:
    from repro.viz.tables import format_table

    rows = [{"n": n, "speedup": s} for n, s in analysis.curves.speedups()]
    return format_table(rows, title=f"{analysis.workload}: speedup vs processors")


def validation_table(analysis, campaign) -> str:
    from repro.core.validation import validate_mp

    return validate_mp(analysis, campaign, exact=True).summary()
