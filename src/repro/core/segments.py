"""Segment-level analysis (paper Section 2.1).

"Note that these plots can be obtained for the overall application or for
a segment of the application that is considered particularly important."

A *segment* is a named group of phases (matched by fnmatch patterns on
phase names — e.g. ``spmv_*`` vs ``cg_*`` for T3dheat's SpMV and vector
steps).  Per segment and processor count the analysis decomposes the
measured cycles using the globally estimated parameters:

* compute            — instructions x cpi0,
* L2-hit stalls      — h2_segment x t2 x instructions,
* memory stalls      — hm_segment x tm(n) x instructions,
* synchronization    — the segment's event-31 count x (cpi0 + tsyn(n)),
* residual           — everything else: load-imbalance spinning plus the
  model's unexplained share (reported, never hidden).

Segments are defined over per-phase counter deltas, which every run record
carries (the same data the perfex multiplex emulation uses).

Caveat inherited from the model: tm(n) is a *whole-run average*; segments
whose miss latency differs from it (irregular gathers above, pure cold
streams below) show the difference as residual — or, at high n where
tm(n) has absorbed MP latency, as a memory term that can exceed the
segment's own cycles.  The decomposition reports both faithfully rather
than hiding them.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..machine.counters import CounterSet
from ..runner.campaign import CampaignData
from .scaltool import ScalToolAnalysis

__all__ = ["SegmentBreakdown", "SegmentAnalysis", "analyze_segments", "phase_names"]


@dataclass(frozen=True)
class SegmentBreakdown:
    """One segment's cycle decomposition at one processor count."""

    segment: str
    n_processors: int
    n_phases: int
    cycles: float
    instructions: float
    compute_cycles: float
    l2_hit_stall_cycles: float
    memory_stall_cycles: float
    sync_cycles: float
    residual_cycles: float

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def modeled_cycles(self) -> float:
        return (
            self.compute_cycles
            + self.l2_hit_stall_cycles
            + self.memory_stall_cycles
            + self.sync_cycles
        )

    @property
    def residual_fraction(self) -> float:
        return self.residual_cycles / self.cycles if self.cycles else 0.0

    def row(self) -> dict:
        return {
            "segment": self.segment,
            "n": self.n_processors,
            "phases": self.n_phases,
            "cycles": self.cycles,
            "compute": self.compute_cycles,
            "L2-hit stall": self.l2_hit_stall_cycles,
            "memory stall": self.memory_stall_cycles,
            "sync": self.sync_cycles,
            "residual": self.residual_cycles,
        }


@dataclass
class SegmentAnalysis:
    """All segments across all processor counts."""

    workload: str
    groups: dict[str, str]
    breakdowns: list[SegmentBreakdown] = field(default_factory=list)

    def at(self, segment: str, n: int) -> SegmentBreakdown:
        for b in self.breakdowns:
            if b.segment == segment and b.n_processors == n:
                return b
        raise InsufficientDataError(f"no breakdown for segment {segment!r} at n={n}")

    def segments(self) -> list[str]:
        return list(self.groups)

    def dominant_cost(self, segment: str, n: int) -> str:
        b = self.at(segment, n)
        costs = {
            "compute": b.compute_cycles,
            "L2-hit stalls": b.l2_hit_stall_cycles,
            "memory stalls": b.memory_stall_cycles,
            "synchronization": b.sync_cycles,
            "residual (imbalance + unmodeled)": b.residual_cycles,
        }
        return max(costs, key=costs.get)

    def rows(self) -> list[dict]:
        return [b.row() for b in self.breakdowns]

    def summary(self) -> str:
        from ..viz.tables import format_table

        return format_table(self.rows(), title=f"{self.workload}: segment-level breakdown")


def phase_names(campaign: CampaignData, n: int = 1) -> list[str]:
    """Phase names recorded for the base run at ``n`` (segment-pattern aid)."""
    base = campaign.base_runs()
    if n not in base:
        raise InsufficientDataError(f"no base run at n={n}")
    return [name for name, _ in base[n].phase_counters]


def analyze_segments(
    analysis: ScalToolAnalysis,
    campaign: CampaignData,
    groups: dict[str, str],
    processor_counts: list[int] | None = None,
) -> SegmentAnalysis:
    """Decompose each phase group's cycles at each processor count.

    ``groups`` maps segment names to fnmatch patterns over phase names,
    e.g. ``{"spmv": "spmv_*", "vector steps": "cg_*"}``.  Phases matching
    no pattern are ignored; a pattern matching no phase raises.
    """
    if not groups:
        raise InsufficientDataError("no segment groups given")
    base_runs = campaign.base_runs()
    counts = processor_counts or sorted(base_runs)
    result = SegmentAnalysis(workload=analysis.workload, groups=dict(groups))

    for n in counts:
        if n not in base_runs:
            raise InsufficientDataError(f"no base run at n={n}")
        rec = base_runs[n]
        if not rec.phase_counters:
            raise InsufficientDataError(
                "run records carry no per-phase counters (campaign ran with keep_phases=False)"
            )
        tm = analysis.params.tm(n)
        tsyn = analysis.sync.tsyn_by_n.get(n, 0.0)
        for segment, pattern in groups.items():
            matched = [
                delta for name, delta in rec.phase_counters if fnmatch.fnmatch(name, pattern)
            ]
            if not matched:
                raise InsufficientDataError(
                    f"segment {segment!r}: pattern {pattern!r} matched no phase "
                    f"(have: {[name for name, _ in rec.phase_counters][:8]}...)"
                )
            total = CounterSet.total(matched)
            inst = total.graduated_instructions
            compute = inst * analysis.params.cpi0
            l2_stall = total.h2 * analysis.params.t2 * inst
            mem_stall = total.hm * tm * inst
            sync = total.store_exclusive_to_shared * (analysis.params.cpi0 + tsyn)
            modeled = compute + l2_stall + mem_stall + sync
            residual = max(0.0, total.cycles - modeled)
            result.breakdowns.append(
                SegmentBreakdown(
                    segment=segment,
                    n_processors=n,
                    n_phases=len(matched),
                    cycles=total.cycles,
                    instructions=inst,
                    compute_cycles=compute,
                    l2_hit_stall_cycles=l2_stall,
                    memory_stall_cycles=mem_stall,
                    sync_cycles=sync,
                    residual_cycles=residual,
                )
            )
    return result
