"""speedshop PC-sampling emulation."""

import re

import pytest

from repro.errors import ValidationError
from repro.runner.records import RunRecord
from repro.obs.sampler import SampleProfile
from repro.tools.speedshop import (
    format_sampler_profile,
    profile_record,
    profile_run,
)

from ..conftest import small_synthetic


@pytest.fixture
def result(machine):
    return machine.run(small_synthetic(serial_frac=0.2, barriers_per_iter=3), 16 * 1024)


class TestProfile:
    def test_exact_matches_ground_truth(self, result):
        p = profile_run(result, exact=True)
        gt = result.ground_truth
        assert p.sync_cycles == pytest.approx(gt.sync_cycles)
        assert p.imbalance_cycles == pytest.approx(gt.spin_cycles)
        assert p.mp_cycles == pytest.approx(gt.multiprocessor_cycles)

    def test_sampled_close_to_exact(self, result):
        p = profile_run(result, sampling_period=500, seed=1)
        gt = result.ground_truth
        assert p.mp_cycles == pytest.approx(gt.multiprocessor_cycles, rel=0.2, abs=2000)

    def test_buckets_sum_to_total(self, result):
        p = profile_run(result, sampling_period=1000)
        assert p.compute_cycles + p.sync_cycles + p.imbalance_cycles == pytest.approx(
            p.total_cycles, rel=1e-6
        )

    def test_deterministic_seed(self, result):
        p1 = profile_run(result, seed=3)
        p2 = profile_run(result, seed=3)
        assert p1.sync_cycles == p2.sync_cycles

    def test_routine_table_names_match_paper(self, result):
        names = [name for name, _ in profile_run(result, exact=True).routine_table()]
        assert "mp_barrier" in names
        assert "mp_slave_wait_for_work" in names

    def test_format_renders(self, result):
        assert "speedshop" in profile_run(result).format()

    def test_profile_record(self, result):
        rec = RunRecord.from_result(result)
        p = profile_record(rec, exact=True)
        assert p.mp_cycles == pytest.approx(result.ground_truth.multiprocessor_cycles)

    def test_record_without_gt_rejected(self, result):
        rec = RunRecord.from_result(result).without_ground_truth()
        with pytest.raises(ValidationError):
            profile_record(rec)


class TestSharedReportPath:
    """The paper emulation and the live line sampler render through one
    formatter — a tiny campaign's worth of each must parse with the same
    row regex (the satellite reconciling speedshop with the sampler)."""

    ROW = re.compile(r"^  (\S+)\s+([\d,]+) \(\s*([\d.]+)%\)$")

    def _parse(self, report: str) -> list[tuple[str, float]]:
        rows = []
        lines = report.splitlines()
        assert len(lines) >= 3, report
        # Shared shape: title line, two indented summary lines, rows.
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  ") and lines[2].startswith("  ")
        for line in lines[3:]:
            m = self.ROW.match(line)
            assert m, f"row does not match shared format: {line!r}"
            rows.append((m.group(1), float(m.group(2).replace(",", ""))))
        return rows

    def test_speedshop_and_sampler_share_row_format(self, result):
        speedshop_report = profile_run(result, exact=True).format()

        profile = SampleProfile(interval_s=0.005)
        profile.note("run", ("repro/machine/cache.py:insert:120",), 9)
        profile.note("run", ("repro/machine/cache.py:insert:120", "repro/machine/cache.py:touch:117"), 4)
        profile.duration_s = 0.065
        sampler_report = format_sampler_profile(profile)

        speedshop_rows = self._parse(speedshop_report)
        sampler_rows = self._parse(sampler_report)
        assert [n for n, _ in speedshop_rows] == [
            n for n, _ in profile_run(result, exact=True).routine_table()
        ]
        assert sampler_rows == [("insert", 9.0), ("touch", 4.0)]
        assert "samples:" in speedshop_report and "samples:" in sampler_report

    def test_sampler_report_accepts_dict_form(self):
        profile = SampleProfile()
        profile.note("", ("a.py:f:1",), 2)
        assert format_sampler_profile(profile) == format_sampler_profile(profile.to_dict())
