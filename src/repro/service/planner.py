"""The request planner: spec-level dedup across concurrent jobs.

Two service jobs frequently need the same runs — an ``analyze`` and a
``predict`` over the same workload share the entire Table-3 campaign;
two sweeps share their grid intersection.  The engine's
:class:`~repro.runner.engine.RunCache` already dedups *completed* runs;
the planner closes the remaining window by dedupping runs that are
*currently executing* on behalf of another job:

* specs whose cache entry exists are counted as cache hits and dropped
  from the work list;
* specs another job has already claimed are *waited on* (the claiming
  job's batch will populate the cache);
* the remainder is *claimed* by this job and handed to the batcher.

Claiming is atomic over the whole key set (one lock), so two jobs that
plan concurrently partition the overlap instead of both executing it.
A claim is always released — even when the claiming batch fails — and a
waiter re-checks the cache afterwards: if the owner failed, the waiter
simply executes the spec itself during result assembly, so a crashed
job never wedges its peers.

Claims also *expire*: each carries a heartbeat timestamp, refreshed by
the owner during long batches, and :meth:`InFlightTable.claim` reaps
claims whose heartbeat is older than the TTL before partitioning.  A
claim orphaned by a dead worker therefore blocks dedup for at most one
TTL instead of forever.  Cross-process deployments swap the in-memory
table for :class:`repro.service.shared.SqliteClaimTable` (same
``claim`` / ``release`` / ``heartbeat`` surface, SQLite WAL backing,
plus owner-pid liveness checks) — the planner is backend-agnostic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..obs import runtime as obs
from ..runner.engine import RunCache, RunSpec
from .requests import CompiledRequest

__all__ = ["InFlightTable", "RequestPlan", "RequestPlanner"]


class InFlightTable:
    """Thread-safe registry of run-spec keys currently being executed.

    ``ttl`` bounds how long an unreleased claim can block peers: claims
    whose heartbeat is older than ``ttl`` seconds are expired (their
    waiters woken) on the next :meth:`claim`.  ``ttl=None`` disables
    expiry (the pre-TTL behaviour).
    """

    def __init__(self, ttl: float | None = None) -> None:
        self._lock = threading.Lock()
        self.ttl = ttl
        self._events: dict[str, threading.Event] = {}
        self._heartbeats: dict[str, float] = {}

    def _expire_locked(self, now: float) -> None:
        if self.ttl is None:
            return
        stale = [k for k, hb in self._heartbeats.items() if now - hb > self.ttl]
        for key in stale:
            self._heartbeats.pop(key, None)
            event = self._events.pop(key, None)
            if event is not None:
                event.set()
        if stale:
            obs.registry().inc("service.claims.expired", len(stale))

    def claim(self, keys: list[str]) -> tuple[list[str], dict[str, threading.Event]]:
        """Partition ``keys`` into (claimed by me, already in flight).

        Claimed keys get a fresh event that :meth:`release` will set;
        in-flight keys map to the owner's event to wait on.  Stale
        claims (heartbeat older than the TTL) are expired first, so an
        orphaned claim is reclaimed by the next job that wants it.
        """
        claimed: list[str] = []
        waiting: dict[str, threading.Event] = {}
        now = time.time()
        with self._lock:
            self._expire_locked(now)
            for key in keys:
                event = self._events.get(key)
                if event is None:
                    self._events[key] = threading.Event()
                    self._heartbeats[key] = now
                    claimed.append(key)
                else:
                    waiting[key] = event
        return claimed, waiting

    def release(self, keys: list[str]) -> None:
        """Mark claimed keys finished (success *or* failure) and wake waiters."""
        with self._lock:
            events = [self._events.pop(key, None) for key in keys]
            for key in keys:
                self._heartbeats.pop(key, None)
        for event in events:
            if event is not None:
                event.set()

    def heartbeat(self, keys: list[str]) -> None:
        """Refresh claims still being worked on (call during long batches)."""
        now = time.time()
        with self._lock:
            for key in keys:
                if key in self._heartbeats:
                    self._heartbeats[key] = now

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


@dataclass
class RequestPlan:
    """How one request's spec set resolved at planning time."""

    specs: list[RunSpec]  # unique specs, in request order
    claimed: list[RunSpec]  # this job executes these (via the batcher)
    waiting: dict[str, object] = field(default_factory=dict)  # key -> waiter
    cache_hits: int = 0

    @property
    def claimed_keys(self) -> list[str]:
        return [spec.key() for spec in self.claimed]


class RequestPlanner:
    """Compile a request into a deduplicated execution plan.

    ``inflight`` is any claim backend exposing ``claim(keys)`` /
    ``release(keys)`` (optionally ``heartbeat(keys)``): the in-process
    :class:`InFlightTable` by default, the cross-process
    :class:`repro.service.shared.SqliteClaimTable` under a multi-worker
    dispatcher.  Waiters returned by ``claim`` need only ``.wait(timeout)``.
    """

    def __init__(self, cache: RunCache, inflight=None) -> None:
        self.cache = cache
        self.inflight = inflight if inflight is not None else InFlightTable()

    def plan(self, request: CompiledRequest) -> RequestPlan:
        reg = obs.registry()
        with obs.tracer().span("service.plan", kind=request.kind) as span:
            unique: dict[str, RunSpec] = {}
            for spec in request.specs():
                unique.setdefault(spec.key(), spec)
            cached = {k for k, s in unique.items() if self.cache.contains(s)}
            claimed_keys, waiting = self.inflight.claim(
                [k for k in unique if k not in cached]
            )
            plan = RequestPlan(
                specs=list(unique.values()),
                claimed=[unique[k] for k in claimed_keys],
                waiting=waiting,
                cache_hits=len(cached),
            )
            span.set(
                specs=len(unique),
                cache_hits=plan.cache_hits,
                claimed=len(plan.claimed),
                waiting=len(waiting),
            )
        reg.inc("service.plan.specs", len(unique))
        reg.inc("service.plan.cache_hits", plan.cache_hits)
        reg.inc("service.plan.claimed", len(plan.claimed))
        reg.inc("service.plan.inflight_waits", len(waiting))
        return plan

    def complete(self, plan: RequestPlan) -> None:
        """Release this plan's claims (call exactly once, success or not)."""
        self.inflight.release(plan.claimed_keys)

    def heartbeat(self, plan: RequestPlan) -> None:
        """Refresh this plan's claims while its batch is still executing."""
        hb = getattr(self.inflight, "heartbeat", None)
        if hb is not None and plan.claimed:
            hb(plan.claimed_keys)

    def wait(self, plan: RequestPlan, timeout: float | None = None) -> bool:
        """Block until every spec claimed by *other* jobs has settled.

        Returns False if ``timeout`` expired first; result assembly then
        just executes whatever is still missing itself.
        """
        ok = True
        for waiter in plan.waiting.values():
            ok = waiter.wait(timeout) and ok
        return ok
