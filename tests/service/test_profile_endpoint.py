"""``GET /v1/profile``: live stack sampling of the serving processes.

Engine-free: profiling an idle service still samples its own machinery
(HTTP threads, queue workers), which is all these tests need — the
structural contract matters, not what the threads happen to be doing.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.dispatcher import Dispatcher
from repro.service.http import ServiceServer, _profile_params

PROFILE_KEYS = {"seconds", "interval_s", "shard", "pid", "profile"}
SAMPLE_PROFILE_KEYS = {
    "interval_s",
    "n_samples",
    "duration_s",
    "overhead_s",
    "overhead_ratio",
    "folded",
    "spans",
    "functions",
    "lines",
    "memory",
}


class TestProfileParams:
    def test_defaults(self):
        assert _profile_params("") == (1.0, 0.005)

    def test_explicit_values(self):
        assert _profile_params("seconds=0.25&interval_ms=2") == (0.25, 0.002)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ReproError):
            _profile_params("second=1")

    def test_non_numeric_rejected(self):
        with pytest.raises(ReproError):
            _profile_params("seconds=fast")


class TestSingleProcess:
    @pytest.fixture
    def server(self, tmp_path, stub_requests):
        srv = ServiceServer(
            ServiceConfig(cache_dir=tmp_path, workers=1, batch_window=0.0), port=0
        ).start()
        yield srv
        srv.shutdown(drain_timeout=10)

    def test_profile_view_shape_and_clamping(self, server):
        client = ServiceClient(server.url, timeout=10)
        try:
            view = client.profile(seconds=0.1, interval_ms=2.0)
        finally:
            client.close()
        assert set(view) == PROFILE_KEYS
        assert view["seconds"] == pytest.approx(0.1)
        assert view["interval_s"] == pytest.approx(0.002)
        assert view["shard"] == 0
        assert set(view["profile"]) == SAMPLE_PROFILE_KEYS
        # An idle service still has live threads to observe.
        assert view["profile"]["n_samples"] > 0

    def test_profile_updates_overhead_gauge_in_metrics(self, server):
        client = ServiceClient(server.url, timeout=10)
        try:
            client.profile(seconds=0.1, interval_ms=5.0)
            text = client.metrics()
        finally:
            client.close()
        assert "scaltool_profile_overhead_ratio" in text
        assert "scaltool_profile_requests_total 1" in text

    def test_bad_query_answers_400(self, server):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(server.url + "/v1/profile?bogus=1")
        assert exc_info.value.code == 400


class TestDispatcherMerge:
    @pytest.fixture(scope="class")
    def dispatcher(self, tmp_path_factory):
        disp = Dispatcher(
            ServiceConfig(cache_dir=tmp_path_factory.mktemp("fleet")),
            worker_count=2,
            port=0,
        ).start()
        yield disp
        disp.shutdown()

    def _profile(self, dispatcher) -> dict:
        client = ServiceClient(dispatcher.url, timeout=30)
        try:
            return client.profile(seconds=0.15, interval_ms=2.0)
        finally:
            client.close()

    def test_merged_profile_structure_is_stable_across_calls(self, dispatcher):
        first = self._profile(dispatcher)
        second = self._profile(dispatcher)
        for view in (first, second):
            assert set(view) == {"seconds", "interval_s", "workers", "missing", "profile"}
            assert view["missing"] == 0
            assert [w["shard"] for w in view["workers"]] == [0, 1]
            assert all(
                set(w) == {"shard", "pid", "n_samples", "overhead_ratio"}
                for w in view["workers"]
            )
            assert set(view["profile"]) == SAMPLE_PROFILE_KEYS
        # Byte-stable structure: identical key sets and worker ordering,
        # with only sampled values free to differ between calls.
        assert list(first["profile"]) == list(second["profile"])

    def test_merged_counts_cover_every_worker(self, dispatcher):
        view = self._profile(dispatcher)
        merged = view["profile"]["n_samples"]
        assert merged == sum(w["n_samples"] for w in view["workers"])
        assert merged > 0
