"""The CPI-breakdown equations of Section 2.

The model's one structural assumption (Eq. 1):

    cpi = cpi0 + h2 * t2 + hm * tm(n)

with the frequencies rewritten in terms of the local hit rates and the
memory-instruction fraction (Eqs. 6–8):

    h2 = (1 - L1hitr) * L2hitr * m
    hm = (1 - L1hitr) * (1 - L2hitr) * m
    cpi = cpi0 + (1 - L1hitr) * m * [L2hitr * t2 + (1 - L2hitr) * tm(n)]

All functions are pure so the estimators, the bottleneck isolation, and
the what-if engine share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EstimationError
from ..units import clamp

__all__ = ["MemoryRates", "CpiParameters", "cpi_linear", "cpi_from_rates", "solve_tm", "rates_to_frequencies"]


@dataclass(frozen=True)
class MemoryRates:
    """(L1hitr, L2hitr, m) — the hit-rate view of a run (Eq. 8 inputs)."""

    l1_hit_rate: float
    l2_hit_rate: float
    m_frac: float

    def __post_init__(self) -> None:
        for name, v in (
            ("l1_hit_rate", self.l1_hit_rate),
            ("l2_hit_rate", self.l2_hit_rate),
        ):
            if not (-1e-9 <= v <= 1.0 + 1e-9):
                raise EstimationError(f"{name} out of [0, 1]: {v}")
        if not (0.0 <= self.m_frac <= 1.0 + 1e-9):
            raise EstimationError(f"m_frac out of [0, 1]: {self.m_frac}")

    def clamped(self) -> "MemoryRates":
        return MemoryRates(
            clamp(self.l1_hit_rate, 0.0, 1.0),
            clamp(self.l2_hit_rate, 0.0, 1.0),
            clamp(self.m_frac, 0.0, 1.0),
        )

    @classmethod
    def from_counters(cls, counters) -> "MemoryRates":
        """Extract the rates from a :class:`~repro.machine.counters.CounterSet`."""
        return cls(
            clamp(counters.l1_hit_rate, 0.0, 1.0),
            clamp(counters.l2_local_hit_rate, 0.0, 1.0),
            clamp(counters.m_frac, 0.0, 1.0),
        )


@dataclass
class CpiParameters:
    """The estimated model parameters (what Sections 2.2–2.3 produce)."""

    cpi0: float
    t2: float
    tm_by_n: dict[int, float] = field(default_factory=dict)

    def tm(self, n: int) -> float:
        try:
            return self.tm_by_n[n]
        except KeyError:
            raise EstimationError(f"tm not estimated for n={n}; have {sorted(self.tm_by_n)}") from None


def cpi_linear(cpi0: float, h2: float, hm: float, t2: float, tm: float) -> float:
    """Equation 1: cpi = cpi0 + h2 t2 + hm tm."""
    return cpi0 + h2 * t2 + hm * tm


def rates_to_frequencies(rates: MemoryRates) -> tuple[float, float]:
    """Equations 6–7: (h2, hm) from the hit-rate view."""
    miss1 = (1.0 - rates.l1_hit_rate) * rates.m_frac
    h2 = miss1 * rates.l2_hit_rate
    hm = miss1 * (1.0 - rates.l2_hit_rate)
    return h2, hm


def cpi_from_rates(cpi0: float, t2: float, tm: float, rates: MemoryRates) -> float:
    """Equation 8: the CPI under a (possibly hypothetical) hit-rate triple."""
    h2, hm = rates_to_frequencies(rates)
    return cpi_linear(cpi0, h2, hm, t2, tm)


def solve_tm(cpi: float, cpi0: float, h2: float, hm: float, t2: float) -> float:
    """Invert Equation 1 for tm (Section 2.3's per-processor-count step).

    Raises if the run has essentially no L2 misses — tm is then
    unidentifiable, which the caller must handle (the paper only applies
    this at the base size, which always misses).
    """
    if hm <= 1e-12:
        raise EstimationError("cannot estimate tm from a run with no L2 misses (hm ~ 0)")
    return (cpi - cpi0 - h2 * t2) / hm
