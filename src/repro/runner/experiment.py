"""Single-experiment execution: one workload at one (size, n) point."""

from __future__ import annotations

from typing import Callable

from ..machine.config import MachineConfig, origin2000_scaled
from ..machine.system import DsmMachine, RunResult
from ..workloads.base import Workload
from .records import ROLE_APP_BASE, RunRecord

__all__ = ["run_experiment", "default_machine_factory", "build_machine"]

MachineFactory = Callable[[int], MachineConfig]


def build_machine(config: MachineConfig) -> DsmMachine:
    """Construct the simulator for ``config``.

    The sanctioned construction site: everything outside the execution
    engine (and the engine itself) obtains machines through here or
    through :func:`run_experiment`, never by calling ``DsmMachine``
    directly, so run execution stays auditable in one layer.
    """
    return DsmMachine(config)


def default_machine_factory(scale: int = 64, seed: int = 0) -> MachineFactory:
    """The standard substrate: the scaled Origin 2000 at any processor count."""

    def factory(n_processors: int) -> MachineConfig:
        return origin2000_scaled(n_processors=n_processors, scale=scale, seed=seed)

    return factory


def run_experiment(
    workload: Workload,
    size_bytes: int,
    n_processors: int,
    machine_factory: MachineFactory | None = None,
    role: str = ROLE_APP_BASE,
    keep_ground_truth: bool = True,
) -> RunRecord:
    """Run ``workload`` once and return its measurement record.

    A fresh machine is built per run (cold caches, unassigned page homes),
    exactly as each row of the paper's Table 3 is an independent program
    execution.
    """
    factory = machine_factory or default_machine_factory()
    machine = build_machine(factory(n_processors))
    result: RunResult = machine.run(workload, size_bytes)
    return RunRecord.from_result(result, role=role, keep_ground_truth=keep_ground_truth)
