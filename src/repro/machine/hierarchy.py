"""Per-node two-level cache hierarchy with inclusion and miss bookkeeping.

Each node owns an L1 data cache and an L2 slice.  The hierarchy enforces
inclusion (an L2 eviction or invalidation also drops the L1 copy), keeps L1
presence-only (stores write through their *state* to the L2 line, so MESI
lives in the L2 — the coherence unit, as on the Origin 2000), and records
the two per-block sets the ground-truth miss classifier needs:

* ``seen``        — blocks ever resident in this L2 (a miss on an unseen
  block is *cold/compulsory*);
* ``invalidated`` — blocks whose line was removed by a coherence
  invalidation since it was last resident (a miss on such a block is a
  *coherence miss*; everything else is a *replacement* —
  capacity/conflict — miss, which the paper lumps as "conflict misses").
"""

from __future__ import annotations

from .cache import Eviction, SetAssociativeCache
from .config import CacheConfig

__all__ = ["COLD", "COHERENCE", "REPLACEMENT", "CacheHierarchy"]

COLD = "cold"
COHERENCE = "coherence"
REPLACEMENT = "replacement"


class CacheHierarchy:
    """L1 + L2 of one node."""

    __slots__ = ("node", "l1", "l2", "seen", "invalidated")

    def __init__(self, node: int, l1_cfg: CacheConfig, l2_cfg: CacheConfig, seed: int = 0) -> None:
        self.node = node
        self.l1 = SetAssociativeCache(l1_cfg, seed=seed * 1021 + node)
        self.l2 = SetAssociativeCache(l2_cfg, seed=seed * 2039 + node)
        self.seen: set[int] = set()
        self.invalidated: set[int] = set()

    # -- local lookups ---------------------------------------------------------

    def l1_hit(self, block: int) -> bool:
        """Probe+touch the L1; True on hit."""
        return self.l1.touch(block)

    def l2_state(self, block: int) -> int:
        return self.l2.state_of(block)

    def l2_touch(self, block: int) -> None:
        self.l2.touch(block)

    # -- fills -------------------------------------------------------------------

    def l1_fill(self, block: int) -> None:
        """Install in L1 (L1 victims need no writeback: inclusion keeps data in L2)."""
        from .cache import SHARED  # local import keeps module load order simple

        self.l1.insert(block, SHARED)

    def l2_fill(self, block: int, state: int) -> Eviction | None:
        """Install in L2; on eviction the L1 copy is dropped too (inclusion).

        Returns the L2 eviction so the controller can write back dirty data
        and update the directory.
        """
        evicted = self.l2.insert(block, state)
        self.seen.add(block)
        self.invalidated.discard(block)
        if evicted is not None:
            self.l1.invalidate(evicted.block)
        return evicted

    # -- coherence actions (driven by the directory controller) -------------------

    def coherence_invalidate(self, block: int) -> int:
        """Remove the line on a remote write; returns its prior L2 state."""
        self.l1.invalidate(block)
        prior = self.l2.invalidate(block)
        if prior:
            self.invalidated.add(block)
        return prior

    def coherence_downgrade(self, block: int) -> bool:
        """Drop to SHARED on a remote read; returns True if it was dirty."""
        return self.l2.downgrade(block)

    # -- classification -------------------------------------------------------------

    def classify_miss(self, block: int) -> str:
        """Ground-truth class of an L2 miss happening *now* on ``block``."""
        if block not in self.seen:
            return COLD
        if block in self.invalidated:
            return COHERENCE
        return REPLACEMENT

    def flush(self) -> None:
        """Reset caches and bookkeeping (between independent runs)."""
        self.l1.flush()
        self.l2.flush()
        self.seen.clear()
        self.invalidated.clear()

    def check_invariants(self) -> None:
        """L1 ⊆ L2 plus per-cache structural invariants."""
        self.l1.check_invariants()
        self.l2.check_invariants()
        for block in self.l1.resident_blocks():
            if not self.l2.contains(block):
                from ..errors import SimulationError

                raise SimulationError(f"node {self.node}: L1 block {block} violates inclusion")
