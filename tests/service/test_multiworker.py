"""Multi-process deployment end-to-end.

Two properties anchor the horizontal-scaling work:

* **Byte-identity**: the same request answered serially (direct library
  execution), by a single-process service, and through a dispatcher
  with two worker processes produces byte-identical ``output`` text.
* **Crash recovery** (the SIGKILL satellite): kill -9 a worker mid-job;
  the supervisor respawns it, the replacement recovers the persisted
  job, the dead owner's claim is reclaimed via pid liveness, and the
  final result is byte-identical to an undisturbed run.
"""

from __future__ import annotations

import os
import shutil
import signal
import time

import pytest

from repro.service import requests as req_mod
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.dispatcher import Dispatcher
from repro.service.http import ServiceServer

from .conftest import WARM_PAYLOAD

#: Every campaign-backed request kind over the shared warm campaign.
CASES = [
    ("analyze", WARM_PAYLOAD),
    ("campaign", WARM_PAYLOAD),
    ("whatif", {**WARM_PAYLOAD, "tm": 0.5}),
    ("blame", WARM_PAYLOAD),
]


def _service_outputs(url: str) -> dict[str, str]:
    """Submit every case, then collect ``result.output`` per kind."""
    client = ServiceClient(url, timeout=30)
    try:
        ids = {kind: client.submit(kind, payload)["id"] for kind, payload in CASES}
        return {
            kind: client.wait(job_id, timeout=120)["result"]["output"]
            for kind, job_id in ids.items()
        }
    finally:
        client.close()


class TestByteIdentity:
    """serial ≡ parallel ≡ multi-worker, output byte-for-byte."""

    @pytest.fixture(scope="class")
    def roots(self, tmp_path_factory):
        """Three independent cache roots seeded with the same warm campaign."""
        base = tmp_path_factory.mktemp("identity")
        seed = base / "seed"
        req_mod.compile_request("campaign", WARM_PAYLOAD).execute(cache_root=seed)
        for name in ("serial", "single", "fleet"):
            shutil.copytree(seed, base / name)
        return base

    @pytest.fixture(scope="class")
    def serial_outputs(self, roots):
        return {
            kind: req_mod.compile_request(kind, payload)
            .execute(cache_root=roots / "serial")
            .output
            for kind, payload in CASES
        }

    @pytest.fixture(scope="class")
    def single_outputs(self, roots):
        srv = ServiceServer(
            ServiceConfig(cache_dir=roots / "single", workers=2, batch_window=0.0),
            port=0,
        ).start()
        try:
            yield _service_outputs(srv.url)
        finally:
            srv.shutdown(drain_timeout=10)

    @pytest.fixture(scope="class")
    def fleet_outputs(self, roots):
        disp = Dispatcher(
            ServiceConfig(cache_dir=roots / "fleet", workers=2),
            worker_count=2,
            port=0,
        ).start()
        try:
            yield _service_outputs(disp.url)
        finally:
            disp.shutdown()

    def test_single_process_service_matches_serial(
        self, serial_outputs, single_outputs
    ):
        assert single_outputs == serial_outputs

    def test_two_worker_fleet_matches_serial(self, serial_outputs, fleet_outputs):
        assert fleet_outputs == serial_outputs

    def test_every_kind_produced_output(self, serial_outputs):
        assert all(out.strip() for out in serial_outputs.values())


class TestCrashRecovery:
    def test_sigkill_mid_job_converges_byte_identical(self, tmp_path):
        """The satellite: a worker dies mid-job and the system converges."""
        expected = (
            req_mod.compile_request("campaign", WARM_PAYLOAD)
            .execute(cache_root=tmp_path / "undisturbed")
            .output
        )
        disp = Dispatcher(
            ServiceConfig(cache_dir=tmp_path / "fleet", workers=2),
            worker_count=2,
            port=0,
        ).start()
        client = ServiceClient(disp.url, timeout=30)
        try:
            job_id = client.submit("campaign", WARM_PAYLOAD)["id"]
            home = disp.shard_of(job_id)
            first_pid = home.pid
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.status(job_id)["state"] in ("running", "done"):
                    break
                time.sleep(0.02)
            else:  # pragma: no cover - startup hang
                pytest.fail("job never left the queue")
            os.kill(first_pid, signal.SIGKILL)
            view = client.wait(job_id, timeout=180)
            assert view["state"] == "done"
            assert view["result"]["output"] == expected
            # The supervisor replaced the shard, same slot, new process.
            assert home.alive and home.pid != first_pid
            assert home.restarts >= 1
        finally:
            client.close()
            disp.shutdown()
