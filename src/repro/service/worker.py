"""Worker-process entry: one shard of the multi-process service.

``python -m repro.service.worker --shard-index I --shard-count N ...``
starts a full :class:`~repro.service.http.ServiceServer` (HTTP front +
:class:`~repro.service.core.AnalysisService`) bound to an ephemeral
port, writes ``{"port", "pid", "shard"}`` to ``--port-file`` (atomic
write-then-rename) so the spawning dispatcher can find it, and serves
until SIGTERM — which drains in-flight jobs before exiting.

Workers share the cache root: the run cache (and its SQLite index), the
claim table, and the job store are common; each worker *recovers* and
*executes* only the jobs the hash ring routes to its shard.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
from pathlib import Path

from ..obs.logs import get_logger, kv
from .core import ServiceConfig
from .http import ServiceServer

__all__ = ["main", "build_config"]

_log = get_logger("service.worker")


def build_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        workers=args.concurrency,
        max_queue=args.max_queue,
        job_timeout=args.job_timeout,
        batch_window=args.batch_window,
        shard_index=args.shard_index,
        shard_count=args.shard_count,
        claim_ttl=args.claim_ttl,
    )


def _write_port_file(path: Path, port: int, shard: int) -> None:
    payload = json.dumps({"port": port, "pid": os.getpid(), "shard": shard})
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".")
    with os.fdopen(fd, "w") as fh:
        fh.write(payload + "\n")
    os.replace(tmp, path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="scaltool service worker (one shard)")
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--shard-index", type=int, default=0)
    parser.add_argument("--shard-count", type=int, default=1)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--port-file", default=None)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--concurrency", type=int, default=2)
    parser.add_argument("--max-queue", type=int, default=32)
    parser.add_argument("--job-timeout", type=float, default=600.0)
    parser.add_argument("--batch-window", type=float, default=0.02)
    parser.add_argument("--claim-ttl", type=float, default=60.0)
    args = parser.parse_args(argv)

    server = ServiceServer(build_config(args), host=args.host, port=args.port)

    def _terminate(signum, frame):  # noqa: ARG001 - signal API
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    if args.port_file:
        _write_port_file(Path(args.port_file), server.address[1], args.shard_index)
    _log.debug(
        "worker up %s",
        kv(shard=f"{args.shard_index}/{args.shard_count}", url=server.url, pid=os.getpid()),
    )
    server.serve_forever()  # drains on SystemExit via its finally: shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
