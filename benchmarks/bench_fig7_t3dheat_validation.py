"""Figure 7: validation of the model for T3dheat.

Paper: speedshop PC sampling of the barrier/wait routines gives an MP
measurement "remarkably similar" to Scal-Tool's estimate.
"""

from repro.core.validation import validate_mp


def test_fig7(benchmark, emit, t3dheat_analysis, t3dheat_campaign):
    comparison = benchmark(validate_mp, t3dheat_analysis, t3dheat_campaign, exact=True)
    emit("fig7_t3dheat_validation", comparison.summary())

    _, worst = comparison.max_divergence()
    assert worst < 0.10  # "remarkably similar"
    for n in comparison.processor_counts:
        assert comparison.estimated_base_minus_mp(n) > 0
