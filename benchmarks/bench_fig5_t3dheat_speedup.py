"""Figure 5: speedups for T3dheat.

Paper: "good speedups up to 16 processors. However, after that, the curve
saturates" — and the good low-end speedup exists only because extra
processors bring extra caching space.
"""

from repro.viz.ascii_chart import ascii_chart

from .conftest import speedup_table


def test_fig5(benchmark, emit, t3dheat_analysis):
    series = benchmark(t3dheat_analysis.curves.speedups)
    chart = ascii_chart(
        {"speedup": series, "ideal": [(n, float(n)) for n, _ in series]},
        title="Figure 5: T3dheat speedup",
    )
    emit("fig5_t3dheat_speedup", chart + "\n\n" + speedup_table(t3dheat_analysis))

    spd = dict(series)
    assert spd[16] > 12  # excellent up to 16
    assert spd[32] / spd[16] < 1.6  # saturation past 16
    assert spd[2] > 1.8  # near-linear at the start
