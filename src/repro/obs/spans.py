"""Span tracing: nested, monotonic-clock timed regions of work.

A :class:`Span` is a context manager; entering pushes it on the tracer's
stack (so children know their parent path), exiting records a
:class:`SpanRecord` with the elapsed monotonic time.  The tracer also
supports *synthetic* spans via :meth:`Tracer.emit` — pre-measured or
attributed durations (the simulator uses these to report per-component
time shares, which cannot be timed directly because every reference
walks all components in one call).

The disabled fast path is :data:`NOOP_TRACER` / :data:`NOOP_SPAN`:
module-level singletons whose methods do nothing and allocate nothing,
so instrumented code can call ``tracer.span(...)`` unconditionally at
run/phase granularity and pay only a no-op method call when
observability is off.  Hot loops (per-reference code) must not call the
tracer at all; they are observed through always-on integer tallies that
the machine folds into metrics at run boundaries.

The clock is injectable (``Tracer(clock=...)``) so tests can assert on
exact durations and exports can be made byte-for-byte deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SpanRecord", "Span", "Tracer", "NoopSpan", "NOOP_SPAN", "NoopTracer", "NOOP_TRACER"]


@dataclass
class SpanRecord:
    """One finished (or emitted) span.

    ``start_s`` is the span's start offset from the tracer's epoch (the
    tracer's construction time), which keeps records from one session
    mutually comparable and lets cross-process spool merges re-anchor a
    worker's spans on the worker session's wall-clock epoch.
    """

    name: str
    path: str  # dotted ancestry, e.g. "campaign.run/machine.run/machine.phase"
    depth: int
    seq: int  # start order, 0-based, unique within a tracer
    duration_s: float
    attrs: dict = field(default_factory=dict)
    start_s: float = 0.0  # offset from the tracer epoch

    def to_dict(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "seq": self.seq,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(sorted(self.attrs.items())),
        }


_PATH_SEP = "/"


class Span:
    """A live span; use as a context manager."""

    __slots__ = ("_tracer", "name", "path", "depth", "seq", "attrs", "_t0", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = name
        self.depth = 0
        self.seq = -1
        self._t0 = 0.0
        self.duration_s = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes after the span has started."""
        self.attrs.update(attrs)
        return self

    def elapsed(self) -> float:
        """Seconds since the span started (it must be entered)."""
        return self._tracer._clock() - self._t0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            parent = stack[-1]
            self.path = parent.path + _PATH_SEP + self.name
            self.depth = parent.depth + 1
        self.seq = tracer._next_seq
        tracer._next_seq += 1
        stack.append(self)
        self._t0 = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = self._tracer._clock() - self._t0
        tracer = self._tracer
        top = tracer._stack.pop()
        if top is not self:  # pragma: no cover - misuse guard
            raise RuntimeError(f"span {self.name!r} exited out of order (top was {top.name!r})")
        tracer.records.append(
            SpanRecord(
                name=self.name,
                path=self.path,
                depth=self.depth,
                seq=self.seq,
                duration_s=self.duration_s,
                attrs=self.attrs,
                start_s=self._t0 - tracer._epoch,
            )
        )
        return False


class Tracer:
    """Collects spans; one per observability session."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()  # start offsets are relative to this
        #: Wall-clock moment the tracer was created; lets a spool merge
        #: re-anchor another process's relative offsets on a shared axis.
        self.wall_epoch = time.time()
        self._stack: list[Span] = []
        self._next_seq = 0
        self.records: list[SpanRecord] = []  # completion order (children first)

    def span(self, name: str, **attrs) -> Span:
        """Create a span; time runs while the ``with`` block is open."""
        return Span(self, name, attrs)

    def emit(self, name: str, duration_s: float, **attrs) -> SpanRecord:
        """Record a pre-measured span under the currently open span (if any)."""
        if self._stack:
            parent = self._stack[-1]
            path = parent.path + _PATH_SEP + name
            depth = parent.depth + 1
        else:
            path, depth = name, 0
        seq = self._next_seq
        self._next_seq += 1
        now = self._clock() - self._epoch
        rec = SpanRecord(
            name=name,
            path=path,
            depth=depth,
            seq=seq,
            duration_s=duration_s,
            attrs=attrs,
            start_s=max(0.0, now - duration_s),
        )
        self.records.append(rec)
        return rec

    def graft(self, records: "list[SpanRecord]", start_offset: float = 0.0) -> None:
        """Adopt spans recorded by another tracer (typically another process).

        Each record is re-parented under the currently open span: paths are
        prefixed, depths shifted, and fresh ``seq`` numbers are handed out in
        the order given — so grafting worker subtrees in plan order yields
        the exact start-order sequence a serial execution would have
        produced.  ``start_offset`` shifts the grafted ``start_s`` values
        onto this tracer's time axis.
        """
        if self._stack:
            parent = self._stack[-1]
            prefix, shift = parent.path + _PATH_SEP, parent.depth + 1
        else:
            prefix, shift = "", 0
        for rec in records:
            seq = self._next_seq
            self._next_seq += 1
            self.records.append(
                SpanRecord(
                    name=rec.name,
                    path=prefix + rec.path,
                    depth=rec.depth + shift,
                    seq=seq,
                    duration_s=rec.duration_s,
                    attrs=dict(rec.attrs),
                    start_s=rec.start_s + start_offset,
                )
            )

    # -- query helpers (reports and tests) ------------------------------------

    def by_name(self, name: str) -> list[SpanRecord]:
        return [r for r in self.records if r.name == name]

    def total_seconds(self, name: str) -> float:
        return sum(r.duration_s for r in self.by_name(name))

    def in_start_order(self) -> list[SpanRecord]:
        return sorted(self.records, key=lambda r: r.seq)


class NoopSpan:
    """The disabled span: every method is a no-op; a shared singleton."""

    __slots__ = ()

    def set(self, **attrs) -> "NoopSpan":
        return self

    def elapsed(self) -> float:
        return 0.0

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class NoopTracer:
    """The disabled tracer: hands out :data:`NOOP_SPAN`, records nothing."""

    __slots__ = ()

    records: list = []  # shared, always empty by construction

    def span(self, name: str, **attrs) -> NoopSpan:
        return NOOP_SPAN

    def emit(self, name: str, duration_s: float, **attrs) -> None:
        return None

    def graft(self, records: list, start_offset: float = 0.0) -> None:
        return None

    def by_name(self, name: str) -> list:
        return []

    def total_seconds(self, name: str) -> float:
        return 0.0

    def in_start_order(self) -> list:
        return []


NOOP_TRACER = NoopTracer()
