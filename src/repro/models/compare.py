"""Cross-validate the model suite against Scal-Tool's decomposition.

Scal-Tool attributes scalability loss to categories from hardware
counters; USL fits a rational function to the bare speedup curve.  The
two are independent roads to the same answer, and this module checks
they agree:

* USL's σ term (contention: serialization and queueing) maps onto
  Scal-Tool's **synchronization + load-imbalance** categories;
* USL's κ term (coherency delay: pairwise data exchange) maps onto the
  **insufficient-caching-space** category (conflict/coherence misses).

Per curve the comparator fits every model, converts each to penalty
*shares* at the top measured count, and grades agreement through the
``model_agreement`` rule family in :mod:`repro.obs.diagnostics`:
a decisive dominance mismatch (the two tools naming different
bottlenecks, by a real margin) grades ``suspect`` with the shares as
named evidence; models drifting apart on the speedup axis grade by
relative RMS; peak-count predictions further than 4x apart warn.

External datasets have no counter decomposition; there the agreement
check runs across the closed-form models only (and says so).
"""

from __future__ import annotations

import numpy as np

from ..obs import runtime as obs
from ..obs.diagnostics import FitDiagnostics, apply_rules, grade_score, worst_grade
from .base import ModelFit, normalized_speedups
from .dataset import SpeedupDataset
from .granularity import GranularityModel
from .scaltool_model import ScalToolModel, category_shares
from .usl import USLModel

__all__ = ["COMPARE_SCHEMA", "fit_all", "agreement_diagnostics", "compare_models"]

COMPARE_SCHEMA = "scaltool-models-compare-v1"


def fit_all(dataset: SpeedupDataset, analysis=None) -> dict[str, ModelFit]:
    """Fit every applicable model; Scal-Tool's projection needs an analysis."""
    models: dict[str, ModelFit] = {
        "usl": USLModel().fit(dataset),
        "granularity": GranularityModel().fit(dataset),
    }
    if analysis is not None:
        models["scaltool"] = ScalToolModel(analysis).fit(dataset)
    return models


def _cross_model_rms(dataset: SpeedupDataset, fits: dict[str, ModelFit]) -> float:
    """Relative RMS spread between the models' curves on the measured counts."""
    curves = []
    for fit in fits.values():
        curves.append([fit.predict(n) for n in dataset.counts])
    measured = normalized_speedups(dataset)
    spreads = []
    for i, n in enumerate(dataset.counts):
        values = [c[i] for c in curves]
        ref = max(measured[i], 1e-12)
        spreads.append((max(values) - min(values)) / ref)
    return float(np.sqrt(np.mean(np.square(spreads)))) if spreads else 0.0


def _peak_ratio(fits: dict[str, ModelFit]) -> tuple[float | None, dict[str, float]]:
    peaks = {
        name: float(fit.peak_n) for name, fit in fits.items() if fit.peak_n is not None
    }
    if len(peaks) < 2:
        return None, peaks
    lo, hi = min(peaks.values()), max(peaks.values())
    return hi / max(lo, 1e-9), peaks


def agreement_diagnostics(
    dataset: SpeedupDataset, fits: dict[str, ModelFit], analysis=None
) -> FitDiagnostics:
    """Evidence + grade for the σ/κ ↔ category cross-validation."""
    top_n = dataset.counts[-1]
    details: dict = {
        "top_n": int(top_n),
        "has_decomposition": analysis is not None,
        "cross_model_rms": _cross_model_rms(dataset, fits),
    }
    ratio, peaks = _peak_ratio(fits)
    if ratio is not None:
        details["peak_ratio"] = float(ratio)
    details["peaks"] = peaks

    if analysis is not None:
        usl = fits["usl"]
        usl_shares = USLModel().penalty_shares(usl.params, top_n)
        scal_shares = category_shares(analysis, top_n)
        dominant_usl = (
            "contention"
            if usl_shares["contention_share"] >= usl_shares["coherency_share"]
            else "coherency"
        )
        dominant_scal = (
            "sync+imb"
            if scal_shares["sync_imb_share"] >= scal_shares["l2lim_share"]
            else "l2lim"
        )
        # The mapping: contention <-> sync+imb, coherency <-> l2lim.
        agree = (dominant_usl == "contention") == (dominant_scal == "sync+imb")
        pair = sorted([scal_shares["sync_imb_share"], scal_shares["l2lim_share"]])
        smaller, larger = pair
        details.update(
            {
                "dominant_usl": dominant_usl,
                "dominant_scaltool": dominant_scal,
                "dominance_mismatch": not agree,
                "dominant_share": float(larger),
                # Floor the denominator: a zero share is "infinitely" dominated,
                # but the stored evidence must stay finite (JSON round-trips).
                "dominance_margin": float(larger / max(smaller, 1e-9)),
                "shares": {
                    "usl": {k: float(v) for k, v in usl_shares.items()},
                    "scaltool": {
                        k: float(scal_shares[k]) for k in ("sync_imb_share", "l2lim_share")
                    },
                },
            }
        )

    fd = FitDiagnostics(
        name="model_agreement",
        kind="model_agreement",
        equation="USL sigma <-> Sync+Imb, kappa <-> L2Lim",
        n_points=len(dataset.points),
        details=details,
    )
    return apply_rules(fd)


def compare_models(dataset: SpeedupDataset, analysis=None) -> dict:
    """The full cross-validation report for one speedup curve.

    The report is a plain JSON-able dict (every fitted coefficient,
    bootstrap CI, per-model R²/residuals, the share mapping, the graded
    agreement evidence, and each model's predicted peak count) — the
    exact object ``scaltool models compare --json`` prints and the
    ``models`` service job stores, byte-identical by construction.
    """
    with obs.tracer().span(
        "models.compare", label=dataset.label, points=len(dataset.points)
    ):
        fits = fit_all(dataset, analysis)
        agreement = agreement_diagnostics(dataset, fits, analysis)
        # The headline grade is the *agreement* verdict; a model fitting
        # its own curve poorly is that model's problem (visible in its
        # per-fit grade), not evidence the tools disagree.
        grade = agreement.grade
        reg = obs.registry()
        reg.inc("models.compare")
        reg.set_gauge("models.agreement", float(grade_score(grade)))
        return {
            "schema": COMPARE_SCHEMA,
            "label": dataset.label,
            "source": dataset.source,
            "counts": [int(n) for n in dataset.counts],
            "measured_speedups": [float(s) for s in normalized_speedups(dataset)],
            "models": {name: fit.to_dict() for name, fit in sorted(fits.items())},
            "mapping": {
                k: v
                for k, v in agreement.details.items()
                if k in ("top_n", "dominant_usl", "dominant_scaltool", "shares")
            },
            "agreement": agreement.to_dict(),
            "grade": grade,
            "fit_grades": {name: fit.grade for name, fit in sorted(fits.items())},
            "worst_fit_grade": worst_grade(fit.grade for fit in fits.values()),
        }
