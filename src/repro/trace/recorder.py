"""Trace recording and replay.

Workloads are generative (phases built on demand), but trace-driven
methodology often wants the *same* reference stream re-run under different
machines — protocol ablations, topology studies, cache-size sweeps — or
archived alongside the measurements.  This module captures a workload's
phase stream into a single ``.npz`` file and replays it as a workload.

Fidelity contract: block ids are recorded absolutely, so a replay is
faithful on any machine with the same line size and page size (the
allocator lays regions out identically); cache sizes, latencies, topology,
protocol, and processor-count-*independent* parameters may all vary.  The
processor count is baked into the recorded phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import TraceError
from .events import Phase, Segment

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.config import MachineConfig
    from ..workloads.base import Workload

__all__ = ["RecordedTrace", "record_workload", "TraceReplayWorkload"]

_FORMAT_VERSION = 1


@dataclass
class RecordedTrace:
    """A workload's complete phase stream, ready to save or replay."""

    workload_name: str
    size_bytes: int
    n_processors: int
    cpi0: float
    phases: list[Phase] = field(default_factory=list)

    @property
    def total_refs(self) -> int:
        return sum(p.total_refs for p in self.phases)

    @property
    def total_instructions(self) -> int:
        return sum(p.total_instructions for p in self.phases)

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the trace as one compressed ``.npz`` archive."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {
            "__version": np.array([_FORMAT_VERSION]),
            "__meta_n": np.array([self.n_processors]),
            "__meta_size": np.array([self.size_bytes]),
            "__meta_cpi0": np.array([self.cpi0]),
            "__meta_name": np.array([self.workload_name]),
            "__phase_names": np.array([p.name for p in self.phases]),
            "__phase_barriers": np.array([p.barrier for p in self.phases]),
        }
        for i, phase in enumerate(self.phases):
            for cpu, seg in enumerate(phase.segments):
                if seg is None:
                    continue
                arrays[f"p{i}_c{cpu}_a"] = seg.addrs
                arrays[f"p{i}_c{cpu}_w"] = seg.writes
                arrays[f"p{i}_c{cpu}_i"] = np.array([seg.n_instructions])
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RecordedTrace":
        """Reload a trace saved by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise TraceError(f"no recorded trace at {path}")
        try:
            archive = np.load(path, allow_pickle=False)
        except Exception as exc:
            raise TraceError(f"corrupt trace archive {path}: {exc}") from exc
        with archive as data:
            if int(data["__version"][0]) != _FORMAT_VERSION:
                raise TraceError(
                    f"trace format {int(data['__version'][0])} unsupported "
                    f"(expected {_FORMAT_VERSION})"
                )
            n = int(data["__meta_n"][0])
            names = [str(x) for x in data["__phase_names"]]
            barriers = [bool(x) for x in data["__phase_barriers"]]
            trace = cls(
                workload_name=str(data["__meta_name"][0]),
                size_bytes=int(data["__meta_size"][0]),
                n_processors=n,
                cpi0=float(data["__meta_cpi0"][0]),
            )
            for i, (name, barrier) in enumerate(zip(names, barriers)):
                segments: list[Segment | None] = []
                for cpu in range(n):
                    key = f"p{i}_c{cpu}_a"
                    if key in data:
                        segments.append(
                            Segment(
                                data[key],
                                data[f"p{i}_c{cpu}_w"],
                                int(data[f"p{i}_c{cpu}_i"][0]),
                            )
                        )
                    else:
                        segments.append(None)
                trace.phases.append(Phase(name=name, segments=segments, barrier=barrier))
        if not trace.phases:
            raise TraceError(f"recorded trace {path} contains no phases")
        return trace


def record_workload(
    workload: "Workload", machine_cfg: "MachineConfig", size_bytes: int
) -> RecordedTrace:
    """Capture the phase stream ``workload`` would run on ``machine_cfg``.

    A throwaway machine provides the allocator; nothing is simulated.
    Workloads that interact with the machine between phases (lock-based
    codes) cannot be captured faithfully and are rejected.
    """
    from ..runner.experiment import build_machine

    machine = build_machine(machine_cfg)
    before = machine.clocks[:]
    trace = RecordedTrace(
        workload_name=workload.name,
        size_bytes=size_bytes,
        n_processors=machine_cfg.n_processors,
        cpi0=workload.cpi0,
    )
    for phase in workload.build(machine, size_bytes):
        if machine.clocks != before:
            raise TraceError(
                f"workload {workload.name!r} drives the machine between phases "
                "(locks); it cannot be trace-recorded"
            )
        trace.phases.append(phase)
    if not trace.phases:
        raise TraceError(f"workload {workload.name!r} produced no phases")
    return trace


class TraceReplayWorkload:
    """A workload that replays a :class:`RecordedTrace` verbatim.

    Satisfies the :class:`~repro.workloads.base.Workload` protocol the
    machine consumes (name, cpi0, describe_params, build).
    """

    def __init__(self, trace: RecordedTrace) -> None:
        self.trace = trace
        self.name = f"replay:{trace.workload_name}"
        self.cpi0 = trace.cpi0

    @classmethod
    def from_file(cls, path: str | Path) -> "TraceReplayWorkload":
        return cls(RecordedTrace.load(path))

    def describe_params(self) -> dict:
        return {
            "recorded_workload": self.trace.workload_name,
            "recorded_size": self.trace.size_bytes,
            "recorded_n": self.trace.n_processors,
        }

    def build(self, machine, size_bytes: int) -> Iterator[Phase]:
        if machine.n_processors != self.trace.n_processors:
            raise TraceError(
                f"trace recorded for {self.trace.n_processors} processors, "
                f"machine has {machine.n_processors}"
            )
        if size_bytes != self.trace.size_bytes:
            raise TraceError(
                f"trace recorded at {self.trace.size_bytes} bytes, asked to run "
                f"{size_bytes}; replay cannot rescale a trace"
            )
        yield from self.trace.phases
