"""perfex formatting, parsing, multiplex emulation."""

import pytest

from repro.errors import CounterFormatError
from repro.machine.counters import CounterSet
from repro.tools.perfex import format_report, multiplex_counters, parse_report


def counters(cycles=1000.0, inst=400.0):
    return CounterSet(
        cycles=cycles,
        graduated_instructions=inst,
        graduated_loads=100,
        graduated_stores=40,
        l1_data_misses=30,
        l2_misses=6,
        store_exclusive_to_shared=2,
    )


class TestFormatParse:
    def test_roundtrip_totals(self):
        text = format_report(counters(), metadata={"workload": "x", "n": 2})
        meta, totals, per_cpu = parse_report(text)
        assert meta == {"workload": "x", "n": 2}
        assert totals.cycles == 1000
        assert totals.l2_misses == 6
        assert per_cpu == []

    def test_roundtrip_per_cpu(self):
        text = format_report(counters(2000, 800), per_cpu=[counters(), counters()])
        _, totals, per_cpu = parse_report(text)
        assert len(per_cpu) == 2
        assert per_cpu[0].cycles == 1000

    def test_report_mentions_event_numbers(self):
        text = format_report(counters())
        assert " 31 " in text  # the ntsyn event
        assert "Cycles" in text

    def test_counts_are_integers(self):
        text = format_report(CounterSet(cycles=1000.7))
        _, totals, _ = parse_report(text)
        assert totals.cycles == 1001

    def test_not_a_report_rejected(self):
        with pytest.raises(CounterFormatError):
            parse_report("hello world")

    def test_bad_metadata_rejected(self):
        with pytest.raises(CounterFormatError):
            parse_report("# perfex report\n# meta: {broken\n\nSummary of all processors:")

    def test_missing_summary_rejected(self):
        with pytest.raises(CounterFormatError):
            parse_report("# perfex report\n")

    def test_garbled_line_rejected(self):
        text = format_report(counters()) + "\nxx yy\n"
        with pytest.raises(CounterFormatError):
            parse_report(text)


class TestMultiplex:
    def phases(self, k=8):
        return [(f"p{i}", counters(cycles=100.0 * (i + 1), inst=40.0 * (i + 1))) for i in range(k)]

    def test_exact_when_one_group(self):
        # events_per_slice >= catalog size -> one group counts everything
        from repro.machine.counters import R10K_EVENTS

        out = multiplex_counters(self.phases(), events_per_slice=len(R10K_EVENTS))
        exact = CounterSet.total([c for _, c in self.phases()])
        assert out.cycles == pytest.approx(exact.cycles)

    def test_totals_approximate(self):
        exact = CounterSet.total([c for _, c in self.phases(12)])
        out = multiplex_counters(self.phases(12), events_per_slice=2)
        assert out.cycles == pytest.approx(exact.cycles, rel=0.5)
        assert out.cycles != exact.cycles  # sampled, not exact

    def test_homogeneous_phases_recovered_exactly(self):
        phases = [("p", counters())] * 8
        out = multiplex_counters(phases, events_per_slice=2)
        exact = CounterSet.total([c for _, c in phases])
        assert out.cycles == pytest.approx(exact.cycles)
        assert out.l2_misses == pytest.approx(exact.l2_misses)

    def test_seed_rotates_groups(self):
        a = multiplex_counters(self.phases(9), events_per_slice=2, seed=0)
        b = multiplex_counters(self.phases(9), events_per_slice=2, seed=1)
        assert a.cycles != b.cycles

    def test_empty_rejected(self):
        with pytest.raises(CounterFormatError):
            multiplex_counters([])

    def test_bad_slice_size_rejected(self):
        with pytest.raises(CounterFormatError):
            multiplex_counters(self.phases(), events_per_slice=0)
