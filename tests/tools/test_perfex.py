"""perfex formatting, parsing, multiplex emulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CounterFormatError
from repro.machine.counters import CounterSet
from repro.tools.perfex import format_report, multiplex_counters, parse_report


def counters(cycles=1000.0, inst=400.0):
    return CounterSet(
        cycles=cycles,
        graduated_instructions=inst,
        graduated_loads=100,
        graduated_stores=40,
        l1_data_misses=30,
        l2_misses=6,
        store_exclusive_to_shared=2,
    )


class TestFormatParse:
    def test_roundtrip_totals(self):
        text = format_report(counters(), metadata={"workload": "x", "n": 2})
        meta, totals, per_cpu = parse_report(text)
        assert meta == {"workload": "x", "n": 2}
        assert totals.cycles == 1000
        assert totals.l2_misses == 6
        assert per_cpu == []

    def test_roundtrip_per_cpu(self):
        text = format_report(counters(2000, 800), per_cpu=[counters(), counters()])
        _, totals, per_cpu = parse_report(text)
        assert len(per_cpu) == 2
        assert per_cpu[0].cycles == 1000

    def test_report_mentions_event_numbers(self):
        text = format_report(counters())
        assert " 31 " in text  # the ntsyn event
        assert "Cycles" in text

    def test_counts_are_integers(self):
        text = format_report(CounterSet(cycles=1000.7))
        _, totals, _ = parse_report(text)
        assert totals.cycles == 1001

    def test_not_a_report_rejected(self):
        with pytest.raises(CounterFormatError):
            parse_report("hello world")

    def test_bad_metadata_rejected(self):
        with pytest.raises(CounterFormatError):
            parse_report("# perfex report\n# meta: {broken\n\nSummary of all processors:")

    def test_missing_summary_rejected(self):
        with pytest.raises(CounterFormatError):
            parse_report("# perfex report\n")

    def test_garbled_line_rejected(self):
        text = format_report(counters()) + "\nxx yy\n"
        with pytest.raises(CounterFormatError):
            parse_report(text)


class TestParseErrorPaths:
    """Malformed inputs must fail loudly as CounterFormatError, never crash."""

    def test_empty_input_rejected(self):
        with pytest.raises(CounterFormatError, match="missing header"):
            parse_report("")

    def test_malformed_header_rejected(self):
        text = format_report(counters()).replace("# perfex report", "# prefex report")
        with pytest.raises(CounterFormatError, match="missing header"):
            parse_report(text)

    def test_header_past_preamble_rejected(self):
        # The header must appear in the first lines, not buried mid-file.
        text = "\n" * 20 + format_report(counters())
        with pytest.raises(CounterFormatError, match="missing header"):
            parse_report(text)

    def test_bad_meta_json_rejected(self):
        text = format_report(counters(), metadata={"workload": "x"}).replace(
            '# meta: {"workload": "x"}', '# meta: {"workload": '
        )
        with pytest.raises(CounterFormatError, match="bad metadata JSON"):
            parse_report(text)

    def test_truncated_before_summary_rejected(self):
        # Torn write: header survived, the summary section did not.
        text = format_report(counters(), metadata={"n": 2})
        truncated = text[: text.index("Summary")]
        with pytest.raises(CounterFormatError, match="no summary section"):
            parse_report(truncated)

    def test_truncated_event_line_rejected(self):
        text = format_report(counters())
        lines = text.splitlines()
        # Chop an event line mid-value: "... 1000" -> "... 10 00" won't
        # happen, but losing the value column entirely does.
        idx = next(i for i, ln in enumerate(lines) if ln.startswith(" ") or ln[:1].isdigit())
        lines[idx] = lines[idx].rsplit(None, 1)[0][:20]
        with pytest.raises(CounterFormatError, match="unparseable line"):
            parse_report("\n".join(lines))

    def test_unknown_event_number_rejected(self):
        text = format_report(counters()) + "\n999 Mystery event ............ 7\n"
        with pytest.raises(CounterFormatError, match="unknown event number 999"):
            parse_report(text)

    def test_event_line_before_section_rejected(self):
        body = format_report(counters()).split("Summary of all processors:\n")[1]
        text = "# perfex report\n\n" + body
        with pytest.raises(CounterFormatError, match="before any section"):
            parse_report(text)

    def test_non_numeric_value_rejected(self):
        text = format_report(counters())
        text = text.replace(text.rsplit(None, 1)[-1], "banana", 1)
        with pytest.raises(CounterFormatError):
            parse_report(text)


def counter_sets(max_value: float = 1e12):
    """Strategy for CounterSet with non-negative integral counts."""
    value = st.integers(min_value=0, max_value=int(max_value)).map(float)
    return st.builds(
        CounterSet,
        cycles=value,
        graduated_instructions=value,
        graduated_loads=value,
        graduated_stores=value,
        l1_data_misses=value,
        l2_misses=value,
        l1_instruction_misses=value,
        store_exclusive_to_shared=value,
        tlb_misses=value,
    )


class TestRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(totals=counter_sets(), per_cpu=st.lists(counter_sets(), max_size=4))
    def test_format_parse_roundtrip(self, totals, per_cpu):
        meta = {"workload": "synthetic", "n": len(per_cpu) or 1}
        text = format_report(totals, per_cpu=per_cpu or None, metadata=meta)
        parsed_meta, parsed_totals, parsed_cpus = parse_report(text)
        assert parsed_meta == meta
        assert parsed_totals == totals.rounded()
        assert parsed_cpus == [c.rounded() for c in per_cpu]


class TestMultiplex:
    def phases(self, k=8):
        return [(f"p{i}", counters(cycles=100.0 * (i + 1), inst=40.0 * (i + 1))) for i in range(k)]

    def test_exact_when_one_group(self):
        # events_per_slice >= catalog size -> one group counts everything
        from repro.machine.counters import R10K_EVENTS

        out = multiplex_counters(self.phases(), events_per_slice=len(R10K_EVENTS))
        exact = CounterSet.total([c for _, c in self.phases()])
        assert out.cycles == pytest.approx(exact.cycles)

    def test_totals_approximate(self):
        exact = CounterSet.total([c for _, c in self.phases(12)])
        out = multiplex_counters(self.phases(12), events_per_slice=2)
        assert out.cycles == pytest.approx(exact.cycles, rel=0.5)
        assert out.cycles != exact.cycles  # sampled, not exact

    def test_homogeneous_phases_recovered_exactly(self):
        phases = [("p", counters())] * 8
        out = multiplex_counters(phases, events_per_slice=2)
        exact = CounterSet.total([c for _, c in phases])
        assert out.cycles == pytest.approx(exact.cycles)
        assert out.l2_misses == pytest.approx(exact.l2_misses)

    def test_seed_rotates_groups(self):
        a = multiplex_counters(self.phases(9), events_per_slice=2, seed=0)
        b = multiplex_counters(self.phases(9), events_per_slice=2, seed=1)
        assert a.cycles != b.cycles

    def test_empty_rejected(self):
        with pytest.raises(CounterFormatError):
            multiplex_counters([])

    def test_bad_slice_size_rejected(self):
        with pytest.raises(CounterFormatError):
            multiplex_counters(self.phases(), events_per_slice=0)
