"""Figure 11: speedups for Swim.

Paper: "the Origin 2000 delivers very good speedups" (~24 at 32
processors).
"""

from repro.viz.ascii_chart import ascii_chart

from .conftest import speedup_table


def test_fig11(benchmark, emit, swim_analysis):
    series = benchmark(swim_analysis.curves.speedups)
    chart = ascii_chart(
        {"speedup": series, "ideal": [(n, float(n)) for n, _ in series]},
        title="Figure 11: Swim speedup",
    )
    emit("fig11_swim_speedup", chart + "\n\n" + speedup_table(swim_analysis))

    spd = dict(series)
    assert spd[32] > 20  # very good (paper: ~24)
    assert spd[16] > 12
    assert spd[32] < 40  # but not super-linear nonsense
