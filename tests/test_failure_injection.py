"""Failure injection: corrupted files, truncated campaigns, hostile inputs.

A production tool meets broken measurement directories, half-written
manifests, and campaigns missing the runs an analysis step needs.  Every
failure must surface as a library error (:class:`ReproError` subclass)
with an actionable message — never a KeyError/IndexError from the guts.
"""

import json

import pytest

from repro.core import ScalTool
from repro.errors import (
    CounterFormatError,
    InsufficientDataError,
    ReproError,
    TraceError,
)
from repro.runner.campaign import CampaignData
from repro.runner.records import RunRecord, load_records, save_records
from repro.tools.perfex import parse_report


def strip_roles(campaign, *roles):
    return CampaignData(
        workload=campaign.workload,
        s0=campaign.s0,
        records=[r for r in campaign.records if r.role not in roles],
    )


class TestCorruptManifests:
    def test_truncated_json_line(self, mini_campaign, tmp_path):
        path = tmp_path / "campaign.jsonl"
        save_records(mini_campaign.records, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CounterFormatError):
            load_records(path)

    def test_wrong_schema_line(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        path.write_text(json.dumps({"totally": "unrelated"}) + "\n")
        with pytest.raises(CounterFormatError):
            load_records(path)

    def test_empty_manifest_dir(self, tmp_path):
        (tmp_path / "campaign.jsonl").write_text("")
        with pytest.raises(InsufficientDataError):
            CampaignData.load(tmp_path)

    def test_missing_dir(self, tmp_path):
        with pytest.raises(OSError):
            CampaignData.load(tmp_path / "missing")

    def test_negative_counter_values_tolerated_loading(self, mini_campaign, tmp_path):
        # a flaky counter rollover: loads but analysis stays bounded
        rec = mini_campaign.records[0]
        data = rec.to_dict()
        data["counters"]["l2_misses"] = -5.0
        back = RunRecord.from_dict(data)
        assert back.counters.l2_misses == -5.0


class TestCorruptPerfex:
    def test_binary_garbage(self):
        with pytest.raises(CounterFormatError):
            parse_report("\x00\x01\x02 not text")

    def test_value_column_missing(self):
        text = "# perfex report\n\nSummary of all processors:\n  0 Cycles\n"
        with pytest.raises(CounterFormatError):
            parse_report(text)

    def test_non_numeric_value(self):
        text = "# perfex report\n\nSummary of all processors:\n  0 Cycles...... lots\n"
        with pytest.raises(CounterFormatError):
            parse_report(text)

    def test_report_with_extra_comments_ok(self, mini_campaign):
        from repro.tools.perfex import format_report

        rec = mini_campaign.records[0]
        text = format_report(rec.counters)
        text = "# produced by vintage tooling\n" + text
        _, totals, _ = parse_report(text)
        assert totals.cycles > 0


class TestIncompleteCampaigns:
    def test_no_base_runs(self, mini_campaign):
        crippled = strip_roles(mini_campaign, "app_base")
        with pytest.raises(InsufficientDataError):
            ScalTool(crippled).analyze()

    def test_no_uniprocessor_fractions(self, mini_campaign):
        crippled = CampaignData(
            workload=mini_campaign.workload,
            s0=mini_campaign.s0,
            records=[
                r
                for r in mini_campaign.records
                if not (r.role == "app_frac")
            ],
        )
        # s0 uniprocessor base run remains, but one size cannot fit t2/tm
        with pytest.raises(InsufficientDataError):
            ScalTool(crippled).analyze()

    def test_missing_kernels_still_analyzes(self, mini_campaign):
        # the sync fractions degrade gracefully to zero with warnings
        crippled = strip_roles(mini_campaign, "sync_kernel", "spin_kernel")
        with pytest.raises(ReproError):
            # cpi_imb genuinely needs the spin kernel; the failure must be
            # a typed library error, not a KeyError
            ScalTool(crippled).analyze()

    def test_records_without_machine_description(self, mini_campaign):
        naked = CampaignData(
            workload=mini_campaign.workload,
            s0=mini_campaign.s0,
            records=[
                RunRecord(**{**r.__dict__, "machine": {}}) for r in mini_campaign.records
            ],
        )
        with pytest.raises(InsufficientDataError):
            ScalTool(naked)

    def test_single_record_campaign(self, mini_campaign):
        lonely = CampaignData(
            workload=mini_campaign.workload,
            s0=mini_campaign.s0,
            records=mini_campaign.records[:1],
        )
        with pytest.raises(ReproError):
            ScalTool(lonely).analyze()


class TestHostileTraces:
    def test_trace_replay_of_corrupt_file(self, tmp_path):
        from repro.trace.recorder import RecordedTrace

        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"PK\x03\x04 not a real npz")
        with pytest.raises((TraceError, OSError, ValueError)):
            RecordedTrace.load(bad)

    def test_segment_instruction_overflow_guard(self):
        import numpy as np

        from repro.trace.events import Segment

        with pytest.raises(TraceError):
            Segment(np.array([1, 2], dtype=np.int64), np.array([True, False]), 1)


class TestWhatIfEdges:
    def test_whatif_on_empty_campaign(self, mini_campaign):
        from repro.core import ScalTool, WhatIf

        analysis = ScalTool(mini_campaign).analyze()
        empty = CampaignData(workload="x", s0=mini_campaign.s0, records=[])
        with pytest.raises(InsufficientDataError):
            WhatIf(analysis, empty)

    def test_validation_on_stripped_campaign(self, mini_campaign):
        from repro.core import ScalTool, validate_mp
        from repro.errors import ValidationError

        analysis = ScalTool(mini_campaign).analyze()
        stripped = CampaignData(
            workload=mini_campaign.workload,
            s0=mini_campaign.s0,
            records=[r.without_ground_truth() for r in mini_campaign.records],
        )
        with pytest.raises(ValidationError):
            validate_mp(analysis, stripped)
