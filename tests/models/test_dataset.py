"""The scaltool-speedup-v1 dataset: both doors, round trips, rejection."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.models import SpeedupDataset, SpeedupPoint
from repro.models.dataset import SCHEMA


def curve(label="curve", **extra):
    points = [
        SpeedupPoint(n=1, speedup=1.0, time=1000.0),
        SpeedupPoint(n=2, speedup=1.9),
        SpeedupPoint(n=4, speedup=3.4, ci=(3.1, 3.7)),
        SpeedupPoint(n=8, speedup=5.5),
    ]
    return SpeedupDataset(label=label, points=points, **extra)


class TestRoundTrips:
    def test_dict_round_trip(self):
        ds = curve(source="unit test")
        again = SpeedupDataset.from_dict(ds.to_dict())
        assert again == ds
        assert again.to_dict()["schema"] == SCHEMA

    def test_json_round_trip(self):
        ds = curve()
        again = SpeedupDataset.from_dict(json.loads(ds.to_json()))
        assert again.counts == ds.counts
        assert again.speedups == ds.speedups
        assert again.points[2].ci == (3.1, 3.7)

    def test_csv_round_trip(self):
        ds = curve()
        again = SpeedupDataset.from_csv(ds.to_csv(), label=ds.label)
        assert again.counts == ds.counts
        assert again.speedups == ds.speedups

    def test_points_sorted_by_count(self):
        ds = SpeedupDataset(
            label="x",
            points=[SpeedupPoint(n=8, speedup=5.0), SpeedupPoint(n=1, speedup=1.0)],
        )
        assert ds.counts == [1, 8]

    def test_save_and_load_both_formats(self, tmp_path):
        ds = curve()
        for name in ("curve.csv", "curve.json"):
            path = ds.save(tmp_path / name)
            loaded = SpeedupDataset.load(path)
            assert loaded.counts == ds.counts
            assert loaded.speedups == pytest.approx(ds.speedups)

    def test_load_sniffs_json_regardless_of_suffix(self, tmp_path):
        path = tmp_path / "curve.dat"
        path.write_text(curve().to_json())
        assert SpeedupDataset.load(path).counts == [1, 2, 4, 8]


class TestCsvDoor:
    def test_speedup_derived_from_time(self):
        text = "n,time,speedup,ci_lo,ci_hi\n1,1000,,,\n2,500,,,\n4,260,,,\n"
        ds = SpeedupDataset.from_csv(text)
        assert ds.speedups == pytest.approx((1.0, 2.0, 1000 / 260))

    def test_explicit_speedup_wins_over_time(self):
        text = "n,time,speedup,ci_lo,ci_hi\n1,1000,1.0,,\n2,500,1.8,,\n"
        assert SpeedupDataset.from_csv(text).speedups == pytest.approx((1.0, 1.8))

    def test_non_finite_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("n,time,speedup,ci_lo,ci_hi\n1,,1.0,,\n2,,nan,,\n")
        with pytest.raises(EstimationError, match="non-finite"):
            SpeedupDataset.load(path)


class TestFromCampaign:
    def test_measured_speedups(self, contention_campaign):
        ds = SpeedupDataset.from_campaign(contention_campaign)
        assert ds.counts == [1, 2, 4, 8]
        assert ds.speedups[0] == pytest.approx(1.0)
        base = contention_campaign.base_runs()
        want = base[1].wall_cycles / base[8].wall_cycles
        assert ds.speedups[-1] == pytest.approx(want)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=2, max_value=512),
            st.floats(min_value=0.05, max_value=500.0, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=50, deadline=None)
def test_property_csv_round_trip_is_exact(rows):
    points = [SpeedupPoint(n=1, speedup=1.0)] + [
        SpeedupPoint(n=n, speedup=s) for n, s in rows
    ]
    ds = SpeedupDataset(label="prop", points=points)
    again = SpeedupDataset.from_csv(ds.to_csv())
    assert again.counts == ds.counts
    # repr-formatted floats survive the text round trip bit-exactly
    assert all(
        a == b or math.isclose(a, b, rel_tol=0, abs_tol=0)
        for a, b in zip(again.speedups, ds.speedups)
    )
    assert again.speedups == ds.speedups
