"""What-if analysis: machine-parameter experiments (paper Section 2.6).

"The idea is to modify the values of the parameters in the model and use
the model equations to infer the rough performance impact on the
application.  The application does not need to be re-run."

Supported experiments:

* scaling the latency parameters ``t2`` (L2 speed), ``tm`` (memory /
  interconnect speed), ``tsyn`` (synchronization support), and the issue
  width via ``cpi0`` — Eq. 1 with the measured (h2, hm) mix plus the
  Eq. 10 synchronization-cost delta;
* growing the L2 by a factor ``k`` — Eq. 11: the coherence miss
  component is unchanged, the uniprocessor component becomes
  ``1 − L2hitr(s0/(n·k), 1)`` via the fractional-data-set surrogate;
* swapping in a new synchronization primitive (a new tsyn), with the
  paper's caveat that the imbalance interaction is not predicted.

Predictions are *deltas applied to the measured baseline*: the model
reconstruction error at the baseline is carried over unchanged, so a
what-if with factor 1.0 returns exactly the measured cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InsufficientDataError
from ..runner.campaign import CampaignData
from ..runner.engine import Executor, SerialExecutor
from ..units import clamp
from .cache_analysis import interpolate_uniproc
from .model import MemoryRates, cpi_from_rates, cpi_linear
from .scaltool import ScalToolAnalysis

__all__ = ["WhatIf", "WhatIfPrediction"]


def _apply_experiment(item: tuple["WhatIf", dict]) -> "WhatIfPrediction":
    """Executor task body (module-level so parallel maps can pickle it)."""
    whatif, experiment = item
    return whatif.predict(experiment)


@dataclass(frozen=True)
class WhatIfPrediction:
    """Predicted accumulated cycles per processor count for one experiment."""

    label: str
    baseline: dict[int, float]
    predicted: dict[int, float]
    note: str = ""

    def change(self, n: int) -> float:
        """Relative cycle change at n (negative = faster)."""
        return self.predicted[n] / self.baseline[n] - 1.0

    def rows(self) -> list[dict]:
        return [
            {
                "n": n,
                "baseline": self.baseline[n],
                "predicted": self.predicted[n],
                "change": self.change(n),
            }
            for n in sorted(self.baseline)
        ]


class WhatIf:
    """Parameter experiments over a completed analysis."""

    def __init__(self, analysis: ScalToolAnalysis, campaign: CampaignData) -> None:
        self.analysis = analysis
        self.base_runs = {
            n: r.without_ground_truth() for n, r in campaign.base_runs().items()
        }
        self.uniproc = {
            s: r.without_ground_truth() for s, r in campaign.uniprocessor_runs().items()
        }
        if not self.base_runs:
            raise InsufficientDataError("campaign has no base runs")

    # -- batch execution through the shared engine ---------------------------------

    def predict(self, experiment: dict) -> WhatIfPrediction:
        """One experiment described as data (the engine's task unit).

        ``{"kind": "scale", "t2_factor": 0.5, ...}`` routes to
        :meth:`scale_parameters`, ``{"kind": "l2", "k": 4}`` to
        :meth:`scale_l2`, and ``{"kind": "sync", "tsyn": 40.0}`` to
        :meth:`new_sync_primitive`.
        """
        exp = dict(experiment)
        kind = exp.pop("kind", "scale")
        if kind == "scale":
            return self.scale_parameters(**exp)
        if kind == "l2":
            return self.scale_l2(exp["k"], label=exp.get("label"))
        if kind == "sync":
            return self.new_sync_primitive(exp["tsyn"], label=exp.get("label"))
        raise InsufficientDataError(
            f"unknown what-if kind {kind!r}; expected 'scale', 'l2', or 'sync'"
        )

    def run_experiments(
        self, experiments: list[dict], executor: Executor | None = None
    ) -> list[WhatIfPrediction]:
        """Evaluate a batch of experiments via the shared executor.

        Deterministic input order is preserved; with a
        :class:`~repro.runner.engine.ParallelExecutor` the (independent)
        experiments fan out across workers.
        """
        executor = executor or SerialExecutor()
        return executor.map(_apply_experiment, [(self, exp) for exp in experiments])

    # -- core reconstruction -------------------------------------------------------

    def _model_cycles(
        self,
        n: int,
        cpi0_factor: float = 1.0,
        t2_factor: float = 1.0,
        tm_factor: float = 1.0,
    ) -> tuple[float, float]:
        """(model baseline, model modified) accumulated cycles at n."""
        p = self.analysis.params
        c = self.base_runs[n].counters
        inst = c.graduated_instructions
        base = cpi_linear(p.cpi0, c.h2, c.hm, p.t2, p.tm(n)) * inst
        mod = (
            cpi_linear(
                p.cpi0 * cpi0_factor,
                c.h2,
                c.hm,
                p.t2 * t2_factor,
                p.tm(n) * tm_factor,
            )
            * inst
        )
        return base, mod

    def scale_parameters(
        self,
        cpi0_factor: float = 1.0,
        t2_factor: float = 1.0,
        tm_factor: float = 1.0,
        tsyn_factor: float = 1.0,
        label: str | None = None,
    ) -> WhatIfPrediction:
        """Predict the impact of scaling any mix of machine parameters."""
        p = self.analysis.params
        sync = self.analysis.sync
        baseline: dict[int, float] = {}
        predicted: dict[int, float] = {}
        for n, rec in self.base_runs.items():
            measured = rec.counters.cycles
            model_base, model_mod = self._model_cycles(n, cpi0_factor, t2_factor, tm_factor)
            delta = model_mod - model_base
            if tsyn_factor != 1.0 and n in sync.tsyn_by_n:
                ntsyn = rec.counters.store_exclusive_to_shared
                delta += ntsyn * sync.tsyn_by_n[n] * (tsyn_factor - 1.0)
            if cpi0_factor != 1.0 and n in sync.tsyn_by_n:
                # Eq. 10: the per-fetchop instruction also runs at cpi0.
                ntsyn = rec.counters.store_exclusive_to_shared
                delta += ntsyn * p.cpi0 * (cpi0_factor - 1.0)
            baseline[n] = measured
            predicted[n] = max(0.0, measured + delta)
        return WhatIfPrediction(
            label=label
            or (
                f"cpi0 x{cpi0_factor:g}, t2 x{t2_factor:g}, "
                f"tm x{tm_factor:g}, tsyn x{tsyn_factor:g}"
            ),
            baseline=baseline,
            predicted=predicted,
        )

    # -- L2 capacity (Eq. 11) ---------------------------------------------------------

    def l2_miss_rate_with_factor(self, n: int, k: float) -> float:
        """Predicted L2 *miss* rate (per L1 miss) at (s0, n) with a k-times L2.

        Eq. 11 keeps the coherence component and replaces the uniprocessor
        component with the hit rate of a 1/k-size data set: growing the
        cache by k is like shrinking the data by k.
        """
        if k <= 0:
            raise InsufficientDataError("k must be positive")
        coh = self.analysis.cache.coherence(n)
        surrogate = interpolate_uniproc(self.uniproc, self.analysis.s0 / (n * k))
        uni_component = 1.0 - surrogate.l2_hit_rate
        return clamp(coh + uni_component, 0.0, 1.0)

    def scale_l2(self, k: float, label: str | None = None) -> WhatIfPrediction:
        """Predict cycles with the L2 grown by ``k`` (no re-run, per the paper)."""
        p = self.analysis.params
        baseline: dict[int, float] = {}
        predicted: dict[int, float] = {}
        for n, rec in self.base_runs.items():
            c = rec.counters
            measured = c.cycles
            inst = c.graduated_instructions
            rates_now = MemoryRates.from_counters(c)
            new_missrate = self.l2_miss_rate_with_factor(n, k)
            rates_new = MemoryRates(
                rates_now.l1_hit_rate, clamp(1.0 - new_missrate, 0.0, 1.0), rates_now.m_frac
            )
            model_base = cpi_from_rates(p.cpi0, p.t2, p.tm(n), rates_now) * inst
            model_new = cpi_from_rates(p.cpi0, p.t2, p.tm(n), rates_new) * inst
            baseline[n] = measured
            predicted[n] = max(0.0, measured + (model_new - model_base))
        return WhatIfPrediction(
            label=label or f"L2 x{k:g}",
            baseline=baseline,
            predicted=predicted,
            note="miss-rate estimate only; the application is not re-run",
        )

    def new_sync_primitive(self, tsyn_new: float, label: str | None = None) -> WhatIfPrediction:
        """Predict cycles under a synchronization primitive with latency ``tsyn_new``.

        Per the paper, "it is harder to predict the actual performance
        change because synchronization performance may impact load
        imbalance" — the prediction only adjusts the spin-free sync cost.
        """
        p = self.analysis.params
        sync = self.analysis.sync
        baseline: dict[int, float] = {}
        predicted: dict[int, float] = {}
        for n, rec in self.base_runs.items():
            measured = rec.counters.cycles
            ntsyn = rec.counters.store_exclusive_to_shared
            old = ntsyn * (p.cpi0 + sync.tsyn_by_n.get(n, 0.0))
            new = ntsyn * (p.cpi0 + tsyn_new)
            baseline[n] = measured
            predicted[n] = max(0.0, measured + (new - old))
        return WhatIfPrediction(
            label=label or f"sync primitive tsyn={tsyn_new:g}",
            baseline=baseline,
            predicted=predicted,
            note="does not model the interaction with load imbalance",
        )
