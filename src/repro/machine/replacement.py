"""Replacement policies for the set-associative cache model.

A policy sees one set at a time as an ordered list of block ids (index 0 is
the logical head).  The cache calls :meth:`on_insert`, :meth:`on_hit`, and
:meth:`victim_index`; policies may keep auxiliary per-set state (tree-PLRU
bits, RNG), keyed by set index.

The Origin 2000's caches are LRU; the alternatives exist so ablations and
property tests can show the model is insensitive to the exact policy (the
paper's "conflict misses" lump capacity+conflict regardless of policy).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigError

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "TreePlruPolicy",
    "make_policy",
]


class ReplacementPolicy(ABC):
    """Interface between a cache and its eviction strategy."""

    @abstractmethod
    def on_hit(self, set_index: int, order: list[int], way: int) -> None:
        """Update state after a hit on ``order[way]``; may reorder ``order``."""

    @abstractmethod
    def on_insert(self, set_index: int, order: list[int], block: int) -> None:
        """Record ``block`` being inserted; append it to ``order``."""

    @abstractmethod
    def victim_index(self, set_index: int, order: list[int]) -> int:
        """Choose the index in ``order`` to evict (set is full)."""

    def on_remove(self, set_index: int, order: list[int], way: int) -> None:
        """Invalidate ``order[way]`` (e.g. coherence invalidation)."""
        order.pop(way)

    def reset(self) -> None:
        """Drop any auxiliary state (used when a cache is flushed)."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: hits move to the back; the front is the victim."""

    def on_hit(self, set_index: int, order: list[int], way: int) -> None:
        order.append(order.pop(way))

    def on_insert(self, set_index: int, order: list[int], block: int) -> None:
        order.append(block)

    def victim_index(self, set_index: int, order: list[int]) -> int:
        return 0


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: insertion order only, hits do not promote."""

    def on_hit(self, set_index: int, order: list[int], way: int) -> None:
        pass

    def on_insert(self, set_index: int, order: list[int], block: int) -> None:
        order.append(block)

    def victim_index(self, set_index: int, order: list[int]) -> int:
        return 0


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim, deterministic under the machine seed."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._seed = seed

    def on_hit(self, set_index: int, order: list[int], way: int) -> None:
        pass

    def on_insert(self, set_index: int, order: list[int], block: int) -> None:
        order.append(block)

    def victim_index(self, set_index: int, order: list[int]) -> int:
        return self._rng.randrange(len(order))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two associativity.

    Keeps one bit per internal node of a binary tree per set; a hit flips
    the path bits away from the touched way, the victim follows the bits.
    Way positions are the *stable* slot order (``order`` list position), so
    unlike :class:`LruPolicy` the list is never reordered.
    """

    def __init__(self, associativity: int) -> None:
        if associativity & (associativity - 1):
            raise ConfigError("tree-PLRU requires a power-of-two associativity")
        self._assoc = associativity
        self._bits: dict[int, int] = {}

    def _walk_update(self, set_index: int, way: int) -> None:
        bits = self._bits.get(set_index, 0)
        node = 1
        lo, hi = 0, self._assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits |= 1 << node  # point away: next victim on the right
                node = node * 2
                hi = mid
            else:
                bits &= ~(1 << node)
                node = node * 2 + 1
                lo = mid
        self._bits[set_index] = bits

    def on_hit(self, set_index: int, order: list[int], way: int) -> None:
        self._walk_update(set_index, way)

    def on_insert(self, set_index: int, order: list[int], block: int) -> None:
        order.append(block)
        self._walk_update(set_index, len(order) - 1)

    def victim_index(self, set_index: int, order: list[int]) -> int:
        bits = self._bits.get(set_index, 0)
        node = 1
        lo, hi = 0, self._assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits & (1 << node):
                node = node * 2 + 1
                lo = mid
            else:
                node = node * 2
                hi = mid
        return min(lo, len(order) - 1)

    def on_remove(self, set_index: int, order: list[int], way: int) -> None:
        order.pop(way)

    def reset(self) -> None:
        self._bits.clear()


def make_policy(name: str, associativity: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by configuration name."""
    if name == "lru":
        return LruPolicy()
    if name == "fifo":
        return FifoPolicy()
    if name == "random":
        return RandomPolicy(seed)
    if name == "plru":
        return TreePlruPolicy(associativity)
    raise ConfigError(f"unknown replacement policy {name!r}")
