"""Scal-Tool: the paper's contribution.

The empirical CPI-breakdown scalability model (Section 2):

* :mod:`repro.core.model` — the CPI equations (Eq. 1, 5–8);
* :mod:`repro.core.estimators` — cpi0 (biased + unbiased), t2/tm least
  squares, tm(n) (Sections 2.2–2.3);
* :mod:`repro.core.cache_analysis` — compulsory/coherence isolation and
  the infinite-L2 hit-rate curves (Section 2.4.1, Figure 3);
* :mod:`repro.core.sync_analysis` — cpi_sync, cpi_imb, tsyn, frac_syn,
  frac_imb (Section 2.4.2, Eqs. 9–10);
* :mod:`repro.core.bottlenecks` — the Base / −L2Lim / −Sync / −Imb cycle
  curves (Figures 1–2, 6, 9, 12);
* :mod:`repro.core.whatif` — machine-parameter experiments (Section 2.6);
* :mod:`repro.core.sharing` — the true/false-sharing extension announced
  in the paper's future work (Section 6);
* :mod:`repro.core.runplan` — the Table 1 / Table 3 resource accounting;
* :mod:`repro.core.scaltool` — the façade tying it all together;
* :mod:`repro.core.validation` — MP estimate vs (simulated) speedshop.
"""

from .balance import analyze_balance
from .bottlenecks import BottleneckCurves
from .estimators import ParameterEstimates, estimate_parameters
from .prediction import ScalabilityPredictor, predict_speedups
from .scaltool import ScalTool, ScalToolAnalysis
from .segments import analyze_segments
from .sensitivity import analyze_sensitivity
from .sharing import analyze_sharing
from .validation import ValidationComparison, validate_mp
from .whatif import WhatIf

__all__ = [
    "ScalTool",
    "ScalToolAnalysis",
    "BottleneckCurves",
    "ParameterEstimates",
    "estimate_parameters",
    "WhatIf",
    "ValidationComparison",
    "validate_mp",
    "analyze_segments",
    "analyze_sharing",
    "analyze_sensitivity",
    "analyze_balance",
    "ScalabilityPredictor",
    "predict_speedups",
]
