"""The statistical line sampler: folding, attribution, merge, lifecycle.

Most tests drive :meth:`Sampler.sample_once` synchronously from the
target thread itself — one deterministic tick, no watcher, no timing —
and only two tests let the real watcher thread run.
"""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.obs import runtime as obs
from repro.obs.sampler import (
    NOOP_SAMPLER,
    ROOT_SPAN,
    SampleProfile,
    Sampler,
    active_sampler,
    frame_label,
    sampler,
    split_frame,
)


def _tick(s: Sampler) -> None:
    """One synchronous sample of the calling thread."""
    s._target_ident = threading.get_ident()
    s.sample_once()


# -- frame labels ----------------------------------------------------------------


def test_frame_label_round_trips_through_split():
    label = frame_label("/home/x/proj/src/repro/machine/cache.py", "insert", 120)
    assert label == "repro/machine/cache.py:insert:120"
    assert split_frame(label) == ("repro/machine/cache.py", "insert", 120)


def test_frame_label_is_checkout_independent_for_project_files():
    a = frame_label("/home/alice/repo/src/repro/obs/spool.py", "merge_spool", 7)
    b = frame_label("/tmp/ci/build/src/repro/obs/spool.py", "merge_spool", 7)
    assert a == b


def test_frame_label_keeps_two_components_for_foreign_files():
    label = frame_label("/usr/lib/python3/numpy/_core/_methods.py", "_amin", 45)
    assert label == "_core/_methods.py:_amin:45"


def test_frame_label_tolerates_missing_lineno():
    # A frame walked from another thread can be caught before it has a
    # line number assigned.
    assert frame_label("/x/repro/a.py", "f", None) == "repro/a.py:f:0"


# -- SampleProfile ---------------------------------------------------------------


def _profile_with(*entries) -> SampleProfile:
    p = SampleProfile(interval_s=0.01)
    for span, frames, count in entries:
        p.note(span, frames, count)
    return p


def test_line_table_attributes_self_samples_per_span():
    p = _profile_with(
        ("run/a", ("f.py:outer:1", "f.py:hot:9"), 3),
        ("run/b", ("f.py:outer:1", "f.py:hot:9"), 2),
        ("run/a", ("f.py:outer:1",), 1),
    )
    top = p.line_table()[0]
    assert (top["file"], top["func"], top["line"]) == ("f.py", "hot", 9)
    assert top["self"] == 5
    assert top["spans"] == {"run/a": 3, "run/b": 2}
    assert top["self_seconds"] == pytest.approx(0.05)


def test_function_table_counts_cumulative_once_per_sample():
    # A recursive stack must not double-count its own cumulative samples.
    p = _profile_with(("", ("f.py:rec:1", "f.py:rec:2", "f.py:rec:1"), 4),)
    (row,) = p.function_table()
    assert row["func"] == "rec"
    assert row["cumulative"] == 4
    assert row["self"] == 4


def test_tables_break_ties_by_name_then_path():
    p = _profile_with(
        ("", ("z.py:beta:5",), 2),
        ("", ("a.py:beta:9",), 2),
        ("", ("m.py:alpha:1",), 2),
    )
    names = [(r["func"], r["file"]) for r in p.line_table()]
    assert names == [("alpha", "m.py"), ("beta", "a.py"), ("beta", "z.py")]


def test_folded_output_is_sorted_and_span_led():
    p = _profile_with(
        ("run/x", ("a.py:f:1", "b.py:g:2"), 3),
        ("", ("a.py:f:1",), 1),
    )
    assert p.folded() == [
        f"{ROOT_SPAN};a.py:f:1 1",
        "run/x;a.py:f:1;b.py:g:2 3",
    ]


def test_folded_sanitizes_separator_inside_span_names():
    p = _profile_with(("run;weird", ("a.py:f:1",), 1),)
    (line,) = p.folded()
    assert line.startswith("run,weird;")


def test_to_dict_from_dict_round_trip_is_exact():
    p = _profile_with(
        ("run/a", ("a.py:f:1", "b.py:g:2"), 3),
        ("", ("c.py:h:3",), 2),
    )
    p.duration_s = 1.5
    p.overhead_s = 0.03
    back = SampleProfile.from_dict(p.to_dict())
    assert back.counts == p.counts
    assert back.n_samples == p.n_samples
    assert back.interval_s == p.interval_s
    assert back.duration_s == p.duration_s
    assert back.to_dict() == p.to_dict()


def test_merge_reparents_spans_under_prefix():
    worker = _profile_with(
        ("engine.execute/machine.run", ("a.py:f:1",), 2),
        ("", ("b.py:g:2",), 1),
    )
    parent = SampleProfile()
    parent.merge(worker, span_prefix="profile/engine.run")
    assert set(span for span, _ in parent.counts) == {
        "profile/engine.run/engine.execute/machine.run",
        "profile/engine.run",
    }
    assert parent.n_samples == 3


def test_merge_accumulates_time_and_memory():
    a = SampleProfile(
        duration_s=1.0,
        overhead_s=0.1,
        memory={"peak_bytes": 100, "top": [{"file": "a.py", "line": 1, "size_bytes": 50}]},
    )
    b = SampleProfile(
        duration_s=2.0,
        overhead_s=0.2,
        memory={"peak_bytes": 300, "top": [{"file": "b.py", "line": 2, "size_bytes": 80}]},
    )
    a.merge(b)
    assert a.duration_s == pytest.approx(3.0)
    assert a.overhead_s == pytest.approx(0.3)
    assert a.memory["peak_bytes"] == 300
    assert [t["file"] for t in a.memory["top"]] == ["b.py", "a.py"]


def test_overhead_ratio_guards_degenerate_windows():
    assert SampleProfile().overhead_ratio() == 1.0
    assert SampleProfile(duration_s=1.0, overhead_s=2.0).overhead_ratio() == 1.0
    assert SampleProfile(duration_s=2.0, overhead_s=1.0).overhead_ratio() == pytest.approx(2.0)


# -- Sampler ---------------------------------------------------------------------


def test_sample_once_records_calling_frame_and_excludes_sampler():
    s = Sampler()
    _tick(s)
    assert s.profile.n_samples == 1
    ((span, frames),) = list(s.profile.counts)
    assert span == ""  # no obs session active
    assert any(":test_sample_once_records_calling_frame_and_excludes_sampler:" in f for f in frames)
    assert not any(f.split(":")[0] == "repro/obs/sampler.py" for f in frames)


def test_sample_once_attributes_to_open_span():
    with obs.session() as session:
        with session.tracer.span("outer"):
            with session.tracer.span("inner"):
                s = Sampler()
                _tick(s)
    ((span, _frames),) = list(s.profile.counts)
    assert span == "outer/inner"


def test_pause_resume_accounts_unpaused_duration_only():
    now = [0.0]
    s = Sampler(clock=lambda: now[0])
    s._segment_t0 = now[0]
    now[0] = 2.0
    s.pause()
    assert s.profile.duration_s == pytest.approx(2.0)
    now[0] = 5.0  # paused gap, must not count
    s.resume()
    now[0] = 6.0
    s.pause()
    assert s.profile.duration_s == pytest.approx(3.0)


def test_paused_or_stopping_tick_drops_its_sample():
    s = Sampler()
    s._pause_event.set()
    _tick(s)
    s._pause_event.clear()
    s._stopping = True
    _tick(s)
    assert s.profile.n_samples == 0


def test_start_stop_registers_globally_and_shrinks_switch_interval():
    before = sys.getswitchinterval()
    assert active_sampler() is None
    s = Sampler(interval_s=0.05).start()
    try:
        assert active_sampler() is s
        assert sampler() is s
        assert sys.getswitchinterval() < before
        inner = Sampler(interval_s=0.05).start()
        assert active_sampler() is inner
        profile = inner.stop()
        assert profile is inner.profile
        assert active_sampler() is s
    finally:
        s.stop()
    assert active_sampler() is None
    assert sampler() is NOOP_SAMPLER
    assert sys.getswitchinterval() == pytest.approx(before)


def test_watcher_samples_hot_loop():
    s = Sampler(interval_s=0.002).start()
    deadline = time.perf_counter() + 0.2
    x = 0
    while time.perf_counter() < deadline:
        x += 1
    profile = s.stop()
    assert profile.n_samples > 10
    assert profile.duration_s == pytest.approx(0.2, rel=0.5)
    assert any(func == "test_watcher_samples_hot_loop" for _f, func in profile.frame_set())
    assert profile.overhead_ratio() < 1.10


def test_memory_mode_records_peak_and_top_allocators():
    s = Sampler(interval_s=0.01, memory=True).start()
    blob = [bytearray(256 * 1024) for _ in range(8)]
    profile = s.stop()
    assert len(blob) == 8
    assert profile.memory is not None
    assert profile.memory["peak_bytes"] >= 8 * 256 * 1024
    assert profile.memory["top"], "top allocators recorded"
    import tracemalloc

    assert not tracemalloc.is_tracing(), "self-started tracemalloc is stopped"


def test_noop_sampler_is_inert():
    assert NOOP_SAMPLER.start() is NOOP_SAMPLER
    assert NOOP_SAMPLER.stop() is None
    NOOP_SAMPLER.pause()
    NOOP_SAMPLER.resume()
    NOOP_SAMPLER.sample_once()
    assert NOOP_SAMPLER.profile is None


def test_sampler_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        Sampler(interval_s=0.0)
