"""Render the model-suite reports (fit / compare / predict) for the terminal.

Works on the JSON-friendly dict forms (``ModelFit.to_dict()``,
``compare_models(...)``, ``predict_report(...)``), so the CLI renders
local results and results fetched from the service identically.
"""

from __future__ import annotations

from .tables import format_table

__all__ = ["render_model_fit", "render_models_compare", "render_models_predict"]


def _ci_cell(ci: dict, param: str) -> str:
    interval = ci.get(param)
    if not interval:
        return ""
    return f"[{interval[0]:.4f}, {interval[1]:.4f}]"


def render_model_fit(fit: dict, title: str = "model fit") -> str:
    """One model's coefficients, CIs, fit quality, and caveats."""
    lines = [
        f"{title}: {fit.get('model', '?')} on {fit.get('label', '?')} "
        f"({fit.get('n_points', 0)} points)",
        f"  {fit.get('equation', '')}",
    ]
    rows = [
        {
            "param": param,
            "estimate": value,
            "95% CI": _ci_cell(fit.get("ci", {}), param),
        }
        for param, value in sorted(fit.get("params", {}).items())
    ]
    if rows:
        lines.append(format_table(rows))
    quality = (
        f"  R2={fit.get('r_squared', 0.0):.4f}  "
        f"rms={fit.get('residual_rms', 0.0):.4f}  grade: {fit.get('grade', '?')}"
    )
    lines.append(quality)
    if fit.get("peak_n") is not None:
        lines.append(
            f"  peak: n*={fit['peak_n']:.1f} "
            f"(speedup {fit.get('peak_speedup', 0.0):.2f})"
        )
    else:
        lines.append("  peak: none within model (monotone curve)")
    for flag in fit.get("diagnostics", {}).get("flags", []):
        lines.append(f"    {flag}")
    return "\n".join(lines)


def render_models_compare(report: dict, title: str = "model cross-validation") -> str:
    """Per-model fit table, the σ/κ ↔ category mapping, and the verdict."""
    lines = [
        f"{title}: {report.get('label', '?')} "
        f"(counts {report.get('counts', [])})"
    ]
    rows = []
    for name, fit in sorted(report.get("models", {}).items()):
        params = ", ".join(
            f"{k}={v:.4f}" for k, v in sorted(fit.get("params", {}).items())
        )
        rows.append(
            {
                "model": name,
                "R2": fit.get("r_squared", 0.0),
                "rms": fit.get("residual_rms", 0.0),
                "peak n*": "" if fit.get("peak_n") is None else f"{fit['peak_n']:.1f}",
                "grade": fit.get("grade", "?"),
                "params": params,
            }
        )
    if rows:
        lines.append(format_table(rows, title="fits:"))

    mapping = report.get("mapping", {})
    shares = mapping.get("shares", {})
    if shares:
        top_n = mapping.get("top_n", "?")
        usl = shares.get("usl", {})
        scal = shares.get("scaltool", {})
        lines.append(f"penalty shares at n={top_n} (USL term <-> Scal-Tool category):")
        lines.append(
            f"  contention (sigma) {usl.get('contention_share', 0.0):.1%}"
            f"  <->  Sync+Imb {scal.get('sync_imb_share', 0.0):.1%}"
        )
        lines.append(
            f"  coherency  (kappa) {usl.get('coherency_share', 0.0):.1%}"
            f"  <->  L2Lim    {scal.get('l2lim_share', 0.0):.1%}"
        )
        lines.append(
            f"  dominant: USL says {mapping.get('dominant_usl', '?')}, "
            f"Scal-Tool says {mapping.get('dominant_scaltool', '?')}"
        )
    lines.append(f"agreement: {report.get('grade', '?')}")
    for flag in report.get("agreement", {}).get("flags", []):
        lines.append(f"  {flag}")
    return "\n".join(lines)


def render_models_predict(report: dict, title: str = "speedup prediction") -> str:
    """Measured + extrapolated speedups per model, with CI bands."""
    lines = [
        f"{title}: {report.get('label', '?')} "
        f"(measured counts {report.get('measured_counts', [])})"
    ]
    model_names = sorted(report.get("models", {}))
    rows = []
    for row in report.get("rows", []):
        cells: dict = {
            "n": row["n"],
            "measured": "" if row.get("measured") is None else f"{row['measured']:.2f}",
        }
        for name in model_names:
            entry = row.get("models", {}).get(name, {})
            cell = f"{entry.get('speedup', 0.0):.2f}"
            ci = entry.get("ci")
            if ci:
                cell += f" [{ci[0]:.2f}, {ci[1]:.2f}]"
            cells[name] = cell
        rows.append(cells)
    if rows:
        lines.append(format_table(rows))
    gain = report.get("payback_gain", 0.0)
    lines.append(f"per-model outlook (payback: doubling still gains >= {gain:.0%}):")
    for name, summary in sorted(report.get("summary", {}).items()):
        peak = (
            "no peak (monotone)"
            if summary.get("peak_n") is None
            else f"peak n*={summary['peak_n']:.1f} "
            f"(speedup {summary.get('peak_speedup', 0.0):.2f})"
        )
        lines.append(
            f"  {name}: {peak}, payback edge n={summary.get('payback_edge', '?')}, "
            f"grade {summary.get('grade', '?')}"
        )
    return "\n".join(lines)
