"""Compare a fresh benchmark run against the recorded results.

``python benchmarks/check_regression.py`` reruns the service load bench
(:mod:`bench_service_load`), the segment-decomposition structural check
(:mod:`bench_segments`), the cross-model agreement check
(:mod:`bench_models`), the obs overhead bench
(:mod:`bench_obs_overhead`), and the line-sampler overhead bench
(:mod:`bench_profiler_overhead`), compares the fresh numbers against the JSON
recorded in ``benchmarks/results/``, and exits non-zero when any tracked
metric regressed past the threshold (default 20%).

Only *worse-is-higher* metrics are tracked (wall times, latencies, the
enabled/disabled overhead ratio, per-segment residual fractions, the
segment tiling error); getting faster never fails.  Counter metrics
(dedup ratio, spec counts) are workload-deterministic and asserted by
the benches themselves, so they are not re-checked here.

Flags:

* ``--threshold 0.2``   allowed relative slowdown before failing
* ``--report-only``     print the comparison but always exit 0
* ``--smoke``           tiny configuration (CI: seconds, not minutes)
* ``--export-dir DIR``  also capture /metrics + one job trace from the
  load bench's parallel run (uploaded as a CI artifact)
* ``--baseline-dir``    where the recorded JSON lives (default:
  ``benchmarks/results/``)

The compare logic (:func:`compare`) is pure and unit-tested; wall-clock
enters only through the fresh measurement.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

HERE = Path(__file__).parent
DEFAULT_THRESHOLD = 0.2

#: (metric label, path into the result dict) — higher is worse for all.
SERVICE_LOAD_METRICS = [
    ("serial cold wall_seconds", ("serial", "cold", "wall_seconds")),
    ("serial warm wall_seconds", ("serial", "warm", "wall_seconds")),
    ("serial cold latency_mean_s", ("serial", "cold", "latency_mean_s")),
    ("serial warm latency_mean_s", ("serial", "warm", "latency_mean_s")),
    ("parallel cold wall_seconds", ("parallel", "cold", "wall_seconds")),
    ("parallel warm wall_seconds", ("parallel", "warm", "wall_seconds")),
    ("parallel cold latency_mean_s", ("parallel", "cold", "latency_mean_s")),
    ("parallel warm latency_mean_s", ("parallel", "warm", "latency_mean_s")),
    # Multi-process fleet sweep (dispatcher + N workers, 100 clients).
    ("fleet w1 warm wall_seconds", ("fleet", "workers", "1", "warm", "wall_seconds")),
    ("fleet w2 warm wall_seconds", ("fleet", "workers", "2", "warm", "wall_seconds")),
    ("fleet w4 cold wall_seconds", ("fleet", "workers", "4", "cold", "wall_seconds")),
    ("fleet w4 warm wall_seconds", ("fleet", "workers", "4", "warm", "wall_seconds")),
    ("fleet w4 warm latency_mean_s", ("fleet", "workers", "4", "warm", "latency_mean_s")),
]

OBS_OVERHEAD_METRICS = [
    ("obs hook_fraction", ("hook_fraction",)),
    ("obs enabled/disabled ratio", ("ratio",)),
]

#: Line-sampler cost: profiled / unprofiled campaign wall time and the
#: sampler's own per-tick accounting.  Both worse-is-higher; the ratio
#: additionally gates against the absolute 1.10 budget below, baseline
#: or not.
PROFILER_METRICS = [
    ("profiler overhead_ratio", ("overhead_ratio",)),
    ("profiler tick_fraction", ("tick_fraction",)),
]

#: Structural model-quality metrics from the segment decomposition: the
#: unmodeled residual share per segment and the tiling error.  All are
#: worse-is-higher and wall-clock free, so they gate at a tight threshold.
SEGMENTS_METRICS = [
    ("segments tiling_rel_error_max", ("tiling_rel_error_max",)),
    ("spmv residual_fraction n=1", ("segments", "spmv", "1", "residual_fraction")),
    ("init residual_fraction n=1", ("segments", "init", "1", "residual_fraction")),
    (
        "vector steps residual_fraction n=1",
        ("segments", "vector steps", "1", "residual_fraction"),
    ),
]

#: Structural quality metrics from the cross-model comparison: how well
#: each scalability law tracks the measured curve, how far the fitted
#: curves spread from each other, and the agreement grade (0 ok / 1 warn
#: / 2 suspect).  All worse-is-higher and wall-clock free except the fit
#: time itself.
MODELS_METRICS = [
    ("models usl residual_rms", ("models", "usl", "residual_rms")),
    ("models granularity residual_rms", ("models", "granularity", "residual_rms")),
    ("models scaltool residual_rms", ("models", "scaltool", "residual_rms")),
    ("models cross_model_rms", ("cross_model_rms",)),
    ("models agreement_grade_score", ("agreement_grade_score",)),
    ("models fit_wall_seconds", ("fit_wall_seconds",)),
]


def _dig(data: dict, path: tuple) -> float | None:
    node = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def compare(
    baseline: dict, fresh: dict, metrics: list[tuple], threshold: float
) -> list[dict]:
    """Per-metric comparison rows; ``regressed`` marks threshold breaches.

    A metric missing on either side is reported (``status: missing``) but
    never fails the check — recorded baselines predate some metrics.
    """
    rows = []
    for label, path in metrics:
        base = _dig(baseline, path)
        new = _dig(fresh, path)
        if base is None or new is None or base <= 0:
            rows.append(
                {"metric": label, "baseline": base, "fresh": new,
                 "delta": None, "status": "missing", "regressed": False}
            )
            continue
        delta = (new - base) / base
        regressed = delta > threshold
        rows.append(
            {
                "metric": label,
                "baseline": base,
                "fresh": new,
                "delta": delta,
                "status": "regressed" if regressed else "ok",
                "regressed": regressed,
            }
        )
    return rows


def format_rows(title: str, rows: list[dict], threshold: float) -> str:
    lines = [f"[{title}] threshold +{threshold:.0%}"]
    for r in rows:
        if r["status"] == "missing":
            lines.append(f"  {r['metric']:.<46s} (not comparable)")
            continue
        lines.append(
            f"  {r['metric']:.<46s} {r['baseline']:>9.4f} -> {r['fresh']:>9.4f}"
            f"  {r['delta']:>+7.1%}  {'REGRESSED' if r['regressed'] else 'ok'}"
        )
    return "\n".join(lines)


def _load_baseline(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative slowdown (default 0.2 = 20%%)")
    parser.add_argument("--report-only", action="store_true",
                        help="print the comparison but always exit 0")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI (fewer clients/repeats)")
    parser.add_argument("--export-dir", default=None, metavar="DIR",
                        help="capture /metrics + one job trace here (CI artifact)")
    parser.add_argument("--baseline-dir", default=str(HERE / "results"), metavar="DIR",
                        help="directory holding the recorded baseline JSON")
    parser.add_argument("--skip-load", action="store_true",
                        help="skip the service load bench")
    parser.add_argument("--skip-obs", action="store_true",
                        help="skip the obs overhead bench")
    parser.add_argument("--skip-profiler", action="store_true",
                        help="skip the line-sampler overhead bench")
    parser.add_argument("--skip-segments", action="store_true",
                        help="skip the segment-decomposition structural check")
    parser.add_argument("--skip-models", action="store_true",
                        help="skip the cross-model agreement check")
    args = parser.parse_args(argv)

    # Import the benches through the package so monkeypatching
    # ``benchmarks.bench_*`` in tests affects what runs here.
    sys.path.insert(0, str(HERE.parent))
    baseline_dir = Path(args.baseline_dir)
    failed = False
    reports: list[str] = []

    if not args.skip_load:
        from benchmarks.bench_service_load import run_benchmark

        if args.smoke:
            fresh_load = run_benchmark(
                clients=2, requests_per_client=1,
                engine_jobs=min(2, os.cpu_count() or 1),
                export_dir=args.export_dir,
            )
        else:
            fresh_load = run_benchmark(
                export_dir=args.export_dir,
                fleet_clients=100,
                fleet_worker_counts=(1, 2, 4),
            )
        baseline_load = _load_baseline(baseline_dir / "service_load.json")
        if baseline_load is None:
            reports.append("[service_load] no recorded baseline; skipping comparison")
        elif args.smoke and (
            baseline_load.get("clients") != fresh_load.get("clients")
            or baseline_load.get("requests_per_client") != fresh_load.get("requests_per_client")
        ):
            # A smoke run is a different workload than the recorded full
            # run: absolute comparison would be meaningless noise.
            reports.append(
                "[service_load] smoke configuration differs from baseline; "
                "ran the bench (pass/fail is its own assertions), comparison skipped"
            )
        else:
            rows = compare(baseline_load, fresh_load, SERVICE_LOAD_METRICS, args.threshold)
            reports.append(format_rows("service_load", rows, args.threshold))
            failed |= any(r["regressed"] for r in rows)

    if not args.skip_segments:
        from benchmarks.bench_segments import run_benchmark as run_segments

        seg_counts = (1, 2) if args.smoke else (1, 8, 32)
        fresh_seg = run_segments(counts=seg_counts)
        baseline_seg = _load_baseline(baseline_dir / "segments_t3dheat.json")
        if baseline_seg is None:
            reports.append("[segments] no recorded baseline; skipping comparison")
        elif baseline_seg.get("counts") != fresh_seg.get("counts") or baseline_seg.get(
            "s0"
        ) != fresh_seg.get("s0"):
            # A smoke decomposition covers different counts than the
            # recorded full run; residual fractions are not comparable.
            reports.append(
                "[segments] smoke configuration differs from baseline; "
                "ran the decomposition (tiling invariant checked), comparison skipped"
            )
        else:
            rows = compare(baseline_seg, fresh_seg, SEGMENTS_METRICS, args.threshold)
            reports.append(format_rows("segments", rows, args.threshold))
            failed |= any(r["regressed"] for r in rows)
        # The structural invariant holds at any configuration.
        if fresh_seg["tiling_rel_error_max"] >= 1e-6:
            reports.append(
                f"[segments] tiling error {fresh_seg['tiling_rel_error_max']:.3g} "
                ">= 1e-6: segments no longer tile the run"
            )
            failed = True

    if not args.skip_models:
        from benchmarks.bench_models import run_benchmark as run_models

        models_counts = (1, 2, 4, 8) if args.smoke else (1, 2, 4, 8, 16)
        fresh_models = run_models(counts=models_counts)
        baseline_models = _load_baseline(baseline_dir / "models_fit.json")
        if baseline_models is None:
            reports.append("[models] no recorded baseline; skipping comparison")
        elif baseline_models.get("counts") != fresh_models.get("counts") or (
            baseline_models.get("s0") != fresh_models.get("s0")
        ):
            # Fit quality depends on how much of the curve the fit saw;
            # a smoke fit over fewer counts is a different problem.
            reports.append(
                "[models] smoke configuration differs from baseline; "
                "ran the comparison (agreement invariant checked), comparison skipped"
            )
        else:
            rows = compare(baseline_models, fresh_models, MODELS_METRICS, args.threshold)
            reports.append(format_rows("models", rows, args.threshold))
            failed |= any(r["regressed"] for r in rows)
        # The two-roads invariant holds at any configuration: on a
        # campaign with known injected contention, the closed-form laws
        # and the decomposition must name the same dominant bottleneck.
        mapping = fresh_models.get("mapping") or {}
        if (
            mapping.get("dominant_usl") != "contention"
            or mapping.get("dominant_scaltool") != "sync+imb"
        ):
            reports.append(
                "[models] dominance disagreement on the contention campaign: "
                f"usl={mapping.get('dominant_usl')} "
                f"scaltool={mapping.get('dominant_scaltool')}"
            )
            failed = True

    if not args.skip_obs:
        from benchmarks import bench_obs_overhead

        measure = bench_obs_overhead.measure

        fresh_obs = measure(repeats=2 if args.smoke else 5)
        baseline_obs = _load_baseline(baseline_dir / "obs_overhead.json")
        if baseline_obs is None:
            reports.append("[obs_overhead] no recorded baseline; skipping comparison")
        else:
            rows = compare(baseline_obs, fresh_obs, OBS_OVERHEAD_METRICS, args.threshold)
            reports.append(format_rows("obs_overhead", rows, args.threshold))
            failed |= any(r["regressed"] for r in rows)
        # The bench's own invariant holds regardless of any baseline.
        if fresh_obs["hook_fraction"] >= 0.05:
            reports.append(
                f"[obs_overhead] disabled-mode hook cost "
                f"{fresh_obs['hook_fraction']:.2%} >= 5% contract"
            )
            failed = True

    if not args.skip_profiler:
        from benchmarks import bench_profiler_overhead

        fresh_prof = bench_profiler_overhead.measure(repeats=2 if args.smoke else 5)
        baseline_prof = _load_baseline(baseline_dir / "profiler_overhead.json")
        if baseline_prof is None:
            reports.append("[profiler_overhead] no recorded baseline; skipping comparison")
        else:
            rows = compare(baseline_prof, fresh_prof, PROFILER_METRICS, args.threshold)
            reports.append(format_rows("profiler_overhead", rows, args.threshold))
            failed |= any(r["regressed"] for r in rows)
        # The absolute budget holds regardless of any baseline: a sampler
        # that distorts the workload by >10% reports the wrong hot path.
        budget = bench_profiler_overhead.BUDGET_RATIO
        if fresh_prof["overhead_ratio"] > budget:
            reports.append(
                f"[profiler_overhead] sampling overhead ratio "
                f"{fresh_prof['overhead_ratio']:.3f} > {budget} budget"
            )
            failed = True

    print("\n\n".join(reports))
    if failed and not args.report_only:
        print("\nbenchmark regression detected", file=sys.stderr)
        return 1
    if failed:
        print("\nbenchmark regression detected (report-only mode, exiting 0)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
