"""Scal-Tool's decomposition projected onto the speedup axis.

The Section 2 pipeline does not fit a closed-form speedup law — it
decomposes measured cycles into caching/sync/imbalance costs per count.
To cross-validate it against USL and the granularity model, this adapter
presents that decomposition through the same :class:`~repro.models.base.ModelFit`
interface:

* at *measured* counts ``predict(n)`` returns the decomposition's own
  reconstruction — the categories sum to the measured cycles by
  construction (Eq. 1–10 split measurement, they do not approximate it),
  so the projected speedup there is the analysis' measured curve;
* *beyond* the measured counts it extrapolates through the existing
  :class:`~repro.core.prediction.ScalabilityPredictor` (per-component
  power-law trends), rescaled to splice continuously at the top measured
  count so the anchor bias of the power-law fits cannot masquerade as
  model disagreement;
* ``params`` are the category *shares* of the measured cycles at the top
  measured count — ``sync_imb_share`` (the multiprocessor factors USL's σ
  maps onto) and ``l2lim_share`` (the caching-space category κ maps onto);
* residuals/R² compare that projected curve against the *dataset* under
  fit.  For the campaign's own curve they are zero by construction; a
  dataset that did not come from this analysis (mislabeled, stale, or
  foreign) shows up immediately as large residuals.
"""

from __future__ import annotations

from ..core.prediction import ScalabilityPredictor
from ..core.scaltool import ScalToolAnalysis
from ..errors import EstimationError, InsufficientDataError
from ..obs import runtime as obs
from .base import ModelFit, model_fit_diagnostics, normalized_speedups, speedup_r_squared
from .dataset import SpeedupDataset

__all__ = ["ScalToolModel", "category_shares"]


def category_shares(analysis: ScalToolAnalysis, n: int) -> dict[str, float]:
    """Scal-Tool's per-category cost shares of the measured cycles at n."""
    curves = analysis.curves
    base = curves.base[n]
    if base <= 0:
        raise EstimationError(
            "measured cycles at n are not positive", inputs={"n": n, "base": base}
        )
    return {
        "l2lim_share": curves.l2lim_cost[n] / base,
        "sync_share": curves.sync_cost[n] / base,
        "imb_share": curves.imb_cost[n] / base,
        "sync_imb_share": (curves.sync_cost[n] + curves.imb_cost[n]) / base,
    }


class ScalToolModel:
    """The Eq. 1–10 decomposition as a member of the model suite."""

    name = "scaltool"
    equation = "Eqs. 1-10 category decomposition, power-law component trends"

    def __init__(self, analysis: ScalToolAnalysis) -> None:
        self.analysis = analysis

    def fit(self, dataset: SpeedupDataset) -> ModelFit:
        with obs.tracer().span("models.fit", model=self.name, points=len(dataset.points)):
            counts = self.analysis.curves.processor_counts
            if len(counts) < 3:
                raise InsufficientDataError(
                    "Scal-Tool projection needs >= 3 measured processor counts",
                    inputs={"counts": counts},
                )
            predictor = ScalabilityPredictor(self.analysis)
            measured = dict(self.analysis.curves.speedups())
            top_n = counts[-1]
            # Splice: measured reconstruction inside the measured range,
            # calibrated power-law extrapolation beyond it.
            raw_top = predictor.predict_speedup(top_n)
            calibration = measured[top_n] / raw_top if raw_top > 0 else 1.0

            def predict(n: float) -> float:
                count = int(round(n))
                if count in measured:
                    return measured[count]
                return predictor.predict_speedup(count) * calibration

            speedups = normalized_speedups(dataset)
            modeled = [predict(n) for n in dataset.counts]
            residuals = [m - c for m, c in zip(speedups, modeled)]
            r2 = speedup_r_squared(speedups, modeled)

            shares = category_shares(self.analysis, top_n)
            peak_n = float(predictor.saturation_count())
            diagnostics = model_fit_diagnostics(
                name="scaltool_projection",
                equation=self.equation,
                dataset=dataset,
                estimates=shares,
                ci={},
                r_squared=r2,
                residuals=residuals,
                clamped=[],
                extra_details={"top_n": int(top_n), "health": self.analysis.health},
            )
            obs.registry().inc("models.fit.scaltool")

            return ModelFit(
                model=self.name,
                equation=self.equation,
                label=dataset.label,
                params=shares,
                ci={},
                r_squared=r2,
                residual_rms=diagnostics.residual_rms or 0.0,
                residuals=residuals,
                n_points=len(dataset.points),
                peak_n=peak_n,
                peak_speedup=predict(peak_n),
                diagnostics=diagnostics,
                predict=predict,
                band=lambda n: None,
            )
