"""``scaltool blame`` — graph-based scaling-loss localization.

Pipeline: :func:`build_scaling_graph` merges segments, traces, and
lineage into one graph; :func:`detect_scaling_loss` grades and flags
per-vertex losses; :func:`backtrack` walks edges to ranked, root-caused
findings; :func:`blame_campaign` runs all three and packs a
deterministic :class:`BlameReport`.
"""

from .backtrack import BlameFinding, backtrack
from .detect import (
    CATEGORIES,
    CATEGORY_LABELS,
    Detection,
    VertexLoss,
    detect_scaling_loss,
    loss_window,
)
from .graph import (
    BlameEdge,
    BlameVertex,
    ScalingGraph,
    build_scaling_graph,
    default_groups,
    wall_by_count,
)
from .report import BlameReport, blame_campaign, diff_reports

__all__ = [
    "BlameEdge",
    "BlameFinding",
    "BlameReport",
    "BlameVertex",
    "CATEGORIES",
    "CATEGORY_LABELS",
    "Detection",
    "ScalingGraph",
    "VertexLoss",
    "backtrack",
    "blame_campaign",
    "build_scaling_graph",
    "default_groups",
    "detect_scaling_loss",
    "diff_reports",
    "loss_window",
    "wall_by_count",
]
