"""Ablation: counter fidelity — Scal-Tool on `perfex -a` multiplexed inputs.

The paper's campaign counts events directly (two counters per run).  The
cheaper alternative, time-multiplexing all events in one run, yields
approximate counts.  This ablation degrades the T3dheat campaign to
multiplexed fidelity and measures how the analysis conclusions move.
"""

import pytest

from repro.core import ScalTool, validate_mp
from repro.tools.perfex import multiplex_campaign
from repro.viz.tables import format_table


def test_ablation_multiplex(benchmark, emit, t3dheat_analysis, t3dheat_campaign):
    degraded_campaign = multiplex_campaign(t3dheat_campaign, events_per_slice=2, seed=1)
    degraded = benchmark(lambda: ScalTool(degraded_campaign).analyze())

    exact = t3dheat_analysis
    rows = []
    for n in exact.curves.processor_counts:
        rows.append(
            {
                "n": n,
                "base exact": exact.curves.base[n],
                "base multiplexed": degraded.curves.base[n],
                "MP% exact": exact.mp_fraction(n),
                "MP% multiplexed": degraded.mp_fraction(n),
            }
        )
    v_exact = validate_mp(exact, t3dheat_campaign, exact=True)
    v_degraded = validate_mp(degraded, t3dheat_campaign, exact=True)
    text = format_table(rows, title="Counter fidelity: exact vs multiplexed inputs")
    text += (
        f"\n\nworst validation divergence: exact {v_exact.max_divergence()[1]:.1%}, "
        f"multiplexed {v_degraded.max_divergence()[1]:.1%}"
    )
    emit("ablation_multiplex", text)

    # the analysis still runs and keeps the qualitative conclusion ...
    assert degraded.dominant_bottleneck(32) == exact.dominant_bottleneck(32)
    # ... and the MP share at scale stays in the same regime
    assert degraded.mp_fraction(32) == pytest.approx(exact.mp_fraction(32), abs=0.25)
    # but fidelity costs accuracy: record the degradation honestly
    assert v_degraded.max_divergence()[1] >= v_exact.max_divergence()[1] - 0.02
