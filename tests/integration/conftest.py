"""Session-scoped full-scale campaigns for the paper-shape tests.

These run the three applications on the default scaled-Origin substrate at
the paper's processor counts.  They take tens of seconds in total, run
once per session, and are cached under the pytest tmp factory.
"""

from __future__ import annotations

import pytest

from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.workloads import Hydro2d, Swim, T3dheat

COUNTS = (1, 2, 4, 8, 16, 32)


def _campaign(workload, tmp_dir):
    cfg = CampaignConfig(s0=workload.default_size(), processor_counts=COUNTS)
    return cached_campaign(workload, cfg, cache_dir=tmp_dir)


@pytest.fixture(scope="session")
def paper_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("paper_campaigns")


@pytest.fixture(scope="session")
def t3dheat_campaign(paper_cache_dir):
    return _campaign(T3dheat(), paper_cache_dir)


@pytest.fixture(scope="session")
def hydro2d_campaign(paper_cache_dir):
    return _campaign(Hydro2d(), paper_cache_dir)


@pytest.fixture(scope="session")
def swim_campaign(paper_cache_dir):
    return _campaign(Swim(), paper_cache_dir)
