"""Cross-process shared state: SQLite claim table + indexed run cache.

The stale-claim satellite lives here: a claim owned by a process that
was SIGKILLed must be reclaimable by a peer — via owner-pid liveness
immediately, via TTL expiry as the backstop.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.runner.engine import RunCache, RunSpec, execute_spec
from repro.runner.experiment import default_machine_factory
from repro.service.shared import (
    DEFAULT_CLAIM_TTL,
    IndexedRunCache,
    RunCacheIndex,
    SqliteClaimTable,
    owner_alive,
)
from repro.workloads import make_workload


def _spec() -> RunSpec:
    return RunSpec.compile(
        make_workload("synthetic"),
        size_bytes=4096,
        n_processors=2,
        machine=default_machine_factory()(2),
    )


class TestSqliteClaimTable:
    def test_claim_partitions_across_instances(self, tmp_path):
        db = tmp_path / "claims.sqlite"
        a = SqliteClaimTable(db)
        b = SqliteClaimTable(db)
        got_a, wait_a = a.claim(["k1", "k2"])
        got_b, wait_b = b.claim(["k1", "k3"])
        assert got_a == ["k1", "k2"] and not wait_a
        assert got_b == ["k3"] and set(wait_b) == {"k1"}
        assert len(a) == 3

    def test_release_wakes_waiters(self, tmp_path):
        db = tmp_path / "claims.sqlite"
        a = SqliteClaimTable(db)
        b = SqliteClaimTable(db)
        a.claim(["k"])
        _, waiting = b.claim(["k"])
        assert not waiting["k"].wait(timeout=0.05)  # still held
        a.release(["k"])
        assert waiting["k"].wait(timeout=2.0)

    def test_ttl_expiry_reclaims_unheartbeated_claim(self, tmp_path):
        db = tmp_path / "claims.sqlite"
        a = SqliteClaimTable(db, ttl=0.2)
        b = SqliteClaimTable(db, ttl=0.2)
        a.claim(["k"])
        time.sleep(0.3)
        got, waiting = b.claim(["k"])  # expired: b takes it over
        assert got == ["k"] and not waiting

    def test_heartbeat_keeps_claim_alive(self, tmp_path):
        db = tmp_path / "claims.sqlite"
        a = SqliteClaimTable(db, ttl=0.4)
        b = SqliteClaimTable(db, ttl=0.4)
        a.claim(["k"])
        for _ in range(3):
            time.sleep(0.2)
            a.heartbeat(["k"])
        got, waiting = b.claim(["k"])  # heartbeats kept it fresh
        assert not got and set(waiting) == {"k"}

    def test_killed_claimant_is_reclaimed(self, tmp_path):
        """The satellite: SIGKILL the claiming process, assert reclaim.

        The TTL is generous (the default 60 s) — reclaim must come from
        owner-pid liveness, not from waiting out the clock.
        """
        db = tmp_path / "claims.sqlite"
        script = (
            "import sys, time\n"
            "sys.path.insert(0, sys.argv[2])\n"
            "from repro.service.shared import SqliteClaimTable\n"
            "t = SqliteClaimTable(sys.argv[1])\n"
            "got, _ = t.claim(['doomed'])\n"
            "assert got == ['doomed']\n"
            "print('claimed', flush=True)\n"
            "time.sleep(60)\n"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(db), src],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "claimed"
            survivor = SqliteClaimTable(db, ttl=DEFAULT_CLAIM_TTL)
            got, waiting = survivor.claim(["doomed"])
            assert not got and set(waiting) == {"doomed"}  # held by live owner
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            got, waiting = survivor.claim(["doomed"])
            assert got == ["doomed"] and not waiting  # dead owner: reclaimed
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)

    def test_owner_alive_semantics(self):
        assert owner_alive(f"{os.getpid()}:abc")
        assert not owner_alive("999999999:abc")
        assert not owner_alive("garbage")


class TestRunCacheIndex:
    def test_generation_bumps_on_rewrite(self, tmp_path):
        idx = RunCacheIndex(tmp_path / "idx.sqlite")
        assert idx.generation("k") is None
        assert idx.add("k") == 1
        assert idx.add("k") == 2
        assert idx.generation("k") == 2
        idx.discard("k")
        assert idx.generation("k") is None

    def test_visible_across_instances(self, tmp_path):
        a = RunCacheIndex(tmp_path / "idx.sqlite")
        b = RunCacheIndex(tmp_path / "idx.sqlite")
        a.add("k")
        assert b.generation("k") == 1
        assert len(b) == 1


class TestIndexedRunCache:
    def _record(self):
        return execute_spec(_spec())

    def test_roundtrip_and_memo(self, tmp_path):
        cache = IndexedRunCache(
            tmp_path / "runs", RunCacheIndex(tmp_path / "idx.sqlite")
        )
        spec = _spec()
        assert not cache.contains(spec)
        record = self._record()
        cache.put(spec, record)
        assert cache.contains(spec)
        first = cache.get(spec)
        second = cache.get(spec)
        assert first is second  # memo: same parsed object back
        assert first.to_json() == record.to_json()

    def test_adopts_entries_written_by_bare_runcache(self, tmp_path):
        """CLI (bare RunCache) and service (indexed) share the directory."""
        bare = RunCache(tmp_path / "runs")
        spec = _spec()
        bare.put(spec, self._record())
        indexed = IndexedRunCache(
            tmp_path / "runs", RunCacheIndex(tmp_path / "idx.sqlite")
        )
        assert indexed.contains(spec)  # adopted via stat fallback
        assert indexed.get(spec) is not None

    def test_cross_process_rewrite_invalidates_memo(self, tmp_path):
        idx_path = tmp_path / "idx.sqlite"
        a = IndexedRunCache(tmp_path / "runs", RunCacheIndex(idx_path))
        b = IndexedRunCache(tmp_path / "runs", RunCacheIndex(idx_path))
        spec = _spec()
        record = self._record()
        a.put(spec, record)
        cached = a.get(spec)
        # "Another process" (b) rewrites the entry: a's memo must refresh.
        b.put(spec, record)
        refreshed = a.get(spec)
        assert refreshed is not cached
        assert refreshed.to_json() == cached.to_json()

    def test_index_row_without_payload_self_heals(self, tmp_path):
        writer = IndexedRunCache(
            tmp_path / "runs", RunCacheIndex(tmp_path / "idx.sqlite")
        )
        spec = _spec()
        writer.put(spec, self._record())
        writer.path(spec).unlink()  # payload vanishes behind the index's back
        # A fresh process (no memo) sees the divergence and heals the index.
        reader = IndexedRunCache(
            tmp_path / "runs", RunCacheIndex(tmp_path / "idx.sqlite")
        )
        assert reader.get(spec) is None
        assert reader.index.generation(spec.key()) is None  # row dropped
