"""Analytic tm(n) and the topology survey."""

import pytest

from repro.errors import ConfigError
from repro.machine.latency import analytic_tm, topology_survey

from ..conftest import tiny_machine_config


class TestAnalyticTm:
    def test_uniprocessor_is_local(self):
        cfg = tiny_machine_config(n_processors=1)
        assert analytic_tm(cfg, 1) == pytest.approx(cfg.timing.t_mem)

    def test_grows_with_n_on_hypercube(self):
        cfg = tiny_machine_config()
        values = [analytic_tm(cfg, n) for n in (2, 8, 32)]
        assert values[0] < values[1] < values[2]

    def test_remote_fraction_scales(self):
        cfg = tiny_machine_config()
        assert analytic_tm(cfg, 8, remote_fraction=0.0) == pytest.approx(cfg.timing.t_mem)
        assert analytic_tm(cfg, 8, remote_fraction=1.0) > analytic_tm(cfg, 8, remote_fraction=0.3)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError):
            analytic_tm(tiny_machine_config(), 4, remote_fraction=1.5)


class TestSurvey:
    @pytest.fixture(scope="class")
    def survey(self):
        return topology_survey(
            tiny_machine_config(),
            processor_counts=(2, 32),
            topologies=("hypercube", "ring", "crossbar"),
            kernel_refs=600,
            footprint_factor=4,
        )

    def test_covers_grid(self, survey):
        assert len(survey) == 6
        assert {p.topology for p in survey} == {"hypercube", "ring", "crossbar"}

    def test_ring_worst_at_scale(self, survey):
        at32 = {p.topology: p for p in survey if p.n_processors == 32}
        assert at32["ring"].measured_tm > at32["crossbar"].measured_tm
        assert at32["ring"].mean_distance > at32["hypercube"].mean_distance

    def test_measured_tracks_analytic(self, survey):
        for p in survey:
            # round-robin placement: the analytic estimate should be within
            # a factor of ~2 of the measured mean miss latency
            assert 0.4 < p.measured_tm / p.analytic_tm < 2.5

    def test_rows_render(self, survey):
        from repro.viz.tables import format_table

        text = format_table([p.row() for p in survey])
        assert "hypercube" in text
