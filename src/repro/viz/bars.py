"""Stacked horizontal bar charts in plain text.

Used by the analysis report to show, per processor count, how the
accumulated cycles split into useful work / L2Lim / Sync / Imb — the
textual cousin of the shaded areas in the paper's Figure 2.
"""

from __future__ import annotations

__all__ = ["stacked_bars"]

_FILL = "#=+x*o%@"


def stacked_bars(
    rows: dict[str, dict[str, float]],
    width: int = 56,
    title: str = "",
) -> str:
    """Render ``{row_label: {part_name: value}}`` as stacked bars.

    All rows share one scale (the largest row total spans ``width``
    characters); parts are drawn in insertion order of the first row with
    a legend mapping fill characters to part names.  Zero/negative parts
    are skipped.
    """
    if not rows:
        return "(no bars)"
    parts_order: list[str] = []
    for parts in rows.values():
        for name in parts:
            if name not in parts_order:
                parts_order.append(name)
    max_total = max(sum(max(0.0, v) for v in parts.values()) for parts in rows.values())
    if max_total <= 0:
        return "(no bars)"

    label_w = max(len(str(label)) for label in rows)
    lines = []
    if title:
        lines.append(title)
    for label, parts in rows.items():
        bar = ""
        shown_total = 0.0
        for i, name in enumerate(parts_order):
            value = max(0.0, parts.get(name, 0.0))
            n_chars = int(round(value / max_total * width))
            bar += _FILL[i % len(_FILL)] * n_chars
            shown_total += value
        lines.append(f"{str(label).rjust(label_w)} |{bar.ljust(width)}| {shown_total:,.0f}")
    legend = "   ".join(
        f"{_FILL[i % len(_FILL)]} {name}" for i, name in enumerate(parts_order)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)
