"""The ``models`` request kind end to end: byte-identity and lineage.

The model suite is a service citizen like every other kind: a ``models``
job on a live server must produce output and data byte-identical to the
direct CLI invocation over the same campaign, a dataset-mode job must
compile to zero run specs (nothing to execute — the curve came inline),
and serial vs ``--jobs N`` execution must not change a byte.
"""

from __future__ import annotations

import json

import pytest

from repro.models import SpeedupDataset, SpeedupPoint, usl_speedup
from repro.service import requests as req_mod
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.http import ServiceServer

from .test_cli_service import cli_stdout

# The warm conftest campaign stops at 2 counts; the model fits need >= 4.
MODELS_S0 = 163840
MODELS_COUNTS = (1, 2, 4, 8)
MODELS_PAYLOAD = {
    "workload": "synthetic",
    "s0": MODELS_S0,
    "counts": list(MODELS_COUNTS),
    "action": "compare",
}
MODELS_ARGS = [
    "synthetic", "--s0", str(MODELS_S0), "--counts", ",".join(map(str, MODELS_COUNTS)),
]


@pytest.fixture(scope="module")
def models_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("models-cache")
    req_mod.compile_request(
        "campaign", {k: MODELS_PAYLOAD[k] for k in ("workload", "s0", "counts")}
    ).execute(cache_root=root)
    return root


@pytest.fixture(scope="module")
def server(models_root):
    srv = ServiceServer(ServiceConfig(cache_dir=models_root, workers=2), port=0).start()
    yield srv
    srv.shutdown(drain_timeout=30)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, timeout=60)


@pytest.fixture(scope="module")
def compare_job(client):
    submitted = client.submit("models", MODELS_PAYLOAD)
    view = client.wait(submitted["id"], timeout=300)
    assert view["state"] == "done", view.get("error")
    return client.result(submitted["id"])["result"]


def external_curve() -> dict:
    points = [
        SpeedupPoint(n=n, speedup=usl_speedup(n, 0.05, 0.002))
        for n in (1, 2, 4, 8, 16)
    ]
    return SpeedupDataset(label="external", points=points).to_dict()


class TestModelsJobs:
    def test_registered_kind(self):
        assert "models" in req_mod.REQUEST_KINDS

    def test_job_output_matches_cli_bytes(self, compare_job, models_root):
        out = cli_stdout(
            ["models", "compare", *MODELS_ARGS, "--cache-dir", str(models_root)]
        )
        assert out == compare_job["output"]

    def test_job_data_matches_cli_json_bytes(self, compare_job, models_root):
        out = cli_stdout(
            ["models", "compare", *MODELS_ARGS, "--cache-dir", str(models_root), "--json"]
        )
        want = json.dumps(compare_job["data"], indent=2, sort_keys=True) + "\n"
        assert out == want

    def test_job_carries_lineage(self, compare_job):
        lineage = compare_job.get("lineage")
        assert lineage and lineage["kind"] == "models"
        assert len(lineage["specs"]) > 0

    def test_dataset_mode_compiles_to_zero_specs(self):
        request = req_mod.compile_request(
            "models", {"action": "fit", "dataset": external_curve()}
        )
        assert request.specs() == []

    def test_dataset_mode_job_runs_without_campaign(self, client):
        submitted = client.submit(
            "models", {"action": "compare", "dataset": external_curve()}
        )
        view = client.wait(submitted["id"], timeout=120)
        assert view["state"] == "done", view.get("error")
        data = client.result(submitted["id"])["result"]["data"]
        assert data["models"]["usl"]["params"]["sigma"] == pytest.approx(0.05, abs=1e-6)
        assert data["agreement"]["details"]["has_decomposition"] is False

    def test_repeat_execution_is_byte_identical(self, models_root):
        request = req_mod.compile_request("models", MODELS_PAYLOAD)
        first = request.execute(cache_root=models_root)
        second = req_mod.compile_request("models", MODELS_PAYLOAD).execute(
            cache_root=models_root
        )
        assert first.output == second.output
        assert json.dumps(first.data, sort_keys=True) == json.dumps(
            second.data, sort_keys=True
        )


class TestCliJobsByteIdentity:
    def test_serial_vs_jobs2(self, tmp_path):
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        base = ["models", "compare", *MODELS_ARGS, "--json"]
        serial = cli_stdout(base + ["--cache-dir", str(serial_dir)])
        parallel = cli_stdout(base + ["--cache-dir", str(parallel_dir), "--jobs", "2"])
        assert serial == parallel

    def test_predict_action_through_service(self, client, models_root):
        payload = dict(MODELS_PAYLOAD, action="predict", to=[16, 32])
        submitted = client.submit("models", payload)
        view = client.wait(submitted["id"], timeout=300)
        assert view["state"] == "done", view.get("error")
        result = client.result(submitted["id"])["result"]
        out = cli_stdout(
            [
                "models", "predict", *MODELS_ARGS,
                "--to", "16,32", "--cache-dir", str(models_root),
            ]
        )
        assert out == result["output"]
