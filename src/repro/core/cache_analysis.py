"""Insufficient-caching-space isolation (paper Section 2.4.1, Figure 3).

Three miss components are separated using only uniprocessor runs:

* **compulsory**: ``1 − max_s L2hitr(s, 1)`` — the plateau of the
  hit-rate-vs-size curve (Figure 3-a);
* **coherence** (per processor count): ``Coh(s0, n) = L2hitr(s0/n, 1) −
  L2hitr(s0, n)`` — the fractional-data-set surrogate, interpolated when
  s0/n was not run exactly;
* **conflict** (the paper's name for capacity+conflict): whatever remains
  between the measured hit rate and ``L2hitr∞``.

The hypothetical hit rates are then

    L2hitr∞ (s0, n)   = 1 − compulsory − Coh(s0, n)       (infinite L2)
    L2hitr∞∞(s0, n)   = 1 − compulsory                    (no coherence either)

and the matching L1/m surrogates come from the uniprocessor run at s0/n
(Section 2.4.2's assumption).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..runner.records import RunRecord
from ..units import clamp
from .model import MemoryRates

__all__ = [
    "CacheSpaceAnalysis",
    "analyze_cache_space",
    "hit_rate_curve",
    "compulsory_miss_rate",
    "interpolate_uniproc",
]


def hit_rate_curve(uniproc_runs: dict[int, RunRecord]) -> list[tuple[int, float]]:
    """(size, L2hitr(s, 1)) sorted by size — Figure 3-(a)'s curve."""
    if not uniproc_runs:
        raise InsufficientDataError("no uniprocessor runs for the hit-rate curve")
    return [(s, uniproc_runs[s].counters.l2_local_hit_rate) for s in sorted(uniproc_runs)]


def compulsory_miss_rate(uniproc_runs: dict[int, RunRecord]) -> float:
    """The compulsory plateau: 1 − max over sizes of L2hitr(s, 1)."""
    curve = hit_rate_curve(uniproc_runs)
    best = max(hr for _, hr in curve)
    return clamp(1.0 - best, 0.0, 1.0)


def interpolate_uniproc(
    uniproc_runs: dict[int, RunRecord], size: float
) -> MemoryRates:
    """Uniprocessor (L1hitr, L2hitr, m) at ``size``, log-linearly interpolated.

    The paper: "If an application does not allow the slicing of the data
    set to the right size, we interpolate between the results of two
    acceptable data set sizes."  Sizes outside the measured range clamp to
    the nearest endpoint.
    """
    if not uniproc_runs:
        raise InsufficientDataError("no uniprocessor runs to interpolate")
    sizes = sorted(uniproc_runs)
    rates = {s: MemoryRates.from_counters(uniproc_runs[s].counters) for s in sizes}
    if size <= sizes[0]:
        return rates[sizes[0]]
    if size >= sizes[-1]:
        return rates[sizes[-1]]
    for lo, hi in zip(sizes, sizes[1:]):
        if lo <= size <= hi:
            # Interpolate in log(size): the fractional schedule is geometric.
            w = (math.log(size) - math.log(lo)) / (math.log(hi) - math.log(lo))
            a, b = rates[lo], rates[hi]
            return MemoryRates(
                a.l1_hit_rate + w * (b.l1_hit_rate - a.l1_hit_rate),
                a.l2_hit_rate + w * (b.l2_hit_rate - a.l2_hit_rate),
                a.m_frac + w * (b.m_frac - a.m_frac),
            )
    raise InsufficientDataError(f"interpolation failed for size {size}")  # pragma: no cover


@dataclass
class CacheSpaceAnalysis:
    """Per-processor-count decomposition of the L2 miss rate."""

    compulsory: float
    coherence_by_n: dict[int, float] = field(default_factory=dict)
    measured_l2hitr_by_n: dict[int, float] = field(default_factory=dict)
    l2hitr_inf_by_n: dict[int, float] = field(default_factory=dict)
    surrogate_rates_by_n: dict[int, MemoryRates] = field(default_factory=dict)
    curve: list[tuple[int, float]] = field(default_factory=list)

    def coherence(self, n: int) -> float:
        try:
            return self.coherence_by_n[n]
        except KeyError:
            raise InsufficientDataError(f"no coherence estimate for n={n}") from None

    def l2hitr_inf(self, n: int) -> float:
        """Infinite-L2 local hit rate (conflicts removed)."""
        return self.l2hitr_inf_by_n[n]

    @property
    def l2hitr_infinf(self) -> float:
        """Hit rate with neither conflicts nor coherence: 1 − compulsory."""
        return clamp(1.0 - self.compulsory, 0.0, 1.0)

    def conflict_rate(self, n: int) -> float:
        """Estimated conflict share of the L1-miss stream at (s0, n)."""
        return clamp(self.l2hitr_inf_by_n[n] - self.measured_l2hitr_by_n[n], 0.0, 1.0)

    def summary(self) -> str:
        lines = [f"compulsory miss rate: {self.compulsory:.4f}"]
        for n in sorted(self.coherence_by_n):
            lines.append(
                f"n={n:3d}: L2hitr={self.measured_l2hitr_by_n[n]:.4f} "
                f"Coh={self.coherence_by_n[n]:.4f} "
                f"L2hitr_inf={self.l2hitr_inf_by_n[n]:.4f} "
                f"conflict={self.conflict_rate(n):.4f}"
            )
        return "\n".join(lines)


def analyze_cache_space(
    uniproc_runs: dict[int, RunRecord],
    base_runs: dict[int, RunRecord],
    s0: int,
) -> CacheSpaceAnalysis:
    """Run the full Section 2.4.1 analysis."""
    if not base_runs:
        raise InsufficientDataError("no base-size runs")
    compulsory = compulsory_miss_rate(uniproc_runs)
    analysis = CacheSpaceAnalysis(
        compulsory=compulsory,
        curve=hit_rate_curve(uniproc_runs),
    )
    for n in sorted(base_runs):
        measured = clamp(base_runs[n].counters.l2_local_hit_rate, 0.0, 1.0)
        surrogate = interpolate_uniproc(uniproc_runs, s0 / n)
        coh = clamp(surrogate.l2_hit_rate - measured, 0.0, 1.0)
        # For the uniprocessor run the surrogate *is* the measurement, so
        # coherence is identically zero (the paper's Figure 3-b starts with
        # L2hitr_inf = 1 - compulsory at n = 1).
        if n == 1:
            coh = 0.0
        analysis.measured_l2hitr_by_n[n] = measured
        analysis.coherence_by_n[n] = coh
        analysis.l2hitr_inf_by_n[n] = clamp(1.0 - compulsory - coh, 0.0, 1.0)
        analysis.surrogate_rates_by_n[n] = surrogate
    return analysis
