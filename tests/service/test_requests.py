"""Request compilation: validation, canonicalisation, fingerprints, specs."""

import pytest

from repro.errors import ServiceError
from repro.service.requests import (
    DEFAULT_COUNTS,
    REQUEST_KINDS,
    RequestResult,
    compile_request,
    request_fingerprint,
)
from repro.workloads import make_workload

PAYLOAD = {"workload": "synthetic", "s0": 163840, "counts": [1, 2]}


class TestCompile:
    def test_kinds_registry(self):
        assert REQUEST_KINDS == (
            "analyze", "blame", "campaign", "models", "predict", "sweep", "whatif",
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown request kind"):
            compile_request("explode", {})

    def test_missing_workload_rejected(self):
        with pytest.raises(ServiceError, match="workload"):
            compile_request("analyze", {})

    def test_unknown_workload_propagates(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            compile_request("analyze", {"workload": "doom"})

    def test_bad_counts_rejected(self):
        with pytest.raises(ServiceError, match="counts"):
            compile_request("analyze", {"workload": "synthetic", "counts": ["x"]})

    def test_unknown_sweep_metric_rejected(self):
        with pytest.raises(ServiceError, match="unknown metric"):
            compile_request("sweep", {"workload": "synthetic", "metrics": ["tachyons"]})

    def test_bad_sweep_axes_rejected(self):
        with pytest.raises(ServiceError, match="workload_axes"):
            compile_request(
                "sweep", {"workload": "synthetic", "workload_axes": {"iters": []}}
            )


class TestCanonicalisation:
    def test_defaults_resolved(self):
        req = compile_request("analyze", {"workload": "synthetic"})
        assert req.canonical["s0"] == make_workload("synthetic").default_size()
        assert tuple(req.canonical["counts"]) == DEFAULT_COUNTS
        assert req.canonical["markdown"] is False

    def test_counts_accept_string_form(self):
        a = compile_request("analyze", {**PAYLOAD, "counts": "1,2"})
        b = compile_request("analyze", {**PAYLOAD, "counts": [1, 2]})
        assert a.canonical == b.canonical

    def test_fingerprint_is_canonical(self):
        # Different spellings of the same request share one job id.
        explicit = compile_request("analyze", PAYLOAD)
        spelled = compile_request(
            "analyze", {"workload": "synthetic", "s0": "163840", "counts": "1,2"}
        )
        assert explicit.fingerprint() == spelled.fingerprint()
        assert explicit.fingerprint().startswith("j")
        assert len(explicit.fingerprint()) == 17

    def test_fingerprint_separates_kinds_and_payloads(self):
        fps = {
            compile_request("analyze", PAYLOAD).fingerprint(),
            compile_request("campaign", PAYLOAD).fingerprint(),
            compile_request("analyze", {**PAYLOAD, "s0": 327680}).fingerprint(),
            compile_request("whatif", {**PAYLOAD, "tm": 0.5}).fingerprint(),
        }
        assert len(fps) == 4

    def test_fingerprint_function_is_deterministic(self):
        fp = request_fingerprint("analyze", {"a": 1, "b": 2})
        assert fp == request_fingerprint("analyze", {"b": 2, "a": 1})


class TestSpecs:
    def test_campaign_kinds_share_spec_set(self):
        # analyze/whatif/predict over the same campaign need the same runs:
        # this is what the planner's dedup exploits.
        analyze = compile_request("analyze", PAYLOAD)
        whatif = compile_request("whatif", {**PAYLOAD, "tm": 0.5})
        keys = lambda req: sorted(s.key() for s in req.specs())  # noqa: E731
        assert keys(analyze) == keys(whatif)
        assert len(analyze.specs()) > 0

    def test_sweep_specs_cover_grid(self):
        req = compile_request(
            "sweep",
            {
                "workload": "synthetic",
                "size": 8192,
                "n": 2,
                "workload_axes": {"iters": [1, 2]},
            },
        )
        assert len(req.specs()) == 2


class TestResult:
    def test_result_roundtrip(self):
        res = RequestResult(output="table\n", data={"rows": [1, 2]})
        assert RequestResult.from_dict(res.to_dict()) == res

    def test_campaign_execute_writes_cache(self, tmp_path):
        res = compile_request(
            "campaign", {"workload": "synthetic", "s0": 163840, "counts": [1]}
        ).execute(cache_root=tmp_path)
        assert res.data["records"] > 0
        assert res.output.count("\n") == res.data["records"]
        assert list((tmp_path / "runs").glob("*.json"))
