"""Bottleneck-curve construction (Figures 1, 2, 6, 9, 12).

For every processor count the analysis produces accumulated-cycle curves:

* ``base``              — measured cycles (all processors summed);
* ``base − L2Lim``      — conflicts removed: cpi∞(s0,n) · inst, with
  cpi∞ from Eq. 8 under the infinite-L2 hit rate;
* ``base − L2Lim − Sync`` and ``base − L2Lim − Imb`` — one multiprocessor
  factor further removed (Eq. 9's terms);
* ``base − L2Lim − MP`` — curve c of Figure 2:
  cpi∞,∞(s0,n) · (1 − frac_syn − frac_imb) · inst.

The removal order matches the paper's figures (caching space first, then
MP factors); Section 2.1 notes the effects can be removed in any order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..runner.records import RunRecord
from .cache_analysis import CacheSpaceAnalysis
from .estimators import ParameterEstimates
from .model import MemoryRates, cpi_from_rates
from .sync_analysis import SyncAnalysis

__all__ = [
    "BottleneckCurves",
    "build_curves",
    "cpi_inf_by_n",
    "cpi_infinf_by_n",
    "BOTTLENECK_TAXONOMY",
]

#: Paper Table 2: the bottlenecks that affect application scalability and
#: the machine-level effects through which each one shows up.  The model
#: quantifies the first three; true/false sharing is the Section 6
#: extension (implemented in :mod:`repro.core.sharing`).
BOTTLENECK_TAXONOMY: list[dict] = [
    {
        "bottleneck": "Insufficient Caching Space",
        "category": "",
        "effects": "Conflict Misses",
        "quantified_by": "core.cache_analysis (L2Lim)",
    },
    {
        "bottleneck": "Synchronization",
        "category": "Multiprocessor Factors",
        "effects": "Coherence Misses + Extra Instructions",
        "quantified_by": "core.sync_analysis (frac_syn, Eq. 10)",
    },
    {
        "bottleneck": "Load Imbalance",
        "category": "Multiprocessor Factors",
        "effects": "Extra Instructions",
        "quantified_by": "core.sync_analysis (frac_imb, Eq. 9)",
    },
    {
        "bottleneck": "True Sharing",
        "category": "Multiprocessor Factors",
        "effects": "Coherence Misses",
        "quantified_by": "core.sharing (Section 6 extension)",
    },
    {
        "bottleneck": "False Sharing",
        "category": "Multiprocessor Factors",
        "effects": "Coherence Misses",
        "quantified_by": "core.sharing (Section 6 extension)",
    },
]


def cpi_inf_by_n(
    base_runs: dict[int, RunRecord],
    params: ParameterEstimates,
    cache: CacheSpaceAnalysis,
) -> dict[int, float]:
    """cpi∞(s0, n): conflicts removed (Section 2.4.1).

    L1hitr and m change negligibly with a bigger L2, so their *measured*
    values at (s0, n) are kept; only L2hitr is replaced by L2hitr∞.
    """
    out = {}
    for n, rec in base_runs.items():
        measured = MemoryRates.from_counters(rec.counters)
        rates = MemoryRates(measured.l1_hit_rate, cache.l2hitr_inf(n), measured.m_frac)
        out[n] = cpi_from_rates(params.cpi0, params.t2, params.tm(n), rates)
    return out


def cpi_infinf_by_n(
    base_runs: dict[int, RunRecord],
    params: ParameterEstimates,
    cache: CacheSpaceAnalysis,
) -> dict[int, float]:
    """cpi∞,∞(s0, n): conflicts *and* coherence removed (Section 2.4.2).

    Here even L1hitr and m come from the fractional-data-set surrogate
    (the uniprocessor run at s0/n), because the real run's values include
    multiprocessor effects (spin loads etc.).
    """
    out = {}
    for n in base_runs:
        surrogate = cache.surrogate_rates_by_n[n]
        rates = MemoryRates(surrogate.l1_hit_rate, cache.l2hitr_infinf, surrogate.m_frac)
        out[n] = cpi_from_rates(params.cpi0, params.t2, params.tm(n), rates)
    return out


@dataclass
class BottleneckCurves:
    """The accumulated-cycle curves of one application's analysis."""

    processor_counts: list[int]
    base: dict[int, float] = field(default_factory=dict)
    base_minus_l2lim: dict[int, float] = field(default_factory=dict)
    base_minus_l2lim_sync: dict[int, float] = field(default_factory=dict)
    base_minus_l2lim_imb: dict[int, float] = field(default_factory=dict)
    base_minus_l2lim_mp: dict[int, float] = field(default_factory=dict)
    l2lim_cost: dict[int, float] = field(default_factory=dict)
    sync_cost: dict[int, float] = field(default_factory=dict)
    imb_cost: dict[int, float] = field(default_factory=dict)
    instructions: dict[int, float] = field(default_factory=dict)
    wall_cycles: dict[int, float] = field(default_factory=dict)

    def mp_cost(self, n: int) -> float:
        """The estimated multiprocessor cost (Sync + Imb) at n."""
        return self.sync_cost[n] + self.imb_cost[n]

    def speedups(self) -> list[tuple[int, float]]:
        """Wall-clock speedups vs the 1-processor run (Figures 5/8/11)."""
        if 1 not in self.wall_cycles:
            raise InsufficientDataError("no 1-processor run for speedups")
        base = self.wall_cycles[1]
        return [(n, base / self.wall_cycles[n]) for n in self.processor_counts]

    def rows(self) -> list[dict]:
        """Tabular view, one row per processor count."""
        out = []
        for n in self.processor_counts:
            out.append(
                {
                    "n": n,
                    "base": self.base[n],
                    "base-L2Lim": self.base_minus_l2lim[n],
                    "base-L2Lim-Sync": self.base_minus_l2lim_sync[n],
                    "base-L2Lim-Imb": self.base_minus_l2lim_imb[n],
                    "base-L2Lim-MP": self.base_minus_l2lim_mp[n],
                    "L2Lim": self.l2lim_cost[n],
                    "Sync": self.sync_cost[n],
                    "Imb": self.imb_cost[n],
                }
            )
        return out


def build_curves(
    base_runs: dict[int, RunRecord],
    params: ParameterEstimates,
    cache: CacheSpaceAnalysis,
    sync: SyncAnalysis,
) -> BottleneckCurves:
    """Assemble every curve from the three analyses."""
    counts = sorted(base_runs)
    curves = BottleneckCurves(processor_counts=counts)
    inf = cpi_inf_by_n(base_runs, params, cache)
    infinf = cpi_infinf_by_n(base_runs, params, cache)

    for n in counts:
        rec = base_runs[n]
        inst = rec.counters.graduated_instructions
        base = rec.counters.cycles
        b = inf[n] * inst
        fs = sync.frac_syn(n)
        fi = sync.frac_imb(n)
        sync_cost = sync.cpi_sync(n) * fs * inst
        imb_cost = sync.cpi_imb * fi * inst
        c = infinf[n] * (1.0 - fs - fi) * inst

        # The removed-conflicts curve can only sit below the measurement;
        # estimation noise occasionally puts it epsilon above.
        if b > base:
            b = base
        if c > b:
            c = b

        curves.base[n] = base
        curves.base_minus_l2lim[n] = b
        curves.base_minus_l2lim_sync[n] = max(0.0, b - sync_cost)
        curves.base_minus_l2lim_imb[n] = max(0.0, b - imb_cost)
        curves.base_minus_l2lim_mp[n] = c
        curves.l2lim_cost[n] = base - b
        curves.sync_cost[n] = sync_cost
        curves.imb_cost[n] = imb_cost
        curves.instructions[n] = inst
        curves.wall_cycles[n] = rec.wall_cycles
    return curves
