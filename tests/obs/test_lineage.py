"""Lineage collection: ambient, thread-local, engine-integrated."""

from __future__ import annotations

import threading
from types import SimpleNamespace

from repro.obs import lineage
from repro.runner.engine import RunCache, RunSpec, SerialExecutor

from ..conftest import small_synthetic, tiny_machine_config


def fake_spec(key: str, workload: str = "wl", n: int = 1, size: int = 1024,
              machine_hash: str = "mach"):
    return SimpleNamespace(
        key=lambda: key,
        workload=workload,
        role="app_base",
        size_bytes=size,
        n_processors=n,
        machine_hash=lambda: machine_hash,
    )


def engine_spec(n: int = 1, size: int = 4096) -> RunSpec:
    return RunSpec.compile(
        small_synthetic(), size, n, machine=tiny_machine_config(n_processors=n)
    )


class TestCollector:
    def test_note_first_wins_per_key(self):
        col = lineage.LineageCollector()
        col.note(fake_spec("a"), cached=False, seconds=1.0)
        col.note(fake_spec("a"), cached=False, seconds=9.0)
        built = col.build("analyze", "fp")
        assert len(built.specs) == 1
        assert built.specs[0]["seconds"] == 1.0

    def test_execution_overrides_earlier_cache_hit(self):
        col = lineage.LineageCollector()
        col.note(fake_spec("a"), cached=True)
        col.note(fake_spec("a"), cached=False, seconds=2.0)
        built = col.build("analyze", "fp")
        assert built.cache_hits == 0 and built.cache_misses == 1
        assert built.specs[0]["seconds"] == 2.0

    def test_mark_executed_flips_hits(self):
        col = lineage.LineageCollector()
        col.note(fake_spec("a"), cached=True)
        col.note(fake_spec("b"), cached=True)
        col.mark_executed(["a", "missing-key"])
        built = col.build("analyze", "fp")
        by_key = {e["key"]: e for e in built.specs}
        assert by_key["a"]["cached"] is False
        assert by_key["b"]["cached"] is True

    def test_build_sorts_and_stamps_version(self):
        import repro

        col = lineage.LineageCollector()
        col.note(fake_spec("z", workload="zeta", n=4), cached=False)
        col.note(fake_spec("a", workload="alpha", n=1), cached=True)
        built = col.build("campaign", "fingerprint123")
        assert [e["workload"] for e in built.specs] == ["alpha", "zeta"]
        assert built.kind == "campaign"
        assert built.fingerprint == "fingerprint123"
        assert built.code_version == repro.__version__
        assert built.created > 0

    def test_round_trip(self):
        col = lineage.LineageCollector()
        col.note(fake_spec("a"), cached=True)
        built = col.build("analyze", "fp")
        clone = lineage.Lineage.from_dict(built.to_dict())
        assert clone.to_dict() == built.to_dict()


class TestAmbientCollection:
    def test_no_collector_active_is_noop(self):
        assert lineage.current() is None

    def test_collect_nests_and_pops(self):
        with lineage.collect() as outer:
            assert lineage.current() is outer
            with lineage.collect() as inner:
                assert lineage.current() is inner
            assert lineage.current() is outer
        assert lineage.current() is None

    def test_collectors_are_thread_local(self):
        seen = {}

        def worker():
            seen["in_thread"] = lineage.current()

        with lineage.collect():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["in_thread"] is None


class TestEngineIntegration:
    def test_executor_notes_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = engine_spec()
        with lineage.collect() as cold:
            SerialExecutor().run([spec], cache=cache)
        built = cold.build("analyze", "fp")
        assert built.cache_misses == 1 and built.cache_hits == 0
        entry = built.specs[0]
        assert entry["key"] == spec.key()
        assert entry["machine_hash"] == spec.machine_hash()
        assert entry["workload"] == spec.workload

        with lineage.collect() as warm:
            SerialExecutor().run([spec], cache=cache)
        rebuilt = warm.build("analyze", "fp")
        assert rebuilt.cache_hits == 1 and rebuilt.cache_misses == 0

    def test_executor_without_collector_still_runs(self, tmp_path):
        records = SerialExecutor().run([engine_spec()], cache=RunCache(tmp_path))
        assert len(records) == 1

    def test_machine_hash_is_stable_and_config_sensitive(self):
        a, b = engine_spec(n=1), engine_spec(n=1)
        assert a.machine_hash() == b.machine_hash()
        assert a.machine_hash() != engine_spec(n=2).machine_hash()
