"""Victim-buffer latency model."""

import pytest

from repro.errors import ConfigError
from repro.machine.system import DsmMachine

from ..conftest import small_synthetic, tiny_machine_config


class RandomChurn:
    """Uniform random references over ~2x the tiny L2: short-reuse conflicts.

    A victim buffer catches *recently evicted* lines, so it helps random
    churn (mixed reuse distances) but not a cyclic sweep whose reuse
    distance always equals the whole footprint — both facts tested below.
    """

    name = "random_churn"
    cpi0 = 1.0

    def describe_params(self):
        return {}

    def build(self, machine, size_bytes):
        import numpy as np

        from repro.trace.events import Phase, make_segment
        from repro.trace.generators import random_access

        region = machine.allocator.alloc("churn", size_bytes // machine.line_size)
        a, w = random_access(region.block_range(), 20_000,
                             rng=np.random.default_rng(3))
        yield Phase(name="churn", segments=[make_segment(a, w, m_frac=0.5)], barrier=True)


class TestVictimBuffer:
    def test_disabled_by_default(self, machine):
        res = machine.run(small_synthetic(iters=3), 16 * 1024)
        assert res.ground_truth.victim_hits == 0

    def test_catches_short_reuse_conflicts(self):
        cfg = tiny_machine_config(n_processors=1, victim_entries=64)
        res = DsmMachine(cfg).run(RandomChurn(), 8 * 1024)
        assert res.ground_truth.victim_hits > 100

    def test_useless_against_cyclic_sweeps(self):
        # the classic limitation: a sweep's reuse distance is the whole
        # footprint, so nothing is still in the buffer when it returns
        cfg = tiny_machine_config(n_processors=1, victim_entries=64)
        res = DsmMachine(cfg).run(small_synthetic(iters=3), 16 * 1024)
        assert res.ground_truth.victim_hits < 0.01 * res.counters.l2_misses

    def test_speeds_up_conflict_bound_run(self):
        plain = DsmMachine(tiny_machine_config(n_processors=1)).run(RandomChurn(), 8 * 1024)
        buffered = DsmMachine(
            tiny_machine_config(n_processors=1, victim_entries=64)
        ).run(RandomChurn(), 8 * 1024)
        assert buffered.counters.cycles < plain.counters.cycles
        # misses are still misses: only their latency changes
        assert buffered.counters.l2_misses == plain.counters.l2_misses

    def test_bigger_buffer_more_hits(self):
        small = DsmMachine(
            tiny_machine_config(n_processors=1, victim_entries=4)
        ).run(RandomChurn(), 8 * 1024)
        large = DsmMachine(
            tiny_machine_config(n_processors=1, victim_entries=128)
        ).run(RandomChurn(), 8 * 1024)
        assert large.ground_truth.victim_hits > small.ground_truth.victim_hits

    def test_ledger_reconciles(self):
        cfg = tiny_machine_config(victim_entries=32)
        res = DsmMachine(cfg).run(small_synthetic(iters=2), 16 * 1024)
        assert res.ground_truth.total_cycles == pytest.approx(res.counters.cycles, rel=1e-9)

    def test_coherence_unaffected(self):
        # sharing traffic must behave identically with the buffer on
        wl = small_synthetic(iters=2, sharing_frac=0.2)
        plain = DsmMachine(tiny_machine_config()).run(wl, 16 * 1024)
        buffered = DsmMachine(tiny_machine_config(victim_entries=32)).run(wl, 16 * 1024)
        assert buffered.ground_truth.coherence_misses == plain.ground_truth.coherence_misses
        assert (
            buffered.counters.store_exclusive_to_shared
            == plain.counters.store_exclusive_to_shared
        )

    def test_invariants_hold(self):
        machine = DsmMachine(tiny_machine_config(victim_entries=16))
        machine.run(small_synthetic(iters=2, sharing_frac=0.1), 16 * 1024)
        machine.controller.check_invariants()

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            tiny_machine_config(victim_entries=-1)
