"""The assembled machine: runs, results, self-checks."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.machine.system import DsmMachine
from repro.trace.events import Phase, Segment, make_segment
from repro.trace.generators import sweep

from ..conftest import small_synthetic, tiny_machine_config


class OnePhase:
    """Minimal workload: each cpu sweeps its own blocks once."""

    name = "one_phase"
    cpi0 = 1.0

    def __init__(self, blocks_per_cpu=16, refs_per_block=2):
        self.blocks_per_cpu = blocks_per_cpu
        self.refs_per_block = refs_per_block

    def describe_params(self):
        return {"blocks_per_cpu": self.blocks_per_cpu}

    def build(self, machine, size_bytes):
        n = machine.n_processors
        region = machine.allocator.alloc("data", self.blocks_per_cpu * n)
        segs = []
        for cpu in range(n):
            a, w = sweep(region.slice_for(cpu, n), refs_per_block=self.refs_per_block,
                         rng=np.random.default_rng(cpu))
            segs.append(make_segment(a, w, m_frac=0.5))
        yield Phase(name="only", segments=segs, barrier=True)


class TestRun:
    def test_produces_result(self, machine):
        res = machine.run(OnePhase(), 2048)
        assert res.n_processors == 4
        assert res.counters.cycles > 0
        assert res.wall_cycles > 0

    def test_ledger_reconciles(self, machine):
        res = machine.run(OnePhase(), 2048)
        assert res.ground_truth.total_cycles == pytest.approx(res.counters.cycles, rel=1e-9)

    def test_miss_classes_sum_to_l2_misses(self, machine):
        res = machine.run(small_synthetic(), 16 * 1024)
        gt = res.ground_truth
        assert gt.total_misses == res.counters.l2_misses

    def test_instructions_include_sync_and_spin(self, machine):
        res = machine.run(OnePhase(), 2048)
        gt = res.ground_truth
        total = gt.compute_instructions + gt.sync_instructions + gt.spin_instructions
        assert total == pytest.approx(res.counters.graduated_instructions, rel=1e-9)

    def test_reset_between_runs(self, machine):
        res1 = machine.run(OnePhase(), 2048)
        res2 = machine.run(OnePhase(), 2048)
        assert res1.counters.cycles == pytest.approx(res2.counters.cycles)

    def test_determinism_across_machines(self, tiny_cfg):
        r1 = DsmMachine(tiny_cfg).run(small_synthetic(), 16 * 1024)
        r2 = DsmMachine(tiny_cfg).run(small_synthetic(), 16 * 1024)
        assert r1.counters == r2.counters

    def test_phase_counters_sum_to_totals(self, machine):
        res = machine.run(small_synthetic(), 16 * 1024)
        summed = res.phase_counters[0][1]
        for _, delta in res.phase_counters[1:]:
            summed = summed + delta
        assert summed.cycles == pytest.approx(res.counters.cycles, rel=1e-6)
        assert summed.l2_misses == pytest.approx(res.counters.l2_misses)

    def test_wrong_phase_width_rejected(self, machine):
        class Bad:
            name = "bad"
            cpi0 = 1.0

            def describe_params(self):
                return {}

            def build(self, m, s):
                yield Phase(name="p", segments=[None, None], barrier=True)  # 2 slots on 4 cpus

        with pytest.raises(WorkloadError):
            machine.run(Bad(), 1024)

    def test_empty_workload_rejected(self, machine):
        class Empty:
            name = "empty"
            cpi0 = 1.0

            def describe_params(self):
                return {}

            def build(self, m, s):
                return iter(())

        with pytest.raises(WorkloadError):
            machine.run(Empty(), 1024)

    def test_serial_phase_spins_others(self, machine):
        class Serial:
            name = "serial"
            cpi0 = 1.0

            def describe_params(self):
                return {}

            def build(self, m, s):
                segs = [None] * m.n_processors
                segs[0] = Segment(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), 10000)
                yield Phase(name="serial", segments=segs, barrier=True)

        res = machine.run(Serial(), 1024)
        gt = res.per_cpu_ground_truth
        assert gt[0].spin_cycles < gt[1].spin_cycles
        assert gt[1].spin_cycles > 5000

    def test_speedup_helper(self, tiny_cfg):
        wl = small_synthetic()
        r1 = DsmMachine(tiny_machine_config(n_processors=1)).run(wl, 16 * 1024)
        r4 = DsmMachine(tiny_cfg).run(wl, 16 * 1024)
        assert r4.speedup_over(r1) > 1.0

    def test_cycles_counter_equals_clock(self, machine):
        res = machine.run(OnePhase(), 2048)
        for cpu, c in enumerate(res.per_cpu_counters):
            assert c.cycles == pytest.approx(machine.clocks[cpu])


class TestInstructionMisses:
    def test_flag_adds_l1i_misses(self):
        cfg = tiny_machine_config(model_instruction_misses=True)
        res = DsmMachine(cfg).run(OnePhase(), 2048)
        assert res.counters.l1_instruction_misses > 0

    def test_flag_off_by_default(self, machine):
        res = machine.run(OnePhase(), 2048)
        assert res.counters.l1_instruction_misses == 0

    def test_code_cold_misses_once_per_cpu(self):
        cfg = tiny_machine_config(model_instruction_misses=True)
        m = DsmMachine(cfg)
        res = m.run(small_synthetic(iters=3), 8 * 1024)
        # 32 code blocks per cpu, charged exactly once despite many phases
        from repro.machine.system import _CODE_BLOCKS

        data_misses = res.ground_truth.total_misses - 4 * _CODE_BLOCKS
        assert data_misses >= 0
