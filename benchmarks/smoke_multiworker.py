"""Multi-worker smoke: a small fleet must byte-match the direct CLI path.

``python benchmarks/smoke_multiworker.py`` starts ``scaltool serve
--workers N`` the library way (a :class:`Dispatcher` with N worker
processes), drives ~20 mixed jobs (analyze / campaign / blame / a fan
of what-ifs over one shared campaign) through concurrent clients, and
then:

* asserts every job finished and its ``output`` is **byte-identical**
  to the same request executed directly (the CLI code path) against a
  separate cache root;
* asserts the merged ``/v1/stats`` saw every job and no failures;
* exports the merged ``/metrics`` exposition, the fleet topology, and
  one job's distributed trace into ``--export-dir`` (the CI artifact).

Exit status 0 on success, 1 on any mismatch — CI gates on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

BASE_PAYLOAD = {"workload": "synthetic", "s0": 163840, "counts": [1, 2]}


def job_mix(count: int) -> list[tuple[str, dict]]:
    """~``count`` mixed jobs over one shared campaign."""
    mix = [
        ("analyze", dict(BASE_PAYLOAD)),
        ("campaign", dict(BASE_PAYLOAD)),
        ("blame", dict(BASE_PAYLOAD)),
    ]
    for i in range(max(0, count - len(mix))):
        mix.append(("whatif", {**BASE_PAYLOAD, "tm": round(1.0 + 0.05 * i, 4)}))
    return mix


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument("--export-dir", default=None, metavar="DIR")
    args = parser.parse_args(argv)

    from repro.service import requests as req_mod
    from repro.service.client import ServiceClient
    from repro.service.core import ServiceConfig
    from repro.service.dispatcher import Dispatcher

    mix = job_mix(args.jobs)
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="scaltool-smoke-") as tmp:
        root = Path(tmp)
        # The reference: the same requests through the direct (CLI) code
        # path against an independent cache root.  The compiled request's
        # fingerprint IS the job id the service will assign.
        direct: dict[str, str] = {}
        for kind, payload in mix:
            request = req_mod.compile_request(kind, payload)
            direct[request.fingerprint()] = request.execute(
                cache_root=root / "direct"
            ).output

        dispatcher = Dispatcher(
            ServiceConfig(cache_dir=root / "fleet", workers=2),
            worker_count=args.workers,
            port=0,
        ).start()
        try:
            client = ServiceClient(dispatcher.url, timeout=60)

            def one(job: tuple[str, dict]) -> tuple[str, str, str]:
                kind, payload = job
                submitted = client.submit(kind, payload, retries=20)
                view = client.wait(submitted["id"], timeout=300)
                if view["state"] != "done":
                    raise RuntimeError(f"{kind} failed: {view.get('error')}")
                return submitted["id"], kind, view["result"]["output"]

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(one, mix))

            for job_id, kind, output in results:
                if direct[job_id] != output:
                    failures.append(f"{kind} {job_id}: fleet output != CLI output")

            stats = client.stats()
            if stats["jobs"]["failed"]:
                failures.append(f"fleet reported {stats['jobs']['failed']} failed jobs")
            if stats["jobs"]["done"] < len(mix):
                failures.append(
                    f"fleet reported {stats['jobs']['done']} done jobs, "
                    f"expected >= {len(mix)}"
                )

            if args.export_dir is not None:
                export = Path(args.export_dir)
                export.mkdir(parents=True, exist_ok=True)
                (export / "metrics_multiworker.prom").write_text(client.metrics())
                (export / "workers.json").write_text(
                    json.dumps(client.workers(), indent=2, sort_keys=True) + "\n"
                )
                traced = [j for j in client.jobs() if j.get("trace_id")]
                if traced:
                    (export / "job_trace_multiworker.json").write_text(
                        json.dumps(
                            client.trace(traced[-1]["id"]), indent=2, sort_keys=True
                        )
                        + "\n"
                    )
        finally:
            dispatcher.shutdown()

    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print(
        f"multiworker smoke ok: {len(mix)} jobs through {args.workers} workers, "
        f"all byte-identical to the CLI path"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
