"""True/false-sharing extension (the paper's Section 6 future work).

The paper's frac_syn method assumes event 31 counts only synchronization
operations; Swim's data sharing breaks that and causes the 14% validation
divergence at 32 processors.  The announced extension — "extending
Scal-Tool to incorporate the effect of true and false sharing. This
extension should make the tool more accurate for some applications" — is
implemented here using the paper's *other* frac_syn method (Section
2.4.2, method 1): instrument the application to count barriers at run
time.  With the barrier count known,

* the synchronization share of ntsyn is exactly one fetchop per barrier
  arrival (plus two per lock acquire), so
* the remainder of event 31 is data sharing (upgrades), and
* the sharing cost itself is estimated from the coherence miss rate the
  cache analysis already isolated: Coh(s0, n) misses at tm(n) each, plus
  the upgrade cost of the excess event-31 operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..runner.campaign import CampaignData
from ..units import clamp, safe_div
from .bottlenecks import BottleneckCurves, build_curves
from .scaltool import ScalToolAnalysis
from .sync_analysis import SyncAnalysis

__all__ = ["SharingAnalysis", "analyze_sharing"]


@dataclass
class SharingAnalysis:
    """Sharing-corrected synchronization estimate."""

    workload: str
    sync_ops_by_n: dict[int, float] = field(default_factory=dict)
    sharing_ops_by_n: dict[int, float] = field(default_factory=dict)
    sharing_miss_cycles_by_n: dict[int, float] = field(default_factory=dict)
    corrected_sync: SyncAnalysis | None = None
    corrected_curves: BottleneckCurves | None = None

    def contamination(self, n: int) -> float:
        """Fraction of event-31 counts that were *not* synchronization."""
        total = self.sync_ops_by_n[n] + self.sharing_ops_by_n[n]
        return safe_div(self.sharing_ops_by_n[n], total)

    def rows(self) -> list[dict]:
        return [
            {
                "n": n,
                "sync ops": self.sync_ops_by_n[n],
                "sharing ops": self.sharing_ops_by_n[n],
                "contamination": self.contamination(n),
                "sharing miss cycles": self.sharing_miss_cycles_by_n.get(n, 0.0),
            }
            for n in sorted(self.sync_ops_by_n)
        ]


def instrumented_sync_ops(campaign: CampaignData) -> dict[int, float]:
    """Barrier/lock fetchop counts from run-time instrumentation.

    This is the paper's method 1: "instrument the application to count, at
    run time, the number of barriers that the processors go through".  The
    simulator's barrier/lock tallies stand in for that source-level
    instrumentation (they are software-countable, unlike the cycle
    attribution, which stays off-limits to the tool).
    """
    out: dict[int, float] = {}
    for n, rec in campaign.base_runs().items():
        if rec.ground_truth is None:
            raise InsufficientDataError(
                f"base run at n={n} carries no instrumentation counts"
            )
        out[n] = rec.ground_truth.barriers + 2.0 * rec.ground_truth.lock_acquires
    return out


def analyze_sharing(
    analysis: ScalToolAnalysis,
    campaign: CampaignData,
) -> SharingAnalysis:
    """Split event 31 into sync vs sharing and rebuild the curves.

    Returns the corrected analysis; comparing its validation divergence
    against the uncorrected one quantifies the extension's benefit (the
    Swim experiment).
    """
    base_runs = campaign.base_runs()
    sync_ops = instrumented_sync_ops(campaign)
    result = SharingAnalysis(workload=analysis.workload)

    corrected = SyncAnalysis(
        cpi_sync_by_n=dict(analysis.sync.cpi_sync_by_n),
        cpi_imb=analysis.sync.cpi_imb,
        tsyn_by_n=dict(analysis.sync.tsyn_by_n),
    )

    p = analysis.params
    for n in sorted(base_runs):
        rec = base_runs[n]
        c = rec.counters
        ntsyn = c.store_exclusive_to_shared
        ops_sync = min(float(sync_ops[n]), ntsyn)
        ops_share = max(0.0, ntsyn - ops_sync)
        result.sync_ops_by_n[n] = ops_sync
        result.sharing_ops_by_n[n] = ops_share

        # Sharing cost: the isolated coherence misses at tm(n), plus the
        # upgrade operations at roughly one memory access each.
        coh = analysis.cache.coherence(n)
        miss_freq = (1.0 - c.l1_hit_rate) * c.m_frac * coh
        tsyn = analysis.sync.tsyn_by_n.get(n, 0.0)
        result.sharing_miss_cycles_by_n[n] = (
            miss_freq * c.graduated_instructions * p.tm(n) + ops_share * tsyn
        )

        # Corrected Eq. 10 with the decontaminated operation count.
        cpi_sync = corrected.cpi_sync_by_n.get(n, corrected.cpi_imb)
        cost_syn = ops_sync * (p.cpi0 + tsyn)
        inst = c.graduated_instructions
        frac_syn = clamp(safe_div(cost_syn, cpi_sync * inst), 0.0, 1.0)

        cpi_inf = analysis.curves.base_minus_l2lim[n] / inst
        cpi_infinf_times = analysis.curves.base_minus_l2lim_mp[n]
        fs_old = analysis.sync.frac_syn(n)
        fi_old = analysis.sync.frac_imb(n)
        share_old = 1.0 - fs_old - fi_old
        cpi_infinf = cpi_infinf_times / (share_old * inst) if share_old > 1e-9 else cpi_inf

        denom = corrected.cpi_imb - cpi_infinf
        if abs(denom) < 1e-9 or n == 1:
            frac_imb = 0.0
        else:
            frac_imb = (cpi_inf - cpi_infinf * (1.0 - frac_syn) - cpi_sync * frac_syn) / denom
            frac_imb = clamp(frac_imb, 0.0, 1.0 - frac_syn)

        corrected.cost_syn_by_n[n] = cost_syn
        corrected.frac_syn_by_n[n] = frac_syn
        corrected.frac_imb_by_n[n] = frac_imb

    stripped = {n: r.without_ground_truth() for n, r in base_runs.items()}
    result.corrected_sync = corrected
    result.corrected_curves = build_curves(stripped, p, analysis.cache, corrected)
    return result
