"""Observability for the Scal-Tool reproduction: spans, metrics, logs.

The paper's thesis is that cheap, always-on hardware counters beat
invasive instrumentation; this package applies the same discipline to
the reproduction itself.  Three primitives:

* **spans** (:mod:`repro.obs.spans`) — nested, monotonic-clock timed
  regions (``machine.run`` > ``machine.phase``, ``campaign.run`` >
  ``campaign.experiment``, ``analysis.*`` estimator stages);
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  histograms in a name-keyed registry with deterministic snapshots;
* **structured logs** (:mod:`repro.obs.logs`) — stdlib logging under the
  single ``repro`` namespace.

Everything is **off by default** and near-free when off: the accessors
in :mod:`repro.obs.runtime` return module-level no-op singletons, so an
instrumentation point costs one no-op method call, and simulator hot
loops carry no instrumentation at all (component event volume comes
from always-on integer tallies folded into metrics at run boundaries).

Library use::

    from repro import obs

    with obs.session() as s:
        analysis, campaign = quick_analysis("swim")
    obs.export_jsonl(s, "metrics.jsonl")
    print(obs.format_profile(s))

See ``docs/observability.md`` for the span/metric naming scheme and how
to read the profile report.
"""

from .diagnostics import AnalysisDiagnostics, FitDiagnostics, revalidate, worst_grade
from .export import export_jsonl, format_profile, manifest_records, summarize_manifest
from .lineage import Lineage, LineageCollector
from .logs import configure_logging, get_logger, kv
from .metrics import BucketHistogram, Histogram, MetricsRegistry
from .profile import ProfileResult, profile_workload
from .sampler import NOOP_SAMPLER, SampleProfile, Sampler, active_sampler
from .runtime import (
    ObsSession,
    active,
    disable,
    enable,
    is_enabled,
    registry,
    session,
    tracer,
)
from .spans import Span, SpanRecord, Tracer
from .telemetry import Telemetry, render_prometheus
from .trace import TraceBuffer, TraceContext, TraceHandle, TraceSpan

__all__ = [
    "AnalysisDiagnostics",
    "FitDiagnostics",
    "Lineage",
    "LineageCollector",
    "ObsSession",
    "revalidate",
    "worst_grade",
    "Span",
    "SpanRecord",
    "Tracer",
    "BucketHistogram",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SAMPLER",
    "ProfileResult",
    "SampleProfile",
    "Sampler",
    "Telemetry",
    "TraceBuffer",
    "TraceContext",
    "TraceHandle",
    "TraceSpan",
    "active",
    "active_sampler",
    "configure_logging",
    "disable",
    "enable",
    "export_jsonl",
    "format_profile",
    "get_logger",
    "is_enabled",
    "kv",
    "manifest_records",
    "profile_workload",
    "registry",
    "render_prometheus",
    "session",
    "summarize_manifest",
    "tracer",
]
