"""ssusage, time, and Table 1 cost accounting."""

import pytest

from repro.machine.system import DsmMachine
from repro.tools.cost import (
    existing_tools_cost,
    processor_savings,
    scal_tool_cost,
    speedshop_cost,
    table1_rows,
    time_cost,
)
from repro.tools.ssusage import caching_space_processors, data_set_size
from repro.tools.timetool import CLOCK_HZ, execution_seconds, speedup_series
from repro.errors import ConfigError, ValidationError

from ..conftest import small_synthetic, tiny_machine_config


class TestSsusage:
    def test_footprint_close_to_requested(self, machine):
        machine.run(small_synthetic(), 16 * 1024)
        measured = data_set_size(machine)
        assert 0.8 * 16 * 1024 <= measured <= 16 * 1024

    def test_excludes_sync_variables(self, machine):
        machine.run(small_synthetic(), 16 * 1024)
        names = [r.name for r in machine.allocator.regions()]
        assert any(n.startswith("__sync_") for n in names)
        data_blocks = sum(
            r.n_blocks for r in machine.allocator.regions() if not r.name.startswith("__sync_")
        )
        assert data_set_size(machine) == data_blocks * machine.line_size

    def test_caching_space_arithmetic(self, machine):
        res = machine.run(small_synthetic(), 16 * 1024)
        # 16 KB data vs 4 KB L2 -> 4 processors' worth of caching space
        assert caching_space_processors(res) == pytest.approx(4.0)


class TestTime:
    def test_seconds(self, machine):
        res = machine.run(small_synthetic(), 8 * 1024)
        assert execution_seconds(res) == pytest.approx(res.wall_cycles / CLOCK_HZ)

    def test_bad_clock(self, machine):
        res = machine.run(small_synthetic(), 8 * 1024)
        with pytest.raises(ValidationError):
            execution_seconds(res, clock_hz=0)

    def test_speedup_series(self):
        wl = small_synthetic()
        runs = [
            DsmMachine(tiny_machine_config(n_processors=n)).run(wl, 16 * 1024) for n in (1, 2, 4)
        ]
        series = speedup_series(runs)
        assert series[0] == (1, 1.0)
        assert series[-1][0] == 4 and series[-1][1] > 1.0

    def test_speedup_needs_uniprocessor(self, machine):
        res = machine.run(small_synthetic(), 8 * 1024)
        with pytest.raises(ValidationError):
            speedup_series([res])


class TestTable1:
    def test_paper_n6_values(self):
        # Paper Table 1 at n = 6 (up to 32 processors).
        assert time_cost(6).row()[1:] == (6, 63, 6)
        assert speedshop_cost(6).row()[1:] == (6, 63, 6)
        assert existing_tools_cost(6).row()[1:] == (12, 126, 12)
        assert scal_tool_cost(6).row()[1:] == (11, 68, 11)

    def test_closed_forms(self):
        for n in range(1, 10):
            assert existing_tools_cost(n).runs == 2 * n
            assert existing_tools_cost(n).processors == 2 ** (n + 1) - 2
            assert scal_tool_cost(n).runs == 2 * n - 1
            assert scal_tool_cost(n).processors == 2**n + n - 2
            assert scal_tool_cost(n).files == 2 * n - 1

    def test_savings_about_half_at_n6(self):
        # "for runs up to 32 processors (n = 6), Scal-Tool needs only about
        # 50% of the processors"
        assert processor_savings(6) == pytest.approx(0.54, abs=0.02)

    def test_scal_tool_always_cheaper(self):
        for n in range(2, 12):
            assert scal_tool_cost(n).processors < existing_tools_cost(n).processors
            assert scal_tool_cost(n).runs < existing_tools_cost(n).runs

    def test_table_rows_complete(self):
        rows = table1_rows(6)
        assert len(rows) == 4
        assert rows[-1][0].startswith("Total with Scal-Tool")

    def test_bad_n(self):
        with pytest.raises(ConfigError):
            time_cost(0)
