"""Micro-kernels (paper Section 2.4.2).

* :class:`SyncKernel` — "a loop where processors come in and out of
  barriers", no spinning work between them: measures cpi_sync(n) and,
  fitted against ntsyn, the fetchop latency tsyn.
* :class:`SpinKernel` — one processor computes while the rest spin at the
  barrier: measures cpi_imb (the idle-loop CPI).
* :class:`MemoryLatencyKernel` — pointer chase with a footprint chosen to
  defeat a given cache level: a ~100% miss rate isolates t2 or tm, and a
  size sweep produces the triplets for the least-squares fit of
  Section 2.3.
* :class:`CacheFitKernel` — all-hits loop whose measured CPI is cpi0 by
  construction; used by tests to calibrate the cpi0 estimators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import WorkloadError
from ..trace.events import Phase, Segment, make_segment
from ..trace.generators import pointer_chase, sweep
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.system import DsmMachine

__all__ = ["SyncKernel", "SpinKernel", "MemoryLatencyKernel", "CacheFitKernel"]


class SyncKernel(Workload):
    """Back-to-back barrier episodes with negligible work in between."""

    name = "sync_kernel"
    cpi0 = 1.0
    m_frac = 0.2
    paper_footprint_bytes = 4096

    def __init__(self, n_barriers: int = 200, gap_instructions: int = 16, seed: int = 1234) -> None:
        super().__init__(iters=n_barriers, seed=seed)
        if gap_instructions < 0:
            raise WorkloadError("gap_instructions must be >= 0")
        self.n_barriers = n_barriers
        self.gap_instructions = gap_instructions

    def describe_params(self) -> dict:
        return {"n_barriers": self.n_barriers, "gap_instructions": self.gap_instructions}

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        n = machine.n_processors
        empty = np.empty(0, dtype=np.int64)
        nothing = np.empty(0, dtype=bool)
        for i in range(self.n_barriers):
            segs: list[Segment | None] = [
                Segment(empty, nothing, self.gap_instructions) for _ in range(n)
            ]
            yield Phase(name=f"barrier_{i}", segments=segs, barrier=True)


class SpinKernel(Workload):
    """Processor 0 computes; everyone else spins at the barrier."""

    name = "spin_kernel"
    cpi0 = 1.0
    m_frac = 0.2
    paper_footprint_bytes = 4096

    def __init__(self, episodes: int = 20, work_instructions: int = 20000, seed: int = 1234) -> None:
        super().__init__(iters=episodes, seed=seed)
        if work_instructions < 1:
            raise WorkloadError("work_instructions must be >= 1")
        self.episodes = episodes
        self.work_instructions = work_instructions

    def describe_params(self) -> dict:
        return {"episodes": self.episodes, "work_instructions": self.work_instructions}

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        n = machine.n_processors
        empty = np.empty(0, dtype=np.int64)
        nothing = np.empty(0, dtype=bool)
        for i in range(self.episodes):
            segs: list[Segment | None] = [None] * n
            segs[0] = Segment(empty, nothing, self.work_instructions)
            yield Phase(name=f"spin_{i}", segments=segs, barrier=True)


class MemoryLatencyKernel(Workload):
    """Uniform pointer chase; footprint decides which level it defeats.

    With ``size_bytes`` far above the L2 capacity nearly every reference is
    an L2 miss costing tm; between the L1 and L2 capacities nearly every
    reference costs t2.  The chase repeats until ``n_refs`` references have
    been issued per processor.
    """

    name = "latency_kernel"
    cpi0 = 1.0
    m_frac = 0.5
    paper_footprint_bytes = 64 * 1024 * 1024

    def __init__(self, n_refs: int = 20000, passes: int = 2, seed: int = 1234) -> None:
        super().__init__(iters=passes, seed=seed)
        if n_refs < 1:
            raise WorkloadError("n_refs must be >= 1")
        self.n_refs = n_refs
        self.passes = passes

    def describe_params(self) -> dict:
        return {"n_refs": self.n_refs, "passes": self.passes}

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        region = machine.allocator.alloc("chase", nb)
        rng = self.rng()
        n = machine.n_processors
        for p in range(self.passes):
            segs: list[Segment | None] = []
            for cpu in range(n):
                part = region.slice_for(cpu, n)
                a, w = pointer_chase(part, self.n_refs, rng=np.random.default_rng(self.seed + cpu))
                segs.append(make_segment(a, w, m_frac=self.m_frac))
            yield Phase(name=f"chase_{p}", segments=segs, barrier=True)


class CacheFitKernel(Workload):
    """Repeated sweep of a footprint that fits in the L1: CPI -> cpi0.

    After the cold pass every reference hits the L1, so the measured CPI
    converges on cpi0 from above at a rate set by ``reps`` — exactly the
    compulsory-miss bias the paper's unbiased estimator removes.
    """

    name = "cachefit_kernel"
    cpi0 = 1.3
    m_frac = 0.4
    paper_footprint_bytes = 16 * 1024

    def __init__(self, reps: int = 50, seed: int = 1234) -> None:
        super().__init__(iters=reps, seed=seed)
        self.reps = reps

    def describe_params(self) -> dict:
        return {"reps": self.reps}

    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        nb = self.blocks_for(machine, size_bytes)
        region = machine.allocator.alloc("fit", nb)
        rng = self.rng()
        n = machine.n_processors
        segs: list[Segment | None] = []
        for cpu in range(n):
            part = region.slice_for(cpu, n)
            a, w = sweep(part, refs_per_block=4, write_frac=0.25, reps=self.reps, rng=rng)
            segs.append(make_segment(a, w, m_frac=self.m_frac))
        yield Phase(name="fit_sweep", segments=segs, barrier=True)
