"""Section 2.6: experimenting with different machine parameters.

Regenerates the what-if predictions the paper describes — faster/slower
L2, memory, and synchronization support, a wider issue width, a k-times
L2, and a new synchronization primitive — without re-running the
application, and checks their directional logic.
"""

import pytest

from repro.core import WhatIf
from repro.viz.tables import format_table


@pytest.fixture(scope="module")
def whatif(t3dheat_analysis, t3dheat_campaign):
    return WhatIf(t3dheat_analysis, t3dheat_campaign)


def test_whatif_latency_parameters(benchmark, emit, whatif):
    def run_experiments():
        return {
            "L2 2x faster (t2 x0.5)": whatif.scale_parameters(t2_factor=0.5),
            "memory 2x faster (tm x0.5)": whatif.scale_parameters(tm_factor=0.5),
            "sync 4x faster (tsyn x0.25)": whatif.scale_parameters(tsyn_factor=0.25),
            "issue 2x wider (cpi0 x0.5)": whatif.scale_parameters(cpi0_factor=0.5),
        }

    predictions = benchmark(run_experiments)
    sections = []
    for label, pred in predictions.items():
        sections.append(format_table(pred.rows(), title=label))
    emit("whatif_parameters", "\n\n".join(sections))

    # every speed-up knob helps (or at worst does nothing) at every n
    for pred in predictions.values():
        for n in pred.baseline:
            assert pred.predicted[n] <= pred.baseline[n] + 1e-6

    # faster sync helps the barrier-bound app most at scale
    sync = predictions["sync 4x faster (tsyn x0.25)"]
    assert (1 - sync.predicted[32] / sync.baseline[32]) > (
        1 - sync.predicted[1] / sync.baseline[1]
    )
    # faster memory buys double-digit savings on the conflict-bound
    # uniprocessor run (at n=32 tm(n) has absorbed sync latency, so the
    # knob helps there too -- that absorption is the model's semantics)
    mem = predictions["memory 2x faster (tm x0.5)"]
    assert (1 - mem.predicted[1] / mem.baseline[1]) > 0.08


def test_whatif_l2_size(benchmark, emit, whatif):
    def run():
        return {k: whatif.scale_l2(k) for k in (2.0, 4.0, 8.0)}

    preds = benchmark(run)
    rows = []
    for k, pred in preds.items():
        for n in sorted(pred.baseline):
            rows.append(
                {
                    "k": k,
                    "n": n,
                    "miss rate": whatif.l2_miss_rate_with_factor(n, k),
                    "predicted/baseline": pred.predicted[n] / pred.baseline[n],
                }
            )
    emit("whatif_l2_size", format_table(rows, title="Section 2.6: L2 size x k (Eq. 11)"))

    # bigger caches -> monotonically lower predicted miss rate at n=1
    rates = [whatif.l2_miss_rate_with_factor(1, k) for k in (1.0, 2.0, 4.0, 8.0)]
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))
    # T3dheat at n=1 is conflict-bound: an 8x L2 saves substantial time
    assert preds[8.0].predicted[1] < 0.85 * preds[8.0].baseline[1]
    # at n=32 conflicts are gone: nothing left to save
    assert preds[8.0].predicted[32] > 0.95 * preds[8.0].baseline[32]


def test_whatif_new_sync_primitive(benchmark, emit, whatif):
    pred = benchmark(whatif.new_sync_primitive, 20.0)
    emit(
        "whatif_sync_primitive",
        format_table(pred.rows(), title="Section 2.6: new synchronization primitive (tsyn=20)")
        + f"\nnote: {pred.note}",
    )
    # a near-free primitive saves the most where sync dominates
    assert pred.predicted[32] < pred.baseline[32]
    assert "imbalance" in pred.note
