"""Campaign cache observability: corrupt/empty manifests and progress hooks."""

import logging

import pytest

from repro.obs import runtime as obs
from repro.runner.campaign import CampaignConfig, ScalToolCampaign
from repro.runner.cache import cached_campaign
from repro.runner.records import RunRecord

from ..conftest import small_synthetic, tiny_machine_config


@pytest.fixture(autouse=True)
def propagate_repro_logs():
    """Let caplog see ``repro`` records even if the CLI configured the
    namespace (configure_logging sets propagate=False)."""
    logger = logging.getLogger("repro")
    old = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = old


def factory(n):
    return tiny_machine_config(n_processors=n)


def quick_config(**kw):
    defaults = dict(
        s0=16 * 1024,
        processor_counts=(1, 2),
        sync_kernel_barriers=10,
        spin_kernel_episodes=3,
    )
    defaults.update(kw)
    return CampaignConfig(**defaults)


def manifest_of(tmp_path):
    manifests = list(tmp_path.glob("*.jsonl"))
    assert len(manifests) == 1
    return manifests[0]


def run_entries_of(tmp_path):
    entries = sorted((tmp_path / "runs").glob("*.json"))
    assert entries
    return entries


class TestCorruptRunCache:
    def test_corrupt_run_entry_reruns_with_warning(self, tmp_path, caplog):
        wl, cfg = small_synthetic(), quick_config()
        first = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        victim = run_entries_of(tmp_path)[0]
        victim.write_text("this is { not json\n")

        with obs.session() as s:
            with caplog.at_level(logging.WARNING, logger="repro.runner.engine"):
                again = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)

        assert len(again.records) == len(first.records)
        assert s.registry.counter("engine.cache.corrupt") == 1.0
        # Exactly the one corrupt entry re-executed; everything else hit.
        assert s.registry.counter("engine.runs") == 1.0
        assert s.registry.counter("cache.partial") == 1.0
        warning = next(r for r in caplog.records if r.levelno == logging.WARNING)
        assert str(victim) in warning.getMessage()
        assert "re-running" in warning.getMessage()
        # The re-run repaired the entry in place.
        with obs.session() as s2:
            third = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        assert len(third.records) == len(first.records)
        assert s2.registry.counter("engine.runs") == 0.0

    def test_empty_run_entry_reruns_with_warning(self, tmp_path, caplog):
        wl, cfg = small_synthetic(), quick_config()
        cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        victim = run_entries_of(tmp_path)[0]
        victim.write_text("")

        with obs.session() as s:
            with caplog.at_level(logging.WARNING, logger="repro.runner.engine"):
                again = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)

        assert again.records
        assert s.registry.counter("engine.cache.corrupt") == 1.0
        warning = next(r for r in caplog.records if r.levelno == logging.WARNING)
        assert "re-running" in warning.getMessage()

    def test_corrupt_manifest_is_harmless(self, tmp_path):
        # The JSONL manifest is an export, not the cache: breaking it must
        # not force a re-run, and it is rewritten on the next call.
        wl, cfg = small_synthetic(), quick_config()
        first = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        manifest = manifest_of(tmp_path)
        manifest.write_text("this is { not json\n")
        with obs.session() as s:
            again = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        assert len(again.records) == len(first.records)
        assert s.registry.counter("engine.runs") == 0.0
        assert s.registry.counter("cache.hit") == 1.0
        from repro.runner.records import load_records

        assert len(load_records(manifest)) == len(first.records)

    def test_hit_and_miss_metrics(self, tmp_path):
        wl, cfg = small_synthetic(), quick_config()
        with obs.session() as s:
            cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
            cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        assert s.registry.counter("cache.miss") == 1.0
        assert s.registry.counter("cache.hit") == 1.0
        assert s.registry.counter("cache.corrupt") == 0.0

    def test_refresh_metric(self, tmp_path):
        wl, cfg = small_synthetic(), quick_config()
        cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        with obs.session() as s:
            cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path, refresh=True)
        assert s.registry.counter("cache.refresh") == 1.0


class TestProgressHook:
    def test_campaign_run_reports_progress(self):
        campaign = ScalToolCampaign(small_synthetic(), quick_config(), machine_factory=factory)
        events = []
        data = campaign.run(progress=lambda i, total, rec: events.append((i, total, rec)))
        total = len(campaign.planned_runs())
        assert [e[0] for e in events] == list(range(1, total + 1))
        assert all(e[1] == total for e in events)
        assert all(isinstance(e[2], RunRecord) for e in events)
        assert [e[2] for e in events] == data.records

    def test_cached_campaign_forwards_progress(self, tmp_path):
        wl, cfg = small_synthetic(), quick_config()
        events = []
        cached_campaign(
            wl, cfg, machine_factory=factory, cache_dir=tmp_path,
            progress=lambda i, t, r: events.append(i),
        )
        assert events  # campaign actually executed
        # Cache hits report through the same callback: a warm campaign
        # emits the full 1..total progress sequence instead of going silent.
        cold = list(events)
        events.clear()
        cached_campaign(
            wl, cfg, machine_factory=factory, cache_dir=tmp_path,
            progress=lambda i, t, r: events.append(i),
        )
        assert events == cold

    def test_campaign_spans_when_enabled(self):
        campaign = ScalToolCampaign(small_synthetic(), quick_config(), machine_factory=factory)
        with obs.session() as s:
            campaign.run()
        runs = s.registry.counter("campaign.runs")
        assert runs == len(campaign.planned_runs())
        experiments = s.tracer.by_name("campaign.experiment")
        assert len(experiments) == runs
        assert s.registry.histogram("campaign.run_seconds").count == runs
        top = s.tracer.by_name("campaign.run")
        assert len(top) == 1 and top[0].depth == 0
