"""Extension: predicting scalability beyond the measured counts.

The paper's future work includes "testing the tool for large numbers of
processors".  The predictor fits each isolated component's trend on the
measured 1..32 range and extrapolates: where does T3dheat saturate?  What
would 64 or 128 processors buy the three applications?  A leave-one-out
check quantifies the extrapolation error on the measured range itself.
"""

import pytest

from repro.core.prediction import ScalabilityPredictor
from repro.viz.tables import format_table

EXTRAPOLATED = [48, 64, 128]


def test_prediction(benchmark, emit, t3dheat_analysis, hydro2d_analysis, swim_analysis):
    analyses = {
        "t3dheat": t3dheat_analysis,
        "hydro2d": hydro2d_analysis,
        "swim": swim_analysis,
    }

    def run_all():
        return {name: ScalabilityPredictor(a) for name, a in analyses.items()}

    predictors = benchmark(run_all)

    sections = []
    for name, pred in predictors.items():
        rows = pred.rows(list(pred.measured_counts) + EXTRAPOLATED)
        sections.append(format_table(rows, title=f"{name}: measured + predicted scaling"))
        loo = pred.leave_one_out()
        sections.append(format_table(loo, title=f"{name}: leave-one-out validation"))
        sections.append(f"{name}: predicted saturation at ~{pred.saturation_count()} processors")
    emit("prediction_scaling", "\n\n".join(sections))

    t3 = predictors["t3dheat"]
    swim = predictors["swim"]
    # the barrier-bound app saturates first
    assert t3.saturation_count() <= swim.saturation_count()
    # T3dheat's sync share keeps exploding: 128 cpus buy little or negative
    assert t3.predict_speedup(128) < 2.2 * t3.predict_speedup(32)
    # the well-scaling app holds its speedup furthest out: saturation no
    # earlier than the measured edge, and no cliff at 64
    assert swim.saturation_count() >= 32
    assert swim.predict_speedup(64) > 0.5 * swim.predict_speedup(32)
    # leave-one-out error stays moderate on every application
    for name, pred in predictors.items():
        for row in pred.leave_one_out():
            assert row["error"] < 0.5, (name, row)
