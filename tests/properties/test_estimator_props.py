"""Property-based tests: model equations and estimators on synthetic truth."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.core.estimators import adjust_cpi0, fit_t2_tm
from repro.core.model import MemoryRates, cpi_from_rates, cpi_linear, rates_to_frequencies, solve_tm
from repro.machine.counters import CounterSet
from repro.runner.records import RunRecord

L2 = 4096

params = st.fixed_dictionaries(
    {
        "cpi0": st.floats(min_value=0.5, max_value=3.0),
        "t2": st.floats(min_value=1.0, max_value=30.0),
        "tm": st.floats(min_value=31.0, max_value=300.0),
    }
)

rates = st.builds(
    MemoryRates,
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)


@settings(max_examples=100, deadline=None)
@given(p=params, r=rates)
def test_eq8_equals_eq1(p, r):
    h2, hm = rates_to_frequencies(r)
    assert cpi_from_rates(p["cpi0"], p["t2"], p["tm"], r) == pytest.approx(
        cpi_linear(p["cpi0"], h2, hm, p["t2"], p["tm"])
    )


@settings(max_examples=100, deadline=None)
@given(p=params, r=rates)
def test_cpi_at_least_cpi0(p, r):
    assert cpi_from_rates(p["cpi0"], p["t2"], p["tm"], r) >= p["cpi0"] - 1e-12


@settings(max_examples=100, deadline=None)
@given(p=params, r=rates)
def test_better_hit_rates_never_slower(p, r):
    base = cpi_from_rates(p["cpi0"], p["t2"], p["tm"], r)
    better = MemoryRates(min(1.0, r.l1_hit_rate + 0.1), r.l2_hit_rate, r.m_frac)
    assert cpi_from_rates(p["cpi0"], p["t2"], p["tm"], better) <= base + 1e-9


@settings(max_examples=100, deadline=None)
@given(p=params, r=rates)
def test_solve_tm_roundtrip(p, r):
    h2, hm = rates_to_frequencies(r)
    assume(hm > 1e-9)
    cpi = cpi_linear(p["cpi0"], h2, hm, p["t2"], p["tm"])
    assert solve_tm(cpi, p["cpi0"], h2, hm, p["t2"]) == pytest.approx(p["tm"], rel=1e-6)


def _record(size, p, l2_hit, l1_hit=0.9, m=0.4, inst=50_000.0):
    refs = inst * m
    l1_misses = refs * (1 - l1_hit)
    l2_misses = l1_misses * (1 - l2_hit)
    h2 = (l1_misses - l2_misses) / inst
    hm = l2_misses / inst
    return RunRecord(
        workload="prop", params={}, size_bytes=size, n_processors=1, role="app_frac",
        machine={},
        counters=CounterSet(
            cycles=inst * cpi_linear(p["cpi0"], h2, hm, p["t2"], p["tm"]),
            graduated_instructions=inst,
            graduated_loads=refs,
            graduated_stores=0.0,
            l1_data_misses=l1_misses,
            l2_misses=l2_misses,
        ),
    )


@settings(max_examples=60, deadline=None)
@given(p=params)
def test_fit_recovers_truth_on_clean_data(p):
    runs = {
        8 * L2: _record(8 * L2, p, l2_hit=0.10),
        16 * L2: _record(16 * L2, p, l2_hit=0.30),
        32 * L2: _record(32 * L2, p, l2_hit=0.55),
    }
    t2, tm, diag = fit_t2_tm(runs, p["cpi0"], L2)
    assert t2 == pytest.approx(p["t2"], rel=0.05, abs=0.5)
    assert tm == pytest.approx(p["tm"], rel=0.05)
    assert diag["rms"] < 1e-6


@settings(max_examples=60, deadline=None)
@given(p=params)
def test_adjustment_exact_on_clean_data(p):
    small = _record(256, p, l2_hit=0.5, l1_hit=0.995)
    unbiased = adjust_cpi0(small.counters.cpi, small, p["t2"], p["tm"])
    assert unbiased == pytest.approx(p["cpi0"], rel=1e-6)
