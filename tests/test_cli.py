"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import runtime as obs_runtime


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_single_sourced(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert capsys.readouterr().out == f"scaltool {__version__}\n"

    def test_counts_parsing(self):
        args = build_parser().parse_args(["analyze", "swim", "--counts", "1,2,4"])
        assert args.counts == (1, 2, 4)

    def test_bad_counts_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "swim", "--counts", "a,b"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "t3dheat" in out and "swim" in out

    def test_plan(self, capsys):
        assert main(["plan", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "Scal-Tool" in out and "68" in out

    def test_run_prints_perfex(self, capsys):
        assert main(["run", "synthetic", "--size", "8192", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "perfex report" in out
        assert "Graduated instructions" in out

    def test_unknown_workload_is_error(self, capsys):
        assert main(["run", "doom"]) == 1
        assert "error" in capsys.readouterr().err

    def test_campaign_writes_files(self, tmp_path, capsys):
        rc = main(
            [
                "campaign",
                "synthetic",
                "--s0",
                "163840",
                "--counts",
                "1,2",
                "--out",
                str(tmp_path / "camp"),
            ]
        )
        assert rc == 0
        assert (tmp_path / "camp" / "campaign.jsonl").exists()
        assert list((tmp_path / "camp").glob("*.perfex"))

    def test_analyze_from_dir(self, tmp_path, capsys):
        main(
            [
                "campaign", "synthetic", "--s0", "163840", "--counts", "1,2",
                "--out", str(tmp_path / "camp"),
            ]
        )
        capsys.readouterr()
        assert main(["analyze", "synthetic", "--from-dir", str(tmp_path / "camp")]) == 0
        out = capsys.readouterr().out
        assert "Scal-Tool analysis" in out

    def test_analyze_inline_with_cache(self, tmp_path, capsys):
        args = [
            "analyze", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        # second invocation reuses the cache (fast path, same output)
        assert main(args) == 0
        assert "Scal-Tool analysis" in capsys.readouterr().out

    def test_analyze_with_jobs(self, tmp_path, capsys):
        args = [
            "analyze", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--jobs", "2",
        ]
        assert main(args) == 0
        assert "Scal-Tool analysis" in capsys.readouterr().out

    def test_jobs_produces_same_cache_as_serial(self, tmp_path, capsys):
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        base = ["analyze", "synthetic", "--s0", "163840", "--counts", "1,2"]
        assert main(base + ["--cache-dir", str(serial_dir)]) == 0
        assert main(base + ["--cache-dir", str(parallel_dir), "--jobs", "2"]) == 0
        capsys.readouterr()
        serial_runs = {p.name: p.read_text() for p in (serial_dir / "runs").glob("*.json")}
        parallel_runs = {p.name: p.read_text() for p in (parallel_dir / "runs").glob("*.json")}
        assert serial_runs == parallel_runs

    def test_sweep_prints_metric_table(self, tmp_path, capsys):
        args = [
            "sweep", "synthetic", "--size", "16384", "-n", "2",
            "--workload-axis", "sharing_frac=0.0,0.1",
            "--metric", "cycles", "--metric", "cpi",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "sharing_frac" in out
        assert "cycles" in out and "cpi" in out
        # warm re-run serves from the per-run cache and prints the same table
        assert main(args) == 0
        assert "sharing_frac" in capsys.readouterr().out
        assert list((tmp_path / "runs").glob("*.json"))

    def test_sweep_default_metric_is_cpi(self, tmp_path, capsys):
        args = [
            "sweep", "synthetic", "--size", "16384", "-n", "2",
            "--workload-axis", "sharing_frac=0.0,0.1",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        assert "cpi" in capsys.readouterr().out

    def test_sweep_rejects_unknown_metric(self, tmp_path, capsys):
        args = [
            "sweep", "synthetic", "--size", "16384",
            "--metric", "flops", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 1
        assert "unknown metric" in capsys.readouterr().err

    def test_sweep_rejects_bad_axis(self, tmp_path, capsys):
        args = [
            "sweep", "synthetic", "--size", "16384",
            "--workload-axis", "nonsense", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 1
        assert "NAME=V1,V2" in capsys.readouterr().err

    def test_validate(self, tmp_path, capsys):
        args = [
            "validate", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        assert "MP validation" in capsys.readouterr().out

    def test_whatif_parameters(self, tmp_path, capsys):
        args = [
            "whatif", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--tm", "0.5",
        ]
        assert main(args) == 0
        assert "tm x0.5" in capsys.readouterr().out

    def test_whatif_l2(self, tmp_path, capsys):
        args = [
            "whatif", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--l2", "4",
        ]
        assert main(args) == 0
        assert "L2 x4" in capsys.readouterr().out


class TestNewCommands:
    def test_analyze_markdown(self, tmp_path, capsys):
        args = [
            "analyze", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--markdown",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "# Scal-Tool analysis" in out
        assert "| n |" in out or "| parameter |" in out

    def test_segments_default_groups(self, tmp_path, capsys):
        args = [
            "segments", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "segment-level breakdown" in out

    def test_segments_explicit_group(self, tmp_path, capsys):
        args = [
            "segments", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--group", "work=work_*",
        ]
        assert main(args) == 0
        assert "work" in capsys.readouterr().out

    def test_segments_bad_group(self, tmp_path, capsys):
        args = [
            "segments", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--group", "nonsense",
        ]
        assert main(args) == 1
        assert "error" in capsys.readouterr().err

    def test_sharing(self, tmp_path, capsys):
        args = [
            "sharing", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "event-31 decomposition" in out
        assert "sharing-corrected" in out

    def test_topology(self, capsys):
        assert main(["topology", "--counts", "2,4", "--topologies", "ring,crossbar"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out and "crossbar" in out

    def test_predict(self, tmp_path, capsys):
        args = [
            "predict", "synthetic", "--s0", "163840", "--counts", "1,2,4",
            "--cache-dir", str(tmp_path), "--to", "8,16",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "predicted scaling" in out
        assert "saturation" in out

    def test_balance(self, tmp_path, capsys):
        args = [
            "balance", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "load balance" in out and "verdict" in out


class TestModels:
    def test_campaign_export_speedup(self, tmp_path, capsys):
        csv_path = tmp_path / "curve.csv"
        args = [
            "campaign", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--out", str(tmp_path / "camp"), "--export-speedup", str(csv_path),
        ]
        assert main(args) == 0
        assert "wrote speedup curve" in capsys.readouterr().out
        text = csv_path.read_text()
        assert text.startswith("n,time,speedup,ci_lo,ci_hi")
        assert len(text.strip().splitlines()) == 3  # header + the two counts

    def test_models_fit_external_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "curve.csv"
        csv_path.write_text(
            "n,time,speedup,ci_lo,ci_hi\n"
            "1,,1.0,,\n2,,1.9,,\n4,,3.4,,\n8,,5.5,,\n16,,7.1,,\n"
        )
        assert main(["models", "fit", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "sigma" in out and "serial_frac" in out

    def test_models_compare_campaign(self, tmp_path, capsys):
        args = [
            "models", "compare", "synthetic", "--s0", "163840",
            "--counts", "1,2,4,8", "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "penalty shares" in out and "agreement:" in out

    def test_models_predict_json(self, tmp_path, capsys):
        csv_path = tmp_path / "curve.csv"
        csv_path.write_text(
            "n,time,speedup,ci_lo,ci_hi\n"
            "1,,1.0,,\n2,,1.9,,\n4,,3.4,,\n8,,5.5,,\n"
        )
        assert main(["models", "predict", str(csv_path), "--to", "16,32", "--json"]) == 0
        import json as _json

        report = _json.loads(capsys.readouterr().out)
        assert [r["n"] for r in report["rows"]] == [1, 2, 4, 8, 16, 32]

    def test_models_too_few_points_is_typed_error(self, tmp_path, capsys):
        csv_path = tmp_path / "short.csv"
        csv_path.write_text("n,time,speedup,ci_lo,ci_hi\n1,,1.0,,\n2,,1.9,,\n")
        assert main(["models", "fit", str(csv_path)]) == 1
        err = capsys.readouterr().err
        assert "error" in err and ">= 4" in err

    def test_models_unknown_target_is_error(self, capsys):
        assert main(["models", "fit", "no-such-thing.quux"]) == 1
        assert "error" in capsys.readouterr().err


class TestObservability:
    def test_profile_prints_report(self, capsys):
        args = ["profile", "synthetic", "--s0", "163840", "--counts", "1,2"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "# scaltool profile report" in out
        assert "campaign.run" in out
        assert "machine.component.cache" in out
        assert "machine.component.coherence" in out
        assert "machine.component.interconnect" in out
        assert "estimators.fit_t2_tm" in out
        assert "campaign.run_seconds" in out
        # The CLI session is torn down afterwards.
        assert obs_runtime.active() is None

    def test_profile_metrics_out_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "m.jsonl"
        args = [
            "profile", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--metrics-out", str(out_path),
        ]
        assert main(args) == 0
        assert str(out_path) in capsys.readouterr().err
        lines = [json.loads(l) for l in out_path.read_text().splitlines()]
        kinds = {l["kind"] for l in lines}
        assert {"meta", "span", "counter", "histogram"} <= kinds
        names = {l.get("name") for l in lines}
        # per-component simulator spans + campaign + estimator timings
        assert "machine.component.cache" in names
        assert "machine.component.coherence" in names
        assert "machine.component.interconnect" in names
        assert "campaign.experiment" in names
        assert "analysis.estimate_parameters" in names
        assert "campaign.run_seconds" in names
        for line in lines:
            assert list(line) == sorted(line)

    def test_profile_no_analysis(self, capsys):
        args = ["profile", "synthetic", "--s0", "163840", "--counts", "1,2", "--no-analysis"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "campaign.run" in out
        assert "analysis.analyze" not in out

    def test_verbose_campaign_progress(self, tmp_path, capsys):
        args = [
            "analyze", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--verbose",
        ]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "run 1/" in err
        assert "synthetic" in err
        # Cache hits still report progress: a warm re-run prints the same
        # run 1/N .. N/N sequence instead of looking hung.
        assert main(args) == 0
        warm = capsys.readouterr().err
        assert "run 1/" in warm
        count = err.count("run ")
        assert warm.count("run ") == count

    def test_metrics_out_on_analyze(self, tmp_path, capsys):
        out_path = tmp_path / "analyze.jsonl"
        args = [
            "analyze", "synthetic", "--s0", "163840", "--counts", "1,2",
            "--cache-dir", str(tmp_path), "--metrics-out", str(out_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        names = {
            json.loads(l).get("name") for l in out_path.read_text().splitlines()
        }
        assert "analysis.estimate_parameters" in names
        assert "cache.miss" in names

    def test_analyze_help_documents_cache_env_var(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--help"])
        assert "SCALTOOL_CACHE_DIR" in capsys.readouterr().out


class TestObsTopAndHot:
    @pytest.fixture
    def manifest(self, tmp_path):
        """Hand-built --metrics-out manifest with known span timings.

        engine.run totals 3.0s but 2.5s of it is its child machine.run,
        so the three sort orders disagree on purpose: total puts
        engine.run first, self puts machine.run first, and count puts
        the twice-recorded analysis.fit first.
        """
        records = [
            {"kind": "span", "path": "engine.run", "duration_s": 3.0},
            {"kind": "span", "path": "engine.run/machine.run", "duration_s": 2.5},
            {"kind": "span", "path": "analysis.fit", "duration_s": 0.1},
            {"kind": "span", "path": "analysis.fit", "duration_s": 0.1},
        ]
        path = tmp_path / "m.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_obs_top_default_sorts_by_total(self, manifest, capsys):
        assert main(["obs", "top", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "Slowest span paths (top 3 by total):" in out
        order = [l for l in out.splitlines() if l.startswith("  ")]
        assert order[0].startswith("  engine.run.")
        assert " self=" not in out

    def test_obs_top_sort_self_promotes_leaf_work(self, manifest, capsys):
        assert main(["obs", "top", str(manifest), "--sort", "self"]) == 0
        out = capsys.readouterr().out
        assert "by self" in out
        rows = [l for l in out.splitlines() if l.startswith("  ")]
        # machine.run keeps all 2.5s to itself; engine.run keeps only 0.5s.
        assert rows[0].startswith("  engine.run/machine.run")
        assert all(" self=" in row for row in rows)
        assert "self=0.5s" in rows[1] or "self=0.5" in rows[1]

    def test_obs_top_sort_count_and_deterministic_ties(self, manifest, capsys):
        assert main(["obs", "top", str(manifest), "--sort", "count"]) == 0
        rows = [
            l for l in capsys.readouterr().out.splitlines() if l.startswith("  ")
        ]
        assert rows[0].startswith("  analysis.fit")
        # engine.run and machine.run tie at count=1: name-then-path order
        # ("engine.run" < "machine.run" on the last path segment).
        assert rows[1].startswith("  engine.run.")
        assert rows[2].startswith("  engine.run/machine.run")

    def test_obs_top_rejects_unknown_sort(self, manifest):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "top", str(manifest), "--sort", "wall"])

    @pytest.fixture
    def hotpath_artifact(self, tmp_path):
        from repro.obs.sampler import SampleProfile

        profile = SampleProfile(interval_s=0.005)
        profile.note(
            "profile/engine.run",
            ("repro/runner/engine.py:run:10", "repro/machine/cache.py:insert:120"),
            7,
        )
        profile.duration_s = 0.035
        path = tmp_path / "hotpath.json"
        path.write_text(json.dumps({"kind": "hotpath", "profile": profile.to_dict()}))
        return path

    def test_obs_hot_renders_saved_artifact(self, hotpath_artifact, capsys):
        assert main(["obs", "hot", str(hotpath_artifact)]) == 0
        out = capsys.readouterr().out
        assert "# scaltool hot-path report" in out
        assert "samples=7" in out
        assert "repro/machine/cache.py:120 insert" in out
        assert "profile/engine.run" in out

    def test_obs_hot_accepts_bare_profile_and_reemits_flame(
        self, hotpath_artifact, tmp_path, capsys
    ):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(json.loads(hotpath_artifact.read_text())["profile"]))
        flame = tmp_path / "stacks.folded"
        assert main(["obs", "hot", str(bare), "--flame", str(flame)]) == 0
        out = capsys.readouterr().out
        assert "# scaltool hot-path report" in out
        assert str(flame) in out
        assert flame.read_text() == (
            "profile/engine.run;repro/runner/engine.py:run:10;"
            "repro/machine/cache.py:insert:120 7\n"
        )
