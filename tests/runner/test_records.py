"""Run records and persistence."""

import pytest

from repro.errors import CounterFormatError
from repro.runner.records import RunRecord, load_records, save_records

from ..conftest import small_synthetic


@pytest.fixture
def record(machine):
    result = machine.run(small_synthetic(), 16 * 1024)
    return RunRecord.from_result(result, role="app_base")


class TestFromResult:
    def test_captures_identity(self, record):
        assert record.workload == "synthetic"
        assert record.size_bytes == 16 * 1024
        assert record.n_processors == 4
        assert record.role == "app_base"

    def test_machine_summary(self, record):
        assert record.machine["l2_bytes"] == 4096
        assert record.machine["topology"] == "hypercube"

    def test_per_cpu_counters_kept(self, record):
        assert len(record.per_cpu) == 4
        total = sum(c.cycles for c in record.per_cpu)
        assert total == pytest.approx(record.counters.cycles)

    def test_ground_truth_kept_by_default(self, record):
        assert record.ground_truth is not None

    def test_without_ground_truth(self, record):
        stripped = record.without_ground_truth()
        assert stripped.ground_truth is None
        assert stripped.counters == record.counters

    def test_params_recorded(self, record):
        assert record.params["iters"] == 2

    def test_key(self, record):
        assert record.key() == ("synthetic", "app_base", 16 * 1024, 4)


class TestSerialisation:
    def test_json_roundtrip(self, record):
        back = RunRecord.from_json(record.to_json())
        assert back.counters == record.counters
        assert back.ground_truth == record.ground_truth
        assert back.machine == record.machine
        assert len(back.phase_counters) == len(record.phase_counters)

    def test_roundtrip_without_gt(self, record):
        back = RunRecord.from_json(record.without_ground_truth().to_json())
        assert back.ground_truth is None

    def test_bad_json_rejected(self):
        with pytest.raises(CounterFormatError):
            RunRecord.from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(CounterFormatError):
            RunRecord.from_json('{"workload": "x"}')

    def test_jsonl_files(self, record, tmp_path):
        path = tmp_path / "records.jsonl"
        save_records([record, record.without_ground_truth()], path)
        back = load_records(path)
        assert len(back) == 2
        assert back[0].counters == record.counters
        assert back[1].ground_truth is None
