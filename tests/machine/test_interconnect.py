"""Interconnect topologies and distances."""

import pytest

from repro.machine.config import InterconnectConfig
from repro.machine.interconnect import Interconnect


def make(topology, n, bristle=2):
    return Interconnect(InterconnectConfig(topology=topology, bristle=bristle), n)


class TestBristling:
    def test_router_assignment(self):
        ic = make("hypercube", 8, bristle=2)
        assert ic.router_of(0) == ic.router_of(1) == 0
        assert ic.router_of(6) == ic.router_of(7) == 3

    def test_same_router_zero_hops(self):
        ic = make("hypercube", 8, bristle=2)
        assert ic.hops(0, 1) == 0

    def test_router_count_rounds_up(self):
        ic = make("hypercube", 5, bristle=2)
        assert ic.n_routers == 3


class TestHypercube:
    def test_distance_is_popcount(self):
        ic = make("hypercube", 16, bristle=2)  # 8 routers
        assert ic.hops(0, 2) == 1  # routers 0 vs 1
        assert ic.hops(0, 14) == 3  # routers 0 vs 7

    def test_diameter_is_dimension(self):
        ic = make("hypercube", 16, bristle=2)
        assert ic.diameter() == 3

    def test_mean_distance_grows_with_n(self):
        means = [make("hypercube", n).mean_distance() for n in (2, 8, 32)]
        assert means[0] < means[1] < means[2]


class TestMesh:
    def test_manhattan(self):
        ic = make("mesh", 18, bristle=2)  # 9 routers, 3x3
        assert ic.hops(0, 4) == 2  # router 0 (0,0) to router 2 (2,0)
        assert ic.hops(0, 16) == 4  # router 0 to router 8 (2,2)

    def test_diameter(self):
        ic = make("mesh", 18, bristle=2)
        assert ic.diameter() == 4


class TestRing:
    def test_wraps(self):
        ic = make("ring", 12, bristle=2)  # 6 routers
        assert ic.hops(0, 10) == 1  # routers 0 and 5 adjacent on the ring
        assert ic.hops(0, 6) == 3  # opposite side

    def test_diameter_half(self):
        ic = make("ring", 16, bristle=2)
        assert ic.diameter() == 4


class TestCrossbar:
    def test_unit_distance(self):
        ic = make("crossbar", 8, bristle=1)
        assert ic.hops(0, 7) == 1
        assert ic.hops(3, 3) == 0

    def test_diameter_one(self):
        assert make("crossbar", 8, bristle=1).diameter() == 1


class TestGeneralProperties:
    @pytest.mark.parametrize("topology", ["hypercube", "mesh", "ring", "crossbar"])
    def test_symmetry_and_self_distance(self, topology):
        ic = make(topology, 12)
        for a in range(12):
            assert ic.hops(a, a) == 0
            for b in range(12):
                assert ic.hops(a, b) == ic.hops(b, a)

    def test_uniprocessor(self):
        ic = make("hypercube", 1)
        assert ic.diameter() == 0
        assert ic.mean_distance() == 0.0

    def test_is_local(self):
        ic = make("hypercube", 4)
        assert ic.is_local(2, 2)
        assert not ic.is_local(2, 3)

    def test_describe_mentions_topology(self):
        assert "hypercube" in make("hypercube", 8).describe()
