"""Workloads: the applications and micro-kernels the paper analyses.

The three applications of Table 4 — T3dheat (PCF conjugate-gradient PDE
solver), Hydro2d and Swim (SPECFP95) — are modelled as parameterised phase
generators reproducing the published characteristics Scal-Tool keys on
(working-set size, barrier structure, serial sections, load balance, and
sharing).  The micro-kernels of Section 2.4.2 (synchronization, spin, and
memory-latency kernels) are used to estimate cpi_sync, cpi_imb, tsyn, and
tm on the same machine.
"""

from .base import Workload
from .contention import FalseSharingWorkload, LockedRegions
from .hydro2d import Hydro2d
from .kernels import CacheFitKernel, MemoryLatencyKernel, SpinKernel, SyncKernel
from .registry import available_workloads, make_workload
from .swim import Swim
from .synthetic import SyntheticWorkload
from .t3dheat import T3dheat

__all__ = [
    "Workload",
    "T3dheat",
    "Hydro2d",
    "Swim",
    "SyntheticWorkload",
    "LockedRegions",
    "FalseSharingWorkload",
    "SyncKernel",
    "SpinKernel",
    "MemoryLatencyKernel",
    "CacheFitKernel",
    "make_workload",
    "available_workloads",
]
