"""Metrics registry: counters, gauges, histogram percentiles, snapshots."""

import pytest

from repro.obs.metrics import NOOP_REGISTRY, Histogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2.5)
        assert reg.counter("a") == pytest.approx(3.5)
        assert reg.counter("missing") == 0.0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.0)
        assert reg.gauge("g") == 7.0
        assert reg.gauge("missing") is None


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram()
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 4.0

    def test_percentiles_interpolate(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        assert h.percentile(99) == pytest.approx(99.01)

    def test_percentile_edge_cases(self):
        h = Histogram()
        assert h.percentile(50) == 0.0  # empty
        h.observe(42.0)
        assert h.percentile(0) == 42.0
        assert h.percentile(100) == 42.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_percentile_order_independent(self):
        a, b = Histogram(), Histogram()
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for v in values:
            a.observe(v)
        for v in sorted(values):
            b.observe(v)
        assert a.summary() == b.summary()


class TestSnapshot:
    def test_names_sorted_and_shape_fixed(self):
        reg = MetricsRegistry()
        reg.inc("zebra")
        reg.inc("apple")
        reg.set_gauge("mid", 1.0)
        reg.observe("hist", 2.0)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["apple", "zebra"]
        assert list(snap["histograms"]["hist"]) == [
            "count", "sum", "mean", "min", "max", "p50", "p90", "p99",
        ]

    def test_snapshot_deterministic_across_registries(self):
        def build():
            reg = MetricsRegistry()
            reg.inc("runs", 3)
            reg.observe("seconds", 1.0)
            reg.observe("seconds", 2.0)
            reg.set_gauge("t2", 3.25)
            return reg.snapshot()

        assert build() == build()


class TestNoopRegistry:
    def test_writes_are_dropped(self):
        NOOP_REGISTRY.inc("c", 5)
        NOOP_REGISTRY.set_gauge("g", 1.0)
        NOOP_REGISTRY.observe("h", 2.0)
        assert NOOP_REGISTRY.counter("c") == 0.0
        assert NOOP_REGISTRY.gauge("g") is None
        assert NOOP_REGISTRY.histogram("h") is None
        assert NOOP_REGISTRY.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
