"""Unit helpers: size parsing, formatting, numeric utilities."""

import math

import pytest

from repro.errors import ConfigError
from repro.units import (
    GB,
    KB,
    MB,
    clamp,
    format_count,
    format_size,
    geometric_sizes,
    harmonic_mean,
    is_power_of_two,
    log2_int,
    parse_size,
    safe_div,
)


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(4096) == 4096

    def test_float_truncates(self):
        assert parse_size(10.9) == 10

    def test_kb(self):
        assert parse_size("32KB") == 32 * KB

    def test_mb(self):
        assert parse_size("4MB") == 4 * MB

    def test_gb(self):
        assert parse_size("2GB") == 2 * GB

    def test_fractional(self):
        assert parse_size("10.3MB") == int(10.3 * MB)

    def test_bare_number_string(self):
        assert parse_size("128") == 128

    def test_kib_alias(self):
        assert parse_size("1KiB") == KB

    def test_spaces_and_case(self):
        assert parse_size(" 16 kb ") == 16 * KB

    def test_bare_b_suffix(self):
        assert parse_size("512B") == 512

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_bad_unit_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("3TBB")


class TestFormatSize:
    def test_bytes(self):
        assert format_size(100) == "100B"

    def test_kb(self):
        assert format_size(32 * KB) == "32KB"

    def test_mb_fractional(self):
        assert format_size(int(1.5 * MB)) == "1.5MB"

    def test_gb(self):
        assert format_size(2 * GB) == "2GB"

    def test_roundtrip(self):
        for n in (1, KB, 3 * KB, MB, 7 * MB, GB):
            assert parse_size(format_size(n)) == n


class TestFormatCount:
    def test_int(self):
        assert format_count(1234567) == "1,234,567"

    def test_integral_float(self):
        assert format_count(1000.0) == "1,000"

    def test_fractional(self):
        assert format_count(12.345) == "12.35"


class TestPowersOfTwo:
    def test_powers(self):
        for k in range(12):
            assert is_power_of_two(1 << k)

    def test_non_powers(self):
        for n in (0, -2, 3, 6, 12, 100):
            assert not is_power_of_two(n)

    def test_log2(self):
        assert log2_int(1) == 0
        assert log2_int(1024) == 10

    def test_log2_rejects(self):
        with pytest.raises(ConfigError):
            log2_int(48)


class TestGeometricSizes:
    def test_halving(self):
        assert geometric_sizes(64, 4) == [64, 32, 16, 8]

    def test_floor_at_one(self):
        assert geometric_sizes(2, 5)[-1] == 1

    def test_ratio(self):
        sizes = geometric_sizes(1000, 3, ratio=0.1)
        assert sizes == [1000, 100, 10]

    def test_bad_count(self):
        with pytest.raises(ConfigError):
            geometric_sizes(8, 0)

    def test_bad_ratio(self):
        with pytest.raises(ConfigError):
            geometric_sizes(8, 2, ratio=1.5)


class TestNumeric:
    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_harmonic_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_clamp(self):
        assert clamp(5, 0, 1) == 1
        assert clamp(-5, 0, 1) == 0
        assert clamp(0.5, 0, 1) == 0.5

    def test_safe_div(self):
        assert safe_div(10, 2) == 5
        assert safe_div(10, 0) == 0.0
        assert safe_div(10, 0, default=-1.0) == -1.0
        assert safe_div(1, math.nan, default=2.0) == 2.0
