"""Trace-driven processor execution: the simulator's inner loop.

:class:`PhaseRunner` executes one :class:`~repro.trace.events.Phase`: the
per-processor segments run *interleaved* in round-robin chunks (so
first-touch placement and coherence races behave as on a real machine),
each reference flows through the coherence controller, and each processor's
clock advances by ``instructions * cpi0 + stall_cycles``.

The loop is deliberately written for pure-Python speed (per the HPC guide:
no attribute lookups or allocations inside the loop): the controller's
``access`` method and the Python lists converted from the NumPy trace are
bound to locals, giving ~1 us per reference.
"""

from __future__ import annotations

from .coherence import CoherenceController
from .counters import CounterSet, GroundTruth
from ..trace.events import Phase

__all__ = ["PhaseRunner"]


class PhaseRunner:
    """Runs phases against a coherence controller and per-cpu clocks."""

    def __init__(
        self,
        controller: CoherenceController,
        counters: list[CounterSet],
        ground_truth: list[GroundTruth],
        interleave_chunk: int = 32,
    ) -> None:
        self.controller = controller
        self.counters = counters
        self.gt = ground_truth
        self.chunk = max(1, interleave_chunk)

    def run_phase(self, phase: Phase, cpi0: float, clocks: list[float]) -> None:
        """Execute every segment of ``phase``, advancing ``clocks`` in place.

        Does *not* run the phase-ending barrier; the system layer does that
        so it can also record barrier outcomes.
        """
        access = self.controller.access
        chunk = self.chunk

        # (cpu, addr_list, write_list, cursor); stalls accumulated per cpu.
        pending: list[list] = []
        stalls: dict[int, float] = {}
        for cpu, seg in enumerate(phase.segments):
            if seg is None or seg.n_refs == 0:
                continue
            pending.append([cpu, seg.addrs.tolist(), seg.writes.tolist(), 0])
            stalls[cpu] = 0.0

        while pending:
            nxt = []
            for item in pending:
                cpu, addrs, writes, pos = item
                end = pos + chunk
                n = len(addrs)
                if end > n:
                    end = n
                s = 0.0
                for i in range(pos, end):
                    s += access(cpu, addrs[i], writes[i])
                stalls[cpu] += s
                if end < n:
                    item[3] = end
                    nxt.append(item)
            pending = nxt

        for cpu, seg in enumerate(phase.segments):
            if seg is None:
                continue
            compute = seg.n_instructions * cpi0
            clocks[cpu] += compute + stalls.get(cpu, 0.0)
            self.counters[cpu].graduated_instructions += seg.n_instructions
            gt = self.gt[cpu]
            gt.compute_cycles += compute
            gt.compute_instructions += seg.n_instructions
