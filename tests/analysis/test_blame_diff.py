"""``scaltool blame A --against B``: cross-campaign differential blame.

Two synthetic campaigns that differ *only* in L2 size must produce a
diff whose notes name the cache-space category (the paper's
"insufficient caching space" bottleneck, Eq. 4) — and pin it on the
cramped-L2 campaign.
"""

from __future__ import annotations

import contextlib
import dataclasses
import io
import json

import pytest

from repro.cli import main
from repro.machine import origin2000_scaled
from repro.runner import CampaignConfig, ScalToolCampaign
from repro.workloads import make_workload

from .conftest import BLAME_COUNTS, BLAME_S0


def cli_stdout(argv):
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = main(argv)
    assert rc == 0, f"scaltool {' '.join(argv)} exited {rc}"
    return buf.getvalue()


def _small_l2(n):
    machine = origin2000_scaled(n)
    return dataclasses.replace(machine, l2=machine.l2.scaled(4))


@pytest.fixture(scope="module")
def campaign_dirs(tmp_path_factory, blame_campaign_data):
    """(normal, small-L2) campaign directories for the same workload."""
    root = tmp_path_factory.mktemp("blame-diff")
    normal_dir = root / "normal"
    blame_campaign_data.save(normal_dir)
    cfg = CampaignConfig(s0=BLAME_S0, processor_counts=BLAME_COUNTS)
    small = ScalToolCampaign(
        make_workload("synthetic"), cfg, machine_factory=_small_l2
    ).run()
    small_dir = root / "small-l2"
    small.save(small_dir)
    return normal_dir, small_dir


class TestAgainstDiff:
    def test_diff_names_cache_space_on_the_cramped_campaign(self, campaign_dirs):
        normal_dir, small_dir = campaign_dirs
        out = cli_stdout(["blame", str(small_dir), "--against", str(normal_dir)])
        note = next(
            (line for line in out.splitlines() if "caching space" in line), None
        )
        assert note is not None, out
        # The target campaign ("ours") has the cramped L2.
        assert "ours campaign suffers more conflict misses" in note

    def test_diff_json_is_structured_and_symmetric(self, campaign_dirs):
        normal_dir, small_dir = campaign_dirs
        diff = json.loads(
            cli_stdout(
                ["blame", str(small_dir), "--against", str(normal_dir), "--json"]
            )
        )
        assert diff["workloads"] == ["synthetic", "synthetic"]
        assert set(diff["category_deltas"]) == {"imbalance", "l2", "memory", "sync"}
        flipped = json.loads(
            cli_stdout(
                ["blame", str(normal_dir), "--against", str(small_dir), "--json"]
            )
        )
        for category, row in diff["category_deltas"].items():
            assert flipped["category_deltas"][category]["delta"] == pytest.approx(
                -row["delta"]
            )
