"""Terminal-friendly rendering: ASCII line charts and aligned tables."""

from .ascii_chart import ascii_chart
from .bars import stacked_bars
from .tables import format_table

__all__ = ["ascii_chart", "stacked_bars", "format_table"]
