"""Run-phase profiling: execute a campaign + analysis under observability.

This is the engine behind ``scaltool profile <workload>``: it runs the
Table-3 campaign for a workload with the obs layer live (so the
simulator, runner, and estimators all report spans and metrics), then
runs the Scal-Tool analysis over the freshly produced records, and
returns everything — the session (for export/formatting), the campaign,
and the analysis.

The campaign is always executed, never loaded from the disk cache: the
point of profiling is to observe the execution itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from . import runtime as obs
from .logs import get_logger
from .sampler import DEFAULT_INTERVAL_S, SampleProfile, Sampler

__all__ = ["ProfileResult", "profile_workload"]

_log = get_logger("obs.profile")


@dataclass
class ProfileResult:
    """What one profiling run produced."""

    session: obs.ObsSession
    campaign: object  # CampaignData
    analysis: object | None  # ScalToolAnalysis, None when run_analysis=False
    line_profile: SampleProfile | None = None  # set by line_profile=True


def profile_workload(
    workload_name: str,
    s0: int | None = None,
    processor_counts: tuple[int, ...] = (1, 2, 4),
    machine_factory=None,
    run_analysis: bool = True,
    progress: "Callable[[int, int, object], None] | None" = None,
    executor=None,
    line_profile: bool = False,
    sample_interval: float = DEFAULT_INTERVAL_S,
    sample_memory: bool = False,
    **workload_params,
) -> ProfileResult:
    """Profile one workload end to end.

    Reuses the already-active obs session when there is one (the CLI
    enables it to honour ``--metrics-out``); otherwise enables a private
    session for the duration and leaves its data readable afterwards.
    With a parallel ``executor`` the per-component simulator spans and
    metrics happen in worker processes; the engine spools each worker
    run's session to disk and merges it back in plan order (see
    :mod:`repro.obs.spool`), so the profile is structurally identical to
    a serial one — only the timing values differ.

    With ``line_profile=True`` a statistical :class:`Sampler` runs for
    the whole window, attributing every sample to the open span — this
    is ``scaltool profile --lines``.  Parallel executors hand sampling
    down to their pool workers (folded profiles ride the span spools),
    so the merged line profile covers worker activity too.
    """
    # Imports deferred: obs is a leaf dependency of the layers it observes.
    from ..core import ScalTool
    from ..runner import CampaignConfig, ScalToolCampaign
    from ..workloads import make_workload

    session = obs.active()
    owns_session = session is None
    if owns_session:
        session = obs.enable()
    sampler = (
        Sampler(interval_s=sample_interval, memory=sample_memory)
        if line_profile
        else None
    )
    try:
        workload = make_workload(workload_name, **workload_params)
        size = s0 if s0 is not None else workload.default_size()
        config = CampaignConfig(s0=size, processor_counts=tuple(processor_counts))
        with session.tracer.span(
            "profile", workload=workload.name, s0=size, counts=list(processor_counts)
        ):
            if sampler is not None:
                sampler.start()
            try:
                t0 = time.perf_counter()
                campaign = ScalToolCampaign(
                    workload, config, machine_factory=machine_factory
                ).run(progress=progress, executor=executor)
                session.registry.set_gauge(
                    "profile.campaign_seconds", time.perf_counter() - t0
                )

                analysis = None
                if run_analysis:
                    t1 = time.perf_counter()
                    analysis = ScalTool(campaign).analyze()
                    session.registry.set_gauge(
                        "profile.analysis_seconds", time.perf_counter() - t1
                    )
            finally:
                profile = sampler.stop() if sampler is not None else None
        if profile is not None:
            session.registry.set_gauge("profile.samples", float(profile.n_samples))
            session.registry.set_gauge("profile.overhead_ratio", profile.overhead_ratio())
        _log.debug(
            "profiled %s: %d runs, %d spans",
            workload.name,
            len(campaign.records),
            len(session.tracer.records),
        )
        return ProfileResult(
            session=session, campaign=campaign, analysis=analysis, line_profile=profile
        )
    finally:
        if owns_session:
            obs.disable()
