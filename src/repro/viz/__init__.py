"""Terminal-friendly rendering: ASCII charts, tables, and span trees."""

from .ascii_chart import ascii_chart
from .bars import stacked_bars
from .blame_view import render_blame, render_blame_diff
from .diagnostics_view import render_diagnostics, render_lineage
from .models_view import render_model_fit, render_models_compare, render_models_predict
from .sampler_view import render_hot_profile
from .tables import format_table
from .trace_view import render_trace

__all__ = [
    "ascii_chart",
    "stacked_bars",
    "format_table",
    "render_blame",
    "render_blame_diff",
    "render_diagnostics",
    "render_hot_profile",
    "render_lineage",
    "render_model_fit",
    "render_models_compare",
    "render_models_predict",
    "render_trace",
]
