"""Experiment orchestration: single runs, Table-3 campaigns, persistence.

The campaign runner executes exactly the run plan of the paper's Table 3
(base size at every processor count; fractional sizes on a uniprocessor),
plus the Section 2.4.2 micro-kernel runs, and stores one counter file per
run — matching the resource accounting of Table 1.
"""

from .campaign import CampaignConfig, CampaignData, ScalToolCampaign
from .engine import (
    Executor,
    ParallelExecutor,
    RunCache,
    RunOutcome,
    RunSpec,
    SerialExecutor,
    default_executor,
    default_run_cache,
    execute_spec,
)
from .experiment import run_experiment
from .records import RunRecord

__all__ = [
    "RunRecord",
    "run_experiment",
    "ScalToolCampaign",
    "CampaignConfig",
    "CampaignData",
    "RunSpec",
    "RunOutcome",
    "RunCache",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_spec",
    "default_executor",
    "default_run_cache",
]
