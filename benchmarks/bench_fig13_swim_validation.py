"""Figure 13: validation of the model for Swim.

Paper: "while until 16 processors, estimated and measured curves agree,
they diverge for 32 processors ... by 14% of the accumulated cycles ...
due to presence of non-synchronization data sharing in the program."
The Section 6 sharing extension reduces the divergence.
"""

from repro.core.sharing import analyze_sharing
from repro.core.validation import validate_mp
from repro.viz.tables import format_table


def test_fig13(benchmark, emit, swim_analysis, swim_campaign):
    comparison = benchmark(validate_mp, swim_analysis, swim_campaign, exact=True)

    sh = analyze_sharing(swim_analysis, swim_campaign)
    corrected_rows = []
    for n in comparison.processor_counts:
        true_mp = swim_campaign.base_runs()[n].ground_truth.multiprocessor_cycles
        corrected = sh.corrected_curves.sync_cost[n] + sh.corrected_curves.imb_cost[n]
        corrected_rows.append(
            {
                "n": n,
                "divergence (raw)": comparison.divergence(n),
                "divergence (sharing-corrected)": abs(corrected - true_mp) / comparison.base[n],
                "event31 contamination": sh.contamination(n),
            }
        )

    text = comparison.summary() + "\n\n" + format_table(
        corrected_rows, title="Section 6 extension: sharing-corrected validation"
    )
    emit("fig13_swim_validation", text)

    # agreement at small n, divergence at 32 (paper: 14%)
    assert comparison.divergence(8) < 0.10
    assert comparison.divergence(32) > comparison.divergence(8)
    assert comparison.divergence(32) < 0.40
    # sharing contamination is the cause ...
    assert sh.contamination(32) > 0.3
    # ... and the extension reduces the divergence at 32
    raw = comparison.divergence(32)
    corrected = corrected_rows[-1]["divergence (sharing-corrected)"]
    assert corrected < raw
