"""Composition helpers for trace fragments.

Generators return ``(addrs, writes)`` pairs; these helpers stitch pairs
into longer streams so workloads can express loop nests ("sweep array A,
then B, repeated k times, with B's blocks interleaved between A's").
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError

__all__ = ["concat_traces", "interleave_traces", "repeat_trace", "empty_trace", "split_trace"]

Trace = tuple[np.ndarray, np.ndarray]


def empty_trace() -> Trace:
    """A zero-length trace fragment."""
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)


def concat_traces(*traces: Trace) -> Trace:
    """Sequential composition: run each fragment after the previous one."""
    if not traces:
        return empty_trace()
    addrs = np.concatenate([t[0] for t in traces])
    writes = np.concatenate([t[1] for t in traces])
    return addrs, writes


def repeat_trace(trace: Trace, reps: int) -> Trace:
    """Run a fragment ``reps`` times back to back (an iteration loop)."""
    if reps < 0:
        raise TraceError("reps must be >= 0")
    if reps == 0:
        return empty_trace()
    return np.tile(trace[0], reps), np.tile(trace[1], reps)


def split_trace(trace: Trace, parts: int) -> list[Trace]:
    """Cut a fragment into ``parts`` consecutive chunks (one per parallel loop).

    PCF/MP codes put a barrier after every parallel loop; splitting a
    phase's trace lets a workload express "this sweep is really ``parts``
    barrier-separated loops" without changing its references.  Chunks may
    be empty when the fragment is shorter than ``parts``.
    """
    if parts < 1:
        raise TraceError("parts must be >= 1")
    addrs, writes = trace
    n = len(addrs)
    out = []
    for i in range(parts):
        lo = (n * i) // parts
        hi = (n * (i + 1)) // parts
        out.append((addrs[lo:hi], writes[lo:hi]))
    return out


def interleave_traces(*traces: Trace, granularity: int = 1) -> Trace:
    """Fine-grained interleave: ``granularity`` refs from each in turn.

    Models loop bodies touching several arrays per iteration (``a[i] =
    b[i] + c[i]``), which is what makes multiple arrays contend for the
    same cache sets.
    """
    if granularity < 1:
        raise TraceError("granularity must be >= 1")
    traces = tuple(t for t in traces if len(t[0]))
    if not traces:
        return empty_trace()
    if len(traces) == 1:
        return traces[0]
    chunks_a: list[np.ndarray] = []
    chunks_w: list[np.ndarray] = []
    positions = [0] * len(traces)
    remaining = sum(len(t[0]) for t in traces)
    while remaining:
        for i, (addrs, writes) in enumerate(traces):
            pos = positions[i]
            if pos >= len(addrs):
                continue
            end = min(pos + granularity, len(addrs))
            chunks_a.append(addrs[pos:end])
            chunks_w.append(writes[pos:end])
            remaining -= end - pos
            positions[i] = end
    return np.concatenate(chunks_a), np.concatenate(chunks_w)
