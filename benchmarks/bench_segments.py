"""Section 2.1's segment claim: per-segment bottleneck plots.

"Note that these plots can be obtained for the overall application or for
a segment of the application that is considered particularly important."

Regenerates the segment-level decomposition of T3dheat — the SpMV sweeps
vs the CG vector steps — and checks the structure a CG practitioner would
expect: the SpMV carries the memory stalls, the vector steps carry the
synchronization.
"""

import pytest

from repro.core.segments import analyze_segments

GROUPS = {"init": "init", "spmv": "spmv_*", "vector steps": "cg_*"}


def test_segments_t3dheat(benchmark, emit, t3dheat_analysis, t3dheat_campaign):
    seg = benchmark(
        analyze_segments, t3dheat_analysis, t3dheat_campaign, GROUPS, [1, 8, 32]
    )
    emit("segments_t3dheat", seg.summary())

    # segments tile the run exactly
    for n in (1, 8, 32):
        total = sum(seg.at(name, n).cycles for name in GROUPS)
        base = t3dheat_campaign.base_runs()[n].counters.cycles
        assert total == pytest.approx(base, rel=1e-6)

    # the SpMV's conflict/gather misses fade as partitions fit the caches
    spmv1 = seg.at("spmv", 1)
    spmv32 = seg.at("spmv", 32)
    assert (
        spmv1.memory_stall_cycles / spmv1.cycles
        > 1.5 * spmv32.memory_stall_cycles / spmv32.cycles
    )
    # the irregular gathers leave the SpMV with the unmodeled residual at
    # n=1 (their full-latency misses exceed the fitted average tm)
    vec1 = seg.at("vector steps", 1)
    assert spmv1.residual_fraction > vec1.residual_fraction

    # at scale the vector steps are where synchronization lives
    # (many barrier-separated dot/daxpy loops over little data)
    vec32 = seg.at("vector steps", 32)
    assert vec32.sync_cycles > spmv32.sync_cycles
    assert vec32.sync_cycles / vec32.cycles > 0.2
