"""Size and unit helpers shared across the library.

The paper works in bytes (data-set and cache sizes), cycles, and
instructions.  This module centralises parsing and pretty-printing of byte
sizes (``"4MB"``, ``"32KB"``) and a couple of numeric helpers used by the
estimators.
"""

from __future__ import annotations

import math
import re

from .errors import ConfigError

__all__ = [
    "KB",
    "MB",
    "GB",
    "parse_size",
    "format_size",
    "format_count",
    "is_power_of_two",
    "log2_int",
    "geometric_sizes",
]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

_SIZE_RE = re.compile(
    r"""^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMG]?i?B?)\s*$""",
    re.IGNORECASE,
)

_UNIT_FACTOR = {
    "": 1,
    "B": 1,
    "K": KB,
    "KB": KB,
    "KIB": KB,
    "M": MB,
    "MB": MB,
    "MIB": MB,
    "G": GB,
    "GB": GB,
    "GIB": GB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable byte size into an integer byte count.

    Accepts plain integers/floats (returned as ``int``) and strings such as
    ``"32KB"``, ``"4 MiB"``, ``"10.3MB"``.  Units are powers of two, matching
    the paper's usage (the Origin 2000's "4-Mbyte" L2 is 4 * 2**20 bytes).

    Raises
    ------
    ConfigError
        If the string cannot be parsed or the size is negative.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigError(f"negative size: {text!r}")
        return int(text)
    m = _SIZE_RE.match(text)
    if m is None:
        raise ConfigError(f"unparseable size: {text!r}")
    unit = m.group("unit").upper()
    if unit not in _UNIT_FACTOR:
        raise ConfigError(f"unknown size unit in {text!r}")
    return int(float(m.group("num")) * _UNIT_FACTOR[unit])


def format_size(nbytes: int | float) -> str:
    """Render a byte count with a binary-unit suffix (``"4.0MB"``)."""
    nbytes = float(nbytes)
    for factor, suffix in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(nbytes) >= factor:
            value = nbytes / factor
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
    if nbytes == int(nbytes):
        return f"{int(nbytes)}B"
    return f"{nbytes:.1f}B"


def format_count(n: int | float) -> str:
    """Render a large count with thousands separators (``"1,234,567"``)."""
    if isinstance(n, float) and not n.is_integer():
        return f"{n:,.2f}"
    return f"{int(n):,}"


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2; raises :class:`ConfigError` on non-powers of two."""
    if not is_power_of_two(n):
        raise ConfigError(f"{n} is not a power of two")
    return n.bit_length() - 1


def geometric_sizes(base: int, count: int, ratio: float = 0.5) -> list[int]:
    """Return ``count`` sizes starting at ``base`` shrinking by ``ratio``.

    Used to build the fractional-data-set schedule of Table 3
    (s0, s0/2, s0/4, ...).  Sizes are floored to at least one byte.
    """
    if count < 1:
        raise ConfigError("count must be >= 1")
    if not (0.0 < ratio < 1.0):
        raise ConfigError("ratio must be in (0, 1)")
    out = []
    s = float(base)
    for _ in range(count):
        out.append(max(1, int(s)))
        s *= ratio
    return out


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean, used to combine per-processor rates."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into ``[lo, hi]``."""
    return lo if x < lo else hi if x > hi else x


def safe_div(num: float, den: float, default: float = 0.0) -> float:
    """Division that maps a zero/NaN denominator to ``default``."""
    if den == 0 or math.isnan(den):
        return default
    return num / den
