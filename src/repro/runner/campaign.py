"""The Scal-Tool measurement campaign (paper Table 3 + Section 2.4.2 kernels).

Given an application and a machine family, the campaign executes

* the application at the base data-set size ``s0`` for every processor
  count 1, 2, 4, ..., 2^(k-1)   (Table 3, top row),
* the application on a uniprocessor at fractional sizes s0/2, s0/4, ...
  (Table 3, left column) — extended below s0/2^(k-1) down to the L1
  capacity, which supplies the compulsory-miss plateau of Figure 3-(a)
  and the small-data-set run used to estimate cpi0 (Section 2.2),
* the synchronization and spin micro-kernels (Section 2.4.2) at each
  processor count, which calibrate cpi_sync(n), tsyn(n), and cpi_imb.

Each run produces one :class:`~repro.runner.records.RunRecord` ("one
output file"); :meth:`CampaignData.save` writes them out both as a JSONL
manifest and as individual perfex-format text files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import ConfigError, InsufficientDataError
from ..obs import runtime as obs
from ..obs.logs import get_logger, kv
from ..tools.perfex import format_report
from ..workloads.base import Workload
from ..workloads.kernels import SpinKernel, SyncKernel
from .engine import Executor, OnOutcome, RunCache, RunSpec, SerialExecutor
from .experiment import MachineFactory, default_machine_factory
from .records import (
    ROLE_APP_BASE,
    ROLE_APP_FRAC,
    ROLE_SPIN_KERNEL,
    ROLE_SYNC_KERNEL,
    RunRecord,
    load_records,
    save_records,
)

__all__ = ["CampaignConfig", "CampaignData", "ScalToolCampaign", "ProgressCallback"]

_log = get_logger("runner.campaign")

# Called after each completed run with (run_index_1_based, total_runs, record).
ProgressCallback = Callable[[int, int, RunRecord], None]


@dataclass(frozen=True)
class CampaignConfig:
    """What to run."""

    s0: int
    processor_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    min_fraction_bytes: int | None = None  # default: half the L1
    sync_kernel_barriers: int = 200
    spin_kernel_episodes: int = 20
    run_kernels: bool = True

    def __post_init__(self) -> None:
        if self.s0 < 1:
            raise ConfigError("s0 must be positive")
        if not self.processor_counts or self.processor_counts[0] != 1:
            raise ConfigError("processor_counts must start at 1 (the model needs uniprocessor runs)")
        if list(self.processor_counts) != sorted(set(self.processor_counts)):
            raise ConfigError("processor_counts must be strictly increasing and unique")


@dataclass
class CampaignData:
    """Every record a campaign produced, with the lookups the model needs."""

    workload: str
    s0: int
    records: list[RunRecord] = field(default_factory=list)

    # -- lookups ------------------------------------------------------------------

    def base_runs(self) -> dict[int, RunRecord]:
        """Processor count -> the run at the base size s0."""
        return {
            r.n_processors: r
            for r in self.records
            if r.role == ROLE_APP_BASE and r.size_bytes == self.s0
        }

    def uniprocessor_runs(self) -> dict[int, RunRecord]:
        """Data-set size -> uniprocessor application run (includes s0)."""
        out = {}
        for r in self.records:
            if r.n_processors == 1 and r.role in (ROLE_APP_BASE, ROLE_APP_FRAC):
                out[r.size_bytes] = r
        return out

    def sync_kernel_runs(self) -> dict[int, RunRecord]:
        return {r.n_processors: r for r in self.records if r.role == ROLE_SYNC_KERNEL}

    def spin_kernel_runs(self) -> dict[int, RunRecord]:
        return {r.n_processors: r for r in self.records if r.role == ROLE_SPIN_KERNEL}

    def processor_counts(self) -> list[int]:
        return sorted(self.base_runs())

    def require(self, what: str, mapping: dict) -> dict:
        if not mapping:
            raise InsufficientDataError(f"campaign for {self.workload!r} has no {what}")
        return mapping

    # -- persistence -----------------------------------------------------------------

    def save(self, directory: str | Path, perfex_files: bool = True) -> Path:
        """Write the manifest (and one perfex file per run) under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = directory / "campaign.jsonl"
        save_records(self.records, manifest)
        if perfex_files:
            for i, rec in enumerate(self.records):
                name = f"run_{i:03d}_{rec.role}_n{rec.n_processors}_s{rec.size_bytes}.perfex"
                meta = {
                    "workload": rec.workload,
                    "role": rec.role,
                    "size_bytes": rec.size_bytes,
                    "n_processors": rec.n_processors,
                    "params": rec.params,
                }
                (directory / name).write_text(
                    format_report(rec.counters, rec.per_cpu, metadata=meta)
                )
        return manifest

    @classmethod
    def load(cls, directory: str | Path) -> "CampaignData":
        """Reload a campaign saved by :meth:`save`."""
        directory = Path(directory)
        records = load_records(directory / "campaign.jsonl")
        if not records:
            raise InsufficientDataError(f"no records in {directory}")
        app = next(
            (r for r in records if r.role in (ROLE_APP_BASE, ROLE_APP_FRAC)), records[0]
        )
        s0 = max(r.size_bytes for r in records if r.role == ROLE_APP_BASE) if any(
            r.role == ROLE_APP_BASE for r in records
        ) else app.size_bytes
        return cls(workload=app.workload, s0=s0, records=records)


class ScalToolCampaign:
    """Executes the full Table-3 + kernels plan for one application."""

    def __init__(
        self,
        workload: Workload,
        config: CampaignConfig,
        machine_factory: MachineFactory | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.workload = workload
        self.config = config
        self.machine_factory = machine_factory or default_machine_factory()
        self._progress = progress or (lambda msg: None)

    def planned_runs(self) -> list[tuple[str, int, int]]:
        """(role, size, n) of every run the campaign will execute."""
        cfg = self.config
        plan: list[tuple[str, int, int]] = []
        for n in cfg.processor_counts:
            plan.append((ROLE_APP_BASE, cfg.s0, n))
        for size in self.fraction_sizes():
            plan.append((ROLE_APP_FRAC, size, 1))
        if cfg.run_kernels:
            for n in cfg.processor_counts:
                plan.append((ROLE_SYNC_KERNEL, 4096, n))
                plan.append((ROLE_SPIN_KERNEL, 4096, n))
        return plan

    def fraction_sizes(self) -> list[int]:
        """The uniprocessor fractional sizes.

        The halving chain of Table 3 (s0/2, s0/4, ...) extended in two
        ways, both within the paper's methodology: a parallel 3*s0/4
        halving chain, so the t2/tm regression gets the "3-4 data set
        sizes" of Section 2.3 even when s0 is only a few times the L2; and
        a tail reaching the L1 capacity, which supplies the
        compulsory-plateau sweep of Figure 3-(a) and the cpi0 run.
        """
        cfg = self.config
        l1_bytes = self.machine_factory(1).l1.size
        floor = cfg.min_fraction_bytes if cfg.min_fraction_bytes else max(128, l1_bytes // 2)
        sizes: set[int] = set()
        for start in (cfg.s0 // 2, (3 * cfg.s0) // 4):
            s = start
            while s >= floor:
                sizes.add(s)
                s //= 2
        sizes.add(floor)
        return sorted(sizes, reverse=True)

    def compile_plan(self) -> list[RunSpec]:
        """The full plan as engine specs, one per Table-3 cell / kernel run.

        Each spec carries the *complete* machine configuration produced by
        the factory at that run's processor count, so machine families
        that vary anything with ``n`` hash (and cache) correctly.
        """
        cfg = self.config
        sync_kernel = SyncKernel(n_barriers=cfg.sync_kernel_barriers)
        spin_kernel = SpinKernel(episodes=cfg.spin_kernel_episodes)
        specs: list[RunSpec] = []
        for role, size, n in self.planned_runs():
            if role == ROLE_SYNC_KERNEL:
                wl: Workload = sync_kernel
            elif role == ROLE_SPIN_KERNEL:
                wl = spin_kernel
            else:
                wl = self.workload
            specs.append(
                RunSpec.compile(wl, size, n, machine=self.machine_factory(n), role=role)
            )
        return specs

    def run(
        self,
        progress: ProgressCallback | None = None,
        executor: Executor | None = None,
        cache: RunCache | None = None,
        refresh: bool = False,
        on_outcome: OnOutcome | None = None,
    ) -> CampaignData:
        """Execute the plan through the shared engine; returns all records.

        ``progress`` (if given) is called after every completed run with
        ``(i, total, record)``, ``i`` 1-based — the hook long campaigns
        use to report ``run 7/23 hydro2d n=8``-style liveness.  Runs
        loaded from ``cache`` report through the same callback, so warm
        campaigns stay visibly live.  ``executor`` defaults to serial
        execution; a :class:`~repro.runner.engine.ParallelExecutor`
        produces an identical record list (the plan order), just faster.
        ``on_outcome`` (if given) additionally receives every
        :class:`~repro.runner.engine.RunOutcome`.
        """
        cfg = self.config
        data = CampaignData(workload=self.workload.name, s0=cfg.s0)
        specs = self.compile_plan()
        total = len(specs)
        executor = executor or SerialExecutor()
        tracer = obs.tracer()
        reg = obs.registry()
        _log.debug("campaign start %s", kv(workload=self.workload.name, s0=cfg.s0, runs=total))
        for spec in specs:
            self._progress(
                f"{spec.workload}: {spec.role} size={spec.size_bytes} n={spec.n_processors}"
            )

        completed = 0

        def _on_outcome(outcome) -> None:
            nonlocal completed
            completed += 1
            rec = outcome.record
            reg.inc("campaign.runs")
            reg.inc(f"campaign.runs.{rec.role}")
            reg.observe("campaign.run_seconds", outcome.seconds)
            tracer.emit(
                "campaign.experiment",
                outcome.seconds,
                role=rec.role,
                size=rec.size_bytes,
                n=rec.n_processors,
                cached=outcome.cached,
            )
            _log.debug(
                "campaign run %d/%d %s",
                completed,
                total,
                kv(
                    workload=rec.workload,
                    role=rec.role,
                    size=rec.size_bytes,
                    n=rec.n_processors,
                    cached=outcome.cached,
                    seconds=f"{outcome.seconds:.3f}",
                ),
            )
            if progress is not None:
                progress(completed, total, rec)
            if on_outcome is not None:
                on_outcome(outcome)

        with tracer.span("campaign.run", workload=self.workload.name, s0=cfg.s0, runs=total):
            data.records = executor.run(
                specs, cache=cache, refresh=refresh, on_outcome=_on_outcome
            )
        return data
