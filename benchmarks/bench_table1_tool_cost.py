"""Table 1: resources needed by existing tools vs Scal-Tool.

Regenerates the run/processor/file accounting for the motivating example
(execution time + sync/spin fraction at processor counts 1..2^(n-1)) and
checks the paper's headline: at n = 6, Scal-Tool needs ~50% of the
processors and fewer files.
"""

from repro.core.runplan import table1_rows
from repro.tools.cost import processor_savings
from repro.viz.tables import format_table


def regenerate(n: int = 6):
    rows = [
        {"Parameter Measured (Tool)": label, "Num. Runs": runs,
         "Total Num. Processors": procs, "Num. Files": files}
        for label, runs, procs, files in table1_rows(n)
    ]
    return rows, processor_savings(n)


def test_table1(benchmark, emit):
    rows, savings = benchmark(regenerate, 6)
    text = format_table(rows, title="Table 1 (n = 6, processor counts 1..32)")
    text += f"\n\nScal-Tool processor usage vs existing tools: {savings:.0%} (paper: ~50%)"
    emit("table1_tool_cost", text)

    assert rows[-1]["Num. Runs"] == 11
    assert rows[-1]["Total Num. Processors"] == 68
    assert rows[2]["Total Num. Processors"] == 126
    assert 0.45 < savings < 0.60
