"""Sampling-profiler overhead: ``--lines`` must stay under a 10% budget.

The line sampler's whole value proposition is "run it on a real
campaign without distorting what you measure" — a profiler that slows
the workload down by 2x reports a different hot path than the one
production has.  Budget: profiled wall time <= 1.10x unprofiled wall
time at the default 5 ms interval.

Two numbers, cross-checked:

1. End-to-end ratio: median campaign wall time with a live
   :class:`~repro.obs.sampler.Sampler` vs without (both under an obs
   session, so the delta is sampling alone, not span bookkeeping).
2. Self-accounting: the sampler times each of its own ticks;
   ``tick_fraction`` (overhead seconds / window) is the sampler's own
   estimate of the same cost, and should agree in magnitude — if the
   two diverge wildly, the watcher is interfering in some way its tick
   timer cannot see (GIL contention, allocator pressure).

``check_regression.py`` reruns :func:`measure` and gates hard on the
ratio (no baseline needed: the budget is absolute).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.obs import runtime as obs
from repro.obs.sampler import NOOP_SAMPLER, Sampler, active_sampler
from repro.runner.campaign import CampaignConfig, ScalToolCampaign
from repro.workloads import SyntheticWorkload

REPEATS = 5
INTERVAL_S = 0.005
BUDGET_RATIO = 1.10


def _campaign() -> ScalToolCampaign:
    cfg = CampaignConfig(
        s0=32 * 1024,
        processor_counts=(1, 2),
        sync_kernel_barriers=10,
        spin_kernel_episodes=3,
    )
    return ScalToolCampaign(SyntheticWorkload(), cfg)


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def measure(repeats: int = REPEATS, interval_s: float = INTERVAL_S) -> dict:
    """The overhead measurement, importable (``check_regression`` reruns it)."""
    campaign = _campaign()
    assert obs.active() is None

    def run_plain():
        with obs.session():
            campaign.run()

    plain_s = _median_seconds(run_plain, repeats=repeats)

    samples = 0
    tick_fractions = []

    def run_sampled():
        nonlocal samples
        with obs.session():
            sampler = Sampler(interval_s=interval_s).start()
            try:
                campaign.run()
            finally:
                profile = sampler.stop()
            samples += profile.n_samples
            tick_fractions.append(
                profile.overhead_s / profile.duration_s if profile.duration_s else 0.0
            )

    sampled_s = _median_seconds(run_sampled, repeats=repeats)
    return {
        "plain_s": plain_s,
        "sampled_s": sampled_s,
        "overhead_ratio": sampled_s / plain_s,
        "interval_ms": interval_s * 1e3,
        "samples_total": samples,
        "tick_fraction": statistics.median(tick_fractions),
        "budget_ratio": BUDGET_RATIO,
    }


def format_measurement(m: dict) -> str:
    return "\n".join(
        [
            "line-sampler overhead (synthetic, s0=32KiB, n=1,2)",
            f"{'campaign wall time, unprofiled':.<55s} {m['plain_s'] * 1e3:>12.2f} ms",
            f"{'campaign wall time, sampler live':.<55s} {m['sampled_s'] * 1e3:>12.2f} ms",
            f"{'sampled / unprofiled ratio':.<55s} {m['overhead_ratio']:>12.3f}",
            f"{'budget':.<55s} {m['budget_ratio']:>12.2f}",
            f"{'sampling interval':.<55s} {m['interval_ms']:>12.1f} ms",
            f"{'samples across repeats':.<55s} {m['samples_total']:>12d}",
            f"{'sampler self-measured tick fraction':.<55s} {m['tick_fraction']:>12.4%}",
        ]
    )


def test_profiler_overhead_under_budget(emit):
    m = measure()
    emit("profiler_overhead", format_measurement(m))
    (Path(__file__).parent / "results" / "profiler_overhead.json").write_text(
        json.dumps(m, indent=2, sort_keys=True) + "\n"
    )

    # The budget the ISSUE sets: sampling must cost <= 10% wall time.
    assert m["overhead_ratio"] <= BUDGET_RATIO, (
        f"sampler overhead ratio {m['overhead_ratio']:.3f} over budget {BUDGET_RATIO}"
    )
    # The sampler's own tick accounting should see a small cost too — if
    # the ticks claim to be free while the wall clock disagrees, the
    # overhead model is lying.
    assert m["tick_fraction"] < 0.10, f"tick fraction {m['tick_fraction']:.2%} >= 10%"

    # Disabled mode: no sampler registered, and the no-op singleton
    # swallows every call without side effects.
    assert active_sampler() is None
    assert NOOP_SAMPLER.start() is NOOP_SAMPLER
    assert NOOP_SAMPLER.stop() is None
    NOOP_SAMPLER.sample_once()
    assert NOOP_SAMPLER.profile is None
