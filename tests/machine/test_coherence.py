"""Directory MESI protocol through the coherence controller."""

import pytest

from repro.machine.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.machine.coherence import CoherenceController
from repro.machine.counters import CounterSet, GroundTruth
from repro.machine.hierarchy import CacheHierarchy
from repro.machine.interconnect import Interconnect
from repro.machine.memory import NumaMemory

from ..conftest import tiny_machine_config


def make_controller(n=4, directory_kind="bitvector", **overrides):
    cfg = tiny_machine_config(n_processors=n, **overrides)
    hierarchies = [CacheHierarchy(i, cfg.l1, cfg.l2, seed=1) for i in range(n)]
    memory = NumaMemory(cfg.memory, n, cfg.line_size)
    ic = Interconnect(cfg.interconnect, n)
    counters = [CounterSet() for _ in range(n)]
    gt = [GroundTruth() for _ in range(n)]
    ctrl = CoherenceController(cfg, hierarchies, memory, ic, counters, gt, directory_kind)
    return ctrl, counters, gt, cfg


class TestReadPath:
    def test_cold_read_installs_exclusive(self):
        ctrl, counters, gt, _ = make_controller()
        stall = ctrl.access(0, 100, is_write=False)
        assert stall >= ctrl.cfg.timing.t_mem * ctrl.cfg.timing.t_prefetch_factor
        assert ctrl.hierarchies[0].l2_state(100) == EXCLUSIVE
        assert counters[0].l2_misses == 1
        assert gt[0].cold_misses == 1

    def test_second_read_hits_l1_free(self):
        ctrl, counters, _, _ = make_controller()
        ctrl.access(0, 100, False)
        assert ctrl.access(0, 100, False) == 0.0
        assert counters[0].l1_data_misses == 1

    def test_read_from_remote_exclusive_demotes(self):
        ctrl, _, _, _ = make_controller()
        ctrl.access(0, 100, False)  # cpu0 E
        ctrl.access(1, 100, False)  # cpu1 reads
        assert ctrl.hierarchies[0].l2_state(100) == SHARED
        assert ctrl.hierarchies[1].l2_state(100) == SHARED

    def test_read_from_remote_dirty_intervenes(self):
        ctrl, _, gt, cfg = make_controller()
        ctrl.access(0, 100, True)  # cpu0 M
        stall = ctrl.access(1, 100, False)
        assert stall >= cfg.timing.t_dirty_remote
        assert ctrl.hierarchies[0].l2_state(100) == SHARED
        assert gt[1].dirty_remote_misses == 1

    def test_l1_miss_l2_hit_costs_t2(self):
        ctrl, counters, gt, cfg = make_controller()
        ctrl.access(0, 0, False)
        # push block 0 out of the tiny L1 (4 sets x 2 ways) but not the L2
        for b in (4, 8, 12):  # same L1 set as 0 (l1 has 4 sets)
            ctrl.access(0, b, False)
        stall = ctrl.access(0, 0, False)
        assert stall == cfg.timing.t_l2_hit
        assert gt[0].l2_hit_stall_cycles >= cfg.timing.t_l2_hit


class TestWritePath:
    def test_cold_write_installs_modified(self):
        ctrl, counters, _, _ = make_controller()
        ctrl.access(0, 50, True)
        assert ctrl.hierarchies[0].l2_state(50) == MODIFIED
        assert counters[0].graduated_stores == 1

    def test_silent_e_to_m(self):
        ctrl, counters, _, _ = make_controller()
        ctrl.access(0, 50, False)  # E
        stall = ctrl.access(0, 50, True)
        assert stall == 0.0
        assert ctrl.hierarchies[0].l2_state(50) == MODIFIED
        assert counters[0].store_exclusive_to_shared == 0

    def test_upgrade_on_shared_line(self):
        ctrl, counters, gt, cfg = make_controller()
        ctrl.access(0, 50, False)
        ctrl.access(1, 50, False)  # both SHARED
        stall = ctrl.access(0, 50, True)
        assert stall == cfg.timing.t_upgrade
        assert counters[0].store_exclusive_to_shared == 1
        assert gt[0].upgrades_data == 1
        assert not ctrl.hierarchies[1].l2.contains(50)

    def test_upgrade_marks_coherence_miss_for_victim(self):
        ctrl, _, gt, _ = make_controller()
        ctrl.access(0, 50, False)
        ctrl.access(1, 50, False)
        ctrl.access(0, 50, True)  # invalidates cpu1
        ctrl.access(1, 50, False)  # miss again
        assert gt[1].coherence_misses == 1

    def test_write_miss_invalidates_remote_owner(self):
        ctrl, _, _, _ = make_controller()
        ctrl.access(0, 50, True)  # cpu0 M
        ctrl.access(1, 50, True)  # cpu1 write-miss
        assert ctrl.hierarchies[1].l2_state(50) == MODIFIED
        assert not ctrl.hierarchies[0].l2.contains(50)

    def test_write_miss_invalidates_all_sharers(self):
        ctrl, _, _, _ = make_controller()
        for cpu in (0, 1, 2):
            ctrl.access(cpu, 50, False)
        ctrl.access(3, 50, True)
        for cpu in (0, 1, 2):
            assert not ctrl.hierarchies[cpu].l2.contains(50)
        owner, mask = ctrl.directory.lookup(50)
        assert owner == 3


class TestWritebacksAndPlacement:
    def test_dirty_eviction_writes_back(self):
        ctrl, _, gt, cfg = make_controller()
        # fill one L2 set (2 ways) with dirty lines, then overflow it
        n_sets = cfg.l2.n_sets
        ctrl.access(0, 0, True)
        ctrl.access(0, n_sets, True)
        ctrl.access(0, 2 * n_sets, True)
        assert gt[0].writebacks == 1
        assert gt[0].writeback_cycles == cfg.timing.t_writeback

    def test_first_touch_makes_miss_local(self):
        ctrl, _, gt, _ = make_controller()
        ctrl.access(2, 500, False)
        assert gt[2].local_misses == 1
        assert gt[2].remote_misses == 0

    def test_remote_home_costs_hops(self):
        ctrl, _, gt, cfg = make_controller()
        ctrl.access(0, 500, False)  # home -> node 0
        # evict it from cpu0 is not needed: cpu3 misses and fetches remotely
        stall = ctrl.access(3, 500, False)
        hops = ctrl.interconnect.hops(3, 0)
        assert hops > 0
        assert gt[3].remote_misses == 1


class TestPrefetcher:
    def test_sequential_stream_discounted(self):
        ctrl, _, _, cfg = make_controller()
        first = ctrl.access(0, 1000, False)
        second = ctrl.access(0, 1001, False)
        assert second == pytest.approx(first * cfg.timing.t_prefetch_factor)

    def test_random_stream_full_price(self):
        ctrl, _, _, _ = make_controller()
        a = ctrl.access(0, 1000, False)
        b = ctrl.access(0, 5000, False)
        assert b == pytest.approx(a)

    def test_dirty_intervention_not_discounted(self):
        ctrl, _, _, cfg = make_controller()
        ctrl.access(0, 1000, True)
        ctrl.access(0, 1001, True)
        ctrl.access(1, 1000, False)
        stall = ctrl.access(1, 1001, False)  # sequential BUT dirty-remote
        assert stall > cfg.timing.t_mem * cfg.timing.t_prefetch_factor


class TestInvariantsAndCoarse:
    def test_invariants_after_traffic(self):
        ctrl, _, _, _ = make_controller()
        import random

        rnd = random.Random(3)
        for _ in range(2000):
            ctrl.access(rnd.randrange(4), rnd.randrange(200), rnd.random() < 0.3)
        ctrl.check_invariants()

    def test_coarse_directory_traffic(self):
        ctrl, _, _, _ = make_controller(n=4, directory_kind="coarse")
        import random

        rnd = random.Random(5)
        for _ in range(2000):
            ctrl.access(rnd.randrange(4), rnd.randrange(100), rnd.random() < 0.3)
        ctrl.check_invariants()

    def test_single_writer_invariant(self):
        ctrl, _, _, _ = make_controller()
        for cpu in range(4):
            ctrl.access(cpu, 77, True)
        holders = [c for c in range(4) if ctrl.hierarchies[c].l2.contains(77)]
        assert holders == [3]
