"""Planner: cache-hit dropping, atomic in-flight claims, waiter semantics."""

import threading
import time

from repro.runner.engine import RunCache
from repro.service.planner import InFlightTable, RequestPlanner
from repro.service.requests import compile_request

PAYLOAD = {"workload": "synthetic", "s0": 163840, "counts": [1, 2]}


class TestInFlightTable:
    def test_claim_partitions(self):
        table = InFlightTable()
        claimed, waiting = table.claim(["a", "b"])
        assert claimed == ["a", "b"] and waiting == {}
        claimed2, waiting2 = table.claim(["b", "c"])
        assert claimed2 == ["c"]
        assert set(waiting2) == {"b"}
        assert len(table) == 3

    def test_release_wakes_waiters(self):
        table = InFlightTable()
        table.claim(["a"])
        _, waiting = table.claim(["a"])
        assert not waiting["a"].is_set()
        table.release(["a"])
        assert waiting["a"].is_set()
        assert len(table) == 0

    def test_release_unknown_key_is_noop(self):
        InFlightTable().release(["ghost"])

    def test_reclaim_after_release(self):
        table = InFlightTable()
        table.claim(["a"])
        table.release(["a"])
        claimed, waiting = table.claim(["a"])
        assert claimed == ["a"] and not waiting


class TestRequestPlanner:
    def test_first_plan_claims_everything(self, tmp_path):
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        plan = planner.plan(compile_request("analyze", PAYLOAD))
        assert plan.cache_hits == 0
        assert not plan.waiting
        assert len(plan.claimed) == len(plan.specs) > 0
        planner.complete(plan)

    def test_concurrent_plans_partition_overlap(self, tmp_path):
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        first = planner.plan(compile_request("analyze", PAYLOAD))
        second = planner.plan(compile_request("whatif", {**PAYLOAD, "tm": 0.5}))
        # Identical spec sets: the second job claims nothing and waits on all.
        assert second.claimed == []
        assert set(second.waiting) == set(first.claimed_keys)
        planner.complete(first)
        assert planner.wait(second, timeout=1.0)
        planner.complete(second)

    def test_cached_specs_become_hits(self, warm_root):
        cache = RunCache(warm_root / "runs")
        request = compile_request("analyze", PAYLOAD)
        planner = RequestPlanner(cache)
        plan = planner.plan(request)
        assert plan.cache_hits == len(plan.specs)
        assert plan.claimed == [] and not plan.waiting
        planner.complete(plan)

    def test_wait_returns_false_on_timeout(self, tmp_path):
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        first = planner.plan(compile_request("analyze", PAYLOAD))
        second = planner.plan(compile_request("analyze", PAYLOAD))
        assert not planner.wait(second, timeout=0.01)
        planner.complete(first)  # a crashed owner still releases via finally
        assert planner.wait(second, timeout=1.0)

    def test_wait_survives_owner_failure(self, tmp_path):
        # The owner "fails": it releases without populating the cache.  The
        # waiter unblocks and would execute the specs itself at assembly.
        planner = RequestPlanner(RunCache(tmp_path / "runs"))
        owner = planner.plan(compile_request("analyze", PAYLOAD))
        waiter = planner.plan(compile_request("analyze", PAYLOAD))
        released = threading.Event()

        def fail_owner():
            planner.complete(owner)
            released.set()

        threading.Thread(target=fail_owner).start()
        assert planner.wait(waiter, timeout=2.0)
        assert released.is_set()


class TestClaimTTL:
    """Stale-claim leakage: an orphaned claim must expire, not block forever."""

    def test_unreleased_claim_expires_after_ttl(self):
        table = InFlightTable(ttl=0.15)
        got, _ = table.claim(["k"])
        assert got == ["k"]
        time.sleep(0.25)
        got2, waiting = table.claim(["k"])  # orphaned claim reclaimed
        assert got2 == ["k"] and not waiting

    def test_expiry_wakes_the_orphans_waiters(self):
        table = InFlightTable(ttl=0.15)
        table.claim(["k"])
        _, waiting = table.claim(["k"])
        time.sleep(0.25)
        table.claim(["other"])  # any claim() sweeps expired entries
        assert waiting["k"].wait(timeout=1.0)

    def test_heartbeat_defers_expiry(self):
        table = InFlightTable(ttl=0.3)
        table.claim(["k"])
        for _ in range(3):
            time.sleep(0.15)
            table.heartbeat(["k"])
        got, waiting = table.claim(["k"])  # still held: heartbeats kept it
        assert not got and set(waiting) == {"k"}

    def test_no_ttl_means_no_expiry(self):
        table = InFlightTable()  # ttl=None: the pre-TTL behaviour
        table.claim(["k"])
        time.sleep(0.05)
        got, waiting = table.claim(["k"])
        assert not got and set(waiting) == {"k"}

    def test_dead_claimant_thread_is_reclaimed_by_ttl(self):
        """The in-process analogue of a killed worker: the claiming thread
        dies without release; the TTL reclaims on the next plan."""
        table = InFlightTable(ttl=0.2)

        def claim_and_die():
            table.claim(["doomed"])  # never releases

        t = threading.Thread(target=claim_and_die)
        t.start()
        t.join()  # claimant is gone, claim leaked
        assert len(table) == 1
        time.sleep(0.3)
        got, waiting = table.claim(["doomed"])
        assert got == ["doomed"] and not waiting
