"""The blame pipeline: graph structure, detector invariants, determinism."""

from __future__ import annotations

import json

import pytest

from repro.analysis import BlameReport, blame_campaign, diff_reports
from repro.analysis.blame import (
    BlameVertex,
    ScalingGraph,
    build_scaling_graph,
    default_groups,
    detect_scaling_loss,
    loss_window,
    wall_by_count,
)
from repro.core.segments import SegmentBreakdown
from repro.obs.diagnostics import GRADE_SUSPECT


class TestLossWindow:
    def test_midpoint_to_top(self):
        assert loss_window([1, 2, 4, 8, 16, 32]) == (8, 32)
        assert loss_window([1, 2, 4, 8]) == (4, 8)

    def test_degenerate_two_counts(self):
        assert loss_window([1, 2]) == (1, 2)

    def test_single_interval(self):
        assert loss_window([4, 8]) == (4, 8)


def _breakdown(segment, n, cycles, compute=0.0, l2=0.0, mem=0.0, sync=0.0, res=0.0):
    return SegmentBreakdown(
        segment=segment,
        n_processors=n,
        n_phases=1,
        cycles=cycles,
        instructions=cycles,
        compute_cycles=compute,
        l2_hit_stall_cycles=l2,
        memory_stall_cycles=mem,
        sync_cycles=sync,
        residual_cycles=res,
    )


def _graph(vertices_spec, counts=(1, 2, 4)):
    """A hand-built graph: vertices_spec is {name: {n: SegmentBreakdown}}."""
    vertices = {}
    for i, (name, by_n) in enumerate(vertices_spec.items()):
        vertices[name] = BlameVertex(name=name, pattern=f"{name}*", order=i, by_n=by_n)
    base = {
        n: sum(v.by_n[n].cycles for v in vertices.values()) for n in counts
    }
    return ScalingGraph(
        workload="handmade",
        s0=1024,
        processor_counts=list(counts),
        groups={name: f"{name}*" for name in vertices},
        vertices=vertices,
        edges=[],
        curves={
            "base": base,
            "l2lim": {n: 0.0 for n in counts},
            "sync": {n: 0.0 for n in counts},
            "imb": {n: 0.0 for n in counts},
        },
        frac_syn={n: 0.0 for n in counts},
        frac_imb={n: 0.0 for n in counts},
    )


class TestDetector:
    def test_losses_tile_the_total(self):
        g = _graph(
            {
                "a": {1: _breakdown("a", 1, 100, compute=100),
                      2: _breakdown("a", 2, 150, compute=150),
                      4: _breakdown("a", 4, 300, compute=300)},
                "b": {1: _breakdown("b", 1, 50, compute=50),
                      2: _breakdown("b", 2, 60, compute=60),
                      4: _breakdown("b", 4, 40, compute=40)},
            }
        )
        det = detect_scaling_loss(g)
        total = sum(v.cycle_loss for v in det.per_vertex.values())
        assert total == pytest.approx(det.total_loss, rel=1e-9)

    def test_overshoot_grades_suspect_and_excludes(self):
        # vertex "bad" models 10x its own cycles at n=4: the tm(n)
        # whole-run-average artifact.  It must grade suspect and drop out
        # of category attribution, leaving "good" with 100% of memory.
        g = _graph(
            {
                "good": {1: _breakdown("good", 1, 100, compute=60, mem=40),
                         2: _breakdown("good", 2, 120, compute=60, mem=60),
                         4: _breakdown("good", 4, 150, compute=60, mem=90)},
                "bad": {1: _breakdown("bad", 1, 100, compute=100),
                        2: _breakdown("bad", 2, 100, compute=100),
                        4: _breakdown("bad", 4, 100, compute=100, mem=900)},
            }
        )
        det = detect_scaling_loss(g)
        assert det.per_vertex["bad"].grade == GRADE_SUSPECT
        assert det.excluded == ["bad"]
        assert det.category_shares["memory"] == {"good": 1.0}
        # suspect evidence is still reported, just not trusted
        assert det.per_vertex["bad"].category_level["memory"] == 900

    def test_flag_marks_dominant_loser(self):
        g = _graph(
            {
                "hot": {1: _breakdown("hot", 1, 100, compute=100),
                        2: _breakdown("hot", 2, 500, compute=500),
                        4: _breakdown("hot", 4, 2000, compute=2000)},
                "cold": {1: _breakdown("cold", 1, 100, compute=100),
                         2: _breakdown("cold", 2, 100, compute=100),
                         4: _breakdown("cold", 4, 110, compute=110)},
            }
        )
        det = detect_scaling_loss(g)
        assert det.per_vertex["hot"].flagged
        assert not det.per_vertex["cold"].flagged

    def test_category_shares_sum_to_one(self):
        g = _graph(
            {
                "a": {1: _breakdown("a", 1, 100, compute=50, mem=30, sync=20),
                      2: _breakdown("a", 2, 100, compute=50, mem=30, sync=20),
                      4: _breakdown("a", 4, 100, compute=50, mem=30, sync=20)},
                "b": {1: _breakdown("b", 1, 100, compute=40, mem=40, sync=20),
                      2: _breakdown("b", 2, 100, compute=40, mem=40, sync=20),
                      4: _breakdown("b", 4, 100, compute=40, mem=40, sync=20)},
            }
        )
        det = detect_scaling_loss(g)
        for category, shares in det.category_shares.items():
            if det.category_totals[category] > 0:
                assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)


class TestWallByCount:
    def test_sums_engine_execute_per_n(self):
        spans = [
            {"name": "engine.execute", "attrs": {"n": 2}, "duration_s": 1.5},
            {"name": "engine.execute", "attrs": {"n": 2}, "duration_s": 0.5},
            {"name": "engine.execute", "attrs": {"n": 4}, "duration_s": 3.0},
            {"name": "service.job", "attrs": {"n": 4}, "duration_s": 9.0},
            {"name": "engine.execute", "attrs": {}, "duration_s": 9.0},
        ]
        assert wall_by_count(spans) == {2: 2.0, 4: 3.0}

    def test_empty(self):
        assert wall_by_count(None) == {}
        assert wall_by_count([]) == {}


class TestEndToEnd:
    def test_loss_conservation(self, blame_analysis, blame_campaign_data):
        """Per-vertex cycle losses tile the campaign's total scaling loss."""
        report = blame_campaign(blame_analysis, blame_campaign_data)
        total = sum(v["cycle_loss"] for v in report.vertices)
        scale = max(1.0, abs(report.total_loss))
        assert abs(total - report.total_loss) / scale < 1e-6

    def test_loss_shares_partition_unity(self, blame_analysis, blame_campaign_data):
        report = blame_campaign(blame_analysis, blame_campaign_data)
        shares = report.loss_shares()
        positive = [s for s in shares.values() if s > 0]
        if positive:
            assert sum(positive) == pytest.approx(1.0, abs=1e-6)

    def test_deterministic_json(self, blame_analysis, blame_campaign_data):
        a = blame_campaign(blame_analysis, blame_campaign_data)
        b = blame_campaign(blame_analysis, blame_campaign_data)
        dump = lambda r: json.dumps(r.to_dict(), indent=2, sort_keys=True)  # noqa: E731
        assert dump(a) == dump(b)

    def test_graph_structure(self, blame_analysis, blame_campaign_data):
        graph = build_scaling_graph(blame_analysis, blame_campaign_data)
        names = [v.name for v in graph.ordered()]
        assert names == sorted(
            default_groups(blame_campaign_data), key=names.index
        )  # every default group became a vertex, in program order
        chain = [(e.src, e.dst) for e in graph.edges if e.kind == "program_order"]
        assert chain == list(zip(names, names[1:]))
        for vertex in graph.ordered():
            assert vertex.lineage_refs  # every vertex can be walked to runs
            assert set(vertex.by_n) == set(graph.processor_counts)

    def test_findings_carry_grade_and_lineage(
        self, blame_analysis, blame_campaign_data
    ):
        report = blame_campaign(blame_analysis, blame_campaign_data)
        assert report.findings  # synthetic always has a material category
        for f in report.findings:
            assert f["grade"] in ("ok", "warn", "suspect")
            assert f["lineage_refs"]
            assert f["root_cause"]
        ranks = [f["rank"] for f in report.findings]
        assert ranks == list(range(1, len(ranks) + 1))

    def test_report_round_trip(self, blame_analysis, blame_campaign_data):
        report = blame_campaign(blame_analysis, blame_campaign_data)
        clone = BlameReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.to_dict() == report.to_dict()

    def test_self_diff_is_quiet(self, blame_analysis, blame_campaign_data):
        report = blame_campaign(blame_analysis, blame_campaign_data)
        diff = diff_reports(report, report)
        assert diff["movers"] == []
        assert all(d["delta"] == 0 for d in diff["category_deltas"].values())
        assert diff["notes"] == []
