"""Service-layer fixtures.

Two kinds of test run here:

* **engine-free tests** use ``stub_requests`` to monkeypatch the request
  compiler with an event-controlled stub, so queueing, priorities,
  backpressure, timeouts, retries, drain and recovery are all tested
  deterministically without touching the simulator;
* **end-to-end tests** share one module-scoped warm run cache (the
  smallest synthetic campaign the analysis accepts: s0 = 163840 on the
  default machine) so each request resolves from cache in milliseconds.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import TransientRunError
from repro.service import requests as req_mod

# The smallest synthetic campaign the default machine's analysis accepts
# (below this the triplet plan collapses and ScalTool raises
# InsufficientDataError).  One cold run costs ~3 s; everything after
# resolves from the shared cache.
WARM_S0 = 163840
WARM_COUNTS = (1, 2)
WARM_PAYLOAD = {"workload": "synthetic", "s0": WARM_S0, "counts": list(WARM_COUNTS)}


@pytest.fixture(scope="module")
def warm_root(tmp_path_factory):
    """A cache root whose run cache already holds the shared campaign."""
    root = tmp_path_factory.mktemp("service-cache")
    req_mod.compile_request("campaign", WARM_PAYLOAD).execute(cache_root=root)
    return root


class StubBehavior:
    """Controls what stub jobs do: block on events, fail, record order."""

    def __init__(self) -> None:
        self.executed: list[str] = []
        self.lock = threading.Lock()
        self.gates: dict[str, threading.Event] = {}
        self.started: dict[str, threading.Event] = {}
        self.fail_transient: dict[str, int] = {}  # name -> remaining failures
        self.fail_hard: set[str] = set()

    def gate(self, name: str) -> threading.Event:
        """Make job ``name`` block until the returned event is set."""
        self.started[name] = threading.Event()
        self.gates[name] = threading.Event()
        return self.gates[name]

    def release_all(self) -> None:
        for event in self.gates.values():
            event.set()

    def run(self, name: str) -> None:
        started = self.started.get(name)
        if started is not None:
            started.set()
        gate = self.gates.get(name)
        if gate is not None:
            gate.wait(timeout=30)
        with self.lock:
            if self.fail_transient.get(name, 0) > 0:
                self.fail_transient[name] -= 1
                raise TransientRunError(f"transient failure in {name}")
            if name in self.fail_hard:
                raise ValueError(f"hard failure in {name}")
            self.executed.append(name)


@pytest.fixture
def stub_requests(monkeypatch):
    """Route kind='stub' requests to an event-controlled in-test handler.

    The stub compiles to zero run specs (the planner sees an empty plan)
    and its ``execute`` defers to the returned :class:`StubBehavior`, so
    tests drive the queue/worker machinery without the engine.
    """
    behavior = StubBehavior()

    class StubRequest(req_mod.CompiledRequest):
        kind = "stub"

        def _canonicalize(self, payload):
            return dict(payload)

        def specs(self):
            return []

        def _execute(self, cache_root, executor, progress):
            name = self.canonical.get("name", "")
            behavior.run(name)
            return req_mod.RequestResult(output=f"stub:{name}\n", data={"name": name})

    real = req_mod.compile_request

    def fake_compile(kind, payload=None):
        if kind == "stub":
            return StubRequest(payload or {})
        return real(kind, payload)

    monkeypatch.setattr(req_mod, "compile_request", fake_compile)
    return behavior
