"""Set-associative cache model."""

import pytest

from repro.errors import SimulationError
from repro.machine.cache import EXCLUSIVE, MODIFIED, SHARED, SetAssociativeCache
from repro.machine.config import CacheConfig


def make_cache(size=1024, line=32, assoc=2, policy="lru") -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(size=size, line_size=line, associativity=assoc, replacement=policy))


class TestBasics:
    def test_starts_empty(self):
        c = make_cache()
        assert len(c) == 0
        assert c.occupancy == 0.0

    def test_insert_and_lookup(self):
        c = make_cache()
        c.insert(5, SHARED)
        assert c.contains(5)
        assert c.state_of(5) == SHARED

    def test_absent_state_zero(self):
        assert make_cache().state_of(99) == 0

    def test_set_index_low_bits(self):
        c = make_cache(size=1024, line=32, assoc=2)  # 16 sets
        assert c.set_index(0) == 0
        assert c.set_index(17) == 1
        assert c.set_index(16) == 0

    def test_double_insert_is_bug(self):
        c = make_cache()
        c.insert(1, SHARED)
        with pytest.raises(SimulationError):
            c.insert(1, SHARED)

    def test_occupancy(self):
        c = make_cache(size=128, line=32, assoc=2)  # 4 lines
        c.insert(0, SHARED)
        c.insert(1, SHARED)
        assert c.occupancy == pytest.approx(0.5)


class TestEviction:
    def test_no_eviction_when_room(self):
        c = make_cache()
        assert c.insert(0, SHARED) is None

    def test_evicts_within_set(self):
        c = make_cache(size=128, line=32, assoc=2)  # 2 sets x 2 ways
        c.insert(0, SHARED)   # set 0
        c.insert(2, SHARED)   # set 0
        ev = c.insert(4, SHARED)  # set 0 again -> evict
        assert ev is not None and ev.block == 0

    def test_eviction_reports_dirty(self):
        c = make_cache(size=128, line=32, assoc=1)  # 4 sets
        c.insert(0, MODIFIED)
        ev = c.insert(4, SHARED)  # same set as block 0
        assert ev.dirty and ev.state == MODIFIED

    def test_clean_eviction(self):
        c = make_cache(size=128, line=32, assoc=1)
        c.insert(0, EXCLUSIVE)
        ev = c.insert(4, SHARED)
        assert not ev.dirty

    def test_lru_order_respected(self):
        c = make_cache(size=128, line=32, assoc=2)
        c.insert(0, SHARED)
        c.insert(2, SHARED)
        c.touch(0)  # 0 becomes MRU
        ev = c.insert(4, SHARED)
        assert ev.block == 2

    def test_eviction_counter(self):
        c = make_cache(size=128, line=32, assoc=1)
        c.insert(0, SHARED)
        c.insert(4, SHARED)  # same set
        assert c.n_evictions == 1
        assert c.n_inserts == 2


class TestStateTransitions:
    def test_set_state(self):
        c = make_cache()
        c.insert(1, EXCLUSIVE)
        c.set_state(1, MODIFIED)
        assert c.state_of(1) == MODIFIED

    def test_set_state_absent_rejected(self):
        with pytest.raises(SimulationError):
            make_cache().set_state(1, MODIFIED)

    def test_set_state_invalid_value_rejected(self):
        c = make_cache()
        c.insert(1, SHARED)
        with pytest.raises(SimulationError):
            c.set_state(1, 17)

    def test_invalidate_returns_prior(self):
        c = make_cache()
        c.insert(1, MODIFIED)
        assert c.invalidate(1) == MODIFIED
        assert not c.contains(1)

    def test_invalidate_absent_returns_zero(self):
        assert make_cache().invalidate(7) == 0

    def test_downgrade_reports_dirty(self):
        c = make_cache()
        c.insert(1, MODIFIED)
        assert c.downgrade(1) is True
        assert c.state_of(1) == SHARED

    def test_downgrade_clean(self):
        c = make_cache()
        c.insert(1, EXCLUSIVE)
        assert c.downgrade(1) is False

    def test_downgrade_absent_rejected(self):
        with pytest.raises(SimulationError):
            make_cache().downgrade(3)


class TestFlushAndInvariants:
    def test_flush(self):
        c = make_cache()
        for b in range(8):
            c.insert(b, SHARED)
        c.flush()
        assert len(c) == 0
        c.check_invariants()

    def test_invariants_hold_after_traffic(self):
        c = make_cache(size=256, line=32, assoc=2)
        import random

        rnd = random.Random(0)
        for _ in range(500):
            b = rnd.randrange(64)
            if c.contains(b):
                if rnd.random() < 0.3:
                    c.invalidate(b)
                else:
                    c.touch(b)
            else:
                c.insert(b, rnd.choice([SHARED, EXCLUSIVE, MODIFIED]))
        c.check_invariants()

    def test_touch_miss_returns_false(self):
        assert make_cache().touch(3) is False

    def test_resident_blocks(self):
        c = make_cache()
        c.insert(3, SHARED)
        c.insert(9, MODIFIED)
        assert sorted(c.resident_blocks()) == [3, 9]

    def test_set_contents_in_policy_order(self):
        c = make_cache(size=128, line=32, assoc=2)
        c.insert(0, SHARED)
        c.insert(2, SHARED)
        c.touch(0)
        assert c.set_contents(0) == [2, 0]
