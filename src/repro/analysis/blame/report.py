"""The BlameReport: one deterministic, self-explaining artifact.

``blame_campaign`` is the single entry point every surface (CLI verb,
service endpoint, tests) goes through: it builds the scaling graph,
runs the detector, backtracks findings, and packs everything — ranked
findings, per-vertex loss rows, graph edges, campaign curves, the
diagnostics rollup — into a :class:`BlameReport` whose ``to_dict`` is
fully deterministic (sorted keys, stable ranking), so serial and
parallel executions of the same campaign serialize byte-identically.

``diff_reports`` compares two reports of the same workload (the
``scaltool blame --against`` mode) and names the categories and
segments whose stall levels moved, reading curve-level evidence to say
*why* (e.g. an L2-limited cost gap reads as a caching-space change).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.scaltool import ScalToolAnalysis
from ...obs import runtime as obs
from ...runner.campaign import CampaignData
from .backtrack import BlameFinding, backtrack
from .detect import CATEGORY_LABELS, MATERIAL_FRACTION, Detection, detect_scaling_loss
from .graph import ScalingGraph, build_scaling_graph

__all__ = ["BlameReport", "blame_campaign", "diff_reports"]


@dataclass
class BlameReport:
    """Ranked scaling-loss attributions plus every number behind them."""

    workload: str
    s0: int
    processor_counts: list[int]
    window: list[int]
    total_loss: float
    findings: list[dict]
    vertices: list[dict]  # VertexLoss dicts in graph order
    edges: list[dict]
    groups: dict[str, str]
    curves: dict[str, dict[str, float]]  # key -> {str(n): cycles}
    frac_syn: dict[str, float]
    frac_imb: dict[str, float]
    category_totals: dict[str, float]
    excluded: list[str] = field(default_factory=list)
    wall_seconds: dict[str, float] = field(default_factory=dict)
    diagnostics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "s0": self.s0,
            "processor_counts": list(self.processor_counts),
            "window": list(self.window),
            "total_loss": self.total_loss,
            "findings": [dict(f) for f in self.findings],
            "vertices": [dict(v) for v in self.vertices],
            "edges": [dict(e) for e in self.edges],
            "groups": dict(self.groups),
            "curves": {k: dict(v) for k, v in self.curves.items()},
            "frac_syn": dict(self.frac_syn),
            "frac_imb": dict(self.frac_imb),
            "category_totals": dict(self.category_totals),
            "excluded": list(self.excluded),
            "wall_seconds": dict(self.wall_seconds),
            "diagnostics": dict(self.diagnostics),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BlameReport":
        return cls(
            workload=d["workload"],
            s0=int(d["s0"]),
            processor_counts=[int(n) for n in d["processor_counts"]],
            window=[int(n) for n in d["window"]],
            total_loss=float(d["total_loss"]),
            findings=list(d.get("findings", [])),
            vertices=list(d.get("vertices", [])),
            edges=list(d.get("edges", [])),
            groups=dict(d.get("groups", {})),
            curves={k: dict(v) for k, v in d.get("curves", {}).items()},
            frac_syn=dict(d.get("frac_syn", {})),
            frac_imb=dict(d.get("frac_imb", {})),
            category_totals=dict(d.get("category_totals", {})),
            excluded=list(d.get("excluded", [])),
            wall_seconds=dict(d.get("wall_seconds", {})),
            diagnostics=dict(d.get("diagnostics", {})),
        )

    def loss_shares(self) -> dict[str, float]:
        """Vertex -> share of the positive cycle loss (the gauge values)."""
        return {v["vertex"]: float(v["cycle_loss_share"]) for v in self.vertices}

    def dominant(self, category: str) -> dict | None:
        """The dominant finding for a category, if that category is material."""
        for f in self.findings:
            if f["category"] == category and f["dominant"]:
                return f
        return None


def _pack(
    graph: ScalingGraph,
    detection: Detection,
    findings: list[BlameFinding],
) -> BlameReport:
    vertices = [
        detection.per_vertex[v.name].to_dict() for v in graph.ordered()
    ]
    wall_totals: dict[str, float] = {}
    for v in graph.ordered():
        for n, s in v.wall_seconds.items():
            key = str(n)
            wall_totals[key] = wall_totals.get(key, 0.0) + s
    return BlameReport(
        workload=graph.workload,
        s0=graph.s0,
        processor_counts=list(graph.processor_counts),
        window=[int(detection.window[0]), int(detection.window[1])],
        total_loss=detection.total_loss,
        findings=[f.to_dict() for f in findings],
        vertices=vertices,
        edges=[e.to_dict() for e in graph.edges],
        groups=dict(sorted(graph.groups.items())),
        curves={
            k: {str(n): float(v[n]) for n in sorted(v)} for k, v in graph.curves.items()
        },
        frac_syn={str(n): graph.frac_syn[n] for n in sorted(graph.frac_syn)},
        frac_imb={str(n): graph.frac_imb[n] for n in sorted(graph.frac_imb)},
        category_totals=dict(sorted(detection.category_totals.items())),
        excluded=list(detection.excluded),
        wall_seconds={k: wall_totals[k] for k in sorted(wall_totals)},
        diagnostics=detection.rollup().to_dict(),
    )


def blame_campaign(
    analysis: ScalToolAnalysis,
    campaign: CampaignData,
    groups: dict[str, str] | None = None,
    spans: list[dict] | None = None,
) -> BlameReport:
    """Localize the campaign's scaling loss: graph -> detect -> backtrack."""
    tracer, registry = obs.tracer(), obs.registry()
    with tracer.span("blame.report", workload=analysis.workload):
        with tracer.span("blame.build_graph"):
            graph = build_scaling_graph(analysis, campaign, groups=groups, spans=spans)
            registry.set_gauge("blame.vertices", float(len(graph.vertices)))
        with tracer.span("blame.detect", vertices=len(graph.vertices)):
            detection = detect_scaling_loss(graph)
        with tracer.span("blame.backtrack"):
            findings = backtrack(graph, detection)
        registry.inc("blame.reports")
        registry.set_gauge("blame.findings", float(len(findings)))
        return _pack(graph, detection, findings)


def diff_reports(ours: BlameReport, theirs: BlameReport) -> dict:
    """Explain how two campaigns' scaling losses differ (``--against``).

    Returns a deterministic dict with per-category level deltas at each
    report's top count, the segments that moved most, and curve-level
    readings — most prominently the L2-limited cost gap, which names
    insufficient caching space when one configuration caches worse.
    """
    n_ours, n_theirs = ours.window[1], theirs.window[1]
    deltas = {}
    for category in sorted(CATEGORY_LABELS):
        a = ours.category_totals.get(category, 0.0)
        b = theirs.category_totals.get(category, 0.0)
        deltas[category] = {"ours": a, "theirs": b, "delta": a - b}
    movers = []
    theirs_by_vertex = {v["vertex"]: v for v in theirs.vertices}
    for v in ours.vertices:
        other = theirs_by_vertex.get(v["vertex"])
        if other is None:
            continue
        for category in sorted(CATEGORY_LABELS):
            d = v["category_level"][category] - other["category_level"][category]
            if abs(d) >= 1.0:
                movers.append(
                    {
                        "vertex": v["vertex"],
                        "category": category,
                        "delta_cycles": float(d),
                    }
                )
    movers.sort(key=lambda m: (-abs(m["delta_cycles"]), m["vertex"], m["category"]))

    notes = []
    base_ours = ours.curves["base"].get(str(n_ours), 0.0)
    # Summed over the sweep, not peak: a cramped L2 shows up as L2-limited
    # cost *persisting* across n (aggregate caching space never catches up),
    # while a roomy one's cost vanishes once n copies of the L2 hold the data.
    l2_ours = sum(ours.curves["l2lim"].values())
    l2_theirs = sum(theirs.curves["l2lim"].values())
    l2_gap = l2_ours - l2_theirs
    if base_ours > 0 and abs(l2_gap) > MATERIAL_FRACTION * base_ours:
        worse, better = ("ours", "theirs") if l2_gap > 0 else ("theirs", "ours")
        notes.append(
            f"L2-limited cost (Eq. 4) differs by {abs(l2_gap):,.0f} cycles summed "
            f"over the sweep: the {worse} campaign suffers more conflict misses "
            f"from insufficient caching space than the {better} one"
        )
    sync_gap = deltas["sync"]["delta"]
    base_for_sync = base_ours or 1.0
    if abs(sync_gap) > MATERIAL_FRACTION * base_for_sync:
        notes.append(
            f"synchronization stalls differ by {sync_gap:+,.0f} cycles at the top count"
        )
    return {
        "workloads": [ours.workload, theirs.workload],
        "top_counts": [n_ours, n_theirs],
        "category_deltas": deltas,
        "movers": movers[:10],
        "notes": notes,
    }
