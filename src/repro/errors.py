"""Exception hierarchy for the Scal-Tool reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The hierarchy mirrors the package layout: machine-model
errors, workload errors, measurement/estimation errors, and I/O errors for
the counter-file formats.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """Invalid machine, cache, or workload configuration.

    Raised eagerly at construction time (e.g. a cache whose size is not a
    multiple of ``line_size * associativity``, or a processor count that the
    interconnect topology cannot host).
    """


class SimulationError(ReproError):
    """The machine simulator reached an inconsistent state.

    This indicates a bug in the substrate (e.g. a directory entry claiming an
    owner that does not hold the line) and is checked by internal assertions
    that are kept on in production because the simulator is the ground-truth
    oracle for all validation experiments.
    """


class TraceError(ReproError):
    """A workload produced an ill-formed access trace."""


class WorkloadError(ReproError):
    """A workload cannot be instantiated with the requested parameters.

    For example, a data-set size too small to slice across the requested
    processor count.
    """


class EstimationError(ReproError):
    """A model parameter could not be estimated from the supplied runs.

    Typical causes: fewer triplets than unknowns in the (t2, tm) regression,
    no uniprocessor run small enough to estimate cpi0, or a singular design
    matrix.  ``inputs`` names the offending inputs (e.g. the data-set
    sizes that fed the fit, or the degenerate matrix entries) so the
    failure is diagnosable without re-running the campaign; it is
    rendered into the message.
    """

    def __init__(self, message: str, inputs: dict | None = None):
        self.inputs = dict(inputs or {})
        if self.inputs:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.inputs.items()))
            message = f"{message} [{detail}]"
        super().__init__(message)


class InsufficientDataError(EstimationError):
    """The campaign did not provide the runs an analysis step needs."""


class CounterFormatError(ReproError):
    """A counter report file could not be parsed."""


class TransientRunError(ReproError):
    """A run failed for a reason that retrying may fix.

    Raised (or wrapped) around per-run failures that are not deterministic
    properties of the run spec — a worker process dying, an I/O hiccup
    while spilling a record.  The execution engine retries these a bounded
    number of times before giving up; deterministic errors (bad config,
    bad workload) propagate immediately.
    """


class ValidationError(ReproError):
    """A validation comparison was requested on mismatched runs."""


class ServiceError(ReproError):
    """The analysis service rejected or could not complete a request."""


class QueueFullError(ServiceError):
    """Admission control rejected a request: the job queue is at capacity.

    ``retry_after`` is the advisory back-off in seconds (the HTTP layer
    maps this to a 429 with a ``Retry-After`` header, or a 503 when the
    service is draining and will not accept work again).
    """

    def __init__(self, message: str, retry_after: float = 1.0, draining: bool = False):
        super().__init__(message)
        self.retry_after = retry_after
        self.draining = draining


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the job store."""


class StoreUnavailableError(ServiceError):
    """The job store's backing directory cannot be created or written.

    Raised at service startup (and on submission while degraded) so the
    HTTP layer can answer with a structured 503 JSON body instead of a
    bare connection failure.  Read-only endpoints keep working.
    """
