"""Property-based tests: the MESI protocol under arbitrary interleavings."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.machine.cache import EXCLUSIVE, MODIFIED, SHARED
from repro.machine.coherence import CoherenceController
from repro.machine.counters import CounterSet, GroundTruth
from repro.machine.hierarchy import CacheHierarchy
from repro.machine.interconnect import Interconnect
from repro.machine.memory import NumaMemory

from ..conftest import tiny_machine_config

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # cpu
        st.integers(min_value=0, max_value=47),  # block
        st.booleans(),                           # write
    ),
    max_size=300,
)


def build(n=4, directory_kind="bitvector"):
    cfg = tiny_machine_config(n_processors=n)
    hierarchies = [CacheHierarchy(i, cfg.l1, cfg.l2, seed=1) for i in range(n)]
    counters = [CounterSet() for _ in range(n)]
    gt = [GroundTruth() for _ in range(n)]
    ctrl = CoherenceController(
        cfg,
        hierarchies,
        NumaMemory(cfg.memory, n, cfg.line_size),
        Interconnect(cfg.interconnect, n),
        counters,
        gt,
        directory_kind,
    )
    return ctrl, counters, gt


@settings(max_examples=50, deadline=None)
@given(stream=accesses)
def test_protocol_invariants(stream):
    ctrl, _, _ = build()
    for cpu, block, write in stream:
        ctrl.access(cpu, block, write)
    ctrl.check_invariants()


@settings(max_examples=30, deadline=None)
@given(stream=accesses)
def test_coarse_directory_protocol_invariants(stream):
    ctrl, _, _ = build(directory_kind="coarse")
    for cpu, block, write in stream:
        ctrl.access(cpu, block, write)
    ctrl.check_invariants()


@settings(max_examples=50, deadline=None)
@given(stream=accesses)
def test_single_writer_multiple_readers(stream):
    """SWMR: never two M/E holders; an M/E holder never coexists with S."""
    ctrl, _, _ = build()
    for cpu, block, write in stream:
        ctrl.access(cpu, block, write)
        states = [h.l2.state_of(block) for h in ctrl.hierarchies]
        exclusive = [s for s in states if s in (EXCLUSIVE, MODIFIED)]
        holders = [s for s in states if s]
        assert len(exclusive) <= 1
        if exclusive:
            assert len(holders) == 1


@settings(max_examples=50, deadline=None)
@given(stream=accesses)
def test_writer_always_ends_modified(stream):
    ctrl, _, _ = build()
    for cpu, block, write in stream:
        ctrl.access(cpu, block, write)
        if write:
            assert ctrl.hierarchies[cpu].l2.state_of(block) == MODIFIED


@settings(max_examples=50, deadline=None)
@given(stream=accesses)
def test_counter_accounting(stream):
    """Loads+stores equals the stream; misses classified exhaustively."""
    ctrl, counters, gt = build()
    for cpu, block, write in stream:
        ctrl.access(cpu, block, write)
    totals = CounterSet.total(counters)
    assert totals.mem_refs == len(stream)
    assert totals.graduated_stores == sum(1 for _, _, w in stream if w)
    truth = GroundTruth.total(gt)
    assert truth.total_misses == totals.l2_misses
    assert totals.l1_data_misses >= totals.l2_misses


@settings(max_examples=50, deadline=None)
@given(stream=accesses)
def test_stalls_never_negative(stream):
    ctrl, _, _ = build()
    for cpu, block, write in stream:
        assert ctrl.access(cpu, block, write) >= 0.0
