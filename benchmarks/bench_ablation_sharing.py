"""Ablation X2: event-31 contamination vs sharing intensity (Section 6).

The paper's frac_syn method reads the store-exclusive-to-shared counter as
a pure synchronization count; data sharing contaminates it.  This ablation
sweeps the synthetic workload's sharing knob and shows (a) contamination
growing with sharing, (b) the raw MP estimate degrading, and (c) the
Section 6 extension recovering accuracy.
"""

import pytest

from repro.core import ScalTool
from repro.core.sharing import analyze_sharing
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.viz.tables import format_table
from repro.workloads import SyntheticWorkload

SHARING_LEVELS = (0.0, 0.05, 0.15)
N = 8


def run_level(frac):
    wl = SyntheticWorkload(iters=3, barriers_per_iter=3, sharing_frac=frac,
                           imbalance_amp=0.15, refs_per_block=6)
    cfg = CampaignConfig(
        s0=wl.default_size(), processor_counts=(1, 2, 4, 8),
        sync_kernel_barriers=100, spin_kernel_episodes=10,
    )
    campaign = cached_campaign(wl, cfg)
    analysis = ScalTool(campaign).analyze()
    sh = analyze_sharing(analysis, campaign)
    gt = campaign.base_runs()[N].ground_truth
    base = analysis.curves.base[N]
    return {
        "sharing_frac": frac,
        "contamination": sh.contamination(N),
        "raw Sync error": abs(analysis.curves.sync_cost[N] - gt.sync_cycles) / base,
        "corrected Sync error": abs(sh.corrected_curves.sync_cost[N] - gt.sync_cycles) / base,
        "raw MP error": abs(analysis.curves.mp_cost(N) - gt.multiprocessor_cycles) / base,
        "corrected MP error": abs(
            sh.corrected_curves.sync_cost[N] + sh.corrected_curves.imb_cost[N]
            - gt.multiprocessor_cycles
        ) / base,
    }


@pytest.fixture(scope="module")
def sweep():
    return [run_level(f) for f in SHARING_LEVELS]


def test_ablation_sharing(benchmark, emit, sweep):
    rows = benchmark(lambda: sweep)
    emit(
        "ablation_sharing",
        format_table(rows, title="X2: event-31 contamination vs sharing intensity (n=8)"),
    )

    # contamination grows with the sharing knob
    assert rows[0]["contamination"] < rows[-1]["contamination"]
    # the extension decontaminates the *synchronization* estimate (the
    # component Eq. 10 gets wrong); whether total MP improves depends on
    # whether the contamination happened to cancel Eq. 9 residuals.
    for row in rows[1:]:
        assert row["corrected Sync error"] <= row["raw Sync error"] + 0.01
    # without sharing the correction is a no-op
    assert rows[0]["corrected MP error"] == pytest.approx(rows[0]["raw MP error"], abs=0.01)
