"""NUMA memory: block allocation and page-granular home assignment.

Workloads allocate named *regions* (their arrays) through the
:class:`Allocator`; every cache block then belongs to exactly one page, and
every page has a *home node* whose memory services directory lookups and
L2-miss fills.  Three placement policies are supported:

* ``first_touch`` — the home is the first processor that references the
  page (IRIX's default, assumed by the paper's applications);
* ``round_robin`` — pages interleave across nodes;
* ``block`` — each allocated region is split into contiguous per-node
  chunks (what a tuned explicit placement would do).

Homes are resolved lazily through :meth:`NumaMemory.home_of`, which the
coherence controller calls on every L2 miss.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import ConfigError, SimulationError
from ..units import log2_int
from .config import MemoryConfig

__all__ = ["Region", "Allocator", "NumaMemory"]


@dataclass(frozen=True)
class Region:
    """A contiguous allocation of blocks (one application array)."""

    name: str
    base_block: int
    n_blocks: int

    @property
    def end_block(self) -> int:
        """One past the last block."""
        return self.base_block + self.n_blocks

    def block_range(self) -> range:
        return range(self.base_block, self.end_block)

    def slice_for(self, part: int, n_parts: int) -> range:
        """Blocks of the ``part``-th of ``n_parts`` equal contiguous chunks.

        Used both by ``block`` placement and by workloads partitioning their
        arrays across processors; the last part absorbs the remainder.
        """
        if not (0 <= part < n_parts):
            raise ConfigError(f"part {part} out of range for {n_parts} parts")
        per = self.n_blocks // n_parts
        lo = self.base_block + part * per
        hi = self.base_block + (part + 1) * per if part < n_parts - 1 else self.end_block
        return range(lo, hi)


class Allocator:
    """Hands out page-aligned block ranges from a flat address space.

    With ``color=True`` (default) each region's base gets an extra
    name-hashed page offset ("page coloring"): on real machines, distinct
    arrays land on unrelated physical pages, so their cache-set footprints
    are decorrelated.  Without coloring, power-of-two-strided region bases
    alias the same L2 sets and thrash pathologically — an artifact of the
    synthetic flat address space, not of the modelled applications.
    """

    #: Colors are drawn modulo a prime number of pages so that regions with
    #: related sizes still land on unrelated cache sets.
    COLOR_PAGES = 61

    def __init__(self, blocks_per_page: int, color: bool = True) -> None:
        if blocks_per_page < 1:
            raise ConfigError("blocks_per_page must be >= 1")
        self.blocks_per_page = blocks_per_page
        self.color = color
        self._next_block = 0
        self._regions: dict[str, Region] = {}

    def alloc(self, name: str, n_blocks: int) -> Region:
        """Allocate ``n_blocks`` page-aligned blocks under ``name``."""
        if n_blocks < 1:
            raise ConfigError(f"region {name!r}: n_blocks must be >= 1")
        if name in self._regions:
            raise ConfigError(f"region {name!r} already allocated")
        bpp = self.blocks_per_page
        base = self._next_block
        if self.color:
            base += (zlib.crc32(name.encode()) % self.COLOR_PAGES) * bpp
        region = Region(name, base, n_blocks)
        # Advance to the next page boundary so regions never share a page
        # (sharing a page would entangle their homes).
        self._next_block = ((base + n_blocks + bpp - 1) // bpp) * bpp
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise ConfigError(f"unknown region {name!r}") from None

    def regions(self) -> list[Region]:
        return list(self._regions.values())

    @property
    def total_blocks(self) -> int:
        """Blocks allocated so far (including alignment padding)."""
        return self._next_block


class NumaMemory:
    """Page-to-home mapping for one machine instance."""

    def __init__(self, cfg: MemoryConfig, n_nodes: int, line_size: int) -> None:
        if n_nodes < 1:
            raise ConfigError("n_nodes must be >= 1")
        if cfg.page_size < line_size:
            raise ConfigError("page_size must be at least one cache line")
        self.cfg = cfg
        self.n_nodes = n_nodes
        self.line_size = line_size
        self.blocks_per_page = cfg.page_size // line_size
        self._page_shift = log2_int(self.blocks_per_page)
        self._page_home: dict[int, int] = {}
        self.allocator = Allocator(self.blocks_per_page)

    def page_of(self, block: int) -> int:
        return block >> self._page_shift

    def home_of(self, block: int, toucher: int) -> int:
        """Home node of ``block``; assigns it on first touch if needed.

        ``toucher`` is the processor making the access (used only by the
        first-touch policy, but always required so call sites cannot forget
        it).
        """
        page = block >> self._page_shift
        home = self._page_home.get(page)
        if home is None:
            home = self._place(page, toucher)
            self._page_home[page] = home
        return home

    def _place(self, page: int, toucher: int) -> int:
        policy = self.cfg.placement
        if policy == "first_touch":
            return toucher
        if policy == "round_robin":
            return page % self.n_nodes
        if policy == "block":
            # Contiguous split of the region owning this page; pages outside
            # any region (padding) fall back to round-robin.
            for region in self.allocator.regions():
                first_page = region.base_block >> self._page_shift
                last_page = (region.end_block - 1) >> self._page_shift
                if first_page <= page <= last_page:
                    span = last_page - first_page + 1
                    return min(self.n_nodes - 1, (page - first_page) * self.n_nodes // span)
            return page % self.n_nodes
        raise SimulationError(f"unknown placement {policy!r}")

    def assigned_pages(self) -> dict[int, int]:
        """Pages whose home has been decided so far (page -> node)."""
        return dict(self._page_home)

    def home_histogram(self) -> list[int]:
        """Number of assigned pages homed at each node."""
        counts = [0] * self.n_nodes
        for home in self._page_home.values():
            counts[home] += 1
        return counts

    def reset_homes(self) -> None:
        """Forget first-touch decisions (between independent runs)."""
        self._page_home.clear()
