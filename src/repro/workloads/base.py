"""Workload abstraction.

A workload turns ``(machine, data-set size)`` into a stream of
:class:`~repro.trace.events.Phase` objects.  The contract mirrors how the
paper's applications behave on the Origin 2000:

* the data set is *sliced* across processors (block scheduling), so running
  the same workload at size ``s0/n`` on one processor exercises the same
  per-processor working set as an n-processor run at ``s0`` — the
  fractional-data-set surrogate at the heart of Section 2.4.1;
* every workload starts with an *initialisation phase* in which each
  processor touches its own partition (parallel first touch, the IRIX
  placement idiom), then runs ``iters`` compute iterations;
* ``cpi0`` is the workload's intrinsic compute CPI (what the paper
  estimates in Section 2.2) and ``m_frac`` its memory-instruction fraction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..errors import WorkloadError
from ..trace.events import Phase
from ..units import parse_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.system import DsmMachine

__all__ = ["Workload"]


class Workload(ABC):
    """Base class for every application and kernel."""

    #: Registry name; subclasses must override.
    name: str = "abstract"
    #: Intrinsic compute CPI (cycles per instruction with all hits).
    cpi0: float = 1.2
    #: Fraction of instructions that reference memory.
    m_frac: float = 0.35
    #: Paper data-set size at full machine scale (bytes); scaled by the
    #: campaign to match the machine's scaling factor.
    paper_footprint_bytes: int = 0
    #: Model of parallelism, as in Table 4 ("PCF", "MP").
    parallel_model: str = "MP directives with DOACROSS"
    #: Source attribution, as in Table 4.
    source: str = "synthetic"
    #: One-line description, as in Table 4's "What It Does".
    what_it_does: str = ""

    def __init__(self, iters: int = 5, seed: int = 1234) -> None:
        if iters < 1:
            raise WorkloadError("iters must be >= 1")
        self.iters = iters
        self.seed = seed

    # -- sizing -----------------------------------------------------------------

    def blocks_for(self, machine: "DsmMachine", size_bytes: int | str) -> int:
        """Data-set size in cache blocks on ``machine``."""
        size = parse_size(size_bytes)
        nb = size // machine.line_size
        if nb < machine.n_processors:
            raise WorkloadError(
                f"{self.name}: {size} bytes is fewer than one block per processor"
            )
        return nb

    def default_size(self, scale: int = 64) -> int:
        """The paper's base data-set size s0 shrunk by the machine scale."""
        if self.paper_footprint_bytes <= 0:
            raise WorkloadError(f"{self.name} has no paper footprint defined")
        return max(1, self.paper_footprint_bytes // scale)

    def min_size(self, machine: "DsmMachine") -> int:
        """Smallest meaningful data-set size on ``machine``."""
        return machine.line_size * machine.n_processors * 4

    # -- parameters ---------------------------------------------------------------

    def describe_params(self) -> dict:
        """Parameters recorded in run files (for reproducibility)."""
        return {"iters": self.iters, "seed": self.seed}

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    # -- the phase stream -----------------------------------------------------------

    @abstractmethod
    def build(self, machine: "DsmMachine", size_bytes: int) -> Iterator[Phase]:
        """Yield the phases of one run at ``size_bytes`` on ``machine``."""

    # -- helpers shared by the applications --------------------------------------------

    @staticmethod
    def empty_segments(n: int) -> list:
        """A phase slot list where nobody works (serial-section scaffolding)."""
        return [None] * n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe_params()}>"
