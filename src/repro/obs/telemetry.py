"""Always-on serving telemetry: bounded metrics + Prometheus exposition.

Profiling sessions (:mod:`repro.obs.runtime`) are bounded windows that
store exact histograms; a serving process needs the opposite trade —
*always on*, bounded memory, scrape-friendly.  :class:`Telemetry` wraps
a :class:`~repro.obs.metrics.MetricsRegistry` built on
:class:`~repro.obs.metrics.BucketHistogram` (fixed log-spaced buckets,
estimated quantiles) and renders the Prometheus text exposition format
(version 0.0.4) for ``GET /metrics``:

* counters  -> ``scaltool_<name>_total``   (``# TYPE ... counter``)
* gauges    -> ``scaltool_<name>``         (``# TYPE ... gauge``)
* histograms-> cumulative ``_bucket{le=...}`` series + ``_sum``/``_count``

Metric names keep the package's dotted scheme internally and are
sanitised to the Prometheus grammar on export (dots and dashes become
underscores, everything prefixed ``scaltool_``).
"""

from __future__ import annotations

import math
import re
import time
from typing import Callable

from .metrics import BucketHistogram, MetricsRegistry

__all__ = ["Telemetry", "prometheus_name", "render_prometheus", "merge_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prometheus_name(name: str, prefix: str = "scaltool") -> str:
    """Sanitise a dotted metric name into the Prometheus grammar."""
    clean = _NAME_RE.sub("_", name.strip())
    clean = re.sub(r"_+", "_", clean).strip("_")
    return f"{prefix}_{clean}" if prefix else clean


def _fmt(value: float) -> str:
    if value != value:  # pragma: no cover - NaN guard
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, prefix: str = "scaltool") -> str:
    """The registry as Prometheus text exposition (deterministic order)."""
    lines: list[str] = []
    counters = registry._counters
    gauges = registry._gauges
    histograms = registry._histograms
    for name in sorted(counters):
        metric = prometheus_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counters[name])}")
    for name in sorted(gauges):
        metric = prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauges[name])}")
    for name in sorted(histograms):
        hist = histograms[name]
        metric = prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        if isinstance(hist, BucketHistogram):
            for le, cumulative in hist.cumulative():
                lines.append(f'{metric}_bucket{{le="{_fmt(le)}"}} {cumulative}')
        else:  # exact histogram: a single +Inf bucket is still valid exposition
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {_fmt(hist.sum)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"


#: Gauges where "whole system" means the max over processes, not the sum.
_MAX_GAUGES = ("scaltool_uptime_seconds",)


def merge_prometheus(texts: list[str]) -> str:
    """Merge several processes' text expositions into one truthful view.

    The multi-worker dispatcher scrapes every worker's ``/metrics`` and
    serves the merge: counters and histogram series (same name + same
    labels) add, gauges add too — queue depths and per-grade health
    counts are extensive quantities — except :data:`_MAX_GAUGES`
    (uptime), which take the max.  ``# TYPE`` / ``# HELP`` lines are
    kept once, from the first exposition that declares them.  Sample
    order follows first appearance, so merged output is deterministic
    given deterministic inputs.
    """
    types: dict[str, str] = {}
    meta_lines: dict[str, list[str]] = {}
    values: dict[str, float] = {}
    order: list[str] = []

    def _parse(value: str) -> float:
        if value == "+Inf":
            return math.inf
        if value == "-Inf":
            return -math.inf
        return float(value)

    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 4 and parts[1] in ("TYPE", "HELP"):
                    metric = parts[2]
                    if parts[1] == "TYPE":
                        types.setdefault(metric, parts[3])
                    meta_lines.setdefault(metric, []).append(line)
                continue
            sample, _, raw_value = line.rpartition(" ")
            if not sample:
                continue
            try:
                value = _parse(raw_value)
            except ValueError:
                continue
            bare = sample.partition("{")[0]
            family = _family(bare, types)
            if sample not in values:
                values[sample] = value
                order.append(sample)
            elif types.get(family) == "gauge" and family in _MAX_GAUGES:
                values[sample] = max(values[sample], value)
            else:
                values[sample] += value

    lines: list[str] = []
    declared: set[str] = set()
    for sample in order:
        family = _family(sample.partition("{")[0], types)
        if family not in declared:
            declared.add(family)
            if family in types:
                lines.append(f"# TYPE {family} {types[family]}")
        lines.append(f"{sample} {_fmt(values[sample])}")
    return "\n".join(lines) + "\n" if lines else "\n"


def _family(bare_name: str, types: dict[str, str]) -> str:
    """The declared metric family a sample line belongs to.

    Histogram samples render as ``<name>_bucket`` / ``_sum`` / ``_count``
    while the ``# TYPE`` line declares ``<name>``.
    """
    for suffix in ("_bucket", "_sum", "_count"):
        if bare_name.endswith(suffix):
            stem = bare_name[: -len(suffix)]
            if types.get(stem) == "histogram":
                return stem
    return bare_name


class Telemetry:
    """One serving process's always-on metrics (bounded, scrapeable)."""

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self.started = clock()
        self.registry = MetricsRegistry(histogram_factory=BucketHistogram)
        # Labelled gauges live beside the registry: the name sanitiser would
        # mangle `{key="value"}` suffixes, so they render separately.
        self._labeled_gauges: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}

    # -- writes (mirror the registry surface) -------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        self.registry.inc(name, value)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge; keyword arguments become Prometheus labels
        (e.g. ``set_gauge("diagnostics.health", 1, grade="suspect")`` renders
        ``scaltool_diagnostics_health{grade="suspect"} 1``)."""
        if labels:
            key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
            self._labeled_gauges[key] = float(value)
        else:
            self.registry.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    # -- reads --------------------------------------------------------------------

    def uptime_seconds(self) -> float:
        return max(0.0, self._clock() - self.started)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def prometheus_text(self) -> str:
        self.registry.set_gauge("uptime_seconds", self.uptime_seconds())
        text = render_prometheus(self.registry)
        if self._labeled_gauges:
            lines: list[str] = []
            typed: set[str] = set()
            for (name, labels), value in sorted(self._labeled_gauges.items()):
                metric = prometheus_name(name)
                if metric not in typed:
                    typed.add(metric)
                    lines.append(f"# TYPE {metric} gauge")
                label_text = ",".join(f'{k}="{v}"' for k, v in labels)
                lines.append(f"{metric}{{{label_text}}} {_fmt(value)}")
            text += "\n".join(lines) + "\n"
        return text
