"""One entry point for the three model-suite actions.

Both surfaces — ``scaltool models fit|compare|predict`` and the service's
``models`` request kind — call :func:`run_action`, so the rendered output
and the structured data are byte-identical by construction no matter
which door the request came through.
"""

from __future__ import annotations

from ..errors import ServiceError
from .compare import compare_models, fit_all
from .dataset import SpeedupDataset
from .predict import predict_report

__all__ = ["ACTIONS", "run_action"]

ACTIONS = ("fit", "compare", "predict")


def run_action(
    action: str,
    dataset: SpeedupDataset,
    analysis=None,
    to: list[int] | None = None,
) -> tuple[str, dict]:
    """Execute one model-suite action; returns ``(output text, data dict)``."""
    from ..viz import render_model_fit, render_models_compare, render_models_predict

    if action == "fit":
        fits = {
            name: f.to_dict() for name, f in sorted(fit_all(dataset, analysis).items())
        }
        output = "\n\n".join(render_model_fit(f) for f in fits.values()) + "\n"
        return output, {"label": dataset.label, "fits": fits}
    if action == "compare":
        data = compare_models(dataset, analysis)
        return render_models_compare(data) + "\n", data
    if action == "predict":
        data = predict_report(dataset, list(to or (32, 64, 128)), analysis)
        return render_models_predict(data) + "\n", data
    raise ServiceError(
        f"unknown models action {action!r}; expected one of {', '.join(ACTIONS)}"
    )
