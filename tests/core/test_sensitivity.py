"""Sensitivity analysis of the model's estimated inputs."""

import pytest

from repro.core import ScalTool
from repro.core.sensitivity import PERTURBABLE, analyze_sensitivity
from repro.errors import InsufficientDataError


@pytest.fixture(scope="module")
def analysis(mini_campaign):
    return ScalTool(mini_campaign).analyze()


class TestSensitivity:
    def test_covers_all_parameters(self, analysis, mini_campaign):
        report = analyze_sensitivity(analysis, mini_campaign)
        assert [r.parameter for r in report.results] == list(PERTURBABLE)

    def test_baseline_unchanged(self, analysis, mini_campaign):
        before = analysis.curves.mp_cost(4)
        analyze_sensitivity(analysis, mini_campaign)
        assert analysis.curves.mp_cost(4) == before  # deep-copied, not mutated

    def test_elasticities_finite(self, analysis, mini_campaign):
        report = analyze_sensitivity(analysis, mini_campaign)
        for r in report.results:
            assert abs(r.elasticity) < 100

    def test_tsyn_moves_sync_estimate(self, analysis, mini_campaign):
        report = analyze_sensitivity(analysis, mini_campaign, parameters=("tsyn",))
        r = report.results[0]
        assert r.mp_cost_perturbed != pytest.approx(r.mp_cost_base, rel=1e-6)

    def test_compulsory_moves_l2lim(self, analysis, mini_campaign):
        report = analyze_sensitivity(
            analysis, mini_campaign, parameters=("compulsory",), probe_n=1, delta=0.5
        )
        r = report.results[0]
        # more compulsory misses -> less of the gap attributed to conflicts
        assert r.l2lim_perturbed <= r.l2lim_base + 1e-6

    def test_direction_symmetry(self, analysis, mini_campaign):
        up = analyze_sensitivity(analysis, mini_campaign, delta=0.1, parameters=("tm",))
        down = analyze_sensitivity(analysis, mini_campaign, delta=-0.1, parameters=("tm",))
        assert up.results[0].mp_change * down.results[0].mp_change <= 1e-12

    def test_probe_count_selectable(self, analysis, mini_campaign):
        report = analyze_sensitivity(analysis, mini_campaign, probe_n=2)
        assert report.probe_n == 2

    def test_unknown_parameter_rejected(self, analysis, mini_campaign):
        with pytest.raises(InsufficientDataError):
            analyze_sensitivity(analysis, mini_campaign, parameters=("voltage",))

    def test_bad_delta_rejected(self, analysis, mini_campaign):
        with pytest.raises(InsufficientDataError):
            analyze_sensitivity(analysis, mini_campaign, delta=0.0)

    def test_bad_probe_rejected(self, analysis, mini_campaign):
        with pytest.raises(InsufficientDataError):
            analyze_sensitivity(analysis, mini_campaign, probe_n=999)

    def test_summary_renders(self, analysis, mini_campaign):
        report = analyze_sensitivity(analysis, mini_campaign)
        text = report.summary()
        assert "sensitivity" in text and "most sensitive input" in text

    def test_most_sensitive_is_perturbable(self, analysis, mini_campaign):
        report = analyze_sensitivity(analysis, mini_campaign)
        assert report.most_sensitive() in PERTURBABLE


class TestExecutorRouting:
    def test_parallel_matches_serial(self, analysis, mini_campaign):
        from repro.runner.engine import ParallelExecutor

        serial = analyze_sensitivity(analysis, mini_campaign, delta=0.1)
        parallel = analyze_sensitivity(
            analysis, mini_campaign, delta=0.1, executor=ParallelExecutor(jobs=2)
        )
        assert serial.rows() == parallel.rows()
