"""Service load benchmark: concurrent clients against ``scaltool serve``.

Measures what the serving layer is for: N concurrent HTTP clients each
submitting campaign-backed requests over the *same* underlying campaign,
so the planner + batcher should execute each run spec exactly once while
every client still gets its own byte-exact result.

Two phases per configuration:

* **cold** — empty run cache: the first wave of jobs shares one batched
  campaign execution (spec-level dedup across jobs);
* **warm** — a second wave of *distinct* requests (different what-if
  factors) over the same campaign: every spec resolves from the run
  cache, so jobs are pure assembly.

Recorded per phase: wall time, throughput (jobs/s), mean/p95 job
latency, and the service's own ``dedup_hit_ratio`` / batch counters from
``/v1/stats``.  The bench runs the whole thing twice — engine executor
serial (``jobs=1``) and parallel (``jobs=N``) — since the executor width
only matters for the one cold batch.

``run_benchmark`` is importable (the tier-1 suite smoke-runs it with a
tiny configuration); the pytest bench below records the real numbers
into ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.dispatcher import Dispatcher
from repro.service.http import ServiceServer

#: The smallest synthetic campaign the analysis accepts on the default machine.
BASE_PAYLOAD = {"workload": "synthetic", "s0": 163840, "counts": [1, 2]}


def _request_mix(clients: int, requests_per_client: int, phase: str) -> list[list[tuple]]:
    """Per-client request lists: distinct factors, one shared campaign."""
    mixes = []
    # The warm offset must clear the whole cold factor range, or warm
    # requests at high client counts collide with cold job ids and the
    # "warm" phase quietly measures job-level dedup instead of assembly.
    offset = 0.5 + 0.01 * clients * requests_per_client
    for c in range(clients):
        mix = []
        for r in range(requests_per_client):
            # Unique (phase, client, request) factor -> unique job id, so
            # job-level dedup never hides the spec-level dedup being measured.
            factor = 1.0 + 0.01 * (c * requests_per_client + r) + (offset if phase == "warm" else 0.0)
            mix.append(("whatif", {**BASE_PAYLOAD, "tm": round(factor, 4)}))
        mixes.append(mix)
    return mixes


def _drive_phase(url: str, clients: int, requests_per_client: int, phase: str) -> dict:
    latencies: list[float] = []

    def one_client(mix: list[tuple]) -> list[float]:
        client = ServiceClient(url, timeout=60)
        out = []
        for kind, payload in mix:
            t0 = time.perf_counter()
            submitted = client.submit(kind, payload, retries=50)
            view = client.wait(submitted["id"], timeout=600)
            if view["state"] != "done":
                raise RuntimeError(f"job failed: {view.get('error')}")
            out.append(time.perf_counter() - t0)
        return out

    mixes = _request_mix(clients, requests_per_client, phase)
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for result in pool.map(one_client, mixes):
            latencies.extend(result)
    wall = time.perf_counter() - t0
    latencies.sort()
    n = len(latencies)
    return {
        "jobs": n,
        "wall_seconds": wall,
        "throughput_jobs_per_s": n / wall if wall else 0.0,
        "latency_mean_s": sum(latencies) / n,
        "latency_p95_s": latencies[min(n - 1, int(0.95 * n))],
    }


def _run_config(
    clients: int,
    requests_per_client: int,
    jobs: int,
    cache_dir: Path,
    export_dir: Path | None = None,
) -> dict:
    server = ServiceServer(
        ServiceConfig(
            cache_dir=cache_dir,
            jobs=jobs,
            workers=min(8, clients),
            max_queue=4 * clients * requests_per_client,
            batch_window=0.05,
        ),
        port=0,
    ).start()
    try:
        cold = _drive_phase(server.url, clients, requests_per_client, "cold")
        warm = _drive_phase(server.url, clients, requests_per_client, "warm")
        client = ServiceClient(server.url)
        stats = client.stats()
        if export_dir is not None:
            # CI artifact: the live Prometheus exposition plus one job's
            # merged distributed trace, proving the whole pipeline worked.
            export_dir.mkdir(parents=True, exist_ok=True)
            (export_dir / "metrics.prom").write_text(client.metrics())
            traced = [j for j in client.jobs() if j.get("trace_id")]
            if traced:
                tree = client.trace(traced[-1]["id"])
                (export_dir / "job_trace.json").write_text(
                    json.dumps(tree, indent=2, sort_keys=True) + "\n"
                )
    finally:
        server.shutdown(drain_timeout=60)
    counters = stats["counters"]
    return {
        "engine_jobs": jobs,
        "cold": cold,
        "warm": warm,
        "dedup_hit_ratio": stats["dedup_hit_ratio"],
        "plan_specs": counters.get("plan.specs", 0),
        "batch_specs": counters.get("batch.specs", 0),
        "batches": counters.get("batches", 0),
        "jobs_done": stats["jobs"]["done"],
        "jobs_failed": stats["jobs"]["failed"],
    }


def _run_fleet_config(
    clients: int,
    requests_per_client: int,
    worker_count: int,
    engine_jobs: int,
    cache_dir: Path,
    export_dir: Path | None = None,
) -> dict:
    """One dispatcher + ``worker_count`` worker processes, both phases."""
    dispatcher = Dispatcher(
        ServiceConfig(
            cache_dir=cache_dir,
            jobs=engine_jobs,
            workers=min(8, clients),
            max_queue=4 * clients * requests_per_client,
            batch_window=0.05,
        ),
        worker_count=worker_count,
        port=0,
    ).start()
    try:
        cold = _drive_phase(dispatcher.url, clients, requests_per_client, "cold")
        warm = _drive_phase(dispatcher.url, clients, requests_per_client, "warm")
        client = ServiceClient(dispatcher.url)
        stats = client.stats()
        if export_dir is not None:
            export_dir.mkdir(parents=True, exist_ok=True)
            (export_dir / f"metrics_w{worker_count}.prom").write_text(client.metrics())
    finally:
        dispatcher.shutdown()
    counters = stats["counters"]
    return {
        "worker_processes": worker_count,
        "engine_jobs": engine_jobs,
        "cold": cold,
        "warm": warm,
        "dedup_hit_ratio": stats["dedup_hit_ratio"],
        "plan_specs": counters.get("plan.specs", 0),
        "batch_specs": counters.get("batch.specs", 0),
        "batches": counters.get("batches", 0),
        "jobs_done": stats["jobs"]["done"],
        "jobs_failed": stats["jobs"]["failed"],
    }


def run_fleet_benchmark(
    clients: int = 100,
    requests_per_client: int = 1,
    worker_counts: tuple = (1, 2, 4),
    engine_jobs: int = 1,
    cache_dir: str | Path | None = None,
    export_dir: str | Path | None = None,
) -> dict:
    """The multi-process sweep: same load, ``--workers`` 1 / 2 / 4.

    Every worker count gets a fresh cache root (a true cold phase); the
    merged ``/v1/stats`` proves the cross-process claim table still
    executed each spec exactly once system-wide.
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="scaltool-fleet-") as tmp:
        base = Path(cache_dir) if cache_dir is not None else Path(tmp)
        workers = {
            str(n): _run_fleet_config(
                clients,
                requests_per_client,
                n,
                engine_jobs,
                base / f"fleet-w{n}",
                export_dir=Path(export_dir) if export_dir is not None else None,
            )
            for n in worker_counts
        }
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "cpu_count": os.cpu_count(),
        "workers": workers,
    }


def run_benchmark(
    clients: int = 8,
    requests_per_client: int = 3,
    engine_jobs: int = 4,
    cache_dir: str | Path | None = None,
    results_dir: str | Path | None = None,
    export_dir: str | Path | None = None,
    fleet_clients: int = 0,
    fleet_worker_counts: tuple = (),
) -> dict:
    """Drive the service with concurrent clients; serial vs parallel engine.

    Each configuration gets a fresh cache root, so both see a true cold
    phase.  Returns the measurement dict and, when ``results_dir`` is
    given, writes ``service_load.json`` + ``service_load.txt`` there.
    ``export_dir`` additionally captures the parallel run's ``/metrics``
    exposition and one job's distributed trace (the CI smoke artifact).
    """
    import tempfile

    with tempfile.TemporaryDirectory(prefix="scaltool-bench-") as tmp:
        base = Path(cache_dir) if cache_dir is not None else Path(tmp)
        serial = _run_config(clients, requests_per_client, 1, base / "serial")
        parallel = _run_config(
            clients,
            requests_per_client,
            engine_jobs,
            base / "parallel",
            export_dir=Path(export_dir) if export_dir is not None else None,
        )

    result = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "cpu_count": os.cpu_count(),
        "payload": BASE_PAYLOAD,
        "serial": serial,
        "parallel": parallel,
    }
    if fleet_worker_counts:
        result["fleet"] = run_fleet_benchmark(
            clients=fleet_clients or clients,
            requests_per_client=1,
            worker_counts=tuple(fleet_worker_counts),
            engine_jobs=engine_jobs,
            export_dir=export_dir,
        )
    if results_dir is not None:
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "service_load.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        (results_dir / "service_load.txt").write_text(format_result(result) + "\n")
    return result


def format_result(result: dict) -> str:
    lines = [
        f"service load (whatif over one shared campaign, "
        f"{result['clients']} clients x {result['requests_per_client']} requests)",
        f"{'host cpu count':.<52s} {result['cpu_count']:>10d}",
    ]
    for name in ("serial", "parallel"):
        cfg = result[name]
        lines.append("")
        lines.append(f"[{name} engine, --jobs {cfg['engine_jobs']}]")
        for phase in ("cold", "warm"):
            p = cfg[phase]
            lines.append(
                f"{f'{phase}: wall / throughput':.<52s} "
                f"{p['wall_seconds']:>7.2f} s / {p['throughput_jobs_per_s']:>6.1f} jobs/s"
            )
            lines.append(
                f"{f'{phase}: latency mean / p95':.<52s} "
                f"{p['latency_mean_s'] * 1e3:>7.0f} ms / {p['latency_p95_s'] * 1e3:>6.0f} ms"
            )
        lines.append(f"{'dedup hit ratio (1 - executed/planned specs)':.<52s} {cfg['dedup_hit_ratio']:>10.4f}")
        lines.append(
            f"{'specs planned / executed / batches':.<52s} "
            f"{cfg['plan_specs']:>5.0f} / {cfg['batch_specs']:>4.0f} / {cfg['batches']:>3.0f}"
        )
        lines.append(f"{'jobs done / failed':.<52s} {cfg['jobs_done']:>6d} / {cfg['jobs_failed']:>3d}")
    fleet = result.get("fleet")
    if fleet:
        lines.append("")
        lines.append(
            f"fleet sweep ({fleet['clients']} clients x "
            f"{fleet['requests_per_client']} requests, dispatcher + N workers)"
        )
        for n, cfg in sorted(fleet["workers"].items(), key=lambda kv: int(kv[0])):
            lines.append(f"[--workers {n}]")
            for phase in ("cold", "warm"):
                p = cfg[phase]
                lines.append(
                    f"{f'{phase}: wall / throughput':.<52s} "
                    f"{p['wall_seconds']:>7.2f} s / {p['throughput_jobs_per_s']:>6.1f} jobs/s"
                )
                lines.append(
                    f"{f'{phase}: latency mean / p95':.<52s} "
                    f"{p['latency_mean_s'] * 1e3:>7.0f} ms / {p['latency_p95_s'] * 1e3:>6.0f} ms"
                )
            lines.append(
                f"{'dedup hit ratio / jobs done / failed':.<52s} "
                f"{cfg['dedup_hit_ratio']:>7.4f} / {cfg['jobs_done']:>4d} / {cfg['jobs_failed']:>3d}"
            )
    return "\n".join(lines)


def test_service_load(emit):
    result = run_benchmark(
        clients=8,
        requests_per_client=3,
        engine_jobs=min(4, os.cpu_count() or 1),
        results_dir=Path(__file__).parent / "results",
        fleet_clients=100,
        fleet_worker_counts=(1, 2, 4),
    )
    emit("service_load", format_result(result))
    for cfg in (result["serial"], result["parallel"]):
        # Every job completed; no client saw a failure.
        assert cfg["jobs_failed"] == 0
        assert cfg["jobs_done"] == 2 * 8 * 3
        # The whole point: 48 campaign-backed jobs executed each spec once.
        assert cfg["batch_specs"] <= cfg["plan_specs"] / 8
        assert cfg["dedup_hit_ratio"] > 0.9
        # Warm phase never executes a spec, so it must be much faster.
        assert cfg["warm"]["wall_seconds"] <= cfg["cold"]["wall_seconds"]
    for cfg in result["fleet"]["workers"].values():
        assert cfg["jobs_failed"] == 0
        assert cfg["jobs_done"] == 2 * result["fleet"]["clients"]
        # Cross-process spec dedup: the whole fleet still executed each
        # spec once (the SQLite claim table, not per-process luck).
        assert cfg["batch_specs"] <= cfg["plan_specs"] / 8
        assert cfg["dedup_hit_ratio"] > 0.9


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="service load bench: N concurrent clients, optional fleet sweep"
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests-per-client", type=int, default=3)
    parser.add_argument("--engine-jobs", type=int, default=min(4, os.cpu_count() or 1))
    parser.add_argument(
        "--workers",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=(),
        metavar="N[,N...]",
        help="also sweep a dispatcher with these worker-process counts (e.g. 1,2,4)",
    )
    parser.add_argument("--fleet-clients", type=int, default=100)
    parser.add_argument("--results-dir", default=None)
    parser.add_argument("--export-dir", default=None)
    args = parser.parse_args()
    out = run_benchmark(
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        engine_jobs=args.engine_jobs,
        results_dir=args.results_dir,
        export_dir=args.export_dir,
        fleet_clients=args.fleet_clients,
        fleet_worker_counts=args.workers,
    )
    print(format_result(out))
