"""Parameter estimation on fabricated counter data with known truth."""

import pytest

from repro.core.estimators import (
    L2_OVERFLOW_FACTOR,
    adjust_cpi0,
    cpi0_run,
    estimate_cpi0_biased,
    estimate_parameters,
    estimate_tm_by_n,
    fit_t2_tm,
    overflow_sizes,
)
from repro.errors import InsufficientDataError
from repro.machine.counters import CounterSet
from repro.runner.records import RunRecord

L2_BYTES = 4096
L1_BYTES = 256

TRUE = dict(cpi0=1.2, t2=10.0, tm=70.0)


def fabricate(size, n=1, l1_miss_rate=0.1, l2_hit_of_miss=0.3, m=0.4, inst=100_000,
              tm=None, cpi0=None):
    """A record whose counters satisfy Eq. 1 exactly for the TRUE params."""
    tm = TRUE["tm"] if tm is None else tm
    cpi0 = TRUE["cpi0"] if cpi0 is None else cpi0
    refs = inst * m
    l1_misses = refs * l1_miss_rate
    l2_misses = l1_misses * (1 - l2_hit_of_miss)
    h2 = (l1_misses - l2_misses) / inst
    hm = l2_misses / inst
    cycles = inst * (cpi0 + h2 * TRUE["t2"] + hm * tm)
    counters = CounterSet(
        cycles=cycles,
        graduated_instructions=inst,
        graduated_loads=refs * 0.7,
        graduated_stores=refs * 0.3,
        l1_data_misses=l1_misses,
        l2_misses=l2_misses,
    )
    return RunRecord(
        workload="synthetic-math",
        params={},
        size_bytes=size,
        n_processors=n,
        role="app_frac" if n == 1 else "app_base",
        machine={"l1_bytes": L1_BYTES, "l2_bytes": L2_BYTES},
        counters=counters,
    )


def uniproc_suite():
    """Fractional runs: overflow sizes with varying L2 hit rates + a small run."""
    runs = {
        32 * L2_BYTES: fabricate(32 * L2_BYTES, l2_hit_of_miss=0.05),
        8 * L2_BYTES: fabricate(8 * L2_BYTES, l2_hit_of_miss=0.15),
        2 * L2_BYTES: fabricate(2 * L2_BYTES, l2_hit_of_miss=0.45),
        L2_BYTES // 2: fabricate(L2_BYTES // 2, l2_hit_of_miss=0.98),
        # the cpi0 run: nearly everything hits, a whiff of compulsory misses
        L1_BYTES: fabricate(L1_BYTES, l1_miss_rate=0.01, l2_hit_of_miss=0.5),
    }
    return runs


class TestCpi0Selection:
    def test_picks_lowest_cpi_small_run(self):
        runs = uniproc_suite()
        assert cpi0_run(runs, L2_BYTES).size_bytes == L1_BYTES

    def test_biased_estimate_above_truth(self):
        # Lubeck's estimate carries the small run's compulsory-miss cycles
        # (here 0.02 of t2 + 0.14 of tm = +0.16 over the true 1.2).
        biased = estimate_cpi0_biased(uniproc_suite(), L2_BYTES)
        assert biased > TRUE["cpi0"]
        assert biased == pytest.approx(1.36, abs=0.01)

    def test_empty_runs_rejected(self):
        with pytest.raises(InsufficientDataError):
            cpi0_run({}, L2_BYTES)


class TestFit:
    def test_recovers_t2_tm(self):
        runs = uniproc_suite()
        t2, tm, diag = fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)
        assert t2 == pytest.approx(TRUE["t2"], rel=0.02)
        assert tm == pytest.approx(TRUE["tm"], rel=0.02)
        assert diag["rms"] < 0.01

    def test_overflow_filter(self):
        sizes = overflow_sizes(uniproc_suite(), L2_BYTES)
        assert all(s >= L2_OVERFLOW_FACTOR * L2_BYTES for s in sizes)
        assert len(sizes) == 3

    def test_filter_excludes_fitting_sizes(self):
        runs = uniproc_suite()
        _, _, diag = fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)
        assert L2_BYTES // 2 not in diag["sizes"]

    def test_unfiltered_fit_available_for_ablation(self):
        runs = uniproc_suite()
        t2, tm, diag = fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES, overflow_only=False)
        assert len(diag["sizes"]) == 5

    def test_too_few_triplets_rejected(self):
        runs = {32 * L2_BYTES: fabricate(32 * L2_BYTES)}
        with pytest.raises(InsufficientDataError):
            fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)

    def test_nonnegative_under_noise(self):
        # near-collinear triplets plus an inflated cpi0 push the
        # unconstrained fit negative; the nnls fallback keeps latencies >= 0
        runs = {
            8 * L2_BYTES: fabricate(8 * L2_BYTES, l2_hit_of_miss=0.10),
            16 * L2_BYTES: fabricate(16 * L2_BYTES, l2_hit_of_miss=0.11),
            32 * L2_BYTES: fabricate(32 * L2_BYTES, l2_hit_of_miss=0.12),
        }
        t2, tm, diag = fit_t2_tm(runs, TRUE["cpi0"] + 0.8, L2_BYTES)
        assert t2 >= 0 and tm >= 0

    def test_perfectly_collinear_degrades_gracefully(self):
        # identical hit rates at every size: t2 is unidentifiable; the fit
        # must fall back to a non-negative solution and flag the rank
        runs = {
            s: fabricate(s, l2_hit_of_miss=0.10)
            for s in (8 * L2_BYTES, 16 * L2_BYTES, 32 * L2_BYTES)
        }
        t2, tm, diag = fit_t2_tm(runs, TRUE["cpi0"], L2_BYTES)
        assert diag["rank_deficient"] and diag["constrained"]
        assert t2 >= 0 and tm >= 0
        # the identified combination still predicts the triplets
        assert diag["rms"] < 0.02


class TestAdjustment:
    def test_eq2_removes_compulsory_bias(self):
        runs = uniproc_suite()
        small = cpi0_run(runs, L2_BYTES)
        biased = small.counters.cpi
        unbiased = adjust_cpi0(biased, small, TRUE["t2"], TRUE["tm"])
        assert abs(unbiased - TRUE["cpi0"]) < abs(biased - TRUE["cpi0"])
        assert unbiased == pytest.approx(TRUE["cpi0"], abs=1e-6)


class TestTmByN:
    def base_runs(self):
        return {
            1: fabricate(64 * 1024, n=1, tm=70.0),
            4: fabricate(64 * 1024, n=4, tm=90.0),
            16: fabricate(64 * 1024, n=16, tm=130.0),
        }

    def test_recovers_tm_growth(self):
        tm = estimate_tm_by_n(self.base_runs(), TRUE["cpi0"], TRUE["t2"], tm1=70.0)
        assert tm[1] == pytest.approx(70.0, rel=1e-6)
        assert tm[4] == pytest.approx(90.0, rel=1e-6)
        assert tm[16] == pytest.approx(130.0, rel=1e-6)

    def test_unidentifiable_falls_back(self):
        runs = {8: fabricate(64 * 1024, n=8, tm=70.0, cpi0=0.2)}  # cpi below cpi0 est
        warnings: list[str] = []
        tm = estimate_tm_by_n(runs, TRUE["cpi0"], TRUE["t2"], tm1=70.0, warnings=warnings)
        assert tm[8] == 70.0
        assert warnings

    def test_growth_profile_floor(self):
        runs = {8: fabricate(64 * 1024, n=8, tm=70.0, cpi0=0.2)}
        tm = estimate_tm_by_n(
            runs, TRUE["cpi0"], TRUE["t2"], tm1=70.0, tm_growth={1: 100.0, 8: 250.0}
        )
        assert tm[8] == pytest.approx(175.0)  # 70 * 250/100


class TestFullPipeline:
    def test_end_to_end_recovery(self):
        uniproc = uniproc_suite()
        base = {
            1: uniproc[32 * L2_BYTES],
            4: fabricate(32 * L2_BYTES, n=4, tm=95.0, l2_hit_of_miss=0.2),
        }
        est = estimate_parameters(uniproc, base, L1_BYTES, L2_BYTES)
        assert est.cpi0 == pytest.approx(TRUE["cpi0"], rel=0.02)
        # t2/tm are fitted against the *biased* first-pass cpi0 (the paper's
        # procedure), so they absorb part of its offset; what must hold is
        # positivity and that the identified combination predicts the
        # triplet CPIs accurately (rms below 2%).
        assert est.t2 > 0 and est.tm1 > 0
        assert est.fit_residual_rms < 0.02
        assert est.tm_by_n[4] > est.tm_by_n[1]
        assert est.n_triplets == 3

    def test_summary_renders(self):
        uniproc = uniproc_suite()
        base = {1: uniproc[32 * L2_BYTES]}
        est = estimate_parameters(uniproc, base, L1_BYTES, L2_BYTES)
        text = est.summary()
        assert "cpi0" in text and "t2" in text
