"""Trace event containers: segments and phases.

A :class:`Segment` is one processor's work inside one parallel phase: a
block-granular address stream plus the total instruction count it embodies
(memory references / ``m_frac``).  A :class:`Phase` is the per-processor
segments of one parallel region; phases are separated by barriers unless
marked otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TraceError

__all__ = ["Segment", "Phase", "make_segment"]


@dataclass
class Segment:
    """One processor's access stream within a phase.

    Attributes
    ----------
    addrs:
        Block ids, int64.
    writes:
        Boolean array parallel to ``addrs``.
    n_instructions:
        Total instructions this segment represents (>= ``len(addrs)``);
        the excess are non-memory instructions charged at cpi0.
    """

    addrs: np.ndarray
    writes: np.ndarray
    n_instructions: int

    def __post_init__(self) -> None:
        self.addrs = np.ascontiguousarray(self.addrs, dtype=np.int64)
        self.writes = np.ascontiguousarray(self.writes, dtype=bool)
        if self.addrs.ndim != 1 or self.writes.ndim != 1:
            raise TraceError("segment arrays must be one-dimensional")
        if len(self.addrs) != len(self.writes):
            raise TraceError(
                f"addrs ({len(self.addrs)}) and writes ({len(self.writes)}) lengths differ"
            )
        if self.n_instructions < len(self.addrs):
            raise TraceError(
                f"n_instructions ({self.n_instructions}) < memory references ({len(self.addrs)})"
            )
        if len(self.addrs) and self.addrs.min() < 0:
            raise TraceError("negative block id in trace")

    @property
    def n_refs(self) -> int:
        return len(self.addrs)

    @property
    def m_frac(self) -> float:
        """Memory-instruction fraction this segment embodies."""
        return self.n_refs / self.n_instructions if self.n_instructions else 0.0

    def footprint_blocks(self) -> int:
        """Distinct blocks referenced."""
        if not len(self.addrs):
            return 0
        return int(np.unique(self.addrs).size)


@dataclass
class Phase:
    """One parallel region: per-processor segments, then (optionally) a barrier.

    ``segments[cpu] is None`` means the processor does nothing in this phase
    and goes straight to the barrier (how serial sections appear to the
    machine — everyone else spins, which the model books as load imbalance,
    matching the paper's discussion of Hydro2d's large serial sections).
    """

    name: str
    segments: list[Segment | None]
    barrier: bool = True
    cpi0_override: float | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.segments:
            raise TraceError(f"phase {self.name!r} has no processor slots")
        if all(s is None for s in self.segments) and not self.barrier:
            raise TraceError(f"phase {self.name!r} does nothing")

    @property
    def n_processors(self) -> int:
        return len(self.segments)

    @property
    def total_refs(self) -> int:
        return sum(s.n_refs for s in self.segments if s is not None)

    @property
    def total_instructions(self) -> int:
        return sum(s.n_instructions for s in self.segments if s is not None)


def make_segment(
    addrs: np.ndarray,
    writes: np.ndarray,
    m_frac: float = 0.35,
    extra_instructions: int = 0,
) -> Segment:
    """Build a segment, deriving the instruction count from ``m_frac``.

    ``m_frac`` is the fraction of instructions that are memory references
    (the paper's m(s, n)); scientific FP codes sit around 0.3–0.4.
    """
    if not (0.0 < m_frac <= 1.0):
        raise TraceError(f"m_frac must be in (0, 1], got {m_frac}")
    n_refs = len(addrs)
    n_instr = int(round(n_refs / m_frac)) + extra_instructions
    if n_instr < n_refs:
        n_instr = n_refs
    return Segment(addrs=addrs, writes=writes, n_instructions=n_instr)
