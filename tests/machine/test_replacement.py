"""Replacement policies in isolation."""

import pytest

from repro.errors import ConfigError
from repro.machine.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)


class TestLru:
    def test_hit_moves_to_back(self):
        p = LruPolicy()
        order = []
        for b in (10, 20, 30):
            p.on_insert(0, order, b)
        p.on_hit(0, order, 0)  # touch 10
        assert order == [20, 30, 10]

    def test_victim_is_front(self):
        p = LruPolicy()
        order = [1, 2, 3]
        assert p.victim_index(0, order) == 0

    def test_sequence(self):
        p = LruPolicy()
        order = []
        p.on_insert(0, order, 1)
        p.on_insert(0, order, 2)
        p.on_hit(0, order, 0)
        assert p.victim_index(0, order) == 0 and order[0] == 2


class TestFifo:
    def test_hit_does_not_promote(self):
        p = FifoPolicy()
        order = [1, 2, 3]
        p.on_hit(0, order, 0)
        assert order == [1, 2, 3]

    def test_victim_is_oldest(self):
        p = FifoPolicy()
        order = []
        for b in (5, 6, 7):
            p.on_insert(0, order, b)
        assert order[p.victim_index(0, order)] == 5


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomPolicy(seed=3)
        b = RandomPolicy(seed=3)
        order = [1, 2, 3, 4]
        picks_a = [a.victim_index(0, order) for _ in range(20)]
        picks_b = [b.victim_index(0, order) for _ in range(20)]
        assert picks_a == picks_b

    def test_in_range(self):
        p = RandomPolicy(seed=1)
        order = [1, 2, 3]
        for _ in range(50):
            assert 0 <= p.victim_index(0, order) < 3

    def test_reset_restarts_stream(self):
        p = RandomPolicy(seed=9)
        order = [1, 2, 3, 4]
        first = [p.victim_index(0, order) for _ in range(10)]
        p.reset()
        again = [p.victim_index(0, order) for _ in range(10)]
        assert first == again


class TestTreePlru:
    def test_requires_pow2_assoc(self):
        with pytest.raises(ConfigError):
            TreePlruPolicy(3)

    def test_victim_valid_index(self):
        p = TreePlruPolicy(4)
        order = []
        for b in (1, 2, 3, 4):
            p.on_insert(0, order, b)
        assert 0 <= p.victim_index(0, order) < 4

    def test_recent_hit_not_immediate_victim(self):
        p = TreePlruPolicy(4)
        order = []
        for b in (1, 2, 3, 4):
            p.on_insert(0, order, b)
        p.on_hit(0, order, 2)
        assert p.victim_index(0, order) != 2

    def test_per_set_state_independent(self):
        p = TreePlruPolicy(2)
        o0, o1 = [], []
        p.on_insert(0, o0, 1)
        p.on_insert(0, o0, 2)
        p.on_insert(1, o1, 3)
        p.on_insert(1, o1, 4)
        p.on_hit(0, o0, 0)
        # set 1 unaffected by set 0's hit
        v1_before = p.victim_index(1, o1)
        p.on_hit(0, o0, 1)
        assert p.victim_index(1, o1) == v1_before


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "fifo", "random", "plru"])
    def test_make(self, name):
        make_policy(name, associativity=4, seed=0)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_policy("belady", 4)
