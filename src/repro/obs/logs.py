"""Structured logging under the single ``repro`` namespace.

Library modules get their logger via :func:`get_logger` and attach
structured context with :func:`kv`::

    log = get_logger("runner.cache")
    log.warning("cache manifest unreadable %s", kv(path=str(p), reason="corrupt"))

By default the library emits nothing below WARNING and installs no
handler (stdlib ``logging`` routes WARNING+ to stderr via its
last-resort handler, so cache-corruption warnings surface even in
unconfigured programs).  The CLI — or an embedding application — calls
:func:`configure_logging` to attach one stderr handler with a compact
``timestamp level name message`` format; ``verbose=True`` lowers the
namespace to DEBUG, which is what makes per-run campaign progress
visible.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["NAMESPACE", "get_logger", "configure_logging", "kv"]

NAMESPACE = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s %(message)s"
_DATEFMT = "%H:%M:%S"


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the ``repro`` namespace (``repro.<name>``)."""
    return logging.getLogger(f"{NAMESPACE}.{name}" if name else NAMESPACE)


def kv(**fields) -> str:
    """Render structured fields as ``key=value`` pairs, key-sorted."""
    return " ".join(f"{k}={fields[k]}" for k in sorted(fields))


class _ReproHandler(logging.StreamHandler):
    """Marker subclass so configure_logging stays idempotent."""


def configure_logging(verbose: bool = False, stream=None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` namespace.

    Safe to call repeatedly (the handler is installed once and its level
    just updated); returns the namespace root logger.
    """
    root = logging.getLogger(NAMESPACE)
    handler = next((h for h in root.handlers if isinstance(h, _ReproHandler)), None)
    if handler is None:
        handler = _ReproHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    root.setLevel(logging.DEBUG if verbose else logging.INFO)
    root.propagate = False
    return root
