"""Shared fixtures: tiny machines and a cached mini-campaign.

Unit tests use deliberately small caches and traces so the whole suite
stays fast; the integration tests that need realistic scales live in
``tests/integration`` and reuse one session-scoped campaign.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.config import (
    CacheConfig,
    InterconnectConfig,
    MachineConfig,
    MemoryConfig,
    TimingConfig,
)
from repro.machine.system import DsmMachine
from repro.runner.campaign import CampaignConfig, ScalToolCampaign
from repro.workloads.synthetic import SyntheticWorkload


def tiny_machine_config(n_processors: int = 4, **overrides) -> MachineConfig:
    """A small, fast machine: 256 B L1, 4 KB L2, 32 B lines."""
    defaults = dict(
        n_processors=n_processors,
        l1=CacheConfig(size=256, line_size=32, associativity=2, name="L1D"),
        l2=CacheConfig(size=4096, line_size=32, associativity=2, name="L2"),
        timing=TimingConfig(),
        interconnect=InterconnectConfig(topology="hypercube", bristle=2),
        memory=MemoryConfig(page_size=128, placement="first_touch"),
        seed=7,
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


@pytest.fixture
def tiny_cfg() -> MachineConfig:
    return tiny_machine_config()


@pytest.fixture
def machine(tiny_cfg) -> DsmMachine:
    return DsmMachine(tiny_cfg)


@pytest.fixture
def machine1() -> DsmMachine:
    return DsmMachine(tiny_machine_config(n_processors=1))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def small_synthetic(**kw) -> SyntheticWorkload:
    """A synthetic workload sized for the tiny machine."""
    params = dict(iters=2, barriers_per_iter=2, refs_per_block=3, seed=11)
    params.update(kw)
    return SyntheticWorkload(**params)


@pytest.fixture(scope="session")
def mini_campaign():
    """One shared campaign on the tiny machine family (synthetic workload)."""

    def factory(n: int) -> MachineConfig:
        return tiny_machine_config(n_processors=n)

    wl = small_synthetic(iters=3, imbalance_amp=0.2)
    s0 = 32 * 1024  # 8x the tiny L2
    config = CampaignConfig(s0=s0, processor_counts=(1, 2, 4))
    return ScalToolCampaign(wl, config, machine_factory=factory).run()
