"""A minimal stdlib client for the analysis service HTTP API.

Transport: one keep-alive :class:`http.client.HTTPConnection` per
calling thread (the server speaks HTTP/1.1 with persistent
connections), rebuilt transparently when the server drops it — under a
load test this removes a TCP handshake per request, which at 100+
concurrent clients is the difference between measuring the service and
measuring the socket stack.  All requests are safe to retry once on a
stale connection: reads are idempotent and submits are deduplicated by
content-addressed fingerprint.

Mirrors the server's backpressure semantics: a 429/503 raises
:class:`~repro.errors.QueueFullError` carrying the server's
``Retry-After`` advice, and :meth:`ServiceClient.submit` can optionally
retry-with-backoff on the caller's behalf.  :meth:`ServiceClient.wait`
uses the result route's ``?wait=S`` long-poll — the server parks the
request until the job settles — instead of busy-polling.  Used by
``scaltool submit`` / ``status`` / ``result`` and the service load
benchmark.

Trace propagation: by default (``SCALTOOL_TRACE`` unset or truthy) every
submit generates a fresh W3C-style trace context and sends it as
``traceparent`` / ``tracestate`` headers, so the server can stitch the
whole job — client intent, HTTP hop, queue wait, batching, worker runs —
into one span tree queryable via ``scaltool obs trace <job-id>``.
``ServiceClient(trace=False)`` (or ``SCALTOOL_TRACE=0``) sends no
headers at all.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
import urllib.parse

from ..errors import (
    JobNotFoundError,
    QueueFullError,
    ServiceError,
    StoreUnavailableError,
)
from ..obs.trace import (
    TRACEPARENT_HEADER,
    TRACESTATE_HEADER,
    TraceContext,
    enabled_from_env,
    format_tracestate,
)

__all__ = ["ServiceClient", "DEFAULT_URL", "default_service_url"]

DEFAULT_URL = "http://127.0.0.1:8032"
_ENV_VAR = "SCALTOOL_SERVICE_URL"


def default_service_url() -> str:
    """$SCALTOOL_SERVICE_URL, or the local default."""
    return os.environ.get(_ENV_VAR, DEFAULT_URL)


class ServiceClient:
    """Talk to a running ``scaltool serve`` instance."""

    def __init__(
        self,
        base_url: str | None = None,
        timeout: float = 30.0,
        trace: bool | None = None,
    ) -> None:
        self.base_url = (base_url or default_service_url()).rstrip("/")
        self.timeout = timeout
        self.trace_enabled = enabled_from_env() if trace is None else bool(trace)
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme not in ("http", ""):
            raise ServiceError(f"unsupported scheme in {self.base_url!r}")
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._local = threading.local()

    # -- transport --------------------------------------------------------------

    def _connection(self, timeout: float) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self._host, self._port, timeout=timeout)
            self._local.conn = conn
        else:
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
            self._local.conn = None

    def _raw(
        self,
        method: str,
        path: str,
        data: bytes | None = None,
        headers: dict | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict, bytes]:
        """One round trip; retries once on a stale keep-alive connection."""
        timeout = self.timeout if timeout is None else timeout
        last: Exception | None = None
        for attempt in (0, 1):
            conn = self._connection(timeout)
            try:
                conn.request(method, path, body=data, headers=headers or {})
                resp = conn.getresponse()
                body = resp.read()
                return resp.status, {k: v for k, v in resp.getheaders()}, body
            except (http.client.HTTPException, OSError) as exc:
                last = exc
                self._drop_connection()
                if attempt:
                    break
        raise ServiceError(f"cannot reach service at {self.base_url}: {last}") from last

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict]:
        data = json.dumps(body).encode() if body is not None else None
        all_headers = {"Content-Type": "application/json", **(headers or {})}
        if data is not None:
            all_headers["Content-Length"] = str(len(data))
        status, resp_headers, raw = self._raw(
            method, path, data=data, headers=all_headers, timeout=timeout
        )
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            payload = {}
        if status < 400:
            return status, payload
        message = payload.get("error", f"HTTP {status}")
        if status == 503 and payload.get("status") == "degraded":
            raise StoreUnavailableError(message)
        if status in (429, 503):
            raise QueueFullError(
                message,
                retry_after=float(
                    payload.get("retry_after", resp_headers.get("Retry-After", 1))
                ),
                draining=status == 503,
            )
        if status == 404:
            raise JobNotFoundError(message)
        raise ServiceError(message)

    # -- API --------------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` view — returned even when the server answers
        503 for a degraded store, since the body carries the diagnosis."""
        status, _, raw = self._raw("GET", "/healthz")
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError:
            raise ServiceError(f"health check failed: HTTP {status}") from None

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")[1]

    def jobs(
        self,
        limit: int | None = None,
        offset: int = 0,
        state: str | None = None,
        fingerprint: str | None = None,
        since: float | None = None,
    ) -> list[dict]:
        """Job summaries, optionally filtered/paginated server-side."""
        return self.jobs_page(
            limit=limit, offset=offset, state=state, fingerprint=fingerprint, since=since
        )["jobs"]

    def jobs_page(
        self,
        limit: int | None = None,
        offset: int = 0,
        state: str | None = None,
        fingerprint: str | None = None,
        since: float | None = None,
    ) -> dict:
        """The full ``GET /v1/jobs`` page: ``{"jobs","total","limit","offset"}``."""
        params = []
        if limit is not None:
            params.append(f"limit={int(limit)}")
        if offset:
            params.append(f"offset={int(offset)}")
        if state is not None:
            params.append(f"state={urllib.parse.quote(state)}")
        if fingerprint is not None:
            params.append(f"fingerprint={urllib.parse.quote(fingerprint)}")
        if since is not None:
            params.append(f"since={float(since)}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/v1/jobs{query}")[1]

    def submit(
        self,
        kind: str,
        payload: dict | None = None,
        priority: int | None = None,
        retries: int = 0,
    ) -> dict:
        """Submit a request; returns ``{"id", "state", "deduped", "trace_id"?}``.

        ``retries > 0`` makes the client honour 429 backpressure itself:
        it sleeps the server's ``Retry-After`` and resubmits, up to
        ``retries`` times, before letting :class:`QueueFullError` out.

        With tracing on, each submit (including each backoff retry)
        carries a fresh ``traceparent``; the server answers with the
        ``trace_id`` the job actually joined (an earlier submitter's for
        deduped jobs).
        """
        body: dict = {"kind": kind, "payload": payload or {}}
        if priority is not None:
            body["priority"] = priority
        attempt = 0
        while True:
            headers = None
            if self.trace_enabled:
                ctx = TraceContext.new_root()
                headers = {
                    TRACEPARENT_HEADER: ctx.to_traceparent(),
                    TRACESTATE_HEADER: format_tracestate("client.submit"),
                }
            try:
                return self._request("POST", "/v1/jobs", body, headers=headers)[1]
            except QueueFullError as exc:
                if exc.draining or attempt >= retries:
                    raise
                attempt += 1
                time.sleep(exc.retry_after)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def result(self, job_id: str) -> dict:
        """The result view: may still be pending (``state`` != done/failed)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")[1]

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Long-poll until the job is done or failed; returns the result view.

        Each round trip asks the server to park up to ~10 s via
        ``?wait=S``; a server that ignores the parameter (or answers
        early) degrades to classic polling at ``poll`` cadence.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(f"timed out waiting for job {job_id}")
            wait_s = max(0.1, min(remaining, 10.0))
            t0 = time.monotonic()
            view = self._request(
                "GET",
                f"/v1/jobs/{job_id}/result?wait={wait_s:.3f}",
                timeout=max(self.timeout, wait_s + 10.0),
            )[1]
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() - t0 < 0.05:  # server answered without parking
                time.sleep(min(poll, max(0.0, deadline - time.monotonic())))

    def trace(self, job_id: str) -> dict:
        """The job's distributed span tree (see ``scaltool obs trace``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/trace")[1]

    def lineage(self, job_id: str) -> dict:
        """The job's result lineage (see ``scaltool explain``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/lineage")[1]

    def blame(self, job_id: str) -> dict:
        """The job's scaling-loss blame report (see ``scaltool blame``)."""
        return self._request("GET", f"/v1/jobs/{job_id}/blame")[1]

    def workers(self) -> dict:
        """The dispatcher topology view (``GET /v1/workers``); 404 on a
        single-process server."""
        return self._request("GET", "/v1/workers")[1]

    def profile(self, seconds: float = 1.0, interval_ms: float = 5.0) -> dict:
        """Sample the serving process(es) for ``seconds`` (``GET
        /v1/profile``); against a dispatcher the answer is the merged
        profile of every worker.  Render with ``scaltool obs hot``."""
        query = f"/v1/profile?seconds={float(seconds)}&interval_ms={float(interval_ms)}"
        timeout = max(self.timeout, min(float(seconds), 30.0) + 45.0)
        return self._request("GET", query, timeout=timeout)[1]

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        status, _, raw = self._raw("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics scrape failed: HTTP {status}")
        return raw.decode()

    def drain(self, timeout: float | None = None) -> bool:
        body = {} if timeout is None else {"timeout": timeout}
        request_timeout = self.timeout if timeout is None else max(self.timeout, timeout + 10.0)
        return self._request("POST", "/v1/drain", body, timeout=request_timeout)[1]["drained"]

    def close(self) -> None:
        """Drop this thread's keep-alive connection (others close on GC)."""
        self._drop_connection()
