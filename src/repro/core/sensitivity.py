"""Sensitivity analysis: how fragile are the model's conclusions?

The paper is explicit that Scal-Tool is a *rough* quantification ("it is
possibly unrealistic to expect the tool to quantify with high accuracy
the cost of each bottleneck").  This module makes the roughness
measurable: perturb each estimated input — cpi0, t2, tm(n), tsyn(n),
cpi_imb, the compulsory miss rate — by a relative amount and rebuild the
bottleneck curves, reporting how the isolated costs move.

The headline output per input is an **elasticity**: the relative change of
the MP estimate at the largest processor count per unit relative change of
the input.  Inputs with |elasticity| >> 1 are the ones a user should
measure most carefully.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..runner.campaign import CampaignData
from ..runner.engine import Executor, SerialExecutor
from ..units import clamp
from .bottlenecks import build_curves, cpi_inf_by_n, cpi_infinf_by_n
from .scaltool import ScalToolAnalysis
from .sync_analysis import analyze_sync

__all__ = ["SensitivityResult", "analyze_sensitivity", "PERTURBABLE"]

#: The estimated inputs the analysis can perturb.
PERTURBABLE = ("cpi0", "t2", "tm", "tsyn", "cpi_imb", "compulsory")


@dataclass(frozen=True)
class SensitivityResult:
    """Effect of one perturbation on the rebuilt curves."""

    parameter: str
    delta: float  # relative perturbation applied (+0.1 = +10%)
    mp_cost_base: float
    mp_cost_perturbed: float
    l2lim_base: float
    l2lim_perturbed: float

    @property
    def mp_change(self) -> float:
        if self.mp_cost_base == 0:
            return 0.0
        return self.mp_cost_perturbed / self.mp_cost_base - 1.0

    @property
    def elasticity(self) -> float:
        """d(MP)/MP per d(param)/param at the largest measured count."""
        return self.mp_change / self.delta if self.delta else 0.0

    def row(self) -> dict:
        return {
            "parameter": self.parameter,
            "delta": f"{self.delta:+.0%}",
            "MP estimate": self.mp_cost_perturbed,
            "MP change": self.mp_change,
            "elasticity": self.elasticity,
        }


def _perturbed_analysis(
    analysis: ScalToolAnalysis,
    campaign: CampaignData,
    parameter: str,
    delta: float,
) -> ScalToolAnalysis:
    """Rebuild the analysis with one input scaled by (1 + delta)."""
    if parameter not in PERTURBABLE:
        raise InsufficientDataError(
            f"unknown parameter {parameter!r}; expected one of {PERTURBABLE}"
        )
    out = copy.deepcopy(analysis)
    factor = 1.0 + delta
    if parameter == "cpi0":
        out.params.cpi0 *= factor
    elif parameter == "t2":
        out.params.t2 *= factor
    elif parameter == "tm":
        out.params.tm1 *= factor
        out.params.tm_by_n = {n: v * factor for n, v in out.params.tm_by_n.items()}
    elif parameter == "compulsory":
        out.cache.compulsory = clamp(out.cache.compulsory * factor, 0.0, 1.0)
        out.cache.l2hitr_inf_by_n = {
            n: clamp(1.0 - out.cache.compulsory - out.cache.coherence_by_n[n], 0.0, 1.0)
            for n in out.cache.l2hitr_inf_by_n
        }

    base_runs = {n: r.without_ground_truth() for n, r in campaign.base_runs().items()}
    sync_kernel = {n: r.without_ground_truth() for n, r in campaign.sync_kernel_runs().items()}
    spin_kernel = {n: r.without_ground_truth() for n, r in campaign.spin_kernel_runs().items()}

    sync = analyze_sync(
        base_runs,
        sync_kernel,
        spin_kernel,
        out.params.cpi0,
        cpi_inf_by_n(base_runs, out.params, out.cache),
        cpi_infinf_by_n(base_runs, out.params, out.cache),
    )
    if parameter == "tsyn":
        sync.tsyn_by_n = {n: v * factor for n, v in sync.tsyn_by_n.items()}
    elif parameter == "cpi_imb":
        sync.cpi_imb *= factor
    if parameter in ("tsyn", "cpi_imb"):
        # re-solve the fractions with the perturbed kernel-derived inputs
        sync = _resolve_fractions(out, base_runs, sync)
    out.sync = sync
    out.curves = build_curves(base_runs, out.params, out.cache, sync)
    return out


def _perturb_apply(
    item: tuple[ScalToolAnalysis, CampaignData, str, float],
) -> ScalToolAnalysis:
    """Executor task body (module-level so parallel maps can pickle it)."""
    return _perturbed_analysis(*item)


def _resolve_fractions(analysis, base_runs, sync):
    """Recompute Eq. 9/10 with perturbed tsyn / cpi_imb."""
    from ..units import safe_div

    p = analysis.params
    inf = cpi_inf_by_n(base_runs, p, analysis.cache)
    infinf = cpi_infinf_by_n(base_runs, p, analysis.cache)
    for n in sorted(base_runs):
        c = base_runs[n].counters
        tsyn = sync.tsyn_by_n.get(n, 0.0)
        cpi_sync = sync.cpi_sync_by_n.get(n, sync.cpi_imb)
        cost_syn = c.store_exclusive_to_shared * (p.cpi0 + tsyn)
        frac_syn = clamp(safe_div(cost_syn, cpi_sync * c.graduated_instructions), 0.0, 1.0)
        denom = sync.cpi_imb - infinf[n]
        if abs(denom) < 1e-9 or n == 1:
            frac_imb = 0.0
        else:
            frac_imb = (inf[n] - infinf[n] * (1.0 - frac_syn) - cpi_sync * frac_syn) / denom
            frac_imb = clamp(frac_imb, 0.0, 1.0 - frac_syn)
        sync.cost_syn_by_n[n] = cost_syn
        sync.frac_syn_by_n[n] = frac_syn
        sync.frac_imb_by_n[n] = frac_imb
    return sync


@dataclass
class SensitivityReport:
    """All perturbations at one probe count."""

    workload: str
    probe_n: int
    results: list[SensitivityResult] = field(default_factory=list)

    def most_sensitive(self) -> str:
        return max(self.results, key=lambda r: abs(r.elasticity)).parameter

    def rows(self) -> list[dict]:
        return [r.row() for r in self.results]

    def summary(self) -> str:
        from ..viz.tables import format_table

        return (
            format_table(self.rows(), title=f"{self.workload}: MP-estimate sensitivity at n={self.probe_n}")
            + f"\nmost sensitive input: {self.most_sensitive()}"
        )


def analyze_sensitivity(
    analysis: ScalToolAnalysis,
    campaign: CampaignData,
    delta: float = 0.10,
    parameters: tuple[str, ...] = PERTURBABLE,
    probe_n: int | None = None,
    executor: Executor | None = None,
) -> SensitivityReport:
    """Perturb each input by ``delta`` and report the MP-estimate movement.

    The (independent) perturbations run through the shared executor;
    passing a :class:`~repro.runner.engine.ParallelExecutor` fans them out
    across workers with the report order unchanged.
    """
    if not (0.0 < abs(delta) < 1.0):
        raise InsufficientDataError("delta must be a nonzero relative perturbation below 1")
    n = probe_n if probe_n is not None else analysis.curves.processor_counts[-1]
    if n not in analysis.curves.base:
        raise InsufficientDataError(f"no measured point at n={n}")
    report = SensitivityReport(workload=analysis.workload, probe_n=n)
    executor = executor or SerialExecutor()
    perturbed_all = executor.map(
        _perturb_apply, [(analysis, campaign, p, delta) for p in parameters]
    )
    for parameter, perturbed in zip(parameters, perturbed_all):
        report.results.append(
            SensitivityResult(
                parameter=parameter,
                delta=delta,
                mp_cost_base=analysis.curves.mp_cost(n),
                mp_cost_perturbed=perturbed.curves.mp_cost(n),
                l2lim_base=analysis.curves.l2lim_cost[n],
                l2lim_perturbed=perturbed.curves.l2lim_cost[n],
            )
        )
    return report
