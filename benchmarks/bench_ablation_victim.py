"""Ablation: a victim buffer vs the insufficient-caching-space bottleneck.

The model's L2Lim cost prices conflict misses at full memory latency; a
small victim buffer is the classic hardware fix.  This ablation runs
T3dheat's conflict-bound low-processor-count regime with and without a
victim buffer and reports how much of the L2Lim cost it recovers — and
confirms it recovers nothing at high counts, where L2Lim is already gone.
"""

import pytest

from dataclasses import replace

from repro.machine.config import origin2000_scaled
from repro.machine.system import DsmMachine
from repro.viz.tables import format_table
from repro.workloads import T3dheat

VICTIM_ENTRIES = 128


@pytest.fixture(scope="module")
def runs():
    out = {}
    wl = T3dheat(iters=2, inner_steps=8)
    for n in (1, 32):
        for entries in (0, VICTIM_ENTRIES):
            cfg = replace(origin2000_scaled(n_processors=n), victim_entries=entries)
            out[(n, entries)] = DsmMachine(cfg).run(wl, wl.default_size())
    return out


def test_ablation_victim(benchmark, emit, runs):
    def summarize():
        rows = []
        for (n, entries), res in sorted(runs.items()):
            g = res.ground_truth
            rows.append(
                {
                    "n": n,
                    "victim entries": entries,
                    "cycles": res.counters.cycles,
                    "replacement misses": g.replacement_misses,
                    "victim hits": g.victim_hits,
                    "memory stall": g.memory_stall_cycles,
                }
            )
        return rows

    rows = benchmark(summarize)
    emit("ablation_victim", format_table(rows, title="victim buffer vs conflict misses (T3dheat)"))

    plain1 = runs[(1, 0)]
    buffered1 = runs[(1, VICTIM_ENTRIES)]
    plain32 = runs[(32, 0)]
    buffered32 = runs[(32, VICTIM_ENTRIES)]

    # the buffer touches only latency, never the miss counts
    assert buffered1.counters.l2_misses == plain1.counters.l2_misses
    # T3dheat's dominant n=1 pattern is cyclic sweeping, so the recovery is
    # partial (the gather misses have short reuse; the sweeps do not)
    assert buffered1.counters.cycles <= plain1.counters.cycles
    # at n=32 conflicts are gone: the buffer is inert
    assert buffered32.counters.cycles == pytest.approx(plain32.counters.cycles, rel=0.02)
    assert buffered32.ground_truth.victim_hits <= buffered1.ground_truth.victim_hits + 1000
