"""Vectorised address-trace generators.

Every generator returns ``(addrs, writes)`` as NumPy arrays of block ids
and write flags.  They are the building blocks workloads compose into
phases; all are deterministic given the supplied ``numpy.random.Generator``.

The generators express the access patterns the paper's applications have:

* :func:`sweep` — unit-stride array traversal with intra-line reuse, the
  backbone of Swim/Hydro2d-style finite-difference codes.  A sweep larger
  than the cache is the canonical LRU-hostile pattern producing the
  "insufficient caching space" conflict misses of Section 2.4.1.
* :func:`strided_sweep` — non-unit stride (column order, red-black).
* :func:`stencil_sweep` — partition sweep plus neighbour-boundary reads,
  the source of (small) true sharing.
* :func:`gather_sweep` — row sweep plus randomly indexed gathers, the
  sparse-matrix-vector pattern of a conjugate-gradient solver (T3dheat).
* :func:`random_access` — uniform random references.
* :func:`pointer_chase` — dependent-chain traversal of a random
  permutation; with a footprint chosen to defeat the cache every access
  misses, which is how the memory-latency micro-kernel isolates tm.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError

__all__ = [
    "sweep",
    "sweep_array",
    "strided_sweep",
    "random_access",
    "stencil_sweep",
    "gather_sweep",
    "pointer_chase",
]


def _check_range(blocks: range, what: str) -> None:
    if len(blocks) == 0:
        raise TraceError(f"{what}: empty block range")
    if blocks.start < 0:
        raise TraceError(f"{what}: negative block ids")


def _writes_for(n: int, write_frac: float, rng: np.random.Generator) -> np.ndarray:
    if not (0.0 <= write_frac <= 1.0):
        raise TraceError(f"write_frac must be in [0, 1], got {write_frac}")
    if write_frac == 0.0:
        return np.zeros(n, dtype=bool)
    if write_frac == 1.0:
        return np.ones(n, dtype=bool)
    return rng.random(n) < write_frac


def sweep(
    blocks: range,
    refs_per_block: int = 4,
    write_frac: float = 0.3,
    reps: int = 1,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Unit-stride traversal: ``refs_per_block`` back-to-back touches per block.

    The back-to-back touches model word-granular spatial locality inside a
    cache line (first touch may miss, the rest hit L1), so
    ``refs_per_block`` directly controls the workload's L1 hit rate.
    """
    _check_range(blocks, "sweep")
    if refs_per_block < 1:
        raise TraceError("refs_per_block must be >= 1")
    if reps < 1:
        raise TraceError("reps must be >= 1")
    base = np.arange(blocks.start, blocks.stop, blocks.step, dtype=np.int64)
    addrs = np.tile(np.repeat(base, refs_per_block), reps)
    rng = rng or np.random.default_rng(0)
    return addrs, _writes_for(len(addrs), write_frac, rng)


def sweep_array(
    blocks: np.ndarray,
    refs_per_block: int = 4,
    write_frac: float = 0.3,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Like :func:`sweep` but over an explicit block-id array.

    Used for misaligned/rotated partitions (DOACROSS loops whose bounds do
    not line up with the first-touch partitioning), where the visited
    blocks are not a contiguous range.
    """
    if blocks.ndim != 1:
        raise TraceError("sweep_array: blocks must be one-dimensional")
    if len(blocks) == 0:
        raise TraceError("sweep_array: empty block array")
    if refs_per_block < 1:
        raise TraceError("refs_per_block must be >= 1")
    addrs = np.repeat(np.ascontiguousarray(blocks, dtype=np.int64), refs_per_block)
    rng = rng or np.random.default_rng(0)
    return addrs, _writes_for(len(addrs), write_frac, rng)


def strided_sweep(
    blocks: range,
    stride: int,
    refs_per_block: int = 2,
    write_frac: float = 0.3,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Traversal at ``stride`` blocks, covering the range in stride passes.

    Visits every block exactly once per pass but in column-major-like order
    (block 0, s, 2s, ..., 1, s+1, ...), which thrashes a set-associative
    cache when the stride aliases its set indexing.
    """
    _check_range(blocks, "strided_sweep")
    if stride < 1:
        raise TraceError("stride must be >= 1")
    base = np.arange(blocks.start, blocks.stop, blocks.step, dtype=np.int64)
    n = len(base)
    order = np.concatenate([np.arange(off, n, stride) for off in range(min(stride, n))])
    addrs = np.repeat(base[order], refs_per_block)
    rng = rng or np.random.default_rng(0)
    return addrs, _writes_for(len(addrs), write_frac, rng)


def random_access(
    blocks: range,
    n_refs: int,
    write_frac: float = 0.3,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``n_refs`` uniformly random references over the range."""
    _check_range(blocks, "random_access")
    if n_refs < 0:
        raise TraceError("n_refs must be >= 0")
    rng = rng or np.random.default_rng(0)
    base = np.arange(blocks.start, blocks.stop, blocks.step, dtype=np.int64)
    addrs = base[rng.integers(0, len(base), size=n_refs)]
    return addrs, _writes_for(n_refs, write_frac, rng)


def stencil_sweep(
    own: range,
    halo_lo: range | None = None,
    halo_hi: range | None = None,
    refs_per_block: int = 4,
    write_frac: float = 0.35,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep of a partition plus read-only halo rows of the neighbours.

    ``halo_lo``/``halo_hi`` are the neighbour boundary blocks read (never
    written) before the owned sweep — the nearest-neighbour exchange of a
    finite-difference code, and the machine's source of true sharing.
    """
    _check_range(own, "stencil_sweep")
    rng = rng or np.random.default_rng(0)
    parts_a: list[np.ndarray] = []
    parts_w: list[np.ndarray] = []
    for halo in (halo_lo, halo_hi):
        if halo is not None and len(halo):
            h = np.arange(halo.start, halo.stop, halo.step, dtype=np.int64)
            ha = np.repeat(h, max(1, refs_per_block // 2))
            parts_a.append(ha)
            parts_w.append(np.zeros(len(ha), dtype=bool))
    a, w = sweep(own, refs_per_block=refs_per_block, write_frac=write_frac, rng=rng)
    parts_a.append(a)
    parts_w.append(w)
    return np.concatenate(parts_a), np.concatenate(parts_w)


def gather_sweep(
    rows: range,
    table: range,
    gathers_per_row: int = 2,
    refs_per_block: int = 3,
    write_frac: float = 0.3,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential row sweep interleaved with random gathers from ``table``.

    The sparse matrix-vector product at the core of a conjugate-gradient
    solver: unit-stride over the matrix rows, indexed loads into the vector.
    """
    _check_range(rows, "gather_sweep")
    _check_range(table, "gather_sweep table")
    if gathers_per_row < 0:
        raise TraceError("gathers_per_row must be >= 0")
    rng = rng or np.random.default_rng(0)
    row_ids = np.arange(rows.start, rows.stop, rows.step, dtype=np.int64)
    n_rows = len(row_ids)
    table_ids = np.arange(table.start, table.stop, table.step, dtype=np.int64)
    # Layout per row: [row block x refs_per_block, gathers...]
    row_part = np.repeat(row_ids, refs_per_block).reshape(n_rows, refs_per_block)
    gathers = table_ids[rng.integers(0, len(table_ids), size=(n_rows, gathers_per_row))]
    addrs = np.concatenate([row_part, gathers], axis=1).ravel()
    writes = _writes_for(len(addrs), 0.0, rng)
    # Only row blocks are written (the accumulation), never the gathered table.
    per_row = refs_per_block + gathers_per_row
    mask = np.zeros(per_row, dtype=bool)
    n_writes = max(1, int(round(write_frac * refs_per_block)))
    mask[refs_per_block - n_writes : refs_per_block] = True
    writes = np.tile(mask, n_rows)
    return addrs, writes


def pointer_chase(
    blocks: range,
    n_refs: int,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Traverse a random Hamiltonian cycle over the range for ``n_refs`` steps.

    Every step visits a different block in random order; with a footprint
    larger than the cache this yields a ~100% miss rate, the classic
    latency-measurement kernel (used to estimate tm and tsyn).
    """
    _check_range(blocks, "pointer_chase")
    if n_refs < 0:
        raise TraceError("n_refs must be >= 0")
    rng = rng or np.random.default_rng(0)
    base = np.arange(blocks.start, blocks.stop, blocks.step, dtype=np.int64)
    perm = rng.permutation(base)
    reps = -(-n_refs // len(perm)) if len(perm) else 0
    addrs = np.tile(perm, max(1, reps))[:n_refs]
    return addrs, np.zeros(len(addrs), dtype=bool)
