"""Figure 9: estimation of the scalability bottlenecks in Hydro2d.

Paper: "the Base-L2Lim curve overlaps completely with the Base curve after
2 processors" (10.3 MB / 4 MB of L2); "this application suffers from
significant load imbalance"; "synchronization is not as costly"; removing
the MP factors "would about double its speed for 32 processors".
"""

from repro.core.report import curves_chart

from .conftest import breakdown_table


def test_fig9(benchmark, emit, hydro2d_analysis):
    rows = benchmark(hydro2d_analysis.curves.rows)
    emit(
        "fig9_hydro2d_breakdown",
        curves_chart(hydro2d_analysis) + "\n\n" + breakdown_table(hydro2d_analysis),
    )

    c = hydro2d_analysis.curves
    # caching-space effects vanish by a handful of processors
    assert c.l2lim_cost[4] / c.base[4] < 0.10
    assert c.l2lim_cost[8] / c.base[8] < 0.03
    # load imbalance dominates synchronization at scale (at n=8 the
    # event-31 contamination still inflates the sync estimate slightly)
    for n in (16, 32):
        assert c.imb_cost[n] > c.sync_cost[n]
    assert hydro2d_analysis.dominant_bottleneck(32) == "load imbalance"
    # removing MP buys a large speed improvement at 32 (paper: "about
    # double"; ours ~1.5x -- the estimate is conservative, see EXPERIMENTS.md)
    assert c.base[32] / c.base_minus_l2lim_mp[32] > 1.4
