"""Micro-kernels (Section 2.4.2)."""

import pytest

from repro.errors import WorkloadError
from repro.machine.system import DsmMachine
from repro.workloads.kernels import (
    CacheFitKernel,
    MemoryLatencyKernel,
    SpinKernel,
    SyncKernel,
)

from ..conftest import tiny_machine_config


def run(wl, n=2, size=2048):
    return DsmMachine(tiny_machine_config(n_processors=n)).run(wl, size)


class TestSyncKernel:
    def test_ntsyn_equals_barriers(self):
        res = run(SyncKernel(n_barriers=10), n=4)
        assert res.counters.store_exclusive_to_shared == 40  # 10 barriers x 4 cpus
        assert res.ground_truth.barriers == 40

    def test_cpi_grows_with_n(self):
        # cpi_sync(n) grows once serialization dominates (the paper:
        # "cpi_syn is found to be a function of n"); at tiny n,
        # poll-instruction dilution makes it non-monotonic, so measure
        # with a service time large enough for the queue to dominate.
        from repro.machine.config import TimingConfig

        timing = TimingConfig(t_fetchop_service=60.0)
        cpis = {}
        for n in (2, 16):
            cfg = tiny_machine_config(n_processors=n, timing=timing)
            cpis[n] = DsmMachine(cfg).run(SyncKernel(n_barriers=20), 2048).counters.cpi
        assert cpis[16] > cpis[2]

    def test_mostly_sync_cycles(self):
        res = run(SyncKernel(n_barriers=20, gap_instructions=4), n=2)
        gt = res.ground_truth
        assert gt.sync_cycles > 0.5 * res.counters.cycles

    def test_bad_gap_rejected(self):
        with pytest.raises(WorkloadError):
            SyncKernel(gap_instructions=-1)


class TestSpinKernel:
    def test_only_cpu0_computes(self):
        res = run(SpinKernel(episodes=4, work_instructions=5000), n=4)
        gt = res.per_cpu_ground_truth
        assert gt[0].compute_instructions > 0
        for cpu in (1, 2, 3):
            assert gt[cpu].compute_instructions == 0
            assert gt[cpu].spin_cycles > 0

    def test_spinner_cpi_close_to_spin_cpi(self):
        res = run(SpinKernel(episodes=5, work_instructions=20000), n=4)
        c = res.per_cpu_counters[2]
        cfg = tiny_machine_config()
        assert c.cpi == pytest.approx(cfg.timing.spin_cpi, rel=0.25)

    def test_uniprocessor_degenerates(self):
        res = run(SpinKernel(episodes=3, work_instructions=1000), n=1)
        assert res.ground_truth.spin_cycles == pytest.approx(0.0, abs=1.0)


class TestMemoryLatencyKernel:
    def test_overflowing_footprint_misses(self):
        # footprint 4x the tiny L2 (4 KB)
        res = run(MemoryLatencyKernel(n_refs=2000, passes=2), n=1, size=16 * 1024)
        c = res.counters
        assert c.l2_misses / c.l1_data_misses > 0.8

    def test_fitting_footprint_hits_l2(self):
        res = run(MemoryLatencyKernel(n_refs=2000, passes=3), n=1, size=1024)
        c = res.counters
        # after the cold pass the chase fits the L2 (but not the 256 B L1)
        assert c.l2_local_hit_rate > 0.8

    def test_partitioned_across_cpus(self):
        res = run(MemoryLatencyKernel(n_refs=500, passes=1), n=4, size=8 * 1024)
        for g in res.per_cpu_ground_truth:
            assert g.local_misses > 0  # everyone chases its own slice

    def test_bad_refs_rejected(self):
        with pytest.raises(WorkloadError):
            MemoryLatencyKernel(n_refs=0)


class TestCacheFitKernel:
    def test_cpi_converges_to_cpi0(self):
        wl = CacheFitKernel(reps=80)
        res = run(wl, n=1, size=128)  # fits the 256 B L1
        assert res.counters.cpi == pytest.approx(wl.cpi0, rel=0.15)

    def test_few_reps_biased_upward(self):
        quick = run(CacheFitKernel(reps=2), n=1, size=128).counters.cpi
        long = run(CacheFitKernel(reps=100), n=1, size=128).counters.cpi
        assert quick > long  # compulsory misses weigh more on short runs
