"""Parameter estimation (paper Sections 2.2–2.3).

The pipeline, exactly as the paper prescribes:

1. **cpi0, first pass** (Lubeck's method): the overall CPI of the
   uniprocessor run whose data set fits the L1 — biased upward by the
   compulsory misses that run still takes.
2. **t2, tm(1)**: least squares over the uniprocessor (cpi, h2, hm)
   triplets, restricted to data-set sizes that *overflow the L2* (the
   paper finds tm unstable otherwise).  cpi0 is held fixed at the
   first-pass value; the design matrix is [h2 hm] and the target
   cpi − cpi0.
3. **cpi0, unbiased** (Eq. 2): subtract the t2/tm cycles the compulsory
   misses of the small run contributed:
   cpi0 = cpi0_biased − h2_small·t2 − hm_small·tm.
4. **tm(n)**: invert Eq. 1 at the base size for every processor count.

Diagnostics (residuals, triplet counts, any clamping) ride along in
:class:`ParameterEstimates` so analyses can report estimation quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import EstimationError, InsufficientDataError
from ..obs import runtime as obs
from ..obs.diagnostics import (
    FitDiagnostics,
    linear_fit_diagnostics,
    solve_diagnostics,
)
from ..runner.records import RunRecord
from .model import solve_tm

__all__ = [
    "ParameterEstimates",
    "estimate_cpi0_biased",
    "fit_t2_tm",
    "adjust_cpi0",
    "estimate_tm_by_n",
    "estimate_parameters",
    "overflow_sizes",
]

# A data set must exceed the L2 by this factor before its uniprocessor run
# is used as a regression triplet (Section 2.3: "we use only data set sizes
# that overflow the L2 cache").
L2_OVERFLOW_FACTOR = 1.2


@dataclass
class ParameterEstimates:
    """Everything Sections 2.2–2.3 deliver, plus estimation diagnostics."""

    cpi0_biased: float
    cpi0: float
    t2: float
    tm1: float
    tm_by_n: dict[int, float] = field(default_factory=dict)
    n_triplets: int = 0
    fit_residual_rms: float = 0.0
    triplet_sizes: list[int] = field(default_factory=list)
    small_run_size: int = 0
    warnings: list[str] = field(default_factory=list)
    #: Graded quality evidence for the fit and the per-n solve
    #: (:class:`repro.obs.diagnostics.FitDiagnostics`); rolled into the
    #: analysis-level health grade by ``ScalTool.analyze``.
    diagnostics: list[FitDiagnostics] = field(default_factory=list)

    def tm(self, n: int) -> float:
        if n == 1 and 1 not in self.tm_by_n:
            return self.tm1
        try:
            return self.tm_by_n[n]
        except KeyError:
            raise InsufficientDataError(
                f"tm not estimated for n={n}; have {sorted(self.tm_by_n)}"
            ) from None

    def summary(self) -> str:
        lines = [
            f"cpi0 (biased / unbiased): {self.cpi0_biased:.4f} / {self.cpi0:.4f}",
            f"t2:                        {self.t2:.2f} cycles",
            f"tm(1):                     {self.tm1:.2f} cycles",
            f"fit triplets:              {self.n_triplets} (rms residual {self.fit_residual_rms:.4f})",
        ]
        for n in sorted(self.tm_by_n):
            lines.append(f"tm({n}):".ljust(27) + f"{self.tm_by_n[n]:.2f} cycles")
        for w in self.warnings:
            lines.append(f"warning: {w}")
        return "\n".join(lines)


def smallest_run(uniproc_runs: dict[int, RunRecord]) -> RunRecord:
    """The uniprocessor run with the smallest data set."""
    if not uniproc_runs:
        raise InsufficientDataError("no uniprocessor runs")
    return uniproc_runs[min(uniproc_runs)]


def cpi0_run(uniproc_runs: dict[int, RunRecord], l2_bytes: int) -> RunRecord:
    """Pick the uniprocessor run used as the cpi0 measurement point.

    Lubeck (and the paper) take the smallest data set that fits the L1.
    On the scaled substrate that choice breaks down for barrier-dense
    applications: capacities shrink with the scale factor but per-barrier
    costs do not, so an L1-sized run is dominated by synchronization and
    its CPI wildly overestimates cpi0 (the same bias exists on real
    hardware, just weaker).  We therefore take the *minimum-CPI* run among
    the sizes below the L2-overflow threshold — the least-overhead point
    between miss-dominated large sizes and fixed-overhead-dominated tiny
    sizes.  For workloads whose overheads scale with work the two
    policies pick the same run.  (Documented as a methodology adaptation
    in DESIGN.md.)
    """
    if not uniproc_runs:
        raise InsufficientDataError("no uniprocessor runs")
    small_sizes = [s for s in uniproc_runs if s < L2_OVERFLOW_FACTOR * l2_bytes]
    candidates = small_sizes or list(uniproc_runs)
    best = min(candidates, key=lambda s: uniproc_runs[s].counters.cpi)
    return uniproc_runs[best]


def estimate_cpi0_biased(uniproc_runs: dict[int, RunRecord], l2_bytes: int) -> float:
    """First-pass (biased) cpi0: the CPI of the cpi0 measurement run."""
    return cpi0_run(uniproc_runs, l2_bytes).counters.cpi


def overflow_sizes(uniproc_runs: dict[int, RunRecord], l2_bytes: int) -> list[int]:
    """Sizes whose uniprocessor runs qualify as regression triplets."""
    return sorted(s for s in uniproc_runs if s >= L2_OVERFLOW_FACTOR * l2_bytes)


def fit_t2_tm(
    uniproc_runs: dict[int, RunRecord],
    cpi0: float,
    l2_bytes: int,
    overflow_only: bool = True,
) -> tuple[float, float, dict]:
    """Least-squares fit of (t2, tm) from uniprocessor triplets (Eq. 3).

    Returns ``(t2, tm, diagnostics)``.  ``overflow_only=False`` disables
    the paper's L2-overflow filter — used by the ablation that shows why
    the filter matters.
    """
    sizes = (
        overflow_sizes(uniproc_runs, l2_bytes)
        if overflow_only
        else sorted(uniproc_runs)
    )
    if len(sizes) < 2:
        raise InsufficientDataError(
            f"need >= 2 triplet sizes to fit (t2, tm); have {len(sizes)}",
            inputs={
                "triplet_sizes": sizes,
                "available_sizes": sorted(uniproc_runs),
                "l2_overflow_threshold": int(L2_OVERFLOW_FACTOR * l2_bytes),
            },
        )
    rows, targets = [], []
    for s in sizes:
        c = uniproc_runs[s].counters
        rows.append([c.h2, c.hm])
        targets.append(c.cpi - cpi0)
    design = np.asarray(rows, dtype=float)
    y = np.asarray(targets, dtype=float)
    try:
        solution, _, rank, _ = np.linalg.lstsq(design, y, rcond=None)
    except np.linalg.LinAlgError as exc:
        raise EstimationError(
            f"(t2, tm) least-squares fit did not converge: {exc}",
            inputs={"triplet_sizes": sizes, "design_rows": design.tolist()},
        ) from exc
    constrained = False
    if rank < 2 or solution[0] < 0 or solution[1] < 0:
        # Latencies are physical quantities, and deep-overflow triplets can
        # be (near-)collinear in (h2, hm): t2 is then not separately
        # identifiable and the unconstrained fit may go negative.  Refit
        # under t2, tm >= 0 — the degenerate solutions fold the
        # unidentifiable t2 share into tm, which is harmless for every
        # downstream use that evaluates the same (h2, hm) mix.
        from scipy.optimize import nnls

        try:
            solution, _ = nnls(design, np.clip(y, 0.0, None))
        except (RuntimeError, ValueError) as exc:
            raise EstimationError(
                f"constrained (t2, tm) refit failed: {exc}",
                inputs={"triplet_sizes": sizes, "design_rows": design.tolist()},
            ) from exc
        constrained = True
    t2, tm = float(solution[0]), float(solution[1])
    residuals = y - design @ solution
    fit_check = linear_fit_diagnostics(
        name="t2_tm_fit",
        design=design,
        y=y,
        estimates={"t2": t2, "tm": tm},
        constrained=constrained,
        rank_deficient=bool(rank < 2),
        overflow_filter_dropped=not overflow_only,
        sizes=sizes,
    )
    diagnostics = {
        "sizes": sizes,
        "rms": float(np.sqrt(np.mean(residuals**2))),
        "residuals": residuals.tolist(),
        "constrained": constrained,
        "rank_deficient": bool(rank < 2),
        "fit_check": fit_check,
    }
    return t2, tm, diagnostics


def adjust_cpi0(
    cpi0_biased: float,
    small_run: RunRecord,
    t2: float,
    tm: float,
) -> float:
    """Equation 2: remove the compulsory-miss cycles from the biased cpi0."""
    c = small_run.counters
    return cpi0_biased - c.h2 * t2 - c.hm * tm


def estimate_tm_by_n(
    base_runs: dict[int, RunRecord],
    cpi0: float,
    t2: float,
    tm1: float,
    warnings: list[str] | None = None,
    tm_growth: dict[int, float] | None = None,
    solve_info: dict | None = None,
) -> dict[int, float]:
    """Section 2.3's last step: tm(n) from the base-size run at each n.

    On imbalance-heavy applications the inversion of Eq. 1 can become
    unidentifiable at high processor counts: cheap spin instructions
    dilute the measured CPI below cpi0 and the apparent tm goes negative.
    The fallback extrapolates the uniprocessor tm by the sync kernel's
    tsyn(n)/tsyn(1) growth — both latencies are round trips through the
    same interconnect, and the paper itself estimates tsyn "proceeding
    like we did to calculate tm".  Every fallback is recorded as a
    warning; without a growth profile the estimate clamps to tm(1)
    (memory is never faster on a larger machine).

    ``solve_info``, when given, is filled with the per-n evidence the
    diagnostics layer grades: ``per_n`` (final tm and the relative Eq. 1
    reconstruction error at that n) and ``fallbacks`` (counts where the
    interconnect floor replaced the solved value).
    """
    out: dict[int, float] = {}
    per_n: dict[int, dict] = {}
    fallbacks: list[int] = []
    for n in sorted(base_runs):
        c = base_runs[n].counters
        try:
            tm = solve_tm(c.cpi, cpi0, c.h2, c.hm, t2)
        except Exception:
            tm = float("nan")
        floor = max(tm1, t2, 1.0)
        if tm_growth and n in tm_growth:
            base_growth = tm_growth.get(1) or min(tm_growth.values()) or 1.0
            if base_growth > 0:
                floor = max(floor, tm1 * tm_growth[n] / base_growth)
        if not np.isfinite(tm) or tm < floor:
            if warnings is not None and n > 1:
                warnings.append(
                    f"tm({n}) unidentifiable or below the interconnect floor "
                    f"(estimate {tm:.2f}); using {floor:.2f}"
                )
            if n > 1:
                fallbacks.append(n)
            tm = floor
        out[n] = tm
        model_cpi = cpi0 + c.h2 * t2 + c.hm * tm
        per_n[n] = {
            "tm": tm,
            "residual_rel": abs(model_cpi - c.cpi) / c.cpi if c.cpi > 0 else 0.0,
        }
    if solve_info is not None:
        solve_info["per_n"] = per_n
        solve_info["fallbacks"] = fallbacks
    return out


def estimate_parameters(
    uniproc_runs: dict[int, RunRecord],
    base_runs: dict[int, RunRecord],
    l1_bytes: int,
    l2_bytes: int,
    tm_growth: dict[int, float] | None = None,
) -> ParameterEstimates:
    """The full Sections 2.2–2.3 pipeline.

    ``tm_growth`` is an optional interconnect-latency growth profile
    (tsyn(n) from the sync kernel) used only as the tm(n) fallback floor.
    """
    warnings: list[str] = []
    tracer = obs.tracer()
    with tracer.span("estimators.cpi0_biased"):
        small = cpi0_run(uniproc_runs, l2_bytes)
        if small.size_bytes > l2_bytes:
            warnings.append(
                f"cpi0 run ({small.size_bytes} B) exceeds the L2 ({l2_bytes} B); "
                "cpi0 may retain cache-stall bias"
            )
        cpi0_biased = small.counters.cpi
    with tracer.span("estimators.fit_t2_tm", runs=len(uniproc_runs)):
        if len(overflow_sizes(uniproc_runs, l2_bytes)) >= 2:
            t2, tm1, diag = fit_t2_tm(uniproc_runs, cpi0_biased, l2_bytes)
        else:
            # Too few L2-overflowing sizes to fit the paper's way.  Rather
            # than fail the whole analysis, fit over every size — the
            # diagnostics layer marks this `suspect` (tm is unstable on
            # L2-resident sizes), so the number still arrives but cannot
            # be mistaken for a trustworthy one.
            t2, tm1, diag = fit_t2_tm(
                uniproc_runs, cpi0_biased, l2_bytes, overflow_only=False
            )
            warnings.append(
                "fewer than 2 data-set sizes overflow the L2; "
                "(t2, tm) fitted over all sizes (suspect)"
            )
        if t2 < 0 or tm1 < 0:
            warnings.append(f"negative latency fit (t2={t2:.2f}, tm={tm1:.2f}); data too noisy")
    with tracer.span("estimators.adjust_cpi0"):
        cpi0 = adjust_cpi0(cpi0_biased, small, t2, tm1)
    with tracer.span("estimators.tm_by_n", runs=len(base_runs)):
        solve_info: dict = {}
        tm_by_n = estimate_tm_by_n(
            base_runs, cpi0, t2, tm1, warnings, tm_growth, solve_info=solve_info
        )
    fit_check: FitDiagnostics = diag["fit_check"]
    if len(diag["sizes"]) < 3 and not fit_check.details.get("overflow_filter_dropped"):
        # n_points < 3 already warns inside the rule table; this names
        # the cause (the paper's own filter) in the analysis warnings.
        warnings.append(
            f"only {len(diag['sizes'])} L2-overflowing sizes feed the (t2, tm) fit; "
            "residuals carry no quality evidence"
        )
    solve_check = solve_diagnostics(
        solve_info.get("per_n", {}), solve_info.get("fallbacks", [])
    )
    reg = obs.registry()
    reg.set_gauge("estimators.cpi0", cpi0)
    reg.set_gauge("estimators.t2", t2)
    reg.set_gauge("estimators.tm1", tm1)
    reg.set_gauge("estimators.fit_residual_rms", diag["rms"])
    if fit_check.r_squared is not None:
        reg.set_gauge("diagnostics.fit.r_squared", fit_check.r_squared)
    if warnings:
        reg.inc("estimators.warnings", len(warnings))
    return ParameterEstimates(
        cpi0_biased=cpi0_biased,
        cpi0=cpi0,
        t2=t2,
        tm1=tm1,
        tm_by_n=tm_by_n,
        n_triplets=len(diag["sizes"]),
        fit_residual_rms=diag["rms"],
        triplet_sizes=diag["sizes"],
        small_run_size=small.size_bytes,
        warnings=warnings,
        diagnostics=[fit_check, solve_check],
    )
