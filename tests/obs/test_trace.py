"""Unit tests for distributed trace context (repro.obs.trace)."""

from __future__ import annotations

import itertools

import pytest

from repro.obs.trace import (
    TraceBuffer,
    TraceContext,
    TraceSpan,
    enabled_from_env,
    format_tracestate,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    parse_tracestate_name,
    retarget,
    set_id_source,
)


@pytest.fixture
def deterministic_ids():
    """Replace os.urandom-backed id generation with a counter."""
    counter = itertools.count(1)

    def source(n_bytes: int) -> str:
        return f"{next(counter):0{2 * n_bytes}x}"

    set_id_source(source)
    yield
    set_id_source(None)


# -- traceparent ----------------------------------------------------------------


def test_traceparent_roundtrip():
    ctx = TraceContext.new_root()
    parsed = parse_traceparent(ctx.to_traceparent())
    assert parsed == ctx
    assert len(ctx.trace_id) == 32
    assert len(ctx.span_id) == 16


def test_traceparent_flags():
    ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8, sampled=False)
    header = ctx.to_traceparent()
    assert header.endswith("-00")
    assert parse_traceparent(header) == ctx


@pytest.mark.parametrize(
    "header",
    [
        None,
        "",
        "garbage",
        "01-" + "a" * 32 + "-" + "b" * 16 + "-01",  # unknown version
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
        "00-" + "a" * 32 + "-" + "b" * 15 + "-01",  # short span id
        "00-" + "A" * 32 + "-" + "b" * 16 + "-01X",  # trailing junk
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
    ],
)
def test_traceparent_malformed_rejected(header):
    assert parse_traceparent(header) is None


def test_traceparent_case_and_whitespace_tolerant():
    header = "  00-" + "AB" * 16 + "-" + "CD" * 8 + "-01  "
    parsed = parse_traceparent(header)
    assert parsed is not None
    assert parsed.trace_id == "ab" * 16


def test_tracestate_roundtrip():
    assert parse_tracestate_name(format_tracestate("client.submit")) == "client.submit"
    assert parse_tracestate_name("vendor=x,scaltool=obs.test,other=y") == "obs.test"
    assert parse_tracestate_name("vendor=x") is None
    assert parse_tracestate_name(None) is None


def test_child_context_keeps_trace_id(deterministic_ids):
    root = TraceContext.new_root()
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.span_id != root.span_id


def test_enabled_from_env(monkeypatch):
    monkeypatch.delenv("SCALTOOL_TRACE", raising=False)
    assert enabled_from_env() is True
    for off in ("0", "false", "OFF", " no "):
        monkeypatch.setenv("SCALTOOL_TRACE", off)
        assert enabled_from_env() is False
    monkeypatch.setenv("SCALTOOL_TRACE", "1")
    assert enabled_from_env() is True


def test_id_lengths(deterministic_ids):
    assert len(new_trace_id()) == 32
    assert len(new_span_id()) == 16


# -- buffer ---------------------------------------------------------------------


def test_buffer_span_nesting_chains_parent_ids():
    buf = TraceBuffer()
    root_ctx = TraceContext.new_root()
    with buf.span("outer", context=root_ctx) as outer:
        with buf.span("inner") as inner:  # picks up `outer` as current
            pass
    spans = {s.name: s for s in buf.spans_for(root_ctx.trace_id)}
    assert spans["outer"].parent_id == root_ctx.span_id
    assert spans["inner"].parent_id == outer.context.span_id
    assert spans["inner"].span_id == inner.context.span_id
    # inner finished first (recorded on exit)
    names = [s.name for s in buf.spans_for(root_ctx.trace_id)]
    assert names == ["inner", "outer"]


def test_buffer_span_without_context_starts_fresh_root():
    buf = TraceBuffer()
    with buf.span("lonely") as live:
        pass
    [span] = buf.spans_for(live.context.trace_id)
    assert span.parent_id == ""


def test_buffer_error_annotation():
    buf = TraceBuffer()
    ctx = TraceContext.new_root()
    with pytest.raises(RuntimeError):
        with buf.span("boom", context=ctx):
            raise RuntimeError("bad batch")
    [span] = buf.spans_for(ctx.trace_id)
    assert span.attrs["error"] == "bad batch"


def test_buffer_pop_trace_forgets():
    buf = TraceBuffer()
    ctx = TraceContext.new_root()
    buf.emit("x", ctx, start=0.0, duration_s=1.0)
    assert len(buf) == 1
    popped = buf.pop_trace(ctx.trace_id)
    assert [s.name for s in popped] == ["x"]
    assert len(buf) == 0
    assert buf.pop_trace(ctx.trace_id) == []


def test_buffer_attach_sets_current():
    buf = TraceBuffer()
    ctx = TraceContext.new_root()
    assert buf.current() is None
    with buf.attach(ctx):
        assert buf.current() == ctx
        with buf.span("child"):
            pass
    assert buf.current() is None
    [span] = buf.spans_for(ctx.trace_id)
    assert span.parent_id == ctx.span_id


def test_span_dict_roundtrip():
    span = TraceSpan(
        trace_id="t" * 32, span_id="s" * 16, parent_id="p" * 16,
        name="n", start=12.5, duration_s=0.25, attrs={"k": 1}, pid=7,
    )
    assert TraceSpan.from_dict(span.to_dict()) == span


# -- retarget -------------------------------------------------------------------


def test_retarget_reparents_roots_and_keeps_internal_edges(deterministic_ids):
    batch_root = TraceContext.new_root()
    buf = TraceBuffer()
    with buf.span("engine.run", context=batch_root) as run:
        buf.emit("engine.execute", run.context, start=0.0, duration_s=0.1)
        buf.emit("engine.execute", run.context, start=0.1, duration_s=0.1)
    spans = buf.pop_trace(batch_root.trace_id)

    out = retarget(spans, trace_id="f" * 32, root_parent_id="a" * 16)
    assert all(s.trace_id == "f" * 32 for s in out)
    by_name = {}
    for s in out:
        by_name.setdefault(s.name, []).append(s)
    # engine.run's parent was outside the set -> re-rooted
    [run_span] = by_name["engine.run"]
    assert run_span.parent_id == "a" * 16
    # the executes stay children of engine.run
    assert all(s.parent_id == run_span.span_id for s in by_name["engine.execute"])
    # the originals are untouched (copies, not mutation)
    assert all(s.trace_id == batch_root.trace_id for s in spans)
