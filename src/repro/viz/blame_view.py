"""Render a BlameReport (and a --against diff) for the terminal.

Works on the JSON-friendly dict form (``BlameReport.to_dict()``), so the
CLI renders local reports and reports fetched from the blame endpoint
identically.
"""

from __future__ import annotations

from .tables import format_table

__all__ = ["render_blame", "render_blame_diff"]


def _fmt_cyc(value: float) -> str:
    return f"{value:,.0f}"


def render_blame(report: dict, title: str = "scaling-loss blame") -> str:
    """Findings tree, per-vertex loss table, graph edges, and caveats."""
    n_lo, n_hi = report.get("window", ["?", "?"])
    counts = report.get("processor_counts", [])
    lines = [
        f"{title}: {report.get('workload', '?')} "
        f"(s0={report.get('s0', '?')}, n={counts})",
        f"  total scaling loss over n={n_lo}->{n_hi}: "
        f"{_fmt_cyc(report.get('total_loss', 0.0))} accumulated cycles",
    ]

    findings = report.get("findings", [])
    if findings:
        lines.append("findings (ranked):")
        for f in findings:
            marker = "*" if f.get("dominant") else " "
            lines.append(
                f"  #{f['rank']}{marker} [{f['category_label']}] "
                f"{f['vertex']}  share={f['share']:.0%}  "
                f"level@n={n_hi}: {_fmt_cyc(f['level_cycles'])}  "
                f"growth: {f['growth_cycles']:+,.0f}  grade: {f['grade']}"
            )
            lines.append(f"      └─ cause: {f['root_cause']}")
            if f.get("candidates"):
                lines.append(
                    f"      └─ upstream candidates: {', '.join(f['candidates'])}"
                )
            if f.get("lineage_refs"):
                refs = f["lineage_refs"]
                shown = ", ".join(refs[:3]) + (" ..." if len(refs) > 3 else "")
                lines.append(f"      └─ base runs: {shown}")
    else:
        lines.append("findings: none (no material stall category)")

    rows = []
    for v in report.get("vertices", []):
        eff = v.get("efficiencies", {})
        rows.append(
            {
                "segment": v["vertex"],
                "grade": v["grade"],
                "cycle loss": v["cycle_loss"],
                "share": f"{v['cycle_loss_share']:.0%}",
                "flag": "<<" if v.get("flagged") else "",
                "par eff": f"{eff.get('parallel', 0.0):.2f}",
                "sync eff": f"{eff.get('sync', 0.0):.2f}",
                "xfer eff": f"{eff.get('transfer', 0.0):.2f}",
            }
        )
    if rows:
        lines.append(
            format_table(rows, title=f"per-segment loss over n={n_lo}->{n_hi}:")
        )

    edges = report.get("edges", [])
    if edges:
        parts = [f"{e['src']}->{e['dst']}[{e['kind']}]" for e in edges]
        lines.append("graph edges: " + "  ".join(parts))

    excluded = report.get("excluded", [])
    if excluded:
        lines.append(
            "excluded from attribution (suspect evidence): " + ", ".join(excluded)
        )
    flags = [
        f"  {check.get('name', '?')}: {flag}"
        for check in report.get("diagnostics", {}).get("checks", [])
        for flag in check.get("flags", [])
    ]
    if flags:
        lines.append("evidence caveats:")
        lines.extend(flags)
    return "\n".join(lines)


def render_blame_diff(diff: dict, title: str = "blame diff") -> str:
    """Category deltas, biggest segment movers, and curve-level notes."""
    a, b = diff.get("workloads", ["ours", "theirs"])
    lines = [f"{title}: {a} vs {b} (top counts {diff.get('top_counts')})"]
    rows = [
        {
            "category": category,
            "ours": d["ours"],
            "theirs": d["theirs"],
            "delta": d["delta"],
        }
        for category, d in sorted(diff.get("category_deltas", {}).items())
    ]
    if rows:
        lines.append(format_table(rows, title="credible stall cycles at top count:"))
    movers = diff.get("movers", [])
    if movers:
        lines.append("largest segment movers:")
        for m in movers:
            lines.append(
                f"  {m['vertex']} [{m['category']}]: {m['delta_cycles']:+,.0f} cycles"
            )
    for note in diff.get("notes", []):
        lines.append(f"note: {note}")
    return "\n".join(lines)
