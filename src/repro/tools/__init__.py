"""Simulated equivalents of the SGI tool suite the paper uses.

* :mod:`repro.tools.perfex` — the hardware-counter tool: formats and
  parses counter reports (including 2-counter multiplexing emulation);
* :mod:`repro.tools.speedshop` — PC-sampling profiler: buckets cycles
  into compute / barrier routines / wait routines, used *only* for
  validation (Figures 7, 10, 13);
* :mod:`repro.tools.ssusage` — maximum resident data-set size;
* :mod:`repro.tools.timetool` — wall-clock execution time;
* :mod:`repro.tools.cost` — the Table 1 resource accounting for the
  existing-tools methodology vs Scal-Tool.
"""

from .perfex import format_report, multiplex_counters, parse_report
from .speedshop import SpeedshopProfile, profile_record, profile_run
from .ssusage import data_set_size
from .timetool import execution_seconds
from .cost import existing_tools_cost, scal_tool_cost, table1_rows

__all__ = [
    "format_report",
    "parse_report",
    "multiplex_counters",
    "SpeedshopProfile",
    "profile_run",
    "profile_record",
    "data_set_size",
    "execution_seconds",
    "existing_tools_cost",
    "scal_tool_cost",
    "table1_rows",
]
