"""Bottleneck curves and the ScalTool façade on the mini campaign."""

import pytest

from repro.core import ScalTool
from repro.core.validation import validate_mp
from repro.errors import InsufficientDataError
from repro.runner.campaign import CampaignData


@pytest.fixture(scope="module")
def analysis(mini_campaign):
    return ScalTool(mini_campaign).analyze()


class TestCurves:
    def test_base_is_measured(self, analysis, mini_campaign):
        for n, rec in mini_campaign.base_runs().items():
            assert analysis.curves.base[n] == pytest.approx(rec.counters.cycles)

    def test_curve_ordering(self, analysis):
        c = analysis.curves
        for n in c.processor_counts:
            assert c.base[n] >= c.base_minus_l2lim[n] >= c.base_minus_l2lim_mp[n] >= 0
            assert c.base_minus_l2lim[n] >= c.base_minus_l2lim_sync[n]
            assert c.base_minus_l2lim[n] >= c.base_minus_l2lim_imb[n]

    def test_costs_are_differences(self, analysis):
        c = analysis.curves
        for n in c.processor_counts:
            assert c.l2lim_cost[n] == pytest.approx(c.base[n] - c.base_minus_l2lim[n])
            assert c.mp_cost(n) == pytest.approx(c.sync_cost[n] + c.imb_cost[n])

    def test_no_mp_cost_on_uniprocessor(self, analysis):
        assert analysis.curves.imb_cost[1] == 0.0
        assert analysis.curves.sync_cost[1] < 0.05 * analysis.curves.base[1]

    def test_l2lim_shrinks_with_processors(self, analysis):
        c = analysis.curves
        assert c.l2lim_cost[4] < c.l2lim_cost[1]

    def test_speedups_start_at_one(self, analysis):
        series = analysis.curves.speedups()
        assert series[0] == (1, pytest.approx(1.0))
        assert series[-1][1] > 1.0

    def test_rows_complete(self, analysis):
        rows = analysis.curves.rows()
        assert len(rows) == 3
        assert {"n", "base", "Sync", "Imb", "L2Lim"} <= set(rows[0])


class TestFacade:
    def test_only_counters_consumed(self, analysis):
        # the analysis must be reproducible from ground-truth-stripped records
        assert analysis.workload == "synthetic"

    def test_stripped_campaign_analyzes_identically(self, mini_campaign):
        stripped = CampaignData(
            workload=mini_campaign.workload,
            s0=mini_campaign.s0,
            records=[r.without_ground_truth() for r in mini_campaign.records],
        )
        a1 = ScalTool(mini_campaign).analyze()
        a2 = ScalTool(stripped).analyze()
        for n in a1.curves.processor_counts:
            assert a1.curves.mp_cost(n) == pytest.approx(a2.curves.mp_cost(n))

    def test_report_renders(self, analysis):
        text = analysis.report()
        assert "Scal-Tool analysis" in text
        assert "base-L2Lim" in text
        assert "speedup" in text

    def test_dominant_bottleneck_named(self, analysis):
        assert analysis.dominant_bottleneck(4) in (
            "insufficient caching space",
            "synchronization",
            "load imbalance",
        )

    def test_mp_fraction_bounded(self, analysis):
        for n in analysis.curves.processor_counts:
            assert 0.0 <= analysis.mp_fraction(n) <= 1.0

    def test_empty_campaign_rejected(self):
        with pytest.raises(InsufficientDataError):
            ScalTool(CampaignData(workload="x", s0=1024, records=[])).analyze()


class TestValidation:
    def test_divergence_small_on_mini_campaign(self, analysis, mini_campaign):
        v = validate_mp(analysis, mini_campaign, exact=True)
        _, worst = v.max_divergence()
        assert worst < 0.30

    def test_rows_and_summary(self, analysis, mini_campaign):
        v = validate_mp(analysis, mini_campaign, exact=True)
        rows = v.rows()
        assert len(rows) == 3
        assert "divergence" in rows[0]
        assert "MP validation" in v.summary()

    def test_estimated_vs_measured_both_present(self, analysis, mini_campaign):
        v = validate_mp(analysis, mini_campaign, exact=True)
        for n in v.processor_counts:
            assert v.estimated_base_minus_mp(n) <= v.base[n]
            assert v.measured_base_minus_mp(n) <= v.base[n]

    def test_parallel_profiling_matches_serial(self, analysis, mini_campaign):
        from repro.runner.engine import ParallelExecutor

        serial = validate_mp(analysis, mini_campaign, exact=True)
        parallel = validate_mp(
            analysis, mini_campaign, exact=True, executor=ParallelExecutor(jobs=2)
        )
        assert serial.rows() == parallel.rows()
