"""Section 2.1's segment claim: per-segment bottleneck plots.

"Note that these plots can be obtained for the overall application or for
a segment of the application that is considered particularly important."

Regenerates the segment-level decomposition of T3dheat — the SpMV sweeps
vs the CG vector steps — and checks the structure a CG practitioner would
expect: the SpMV carries the memory stalls, the vector steps carry the
synchronization.

Besides the human-readable ``results/segments_t3dheat.txt``, the bench
records ``results/segments_t3dheat.json`` with the comparable structural
metrics (per-segment residual fractions, the maximum tiling error), which
``check_regression.py`` tracks: a model change that silently inflates the
unmodeled residual, or breaks the segments-tile-the-run invariant, fails
the regression gate even though wall-clock never enters these numbers.
"""

import json
from pathlib import Path

import pytest

from repro.core.segments import analyze_segments

GROUPS = {"init": "init", "spmv": "spmv_*", "vector steps": "cg_*"}
RESULTS_DIR = Path(__file__).parent / "results"


def measure(analysis, campaign, groups, counts) -> dict:
    """The machine-readable view of one segment decomposition."""
    seg = analyze_segments(analysis, campaign, groups, list(counts))
    base = {n: campaign.base_runs()[n].counters.cycles for n in counts}
    tiling_err = max(
        abs(sum(seg.at(name, n).cycles for name in groups) - base[n]) / base[n]
        for n in counts
        if base[n] > 0
    )
    segments: dict = {}
    for name in sorted(groups):
        segments[name] = {
            str(n): {
                "cycles": seg.at(name, n).cycles,
                "memory_stall_cycles": seg.at(name, n).memory_stall_cycles,
                "sync_cycles": seg.at(name, n).sync_cycles,
                "residual_fraction": seg.at(name, n).residual_fraction,
            }
            for n in counts
        }
    return {
        "workload": campaign.workload,
        "s0": campaign.s0,
        "counts": list(counts),
        "groups": dict(sorted(groups.items())),
        "tiling_rel_error_max": tiling_err,
        "segments": segments,
    }


def run_benchmark(
    counts=(1, 8, 32),
    cache_dir=None,
    results_dir: Path | None = None,
) -> dict:
    """Standalone entry point for ``check_regression.py``.

    Rebuilds (or loads from cache) the T3dheat campaign, decomposes it,
    and returns the metrics dict; with ``results_dir`` also records the
    JSON baseline alongside the text artifact.
    """
    from repro.core import ScalTool
    from repro.runner import CampaignConfig
    from repro.runner.cache import cached_campaign
    from repro.workloads import T3dheat

    workload = T3dheat()
    cfg = CampaignConfig(s0=workload.default_size(), processor_counts=tuple(counts))
    campaign = cached_campaign(workload, cfg, cache_dir=cache_dir)
    analysis = ScalTool(campaign).analyze()
    result = measure(analysis, campaign, GROUPS, counts)
    if results_dir is not None:
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "segments_t3dheat.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
    return result


def test_segments_t3dheat(benchmark, emit, t3dheat_analysis, t3dheat_campaign):
    seg = benchmark(
        analyze_segments, t3dheat_analysis, t3dheat_campaign, GROUPS, [1, 8, 32]
    )
    emit("segments_t3dheat", seg.summary())
    result = measure(t3dheat_analysis, t3dheat_campaign, GROUPS, (1, 8, 32))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "segments_t3dheat.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )

    # segments tile the run exactly
    for n in (1, 8, 32):
        total = sum(seg.at(name, n).cycles for name in GROUPS)
        base = t3dheat_campaign.base_runs()[n].counters.cycles
        assert total == pytest.approx(base, rel=1e-6)
    assert result["tiling_rel_error_max"] < 1e-6

    # the SpMV's conflict/gather misses fade as partitions fit the caches
    spmv1 = seg.at("spmv", 1)
    spmv32 = seg.at("spmv", 32)
    assert (
        spmv1.memory_stall_cycles / spmv1.cycles
        > 1.5 * spmv32.memory_stall_cycles / spmv32.cycles
    )
    # the irregular gathers leave the SpMV with the unmodeled residual at
    # n=1 (their full-latency misses exceed the fitted average tm)
    vec1 = seg.at("vector steps", 1)
    assert spmv1.residual_fraction > vec1.residual_fraction

    # at scale the vector steps are where synchronization lives
    # (many barrier-separated dot/daxpy loops over little data)
    vec32 = seg.at("vector steps", 32)
    assert vec32.sync_cycles > spmv32.sync_cycles
    assert vec32.sync_cycles / vec32.cycles > 0.2


def test_blame_t3dheat_localizes_the_paper_bottlenecks(
    t3dheat_analysis, t3dheat_campaign
):
    """The blame pipeline's acceptance bar on the real application.

    Localization must agree with what the decomposition above shows by
    hand: the SpMV is the dominant memory-stall source, the CG vector
    steps the dominant synchronization source, and init — whose modeled
    memory stalls overshoot its measured cycles (the whole-run-average
    tm(n) artifact) — is graded suspect and excluded from attribution.
    """
    from repro.analysis import blame_campaign

    report = blame_campaign(t3dheat_analysis, t3dheat_campaign, groups=GROUPS)

    memory = report.dominant("memory")
    assert memory is not None and memory["vertex"] == "spmv"
    sync = report.dominant("sync")
    assert sync is not None and sync["vertex"] == "vector steps"
    assert "init" in report.excluded

    for finding in report.findings:
        assert finding["grade"] in ("ok", "warn", "suspect")
        assert finding["lineage_refs"]
        assert finding["root_cause"]
    # the sync root cause reads the Eq. 10 imbalance split
    assert "imbalance" in sync["root_cause"] or "synchronization" in sync["root_cause"]
