""":class:`AnalysisService` — the async job engine behind ``scaltool serve``.

Shape (one box per component, all inside one process)::

    submit()  ──admission──►  asyncio.PriorityQueue
                                   │  worker tasks (config.workers)
                                   ▼
                            _execute_job (thread pool)
                                   │  planner: cache / in-flight dedup
                                   ▼
                            _SpecBatcher (asyncio task)
                                   │  coalesces claimed specs across jobs
                                   ▼
                            Executor.run(batch, cache=RunCache)
                                   │
                                   ▼
                            result assembly (all cache hits) -> JobStore

Guarantees:

* **admission control** — at most ``max_queue`` jobs queued+running;
  beyond that :class:`~repro.errors.QueueFullError` (HTTP 429 with
  ``Retry-After``), and while draining every submit is rejected (503).
* **idempotent submits** — the job id is a content address over the
  canonical request, so resubmitting an identical request returns the
  existing job instead of duplicating work.
* **dedup + batching** — the planner drops specs already on disk, waits
  on specs claimed by other jobs, and the batcher merges what remains
  from concurrently admitted jobs into single ``Executor.run`` calls.
* **durability** — every state transition is persisted atomically; a
  restarted service re-queues interrupted jobs and keeps serving
  ``status``/``result`` for finished ones.
* **graceful lifecycle** — ``drain()`` stops admission and waits for
  in-flight jobs; per-job ``job_timeout``; transient failures
  (:data:`~repro.runner.engine.TRANSIENT_EXCEPTIONS`) retried a bounded
  number of times on top of the engine's own per-run retries.

The simulator itself is CPU-bound and deterministic, so job *threads*
exist to overlap planning/waiting, while actual runs execute through the
configured engine executor (``jobs > 1`` -> a process pool) — the same
split an inference server makes between request handling and the
compute backend.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from ..errors import JobNotFoundError, QueueFullError, ServiceError
from ..obs import runtime as obs
from ..obs.logs import get_logger, kv
from ..runner.engine import (
    TRANSIENT_EXCEPTIONS,
    RunCache,
    RunSpec,
    SerialExecutor,
    default_cache_root,
    default_executor,
)
from . import requests as _requests
from .planner import RequestPlanner
from .store import ACTIVE_STATES, TERMINAL_STATES, Job, JobStore

__all__ = ["ServiceConfig", "AnalysisService"]

_log = get_logger("service.core")

#: Queue sentinel that sorts after every real job (priorities are finite).
_STOP = (float("inf"), 0, None)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`AnalysisService`."""

    cache_dir: str | Path | None = None  # default: $SCALTOOL_CACHE_DIR / .scaltool_cache
    jobs: int = 1  # engine executor width (1 = serial, N = process pool)
    workers: int = 2  # concurrent jobs in flight
    max_queue: int = 32  # admission bound on queued+running jobs
    job_timeout: float = 600.0  # seconds before a running job is failed
    retries: int = 1  # service-level retries of transient job failures
    batch_window: float = 0.02  # seconds the batcher waits to coalesce claims
    retry_after: float = 1.0  # advisory back-off handed to rejected clients
    default_priority: int = 5  # lower sorts sooner

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.max_queue < 1:
            raise ServiceError("max_queue must be >= 1")
        if self.retries < 0:
            raise ServiceError("retries must be >= 0")


class _SpecBatcher:
    """Coalesces claimed spec lists from concurrent jobs into engine batches.

    Lives on the service event loop.  ``submit()`` parks the caller until
    the batch containing its specs has executed (and therefore populated
    the run cache).  One batch executes at a time, through the service's
    configured executor, in a dedicated thread so the loop stays free.
    """

    def __init__(self, service: "AnalysisService") -> None:
        self._service = service
        self._pending: list[tuple[list[RunSpec], asyncio.Future]] = []
        self._wakeup = asyncio.Event()
        self._stopping = False

    async def submit(self, specs: list[RunSpec]) -> None:
        if self._stopping:
            raise ServiceError("service is shutting down")
        fut = asyncio.get_running_loop().create_future()
        self._pending.append((specs, fut))
        self._wakeup.set()
        await fut

    def stop(self) -> None:
        self._stopping = True
        self._wakeup.set()

    async def run(self) -> None:
        svc = self._service
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if self._pending and svc.config.batch_window > 0:
                # Give concurrently admitted jobs a beat to join the batch.
                await asyncio.sleep(svc.config.batch_window)
            batch, self._pending = self._pending, []
            if not batch:
                if self._stopping:
                    return
                continue
            specs: list[RunSpec] = []
            seen: set[str] = set()
            for spec_list, _ in batch:
                for spec in spec_list:
                    if spec.key() not in seen:
                        seen.add(spec.key())
                        specs.append(spec)
            svc._tally("batches")
            svc._tally("batch.specs", len(specs))
            obs.registry().observe("service.batch.size", len(specs))
            try:
                await asyncio.get_running_loop().run_in_executor(
                    svc._batch_pool, svc._run_batch, specs
                )
            except Exception as exc:  # noqa: BLE001 - fan the failure out to the jobs
                for _, fut in batch:
                    if not fut.done():
                        fut.set_exception(exc)
            else:
                for _, fut in batch:
                    if not fut.done():
                        fut.set_result(None)


class AnalysisService:
    """The serving layer: accepts requests, executes them through the engine."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.root = (
            Path(self.config.cache_dir)
            if self.config.cache_dir is not None
            else default_cache_root()
        )
        self.store = JobStore(self.root / "service" / "jobs")
        self.run_cache = RunCache(self.root / "runs")
        self.planner = RequestPlanner(self.run_cache)
        self.executor = default_executor(self.config.jobs)

        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._counters: collections.Counter = collections.Counter()
        self._seq = itertools.count()
        self._draining = False
        self._started = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._queue: asyncio.PriorityQueue | None = None
        self._batcher: _SpecBatcher | None = None
        self._tasks: list[asyncio.Task] = []
        self._job_pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="scaltool-job"
        )
        self._batch_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="scaltool-batch"
        )

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "AnalysisService":
        """Start the event loop, workers, and batcher; recover stored jobs."""
        if self._started:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="scaltool-service", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._setup(), self._loop).result(timeout=10)
        self._started = True
        self._recover()
        _log.debug(
            "service started %s",
            kv(root=self.root, workers=self.config.workers, jobs=self.config.jobs),
        )
        return self

    async def _setup(self) -> None:
        self._queue = asyncio.PriorityQueue()
        self._batcher = _SpecBatcher(self)
        self._tasks = [asyncio.create_task(self._batcher.run())]
        for _ in range(self.config.workers):
            self._tasks.append(asyncio.create_task(self._worker()))

    def _recover(self) -> None:
        """Re-register stored jobs; interrupted ones go back on the queue."""
        requeue: list[Job] = []
        with self._lock:
            for job in self.store.load_all():
                self._jobs[job.id] = job
                if job.state in ACTIVE_STATES:
                    job.state = "queued"
                    self.store.put(job)
                    requeue.append(job)
        for job in requeue:
            self._tally("jobs.recovered")
            self._enqueue(job)
        if requeue:
            _log.debug("recovered %d interrupted job(s)", len(requeue))

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting work and wait for queued+running jobs to finish.

        Returns True once no job is active; False if ``timeout`` expired
        first (remaining jobs stay persisted as queued/running and are
        recovered by the next start).
        """
        with self._lock:
            self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                active = sum(1 for j in self._jobs.values() if j.state in ACTIVE_STATES)
            if not active:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    def close(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Drain (optionally), stop all tasks, and tear the loop down."""
        if not self._started:
            return
        if drain:
            self.drain(timeout=timeout)
        loop = self._loop
        assert loop is not None and self._queue is not None
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(
                timeout=timeout
            )
        except TimeoutError:  # pragma: no cover - jobs stuck past the deadline
            _log.warning("service shutdown timed out; abandoning worker tasks")
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._job_pool.shutdown(wait=False)
        self._batch_pool.shutdown(wait=False)
        self._started = False
        _log.debug("service stopped")

    async def _shutdown(self) -> None:
        assert self._queue is not None and self._batcher is not None
        for _ in range(self.config.workers):
            self._queue.put_nowait(_STOP)
        self._batcher.stop()
        await asyncio.gather(*self._tasks, return_exceptions=True)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- the public request surface ---------------------------------------------------

    def submit(
        self, kind: str, payload: dict | None = None, priority: int | None = None
    ) -> tuple[Job, bool]:
        """Admit one request; returns ``(job, deduped)``.

        ``deduped`` is True when an identical request was already queued,
        running, or done — the existing job is returned and no new work
        is created.  A previously *failed* identical request is re-queued.
        Raises :class:`~repro.errors.QueueFullError` when the queue is at
        capacity or the service is draining.
        """
        if not self._started:
            raise ServiceError("service is not started")
        request = _requests.compile_request(kind, payload)
        job_id = request.fingerprint()
        priority = self.config.default_priority if priority is None else int(priority)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.state != "failed":
                self._tally_locked("jobs.deduped")
                return existing, True
            if self._draining:
                raise QueueFullError(
                    "service is draining and not accepting new jobs",
                    retry_after=self.config.retry_after,
                    draining=True,
                )
            active = sum(1 for j in self._jobs.values() if j.state in ACTIVE_STATES)
            if active >= self.config.max_queue:
                self._tally_locked("admission.rejected")
                raise QueueFullError(
                    f"job queue is full ({active}/{self.config.max_queue})",
                    retry_after=self.config.retry_after,
                )
            if existing is not None:  # failed -> re-queue under the same id
                job = existing
                job.state = "queued"
                job.error = None
                job.result = None
                job.finished = None
                job.priority = priority
            else:
                job = Job(id=job_id, kind=kind, payload=request.canonical, priority=priority)
            self._jobs[job.id] = job
            self.store.put(job)
            self._tally_locked("jobs.submitted")
        self._enqueue(job)
        return job, False

    def status(self, job_id: str) -> Job:
        """The job as last persisted (idempotent; survives restarts)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            job = self.store.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return job

    def result(self, job_id: str) -> Job:
        """Like :meth:`status`; callers read ``job.result`` / ``job.error``."""
        return self.status(job_id)

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.02) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job.state in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            time.sleep(poll)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created)

    def stats(self) -> dict:
        """Always-on service tallies plus current queue occupancy."""
        with self._lock:
            states = collections.Counter(j.state for j in self._jobs.values())
            counters = dict(self._counters)
            draining = self._draining
        executed = counters.get("batch.specs", 0)
        planned = counters.get("plan.specs", 0)
        return {
            "draining": draining,
            "jobs": {state: states.get(state, 0) for state in ("queued", "running", "done", "failed")},
            "counters": counters,
            "dedup_hit_ratio": round(1.0 - executed / planned, 4) if planned else 0.0,
        }

    # -- internals --------------------------------------------------------------------

    def _enqueue(self, job: Job) -> None:
        assert self._loop is not None and self._queue is not None
        with self._lock:
            seq = next(self._seq)
        asyncio.run_coroutine_threadsafe(
            self._queue.put((job.priority, seq, job.id)), self._loop
        ).result(timeout=5)
        obs.registry().set_gauge("service.queue.depth", self._queue.qsize())

    async def _worker(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            try:
                if item is _STOP:
                    return
                job_id = item[2]
                with self._lock:
                    job = self._jobs.get(job_id)
                    if job is None or job.state != "queued":
                        continue  # stale queue entry (deduped resubmit, recovery)
                    job.state = "running"
                    job.started = time.time()
                    self.store.put(job)
                t0 = time.perf_counter()
                try:
                    result = await asyncio.wait_for(
                        loop.run_in_executor(self._job_pool, self._execute_job, job),
                        timeout=self.config.job_timeout,
                    )
                except asyncio.TimeoutError:
                    self._finish(
                        job,
                        "failed",
                        error=f"job timed out after {self.config.job_timeout:g}s",
                        seconds=time.perf_counter() - t0,
                    )
                except Exception as exc:  # noqa: BLE001 - job failure, not service failure
                    self._finish(
                        job, "failed", error=str(exc), seconds=time.perf_counter() - t0
                    )
                else:
                    self._finish(job, "done", result=result, seconds=time.perf_counter() - t0)
            finally:
                self._queue.task_done()

    def _finish(
        self,
        job: Job,
        state: str,
        result: dict | None = None,
        error: str | None = None,
        seconds: float = 0.0,
    ) -> None:
        with self._lock:
            job.state = state
            job.result = result
            job.error = error
            job.finished = time.time()
            self.store.put(job)
            self._tally_locked("jobs.done" if state == "done" else "jobs.failed")
        obs.registry().observe("service.job_seconds", seconds)
        obs.registry().set_gauge("service.queue.depth", self._queue.qsize() if self._queue else 0)
        _log.debug(
            "job finished %s",
            kv(job=job.id, kind=job.kind, state=state, seconds=f"{seconds:.3f}", error=error),
        )

    def _execute_job(self, job: Job) -> dict:
        """The job body (runs in a job-pool thread): plan, batch, assemble."""
        with obs.tracer().span("service.job", kind=job.kind, job=job.id):
            request = _requests.compile_request(job.kind, job.payload)
            last_exc: BaseException | None = None
            for attempt in range(self.config.retries + 1):
                with self._lock:
                    job.attempts += 1
                    self.store.put(job)
                if attempt:
                    self._tally("jobs.retries")
                    _log.warning(
                        "retrying job %s",
                        kv(job=job.id, attempt=attempt + 1, max=self.config.retries + 1),
                    )
                try:
                    return self._execute_once(request).to_dict()
                except TRANSIENT_EXCEPTIONS as exc:
                    last_exc = exc
            assert last_exc is not None
            raise last_exc

    def _execute_once(self, request: _requests.CompiledRequest) -> _requests.RequestResult:
        plan = self.planner.plan(request)
        self._tally("plan.specs", len(plan.specs))
        self._tally("plan.cache_hits", plan.cache_hits)
        self._tally("plan.inflight_waits", len(plan.waiting))
        if plan.claimed:
            assert self._loop is not None and self._batcher is not None
            fut = asyncio.run_coroutine_threadsafe(
                self._batcher.submit(plan.claimed), self._loop
            )
            try:
                fut.result()
            except Exception as exc:  # noqa: BLE001 - assembly below retries serially
                self._tally("batch.failures")
                _log.warning("spec batch failed %s", kv(reason=exc))
            finally:
                self.planner.complete(plan)
        if plan.waiting:
            self.planner.wait(plan, timeout=self.config.job_timeout)
        # Everything is (normally) cached now; assembly re-reads the records
        # in request order and runs the pure-analysis stage.  Anything still
        # missing — a failed batch, a corrupt entry — executes serially here,
        # with the engine's own transient-retry logic.
        with obs.tracer().span("service.assemble", kind=request.kind):
            return request.execute(
                cache_root=self.root, executor=SerialExecutor(), progress=None
            )

    def _run_batch(self, specs: list[RunSpec]) -> None:
        """Batch body (runs in the dedicated batch thread)."""
        with obs.tracer().span("service.batch", specs=len(specs)):
            self.executor.run(specs, cache=self.run_cache)

    def _tally(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._tally_locked(name, value)

    def _tally_locked(self, name: str, value: int = 1) -> None:
        self._counters[name] += value
        obs.registry().inc(f"service.{name}", value)
