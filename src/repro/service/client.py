"""A minimal urllib client for the analysis service HTTP API.

Mirrors the server's backpressure semantics: a 429/503 raises
:class:`~repro.errors.QueueFullError` carrying the server's
``Retry-After`` advice, and :meth:`ServiceClient.submit` can optionally
retry-with-backoff on the caller's behalf.  Used by ``scaltool submit``
/ ``status`` / ``result`` and the service load benchmark.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request

from ..errors import JobNotFoundError, QueueFullError, ServiceError

__all__ = ["ServiceClient", "DEFAULT_URL", "default_service_url"]

DEFAULT_URL = "http://127.0.0.1:8032"
_ENV_VAR = "SCALTOOL_SERVICE_URL"


def default_service_url() -> str:
    """$SCALTOOL_SERVICE_URL, or the local default."""
    return os.environ.get(_ENV_VAR, DEFAULT_URL)


class ServiceClient:
    """Talk to a running ``scaltool serve`` instance."""

    def __init__(self, base_url: str | None = None, timeout: float = 30.0) -> None:
        self.base_url = (base_url or default_service_url()).rstrip("/")
        self.timeout = timeout

    # -- transport --------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                payload = {}
            message = payload.get("error", f"HTTP {exc.code}")
            if exc.code in (429, 503):
                raise QueueFullError(
                    message,
                    retry_after=float(
                        payload.get("retry_after", exc.headers.get("Retry-After", 1))
                    ),
                    draining=exc.code == 503,
                ) from None
            if exc.code == 404:
                raise JobNotFoundError(message) from None
            raise ServiceError(message) from None
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServiceError(f"cannot reach service at {self.base_url}: {exc}") from exc

    # -- API --------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")[1]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def submit(
        self,
        kind: str,
        payload: dict | None = None,
        priority: int | None = None,
        retries: int = 0,
    ) -> dict:
        """Submit a request; returns ``{"id", "state", "deduped"}``.

        ``retries > 0`` makes the client honour 429 backpressure itself:
        it sleeps the server's ``Retry-After`` and resubmits, up to
        ``retries`` times, before letting :class:`QueueFullError` out.
        """
        body: dict = {"kind": kind, "payload": payload or {}}
        if priority is not None:
            body["priority"] = priority
        attempt = 0
        while True:
            try:
                return self._request("POST", "/v1/jobs", body)[1]
            except QueueFullError as exc:
                if exc.draining or attempt >= retries:
                    raise
                attempt += 1
                time.sleep(exc.retry_after)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def result(self, job_id: str) -> dict:
        """The result view: may still be pending (``state`` != done/failed)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")[1]

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.1) -> dict:
        """Poll until the job is done or failed; returns the result view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.result(job_id)
            if view["state"] in ("done", "failed"):
                return view
            if time.monotonic() >= deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            time.sleep(poll)

    def drain(self, timeout: float | None = None) -> bool:
        body = {} if timeout is None else {"timeout": timeout}
        return self._request("POST", "/v1/drain", body)[1]["drained"]
