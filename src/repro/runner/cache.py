"""On-disk memoisation of campaigns, built on the engine's per-run cache.

Campaigns are deterministic (seeded simulator, seeded workloads), so every
run is fully identified by its :class:`~repro.runner.engine.RunSpec`.
Caching happens at *run* granularity in the engine's content-addressed
:class:`~repro.runner.engine.RunCache` (``<cache root>/runs/``): a changed
grid point, processor count, or machine parameter re-executes only the
affected runs, and sweeps/what-ifs that share runs with a past campaign
reuse them for free.

The campaign JSONL manifest is still written — one per campaign, keyed by
a hash of (workload + parameters, the full machine configuration at every
planned processor count, campaign plan) — but it is an *export format*
for ``CampaignData.load`` / external tooling, not the cache itself.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict
from pathlib import Path

from .campaign import CampaignConfig, CampaignData, ProgressCallback, ScalToolCampaign
from .engine import Executor, RunCache, default_cache_root
from .experiment import MachineFactory, default_machine_factory
from .records import save_records
from ..obs import runtime as obs
from ..obs.logs import get_logger, kv
from ..workloads.base import Workload

__all__ = ["campaign_cache_dir", "cached_campaign"]

_log = get_logger("runner.cache")

#: Manifests this process wrote, with the (mtime_ns, size) stamp observed
#: right after writing.  An all-hit read may skip the re-export only when
#: the on-disk manifest is *provably* the one we exported — anything else
#: (another writer, truncation, corruption) gets rewritten, keeping the
#: "a broken manifest heals on the next call" contract.
_manifest_lock = threading.Lock()
_manifest_stamps: dict[Path, tuple[int, int]] = {}


def _stamp(path: Path) -> tuple[int, int] | None:
    try:
        st = path.stat()
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


def campaign_cache_dir() -> Path:
    """Cache root: $SCALTOOL_CACHE_DIR or .scaltool_cache in the cwd."""
    return default_cache_root()


def _machine_ident(factory: MachineFactory, counts: tuple[int, ...]) -> dict:
    """The *full* machine configuration at every planned processor count.

    Summarising ``factory(1)`` alone is not enough: a factory may vary
    victim buffers, protocol, timing — anything — with ``n_processors``,
    and the key must see it.
    """
    return {str(n): asdict(factory(n)) for n in sorted(set(counts) | {1})}


def _campaign_key(workload: Workload, config: CampaignConfig, machine_ident: dict) -> str:
    ident = {
        "workload": workload.name,
        "params": workload.describe_params(),
        "machine": machine_ident,
        "s0": config.s0,
        "counts": list(config.processor_counts),
        "min_fraction_bytes": config.min_fraction_bytes,
        "sync_kernel_barriers": config.sync_kernel_barriers,
        "spin_kernel_episodes": config.spin_kernel_episodes,
        "run_kernels": config.run_kernels,
        "format": 4,
    }
    return hashlib.sha256(json.dumps(ident, sort_keys=True).encode()).hexdigest()[:20]


def cached_campaign(
    workload: Workload,
    config: CampaignConfig,
    machine_factory: MachineFactory | None = None,
    cache_dir: str | Path | None = None,
    refresh: bool = False,
    progress: ProgressCallback | None = None,
    executor: Executor | None = None,
    run_cache: RunCache | None = None,
) -> CampaignData:
    """Run the campaign for ``workload`` under ``config``, reusing cached runs.

    Every planned run resolves against the engine's per-run cache under
    ``<cache dir>/runs/``: hits load from disk (and *still* report through
    ``progress``, so verbose campaigns never look hung on a warm cache),
    misses execute — serially or via ``executor`` — and are stored.  A
    corrupt cache entry is never silently fatal: it is logged with path
    and reason, counted (``engine.cache.corrupt``), and re-executed.  The
    campaign-level ``cache.hit`` / ``cache.miss`` / ``cache.partial`` /
    ``cache.refresh`` metrics summarise how the batch resolved, and the
    JSONL manifest is (re)exported after any call that executed a run
    (an all-hit read with the manifest already on disk skips the
    re-export — the records are unchanged by construction).

    ``run_cache`` substitutes the per-run cache instance itself (the
    serving layer passes its shared, memoised cache so every assembly in
    the process reuses parsed records); it must be rooted at
    ``<cache dir>/runs`` for the manifest to stay beside its runs.
    """
    factory = machine_factory or default_machine_factory()
    root = Path(cache_dir) if cache_dir else campaign_cache_dir()
    if run_cache is None:
        run_cache = RunCache(root / "runs")
    campaign = ScalToolCampaign(workload, config, machine_factory=factory)
    key = _campaign_key(workload, config, _machine_ident(factory, config.processor_counts))
    manifest = root / f"{workload.name}_{key}.jsonl"
    reg = obs.registry()

    hits = 0
    misses = 0

    def _count(outcome) -> None:
        nonlocal hits, misses
        if outcome.cached:
            hits += 1
        else:
            misses += 1

    data = campaign.run(
        progress=progress,
        executor=executor,
        cache=run_cache,
        refresh=refresh,
        on_outcome=_count,
    )

    if refresh:
        reg.inc("cache.refresh")
    elif misses == 0 and hits:
        reg.inc("cache.hit")
        _log.debug("campaign cache hit %s", kv(manifest=manifest, records=hits))
    elif hits == 0:
        reg.inc("cache.miss")
    else:
        reg.inc("cache.partial")
        _log.debug(
            "campaign cache partial %s", kv(manifest=manifest, hits=hits, misses=misses)
        )

    # An all-hit resolution produced exactly the records the manifest
    # already holds; rewriting it would serialise every record again on
    # every warm read — the service's hottest path.  Skip only when the
    # file on disk still carries our own write stamp.
    with _manifest_lock:
        unchanged = _manifest_stamps.get(manifest) is not None and _manifest_stamps[
            manifest
        ] == _stamp(manifest)
    if misses or refresh or not unchanged:
        save_records(data.records, manifest)
        with _manifest_lock:
            stamp = _stamp(manifest)
            if stamp is not None:
                _manifest_stamps[manifest] = stamp
    return data
