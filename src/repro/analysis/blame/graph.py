"""The scaling graph: segments as vertices, program structure as edges.

One graph merges three observability layers over a campaign's n-sweep:

* the per-segment counter decomposition (:mod:`repro.core.segments`) —
  each named phase group becomes a vertex carrying its cycle breakdown
  (compute / L2-hit stalls / memory stalls / sync / residual) at every
  measured processor count;
* the engine/service span trees (PR 4) — ``engine.execute`` span
  durations give each processor count a wall-clock weight, which the
  graph apportions to vertices by their cycle share;
* the run lineage (PR 5) — every vertex carries the spec keys of the
  base runs whose phase counters fed it, so a blame finding can be
  walked back to concrete cached runs.

Edges encode program structure the way ScalAna's program-structure graph
does, at segment granularity: ``program_order`` edges chain the segments
in first-execution order, and a ``sync`` edge points at each
barrier-carrying segment from its predecessor — the work whose imbalance
a barrier inside the segment would wait out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...core.scaltool import ScalToolAnalysis
from ...core.segments import SegmentBreakdown, analyze_segments, phase_names
from ...errors import InsufficientDataError
from ...runner.campaign import CampaignData
from ...runner.records import ROLE_APP_BASE

__all__ = [
    "BlameVertex",
    "BlameEdge",
    "ScalingGraph",
    "build_scaling_graph",
    "default_groups",
    "wall_by_count",
]

#: The campaign-level isolated-cost curves copied onto the graph.
CURVE_KEYS = ("base", "l2lim", "sync", "imb")


@dataclass
class BlameVertex:
    """One segment across the whole n-sweep."""

    name: str
    pattern: str
    order: int  # first-execution position among the segments
    by_n: dict[int, SegmentBreakdown] = field(default_factory=dict)
    lineage_refs: list[str] = field(default_factory=list)
    wall_seconds: dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "pattern": self.pattern,
            "order": self.order,
            "by_n": {str(n): b.row() for n, b in sorted(self.by_n.items())},
            "lineage_refs": list(self.lineage_refs),
            "wall_seconds": {str(n): s for n, s in sorted(self.wall_seconds.items())},
        }


@dataclass(frozen=True)
class BlameEdge:
    """A directed structural edge (``program_order`` or ``sync``)."""

    src: str
    dst: str
    kind: str

    def to_dict(self) -> dict:
        return {"src": self.src, "dst": self.dst, "kind": self.kind}


@dataclass
class ScalingGraph:
    """Everything the detector and backtracker read."""

    workload: str
    s0: int
    processor_counts: list[int]
    groups: dict[str, str]
    vertices: dict[str, BlameVertex]
    edges: list[BlameEdge]
    #: Campaign-level accumulated-cycle curves: key -> {n: cycles}.
    curves: dict[str, dict[int, float]]
    #: Eq. 9/10 split of the event-31 cost at each n.
    frac_syn: dict[int, float]
    frac_imb: dict[int, float]

    def ordered(self) -> list[BlameVertex]:
        return sorted(self.vertices.values(), key=lambda v: (v.order, v.name))

    def predecessors(self, name: str, kind: str | None = None) -> list[BlameVertex]:
        """Vertices with an edge into ``name`` (optionally of one kind)."""
        preds = []
        for edge in self.edges:
            if edge.dst != name:
                continue
            if kind is not None and edge.kind != kind:
                continue
            if edge.src in self.vertices:
                preds.append(self.vertices[edge.src])
        return sorted(preds, key=lambda v: (v.order, v.name))


def default_groups(campaign: CampaignData) -> dict[str, str]:
    """One segment per phase-name prefix (the ``segments`` verb default)."""
    prefixes = sorted({name.split("_")[0] for name in phase_names(campaign)})
    return {p: f"{p}*" for p in prefixes}


def wall_by_count(spans: list[dict] | None) -> dict[int, float]:
    """Summed ``engine.execute`` span seconds per processor count.

    ``spans`` is the span-dict list a job timeline stores; returns an
    empty dict when no spans (or none with an ``n`` attribute) exist, in
    which case the graph simply carries no wall attribution.
    """
    wall: dict[int, float] = {}
    for span in spans or []:
        if span.get("name") != "engine.execute":
            continue
        n = span.get("attrs", {}).get("n")
        if n is None:
            continue
        try:
            n = int(n)
        except (TypeError, ValueError):
            continue
        wall[n] = wall.get(n, 0.0) + float(span.get("duration_s", 0.0))
    return wall


def _lineage_refs(base_runs: dict, counts: list[int]) -> list[str]:
    """One reference per contributing base run, per processor count.

    When an ambient lineage collector is active (the request execution
    path), the reference is the run's actual content-addressed spec key —
    the same ``key`` the result's lineage record lists, so a finding can
    be joined to ``scaltool explain`` output exactly.  Without a
    collector (e.g. blaming a saved campaign directory) the reference
    falls back to the run's identity tuple, which the lineage table's
    workload/role/size/n columns still resolve.
    """
    from ...obs import lineage as _lineage

    by_ident: dict[tuple, str] = {}
    collector = _lineage.current()
    if collector is not None:
        for entry in collector.build("", "").specs:
            ident = (
                entry["workload"],
                entry["role"],
                entry["size_bytes"],
                entry["n_processors"],
            )
            by_ident[ident] = entry["key"]
    refs = []
    for n in counts:
        rec = base_runs.get(n)
        if rec is None:
            continue
        ident = (rec.workload, ROLE_APP_BASE, rec.size_bytes, rec.n_processors)
        refs.append(
            by_ident.get(ident, f"{rec.workload}:{ROLE_APP_BASE}:s{rec.size_bytes}:n{rec.n_processors}")
        )
    return refs


def _segment_order(campaign: CampaignData, groups: dict[str, str], n: int) -> dict[str, int]:
    """Segment -> index of its first matching phase in the base run at n."""
    import fnmatch

    names = phase_names(campaign, n)
    order: dict[str, int] = {}
    for segment, pattern in groups.items():
        for i, phase in enumerate(names):
            if fnmatch.fnmatch(phase, pattern):
                order[segment] = i
                break
    return order


def build_scaling_graph(
    analysis: ScalToolAnalysis,
    campaign: CampaignData,
    groups: dict[str, str] | None = None,
    spans: list[dict] | None = None,
) -> ScalingGraph:
    """Merge segments, campaign curves, lineage, and spans into one graph."""
    groups = dict(groups) if groups else default_groups(campaign)
    counts = [int(n) for n in analysis.curves.processor_counts]
    if not counts:
        raise InsufficientDataError("analysis carries no processor counts")
    seg = analyze_segments(analysis, campaign, groups, counts)

    base_runs = campaign.base_runs()
    lineage_refs = _lineage_refs(base_runs, counts)
    order = _segment_order(campaign, groups, counts[0])
    wall = wall_by_count(spans)
    total_cycles = {n: sum(seg.at(s, n).cycles for s in groups) for n in counts}

    vertices: dict[str, BlameVertex] = {}
    for i, name in enumerate(sorted(groups, key=lambda s: (order.get(s, 1 << 30), s))):
        vertex = BlameVertex(name=name, pattern=groups[name], order=i)
        for n in counts:
            b = seg.at(name, n)
            vertex.by_n[n] = b
            if n in wall and total_cycles[n] > 0:
                vertex.wall_seconds[n] = wall[n] * b.cycles / total_cycles[n]
        vertex.lineage_refs = list(lineage_refs)
        vertices[name] = vertex

    ordered = sorted(vertices.values(), key=lambda v: v.order)
    edges: list[BlameEdge] = []
    for prev, nxt in zip(ordered, ordered[1:]):
        edges.append(BlameEdge(src=prev.name, dst=nxt.name, kind="program_order"))
    top = counts[-1]
    for prev, nxt in zip(ordered, ordered[1:]):
        if nxt.by_n[top].sync_cycles > 0:
            edges.append(BlameEdge(src=prev.name, dst=nxt.name, kind="sync"))

    curves = {
        "base": {n: float(analysis.curves.base[n]) for n in counts},
        "l2lim": {n: float(analysis.curves.l2lim_cost[n]) for n in counts},
        "sync": {n: float(analysis.curves.sync_cost[n]) for n in counts},
        "imb": {n: float(analysis.curves.imb_cost[n]) for n in counts},
    }
    frac_syn: dict[int, float] = {}
    frac_imb: dict[int, float] = {}
    for n in counts:
        try:
            frac_syn[n] = float(analysis.sync.frac_syn(n))
            frac_imb[n] = float(analysis.sync.frac_imb(n))
        except Exception:  # noqa: BLE001 - fractions are advisory evidence
            frac_syn[n] = 0.0
            frac_imb[n] = 0.0

    return ScalingGraph(
        workload=analysis.workload,
        s0=campaign.s0,
        processor_counts=counts,
        groups=groups,
        vertices=vertices,
        edges=edges,
        curves=curves,
        frac_syn=frac_syn,
        frac_imb=frac_imb,
    )
