"""Ablation A1: the unbiased cpi0 estimator (Section 2.2, Eq. 2).

The paper replaces Lubeck's biased small-data-set CPI with an adjusted
estimator that removes the compulsory-miss cycles.  This ablation
quantifies the bias on all three applications and verifies the adjustment
moves the estimate toward the workloads' true compute CPI.
"""

from repro.core.estimators import adjust_cpi0, cpi0_run, fit_t2_tm
from repro.viz.tables import format_table
from repro.workloads import Hydro2d, Swim, T3dheat

TRUE_CPI0 = {"t3dheat": T3dheat.cpi0, "hydro2d": Hydro2d.cpi0, "swim": Swim.cpi0}


def ablate(campaign, l2_bytes):
    uniproc = {s: r.without_ground_truth() for s, r in campaign.uniprocessor_runs().items()}
    small = cpi0_run(uniproc, l2_bytes)
    biased = small.counters.cpi
    t2, tm, _ = fit_t2_tm(uniproc, biased, l2_bytes)
    unbiased = adjust_cpi0(biased, small, t2, tm)
    return {"biased": biased, "unbiased": unbiased, "run_size": small.size_bytes}


def test_ablation_cpi0(benchmark, emit, t3dheat_campaign, hydro2d_campaign, swim_campaign):
    campaigns = {
        "t3dheat": t3dheat_campaign,
        "hydro2d": hydro2d_campaign,
        "swim": swim_campaign,
    }

    def run_all():
        out = {}
        for name, campaign in campaigns.items():
            l2 = int(campaign.records[0].machine["l2_bytes"])
            out[name] = ablate(campaign, l2)
        return out

    results = benchmark(run_all)
    rows = [
        {
            "app": name,
            "true cpi0": TRUE_CPI0[name],
            "biased (Lubeck)": r["biased"],
            "unbiased (Eq. 2)": r["unbiased"],
            "bias removed": r["biased"] - r["unbiased"],
            "cpi0 run size (B)": r["run_size"],
        }
        for name, r in results.items()
    ]
    emit("ablation_cpi0", format_table(rows, title="A1: biased vs unbiased cpi0"))

    for name, r in results.items():
        # Eq. 2 never moves the estimate away from the truth
        true = TRUE_CPI0[name]
        assert abs(r["unbiased"] - true) <= abs(r["biased"] - true) + 0.02
        # residual overestimate remains (scale-invariant per-barrier costs
        # and L1-stall absorption -- documented in EXPERIMENTS.md)
        assert r["unbiased"] >= true - 0.05
