"""AnalysisService: admission, priorities, dedup, retries, drain, recovery.

Queue mechanics run against the event-controlled ``stub_requests``
fixture (no simulator); the end-to-end tests at the bottom run real
requests over the shared warm cache.
"""

import pytest

from repro.errors import QueueFullError, ServiceError
from repro.service.core import AnalysisService, ServiceConfig
from repro.service.requests import compile_request
from repro.service.store import Job, JobStore

from .conftest import WARM_PAYLOAD


def config(tmp_path, **kw):
    defaults = dict(cache_dir=tmp_path, workers=1, batch_window=0.0, retries=0)
    defaults.update(kw)
    return ServiceConfig(**defaults)


@pytest.fixture
def service(tmp_path):
    services = []

    def make(**kw):
        svc = AnalysisService(config(tmp_path, **kw)).start()
        services.append(svc)
        return svc

    yield make
    for svc in services:
        svc.close(drain=False, timeout=5)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ServiceError):
            ServiceConfig(workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ServiceError):
            ServiceConfig(retries=-1)


class TestLifecycle:
    def test_submit_before_start_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="not started"):
            AnalysisService(config(tmp_path)).submit("stub", {"name": "x"})

    def test_job_runs_to_done(self, service, stub_requests):
        svc = service()
        job, deduped = svc.submit("stub", {"name": "a"})
        assert not deduped and job.state in ("queued", "running")
        finished = svc.wait(job.id, timeout=10)
        assert finished.state == "done"
        assert finished.result["output"] == "stub:a\n"
        assert finished.started is not None and finished.finished is not None
        assert stub_requests.executed == ["a"]

    def test_status_of_unknown_job(self, service):
        from repro.errors import JobNotFoundError

        with pytest.raises(JobNotFoundError):
            service().status("jnope")

    def test_close_is_idempotent(self, service):
        svc = service()
        svc.close(drain=True, timeout=5)
        svc.close(drain=True, timeout=5)


class TestDedup:
    def test_identical_submit_dedupes(self, service, stub_requests):
        svc = service()
        gate = stub_requests.gate("a")
        first, _ = svc.submit("stub", {"name": "a"})
        again, deduped = svc.submit("stub", {"name": "a"})
        assert deduped and again.id == first.id
        gate.set()
        svc.wait(first.id, timeout=10)
        # Done jobs stay deduped: no re-execution.
        final, deduped = svc.submit("stub", {"name": "a"})
        assert deduped and final.state == "done"
        assert stub_requests.executed == ["a"]

    def test_failed_job_resubmit_requeues(self, service, stub_requests):
        svc = service()
        stub_requests.fail_hard.add("a")
        job, _ = svc.submit("stub", {"name": "a"})
        assert svc.wait(job.id, timeout=10).state == "failed"
        stub_requests.fail_hard.discard("a")
        retried, deduped = svc.submit("stub", {"name": "a"})
        assert not deduped and retried.id == job.id
        assert svc.wait(job.id, timeout=10).state == "done"


class TestPriorities:
    def test_lower_priority_number_runs_first(self, service, stub_requests):
        svc = service(workers=1)
        gate = stub_requests.gate("blocker")
        blocker, _ = svc.submit("stub", {"name": "blocker"})
        stub_requests.started["blocker"].wait(timeout=5)
        # Queued behind the blocker, in "wrong" submission order.
        low, _ = svc.submit("stub", {"name": "low"}, priority=9)
        high, _ = svc.submit("stub", {"name": "high"}, priority=1)
        gate.set()
        for job in (blocker, low, high):
            assert svc.wait(job.id, timeout=10).state == "done"
        assert stub_requests.executed == ["blocker", "high", "low"]


class TestBackpressure:
    def test_queue_full_raises_with_retry_after(self, service, stub_requests):
        svc = service(workers=1, max_queue=2, retry_after=3.5)
        gate = stub_requests.gate("a")
        svc.submit("stub", {"name": "a"})
        stub_requests.started["a"].wait(timeout=5)
        svc.submit("stub", {"name": "b"})
        with pytest.raises(QueueFullError) as exc_info:
            svc.submit("stub", {"name": "c"})
        assert exc_info.value.retry_after == 3.5
        assert not exc_info.value.draining
        assert svc.stats()["counters"]["admission.rejected"] == 1
        gate.set()
        # Capacity frees up as jobs finish.
        svc.wait(next(j.id for j in svc.jobs() if j.payload["name"] == "b"), timeout=10)
        svc.submit("stub", {"name": "c"})

    def test_deduped_submit_accepted_even_when_full(self, service, stub_requests):
        svc = service(workers=1, max_queue=1)
        gate = stub_requests.gate("a")
        job, _ = svc.submit("stub", {"name": "a"})
        _, deduped = svc.submit("stub", {"name": "a"})
        assert deduped  # idempotent resubmit is not an admission
        gate.set()
        svc.wait(job.id, timeout=10)


class TestDrain:
    def test_drain_rejects_new_work_and_finishes_old(self, service, stub_requests):
        svc = service(workers=1)
        gate = stub_requests.gate("a")
        job, _ = svc.submit("stub", {"name": "a"})
        stub_requests.started["a"].wait(timeout=5)
        assert svc.drain(timeout=0.05) is False  # still running
        with pytest.raises(QueueFullError) as exc_info:
            svc.submit("stub", {"name": "b"})
        assert exc_info.value.draining
        gate.set()
        assert svc.drain(timeout=10) is True
        assert svc.status(job.id).state == "done"


class TestTimeoutsAndRetries:
    def test_job_timeout_fails_job(self, service, stub_requests):
        svc = service(job_timeout=0.2)
        gate = stub_requests.gate("slow")
        job, _ = svc.submit("stub", {"name": "slow"})
        finished = svc.wait(job.id, timeout=10)
        assert finished.state == "failed"
        assert "timed out" in finished.error
        gate.set()  # unblock the abandoned thread so teardown is clean

    def test_transient_failures_retried(self, service, stub_requests):
        svc = service(retries=2)
        stub_requests.fail_transient["flaky"] = 2
        job, _ = svc.submit("stub", {"name": "flaky"})
        finished = svc.wait(job.id, timeout=10)
        assert finished.state == "done"
        assert finished.attempts == 3
        assert svc.stats()["counters"]["jobs.retries"] == 2

    def test_transient_failures_exhaust_to_failed(self, service, stub_requests):
        svc = service(retries=1)
        stub_requests.fail_transient["doomed"] = 99
        job, _ = svc.submit("stub", {"name": "doomed"})
        finished = svc.wait(job.id, timeout=10)
        assert finished.state == "failed"
        assert "transient failure" in finished.error
        assert finished.attempts == 2

    def test_hard_failure_not_retried(self, service, stub_requests):
        svc = service(retries=3)
        stub_requests.fail_hard.add("broken")
        job, _ = svc.submit("stub", {"name": "broken"})
        finished = svc.wait(job.id, timeout=10)
        assert finished.state == "failed" and finished.attempts == 1


class TestRecovery:
    def test_interrupted_jobs_requeue_on_start(self, tmp_path, stub_requests):
        # A previous process died mid-flight: its store holds one running,
        # one queued, and one done job.
        store = JobStore(tmp_path / "service" / "jobs")
        store.put(Job(id="j" + "1" * 16, kind="stub", payload={"name": "r1"}, state="running"))
        store.put(Job(id="j" + "2" * 16, kind="stub", payload={"name": "r2"}, state="queued"))
        store.put(
            Job(
                id="j" + "3" * 16,
                kind="stub",
                payload={"name": "old"},
                state="done",
                result={"output": "stub:old\n", "data": {}},
            )
        )
        svc = AnalysisService(config(tmp_path)).start()
        try:
            assert svc.wait("j" + "1" * 16, timeout=10).state == "done"
            assert svc.wait("j" + "2" * 16, timeout=10).state == "done"
            # The finished job is served idempotently, not re-executed.
            done = svc.status("j" + "3" * 16)
            assert done.state == "done" and done.result["output"] == "stub:old\n"
            assert sorted(stub_requests.executed) == ["r1", "r2"]
            assert svc.stats()["counters"]["jobs.recovered"] == 2
        finally:
            svc.close(drain=True, timeout=10)

    def test_no_entries_lost_or_duplicated_across_restart(self, tmp_path, stub_requests):
        svc = AnalysisService(config(tmp_path)).start()
        ids = [svc.submit("stub", {"name": f"n{i}"})[0].id for i in range(4)]
        for job_id in ids:
            svc.wait(job_id, timeout=10)
        svc.close(drain=True, timeout=10)

        svc2 = AnalysisService(config(tmp_path)).start()
        try:
            stored = [j.id for j in svc2.jobs()]
            assert sorted(stored) == sorted(ids)  # nothing lost, nothing doubled
            for job_id in ids:
                assert svc2.status(job_id).state == "done"
            # Recovery re-queued nothing: all jobs were terminal.
            assert "jobs.recovered" not in svc2.stats()["counters"]
        finally:
            svc2.close(drain=True, timeout=10)


class TestEndToEnd:
    """Real requests over the shared warm cache."""

    def test_analyze_job_and_batching_stats(self, warm_root):
        svc = AnalysisService(
            ServiceConfig(cache_dir=warm_root, workers=2, batch_window=0.01)
        ).start()
        try:
            job, _ = svc.submit("analyze", WARM_PAYLOAD)
            finished = svc.wait(job.id, timeout=120)
            assert finished.state == "done", finished.error
            assert "synthetic" in finished.result["output"]
            stats = svc.stats()
            # Everything resolved from the warm cache: no batch executed.
            assert stats["counters"]["plan.cache_hits"] == stats["counters"]["plan.specs"]
            assert stats["dedup_hit_ratio"] == 1.0
        finally:
            svc.close(drain=True, timeout=30)

    def test_concurrent_jobs_share_one_batch(self, tmp_path):
        # Cold cache + four campaign-backed jobs over the same campaign:
        # the planner + batcher must execute each spec exactly once.
        svc = AnalysisService(
            ServiceConfig(cache_dir=tmp_path / "cold", workers=4, batch_window=0.05)
        ).start()
        try:
            payloads = [
                ("analyze", WARM_PAYLOAD),
                ("campaign", WARM_PAYLOAD),
                ("whatif", {**WARM_PAYLOAD, "tm": 0.5}),
                ("whatif", {**WARM_PAYLOAD, "t2": 0.5}),
            ]
            jobs = [svc.submit(kind, payload)[0] for kind, payload in payloads]
            for job in jobs:
                finished = svc.wait(job.id, timeout=300)
                assert finished.state == "done", finished.error
            counters = svc.stats()["counters"]
            spec_count = len(compile_request("analyze", WARM_PAYLOAD).specs())
            # 4 jobs planned the same specs; only one copy executed.
            assert counters["plan.specs"] == 4 * spec_count
            assert counters["batch.specs"] == spec_count
            assert svc.stats()["dedup_hit_ratio"] == 0.75
        finally:
            svc.close(drain=True, timeout=30)
