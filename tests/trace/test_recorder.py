"""Trace recording and replay."""

import pytest

from repro.errors import TraceError
from repro.machine.system import DsmMachine
from repro.trace.recorder import RecordedTrace, TraceReplayWorkload, record_workload
from repro.workloads import LockedRegions, Swim

from ..conftest import small_synthetic, tiny_machine_config


@pytest.fixture
def recorded(tiny_cfg):
    return record_workload(small_synthetic(), tiny_cfg, 16 * 1024)


class TestRecord:
    def test_captures_phases(self, recorded):
        assert recorded.total_refs > 0
        assert recorded.phases[0].name == "init"
        assert recorded.n_processors == 4

    def test_lock_workloads_rejected(self, tiny_cfg):
        with pytest.raises(TraceError):
            record_workload(LockedRegions(iters=1), tiny_cfg, 8 * 1024)


class TestRoundTrip:
    def test_save_load(self, recorded, tmp_path):
        path = recorded.save(tmp_path / "trace.npz")
        back = RecordedTrace.load(path)
        assert back.workload_name == recorded.workload_name
        assert back.total_refs == recorded.total_refs
        assert len(back.phases) == len(recorded.phases)
        for p1, p2 in zip(recorded.phases, back.phases):
            assert p1.name == p2.name
            assert p1.barrier == p2.barrier
            for s1, s2 in zip(p1.segments, p2.segments):
                if s1 is None:
                    assert s2 is None
                else:
                    assert (s1.addrs == s2.addrs).all()
                    assert (s1.writes == s2.writes).all()
                    assert s1.n_instructions == s2.n_instructions

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            RecordedTrace.load(tmp_path / "nope.npz")

    def test_serial_phases_preserved(self, tiny_cfg, tmp_path):
        trace = record_workload(small_synthetic(serial_frac=0.1), tiny_cfg, 16 * 1024)
        path = trace.save(tmp_path / "t.npz")
        back = RecordedTrace.load(path)
        serial = [p for p in back.phases if p.name.startswith("serial")]
        assert serial and serial[0].segments[1] is None


class TestReplay:
    def test_replay_matches_original(self, tiny_cfg, recorded):
        original = DsmMachine(tiny_cfg).run(small_synthetic(), 16 * 1024)
        replay = DsmMachine(tiny_cfg).run(TraceReplayWorkload(recorded), 16 * 1024)
        assert replay.counters == original.counters

    def test_replay_from_file(self, tiny_cfg, recorded, tmp_path):
        path = recorded.save(tmp_path / "t.npz")
        wl = TraceReplayWorkload.from_file(path)
        res = DsmMachine(tiny_cfg).run(wl, 16 * 1024)
        assert res.counters.cycles > 0

    def test_replay_under_other_protocol(self, recorded):
        cfg = tiny_machine_config(protocol="msi")
        res = DsmMachine(cfg).run(TraceReplayWorkload(recorded), 16 * 1024)
        assert res.ground_truth.total_cycles == pytest.approx(res.counters.cycles, rel=1e-9)

    def test_replay_under_other_cache_size(self):
        # a uniprocessor trace whose footprint overflows the small L2 but
        # fits the big one: the cache-size what-if on a frozen trace
        from repro.machine.config import CacheConfig

        base = tiny_machine_config(n_processors=1)
        trace = record_workload(small_synthetic(iters=3), base, 16 * 1024)
        big = tiny_machine_config(
            n_processors=1,
            l2=CacheConfig(size=32 * 1024, line_size=32, name="L2"),
        )
        small_res = DsmMachine(base).run(TraceReplayWorkload(trace), 16 * 1024)
        big_res = DsmMachine(big).run(TraceReplayWorkload(trace), 16 * 1024)
        assert big_res.counters.l2_misses < small_res.counters.l2_misses

    def test_wrong_processor_count_rejected(self, recorded):
        cfg = tiny_machine_config(n_processors=2)
        with pytest.raises(TraceError):
            DsmMachine(cfg).run(TraceReplayWorkload(recorded), 16 * 1024)

    def test_wrong_size_rejected(self, tiny_cfg, recorded):
        with pytest.raises(TraceError):
            DsmMachine(tiny_cfg).run(TraceReplayWorkload(recorded), 8 * 1024)

    def test_replay_swim_full(self, tmp_path):
        cfg = tiny_machine_config(n_processors=2)
        wl = Swim(iters=1)
        trace = record_workload(wl, cfg, 16 * 1024)
        trace.save(tmp_path / "swim.npz")
        replay = TraceReplayWorkload.from_file(tmp_path / "swim.npz")
        original = DsmMachine(cfg).run(wl, 16 * 1024)
        replayed = DsmMachine(cfg).run(replay, 16 * 1024)
        assert replayed.counters == original.counters
