"""Render diagnostics and lineage records for the terminal.

Used by the analysis report (diagnostics section), ``scaltool explain``
(lineage walk-back) and ``scaltool doctor`` (stored vs revalidated
grades).  Input is the JSON-friendly dict form so the views work on
in-memory records and on records loaded back from a job store alike.
"""

from __future__ import annotations

from .tables import format_table

__all__ = ["render_diagnostics", "render_lineage"]


def _ci_text(ci: dict) -> str:
    parts = []
    for param in sorted(ci):
        lo, hi = ci[param]
        parts.append(f"{param}:[{lo:.2f},{hi:.2f}]")
    return " ".join(parts)


def render_diagnostics(diag: dict, title: str = "estimation diagnostics") -> str:
    """One table row per check, flags listed underneath."""
    rows = []
    for check in diag.get("checks", []):
        r2 = check.get("r_squared")
        rms = check.get("residual_rms")
        cond = check.get("condition_number")
        rows.append(
            {
                "check": check.get("name", "?"),
                "eq": check.get("equation", ""),
                "grade": check.get("grade", "?"),
                "pts": check.get("n_points", 0),
                "R2": f"{r2:.4f}" if r2 is not None else "-",
                "rms": f"{rms:.4g}" if rms is not None else "-",
                "cond": f"{cond:.3g}" if cond is not None else "-",
                "95% CI": _ci_text(check.get("ci", {})) or "-",
            }
        )
    lines = [f"{title}: {diag.get('health', '?')}"]
    if rows:
        lines.append(format_table(rows))
    flags = [
        f"  {check.get('name', '?')}: {flag}"
        for check in diag.get("checks", [])
        for flag in check.get("flags", [])
    ]
    if flags:
        lines.append("findings:")
        lines.extend(flags)
    return "\n".join(lines)


def render_lineage(lineage: dict, title: str = "result lineage") -> str:
    """The runs (and cache provenance) behind one analysis result."""
    header = [
        f"{title}",
        f"  kind:         {lineage.get('kind', '?')}",
        f"  fingerprint:  {lineage.get('fingerprint', '?')}",
        f"  code version: {lineage.get('code_version', '?')}",
    ]
    trace_id = lineage.get("trace_id")
    if trace_id:
        header.append(f"  trace id:     {trace_id}")
    hits = lineage.get("cache_hits", 0)
    misses = lineage.get("cache_misses", 0)
    header.append(f"  runs:         {hits + misses} ({hits} cached, {misses} executed)")
    rows = [
        {
            "spec": e.get("key", "?"),
            "workload": e.get("workload", "?"),
            "role": e.get("role", "?"),
            "size": e.get("size_bytes", 0),
            "n": e.get("n_processors", 0),
            "machine": e.get("machine_hash", "") or "-",
            "source": "cache" if e.get("cached") else "executed",
            "s": f"{e.get('seconds', 0.0):.3f}",
        }
        for e in lineage.get("specs", [])
    ]
    out = "\n".join(header)
    if rows:
        out += "\n" + format_table(rows)
    return out
