#!/usr/bin/env python3
"""The motivating comparison: existing tools vs Scal-Tool (Table 1, Section 1).

Measures Hydro2d's execution time and synchronization/spin fraction the
"existing tools" way — one `time` run plus one intrusive speedshop run per
processor count — then does the Scal-Tool campaign, and compares both the
resource bill and the answers.

Run:  python examples/compare_tools.py
"""

from repro.core import ScalTool
from repro.core.runplan import table1_rows
from repro.machine.config import origin2000_scaled
from repro.machine.system import DsmMachine
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.tools.speedshop import profile_run
from repro.tools.timetool import execution_seconds
from repro.viz.tables import format_table
from repro.workloads import Hydro2d

COUNTS = (1, 2, 4, 8)


def existing_tools_measurement(workload) -> list[dict]:
    """One `time` run + one profiled run per processor count."""
    rows = []
    for n in COUNTS:
        machine = DsmMachine(origin2000_scaled(n_processors=n))
        timed = machine.run(workload, workload.default_size())

        machine = DsmMachine(origin2000_scaled(n_processors=n))
        profiled = machine.run(workload, workload.default_size())
        profile = profile_run(profiled, sampling_period=10_000, seed=n)

        rows.append(
            {
                "n": n,
                "time (s)": execution_seconds(timed),
                "sync+spin fraction": profile.mp_fraction,
            }
        )
    return rows


def main() -> None:
    workload = Hydro2d()

    print("== The existing-tools way (time + speedshop, 2 runs per count) ==")
    rows = existing_tools_measurement(workload)
    print(format_table(rows))
    print()

    print("== The Scal-Tool way (one campaign, counters only) ==")
    config = CampaignConfig(s0=workload.default_size(), processor_counts=COUNTS)
    campaign = cached_campaign(workload, config)
    analysis = ScalTool(campaign).analyze()
    tool_rows = [
        {
            "n": n,
            "est MP fraction": analysis.mp_fraction(n),
            "dominant bottleneck": analysis.dominant_bottleneck(n),
        }
        for n in COUNTS
    ]
    print(format_table(tool_rows))
    print()

    print("== The resource bill (Table 1, here at n = 4 counts) ==")
    bill = [
        {"methodology": label, "runs": runs, "processors": procs, "files": files}
        for label, runs, procs, files in table1_rows(len(COUNTS))
    ]
    print(format_table(bill))
    print(
        "\nAnd Scal-Tool additionally isolates *which* bottleneck (caching "
        "space vs sync vs imbalance) and supports what-if analysis — "
        "speedshop's numbers cannot do either."
    )


if __name__ == "__main__":
    main()
