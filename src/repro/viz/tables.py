"""Aligned text tables for reports and bench output."""

from __future__ import annotations

__all__ = ["format_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: list[dict],
    columns: list[str] | None = None,
    title: str = "",
) -> str:
    """Render a list of row dicts as an aligned ASCII table.

    Column order follows ``columns`` (default: the first row's key order);
    missing cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = columns or list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.rjust(w) for c, w in zip(cols, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
