"""Machine configuration dataclasses and Origin 2000 presets.

All sizes are bytes, all latencies are processor cycles.  Configurations are
validated eagerly so that an inconsistent machine fails at construction, not
mid-simulation.

Two presets are provided:

``origin2000_full``
    The machine of the paper (Section 3): 250 MHz R10000, 32 KB L1 data
    cache, 4 MB unified L2, directory CC-NUMA over a bristled hypercube.
    Usable for analytic what-if computations; too large to trace-simulate
    with realistic data sets in pure Python.

``origin2000_scaled``
    The same machine shrunk by a constant factor (default 64x) in every
    capacity while preserving the ratios the model depends on.  This is the
    default substrate for all experiments (see DESIGN.md section 6).  At the
    default scale the paper's working-set arithmetic carries over exactly:
    T3dheat's 40 MB footprint becomes 640 KB against 64 KB L2s, so the
    caching-space knee still falls at ~10 processors (40 MB / 4 MB).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from ..errors import ConfigError
from ..units import MB, KB, is_power_of_two, parse_size

__all__ = [
    "CacheConfig",
    "TimingConfig",
    "InterconnectConfig",
    "MemoryConfig",
    "MachineConfig",
    "origin2000_full",
    "origin2000_scaled",
    "REPLACEMENT_POLICIES",
    "TOPOLOGIES",
    "PLACEMENTS",
]

REPLACEMENT_POLICIES = ("lru", "fifo", "random", "plru")
TOPOLOGIES = ("hypercube", "mesh", "ring", "crossbar")
PLACEMENTS = ("first_touch", "round_robin", "block")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache.

    Parameters
    ----------
    size:
        Total capacity in bytes (or a string like ``"32KB"``).
    line_size:
        Cache line (block) size in bytes; all caches in a machine must share
        one line size so block identities are level-independent.
    associativity:
        Ways per set.  ``size / (line_size * associativity)`` must be a
        positive power of two.
    replacement:
        One of ``"lru"``, ``"fifo"``, ``"random"``, ``"plru"``.
    name:
        Label used in reports (``"L1D"``, ``"L2"``).
    """

    size: int
    line_size: int = 32
    associativity: int = 2
    replacement: str = "lru"
    name: str = "cache"

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", parse_size(self.size))
        if self.line_size <= 0 or not is_power_of_two(self.line_size):
            raise ConfigError(f"{self.name}: line_size must be a power of two, got {self.line_size}")
        if self.associativity <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        if self.replacement not in REPLACEMENT_POLICIES:
            raise ConfigError(
                f"{self.name}: unknown replacement {self.replacement!r}; "
                f"expected one of {REPLACEMENT_POLICIES}"
            )
        if self.size % (self.line_size * self.associativity) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size} not divisible by "
                f"line_size*associativity = {self.line_size * self.associativity}"
            )
        if not is_power_of_two(self.n_sets):
            raise ConfigError(f"{self.name}: number of sets {self.n_sets} must be a power of two")

    @property
    def n_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size // self.line_size

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_lines // self.associativity

    def scaled(self, factor: int) -> "CacheConfig":
        """Return a copy with ``size`` divided by ``factor`` (capacity scaling)."""
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        new_size = self.size // factor
        min_size = self.line_size * self.associativity
        if new_size < min_size:
            new_size = min_size
        return replace(self, size=new_size)


@dataclass(frozen=True)
class TimingConfig:
    """Latency parameters of the machine, in processor cycles.

    These are the machine's *true* values; Scal-Tool never sees them and must
    recover their observable combinations (t2, tm(n), tsyn) from counters.

    Attributes
    ----------
    t_l2_hit:
        Extra cycles for a load/store that misses L1 and hits L2 (the
        paper's ``t2``).
    t_mem:
        Base memory service time for an L2 miss satisfied by the local
        memory (directory lookup included); the paper's ``tm`` at n=1.
    t_hop:
        Network latency per router-to-router hop, charged twice (request +
        reply) for remote accesses.
    t_dirty_remote:
        Extra cycles when an L2 miss must be serviced by a remote cache
        holding the line dirty (cache-to-cache intervention).
    t_upgrade:
        Cycles for a store that hits a Shared line and must invalidate other
        sharers (beyond the L2 hit cost).
    t_writeback:
        Cycles charged to the evicting processor for writing back a dirty
        victim.  This is deliberately *outside* the paper's model: it is one
        of the second-order effects that make the empirical fit inexact,
        like on real hardware.
    t_fetchop:
        Uncontended round-trip of a fetch-and-op to its home memory
        (the Origin's fetchop facility); distance costs are added on top.
    t_fetchop_service:
        Serialization time of the fetchop ALU at the home memory; concurrent
        barrier arrivals queue at this rate, making cpi_sync grow with n.
    spin_cpi:
        CPI of the idle spin loop (the paper's cpi_imb): spin instructions
        are cached-flag loads, so this is close to 1.
    barrier_instructions:
        Non-fetchop instructions each processor executes per barrier episode
        (entry/exit bookkeeping), charged at the workload's cpi0.
    t_prefetch_factor:
        Fraction of the miss latency actually exposed when the miss is part
        of a detected sequential stream.  MIPSpro at -O3 software-prefetches
        unit-stride loops (all three SPECFP applications of the paper), so
        streaming misses overlap with compute; random/gather misses pay the
        full latency.  Set to 1.0 to disable prefetching.
    t_tlb_miss:
        Software-refill cost of a data-TLB miss (only charged when
        ``MachineConfig.tlb_entries`` > 0).  TLB misses sit outside the
        paper's Equation 1 — perfex reports them, but the model ignores
        them — so enabling the TLB adds a realistic unmodeled residual.
    """

    t_l2_hit: float = 10.0
    t_mem: float = 60.0
    t_hop: float = 8.0
    t_dirty_remote: float = 30.0
    t_upgrade: float = 25.0
    t_writeback: float = 4.0
    t_fetchop: float = 70.0
    t_fetchop_service: float = 12.0
    spin_cpi: float = 1.1
    barrier_instructions: int = 24
    t_prefetch_factor: float = 0.3
    t_tlb_miss: float = 25.0

    def __post_init__(self) -> None:
        for name in (
            "t_l2_hit",
            "t_mem",
            "t_hop",
            "t_dirty_remote",
            "t_upgrade",
            "t_writeback",
            "t_fetchop",
            "t_fetchop_service",
            "spin_cpi",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"timing parameter {name} must be non-negative")
        if self.spin_cpi <= 0:
            raise ConfigError("spin_cpi must be positive")
        if not (0.0 < self.t_prefetch_factor <= 1.0):
            raise ConfigError("t_prefetch_factor must be in (0, 1]")
        if self.barrier_instructions < 1:
            raise ConfigError("barrier_instructions must be >= 1")


@dataclass(frozen=True)
class InterconnectConfig:
    """Network topology parameters.

    ``bristle`` processors share one router (the Origin 2000 attaches two
    nodes per router of its hypercube — "bristled hypercube").
    """

    topology: str = "hypercube"
    bristle: int = 2

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ConfigError(f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}")
        if self.bristle < 1:
            raise ConfigError("bristle must be >= 1")


@dataclass(frozen=True)
class MemoryConfig:
    """NUMA memory organisation.

    ``page_size`` is in bytes; homes are assigned per page by ``placement``:

    * ``first_touch`` — the first processor to reference any block of the
      page becomes its home (the Origin / IRIX default policy);
    * ``round_robin`` — pages are interleaved across nodes;
    * ``block`` — contiguous page ranges are split evenly across nodes.
    """

    page_size: int = 512
    placement: str = "first_touch"

    def __post_init__(self) -> None:
        object.__setattr__(self, "page_size", parse_size(self.page_size))
        if self.page_size <= 0 or not is_power_of_two(self.page_size):
            raise ConfigError("page_size must be a positive power of two")
        if self.placement not in PLACEMENTS:
            raise ConfigError(f"unknown placement {self.placement!r}; expected one of {PLACEMENTS}")


@dataclass(frozen=True)
class MachineConfig:
    """A complete DSM machine description."""

    n_processors: int = 1
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(size=1 * KB, associativity=2, name="L1D"))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(size=32 * KB, associativity=2, name="L2"))
    timing: TimingConfig = field(default_factory=TimingConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    seed: int = 0
    interleave_chunk: int = 32
    model_instruction_misses: bool = False
    #: Coherence protocol: "mesi" (Illinois, as on the Origin 2000) or
    #: "msi" (no Exclusive state: every store to a Shared line — even a
    #: sole copy — is an upgrade, inflating event 31).
    protocol: str = "mesi"
    #: Data-TLB entries per processor (0 disables the TLB model).
    tlb_entries: int = 0
    #: Victim-buffer entries behind each L2 (0 disables it).  A small
    #: fully-associative buffer that catches just-evicted lines turns many
    #: conflict misses into cheap refills — a hardware counterpoint to the
    #: paper's "insufficient caching space" bottleneck.
    victim_entries: int = 0

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ConfigError("n_processors must be >= 1")
        if self.protocol not in ("mesi", "msi"):
            raise ConfigError(f"unknown protocol {self.protocol!r}; expected 'mesi' or 'msi'")
        if self.tlb_entries < 0:
            raise ConfigError("tlb_entries must be >= 0")
        if self.victim_entries < 0:
            raise ConfigError("victim_entries must be >= 0")
        if self.l1.line_size != self.l2.line_size:
            raise ConfigError(
                f"L1 and L2 must share one line size (got {self.l1.line_size} vs {self.l2.line_size})"
            )
        if self.l1.size > self.l2.size:
            raise ConfigError("inclusive hierarchy requires L1 size <= L2 size")
        if self.interleave_chunk < 1:
            raise ConfigError("interleave_chunk must be >= 1")

    @property
    def line_size(self) -> int:
        """Block size shared by both cache levels."""
        return self.l1.line_size

    def with_processors(self, n: int) -> "MachineConfig":
        """Same machine at a different processor count."""
        return replace(self, n_processors=n)

    def with_l2_size(self, size: int) -> "MachineConfig":
        """Same machine with a different L2 capacity (what-if support)."""
        return replace(self, l2=replace(self.l2, size=parse_size(size)))

    def aggregate_l2_bytes(self) -> int:
        """Total L2 capacity across the machine — the paper's "caching space"."""
        return self.l2.size * self.n_processors


def origin2000_full(n_processors: int = 32) -> MachineConfig:
    """The paper's machine at full scale (Section 3): for analytic use only."""
    return MachineConfig(
        n_processors=n_processors,
        l1=CacheConfig(size=32 * KB, line_size=32, associativity=2, name="L1D"),
        l2=CacheConfig(size=4 * MB, line_size=32, associativity=2, name="L2"),
        timing=TimingConfig(),
        interconnect=InterconnectConfig(topology="hypercube", bristle=2),
        memory=MemoryConfig(page_size=16 * KB, placement="first_touch"),
    )


@lru_cache(maxsize=1024)
def origin2000_scaled(n_processors: int = 1, scale: int = 64, seed: int = 0) -> MachineConfig:
    """The default experimental substrate: Origin 2000 shrunk by ``scale``.

    Capacities (caches, pages) shrink by ``scale``; latencies, topology, and
    associativities are unchanged, so hit-rate/latency *ratios* match the
    full machine when data sets are shrunk by the same factor.

    Pure in its scalar arguments and the result is a frozen value, so the
    construction is memoised — a serving workload rebuilds the same few
    machine points on every request.
    """
    if scale <= 0:
        raise ConfigError("scale must be positive")
    full = origin2000_full(n_processors)
    page = max(128, (16 * KB) // scale)
    return MachineConfig(
        n_processors=n_processors,
        l1=full.l1.scaled(scale),
        l2=full.l2.scaled(scale),
        timing=full.timing,
        interconnect=full.interconnect,
        memory=MemoryConfig(page_size=page, placement="first_touch"),
        seed=seed,
    )
