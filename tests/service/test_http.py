"""HTTP API + client: routes, backpressure codes, end-to-end jobs."""

import json
import urllib.request

import pytest

from repro.errors import JobNotFoundError, QueueFullError, ServiceError
from repro.service.client import ServiceClient, default_service_url
from repro.service.core import ServiceConfig
from repro.service.http import ServiceServer

from .conftest import WARM_PAYLOAD


@pytest.fixture
def server(tmp_path, stub_requests):
    srv = ServiceServer(
        ServiceConfig(cache_dir=tmp_path, workers=1, batch_window=0.0), port=0
    ).start()
    yield srv
    srv.service._draining = False  # tests may leave it draining
    stub_requests.release_all()
    srv.shutdown(drain_timeout=10)


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=10)


class TestRoutes:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"] == {"queued": 0, "running": 0, "done": 0, "failed": 0}

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(server.url + "/nope")
        assert exc_info.value.code == 404

    def test_submit_status_result_cycle(self, client, stub_requests):
        submitted = client.submit("stub", {"name": "a"})
        assert submitted["id"].startswith("j") and not submitted["deduped"]
        view = client.wait(submitted["id"], timeout=10)
        assert view["state"] == "done"
        assert view["result"]["output"] == "stub:a\n"
        status = client.status(submitted["id"])
        assert status["has_result"] and "result" not in status

    def test_result_of_pending_job_is_202(self, server, client, stub_requests):
        gate = stub_requests.gate("slow")
        submitted = client.submit("stub", {"name": "slow"})
        view = client.result(submitted["id"])
        assert view["state"] in ("queued", "running") and "result" not in view
        gate.set()
        assert client.wait(submitted["id"], timeout=10)["state"] == "done"

    def test_failed_job_result_carries_error(self, client, stub_requests):
        stub_requests.fail_hard.add("broken")
        submitted = client.submit("stub", {"name": "broken"})
        view = client.wait(submitted["id"], timeout=10)
        assert view["state"] == "failed"
        assert "hard failure" in view["error"]

    def test_unknown_job_404(self, client):
        with pytest.raises(JobNotFoundError):
            client.status("j" + "f" * 16)

    def test_bad_kind_400(self, client):
        with pytest.raises(ServiceError, match="unknown request kind"):
            client.submit("explode", {})

    def test_bad_payload_400(self, client):
        with pytest.raises(ServiceError, match="workload"):
            client.submit("analyze", {})

    def test_bad_json_body_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/jobs", data=b"{broken", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req)
        assert exc_info.value.code == 400

    def test_jobs_listing(self, client, stub_requests):
        client.submit("stub", {"name": "a"})
        client.submit("stub", {"name": "b"})
        assert len(client.jobs()) == 2

    def test_stats_route(self, client, stub_requests):
        submitted = client.submit("stub", {"name": "a"})
        client.wait(submitted["id"], timeout=10)
        stats = client.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["counters"]["jobs.submitted"] == 1


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path, stub_requests):
        srv = ServiceServer(
            ServiceConfig(
                cache_dir=tmp_path, workers=1, max_queue=1, retry_after=2.0
            ),
            port=0,
        ).start()
        try:
            client = ServiceClient(srv.url, timeout=10)
            gate = stub_requests.gate("a")
            client.submit("stub", {"name": "a"})
            stub_requests.started["a"].wait(timeout=5)
            # Raw check: status code and Retry-After header.
            body = json.dumps({"kind": "stub", "payload": {"name": "b"}}).encode()
            req = urllib.request.Request(
                srv.url + "/v1/jobs",
                data=body,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(req)
            assert exc_info.value.code == 429
            assert exc_info.value.headers["Retry-After"] == "2"
            # Client translation: QueueFullError with the advisory delay.
            with pytest.raises(QueueFullError) as exc_info:
                client.submit("stub", {"name": "b"})
            assert exc_info.value.retry_after == 2.0 and not exc_info.value.draining
            gate.set()
        finally:
            stub_requests.release_all()
            srv.shutdown(drain_timeout=10)

    def test_client_retries_429_until_admitted(self, tmp_path, stub_requests):
        srv = ServiceServer(
            ServiceConfig(
                cache_dir=tmp_path, workers=1, max_queue=1, retry_after=0.05
            ),
            port=0,
        ).start()
        try:
            client = ServiceClient(srv.url, timeout=10)
            gate = stub_requests.gate("a")
            client.submit("stub", {"name": "a"})
            stub_requests.started["a"].wait(timeout=5)
            gate.set()  # frees the slot while the client backs off
            submitted = client.submit("stub", {"name": "b"}, retries=20)
            assert client.wait(submitted["id"], timeout=10)["state"] == "done"
        finally:
            srv.shutdown(drain_timeout=10)

    def test_draining_is_503(self, server, client, stub_requests):
        assert client.drain(timeout=5) is True
        assert client.health()["status"] == "draining"
        with pytest.raises(QueueFullError) as exc_info:
            client.submit("stub", {"name": "late"})
        assert exc_info.value.draining


class TestClient:
    def test_default_url_env_override(self, monkeypatch):
        monkeypatch.setenv("SCALTOOL_SERVICE_URL", "http://example:9")
        assert default_service_url() == "http://example:9"
        assert ServiceClient().base_url == "http://example:9"

    def test_unreachable_service_is_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestEndToEnd:
    def test_analyze_over_http_matches_direct_execution(self, warm_root):
        from repro.service.requests import compile_request

        srv = ServiceServer(
            ServiceConfig(cache_dir=warm_root, workers=2), port=0
        ).start()
        try:
            client = ServiceClient(srv.url, timeout=30)
            submitted = client.submit("analyze", WARM_PAYLOAD)
            view = client.wait(submitted["id"], timeout=120)
            assert view["state"] == "done"
            direct = compile_request("analyze", WARM_PAYLOAD).execute(
                cache_root=warm_root
            )
            assert view["result"]["output"] == direct.output
        finally:
            srv.shutdown(drain_timeout=30)
