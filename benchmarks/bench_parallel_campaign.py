"""Serial vs parallel campaign execution: wall time and equivalence.

The engine's contract is that a :class:`~repro.runner.engine.ParallelExecutor`
produces *byte-identical* records to a :class:`~repro.runner.engine.SerialExecutor`
for the same plan, only (on a multi-core box) faster.  This bench times
both over the same campaign plan, verifies the record lists are identical
JSON, and records the measured speedup into ``benchmarks/results/``.

The speedup column is honest about the hardware: on a single-core
container the parallel run pays process-pool overhead and the speedup is
<= 1; on an m-core machine it approaches min(jobs, m) for this embarrass-
ingly parallel plan.  The equivalence assertion is the part that must
hold everywhere.

``run_benchmark`` is importable (the tier-1 suite smoke-runs it with one
worker and a tiny plan), and the pytest bench below records the real
numbers for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.runner.campaign import CampaignConfig, ScalToolCampaign
from repro.runner.engine import ParallelExecutor, SerialExecutor
from repro.workloads import SyntheticWorkload


def _campaign(s0: int, counts: tuple[int, ...]) -> ScalToolCampaign:
    cfg = CampaignConfig(
        s0=s0,
        processor_counts=counts,
        sync_kernel_barriers=10,
        spin_kernel_episodes=3,
    )
    return ScalToolCampaign(SyntheticWorkload(), cfg)


def run_benchmark(
    s0: int = 160 * 1024,
    counts: tuple[int, ...] = (1, 2, 4, 8),
    jobs: int = 4,
    results_dir: str | Path | None = None,
) -> dict:
    """Time one campaign plan serial vs parallel; verify identical records.

    Returns the measurement dict and, when ``results_dir`` is given,
    writes it there as ``parallel_campaign.json`` plus a human-readable
    ``parallel_campaign.txt``.
    """
    campaign = _campaign(s0, counts)
    n_runs = len(campaign.planned_runs())

    t0 = time.perf_counter()
    serial = campaign.run(executor=SerialExecutor())
    serial_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    parallel = campaign.run(executor=ParallelExecutor(jobs=jobs))
    parallel_s = time.perf_counter() - t1

    serial_json = [r.to_json() for r in serial.records]
    parallel_json = [r.to_json() for r in parallel.records]
    identical = serial_json == parallel_json

    result = {
        "workload": "synthetic",
        "s0": s0,
        "counts": list(counts),
        "runs": n_runs,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "identical_records": identical,
    }

    if results_dir is not None:
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "parallel_campaign.json").write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
        (results_dir / "parallel_campaign.txt").write_text(format_result(result) + "\n")
    return result


def format_result(result: dict) -> str:
    return "\n".join(
        [
            f"parallel campaign execution (synthetic, s0={result['s0']}, "
            f"counts={','.join(str(c) for c in result['counts'])})",
            f"{'runs in plan':.<45s} {result['runs']:>12d}",
            f"{'worker processes (--jobs)':.<45s} {result['jobs']:>12d}",
            f"{'host cpu count':.<45s} {result['cpu_count']:>12d}",
            f"{'serial wall time':.<45s} {result['serial_seconds'] * 1e3:>12.1f} ms",
            f"{'parallel wall time':.<45s} {result['parallel_seconds'] * 1e3:>12.1f} ms",
            f"{'speedup (serial / parallel)':.<45s} {result['speedup']:>12.2f} x",
            f"{'records byte-identical':.<45s} {str(result['identical_records']):>12s}",
        ]
    )


def test_parallel_campaign_speedup(emit):
    jobs = min(4, os.cpu_count() or 1)
    result = run_benchmark(jobs=jobs, results_dir=Path(__file__).parent / "results")
    emit("parallel_campaign", format_result(result))

    # The portable contract: same records, bit for bit.
    assert result["identical_records"]
    # Honest perf note, not a hard gate: only insist on a speedup when the
    # host actually has the cores to provide one.
    if jobs >= 4 and (os.cpu_count() or 1) >= 4:
        assert result["speedup"] >= 3.0, (
            f"4-worker speedup {result['speedup']:.2f}x < 3x on a "
            f"{os.cpu_count()}-core host"
        )
