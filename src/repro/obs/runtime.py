"""The observability switch: one process-wide session, off by default.

Instrumented modules bind the active tracer/registry through the two
accessors::

    from ..obs import runtime as obs

    tracer = obs.tracer()          # NOOP_TRACER when disabled
    with tracer.span("machine.run", n=8):
        ...
    obs.registry().inc("campaign.runs")

Both accessors are one global read plus one attribute read — no dict
lookups, no allocation — and return module-level no-op singletons when
no session is active, so the disabled cost of an instrumentation point
is a single no-op method call.  The contract for instrumented code:
call these at *run / phase / stage* granularity only, never inside
per-reference simulator loops (those are observed via always-on integer
tallies that get folded into metrics at run boundaries).

Sessions nest: :func:`enable` returns the new session and
:func:`disable` restores whatever was active before, so a library user
can profile a region inside a larger profiled program.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from .metrics import NOOP_REGISTRY, MetricsRegistry
from .spans import NOOP_TRACER, Tracer

__all__ = [
    "ObsSession",
    "enable",
    "disable",
    "active",
    "is_enabled",
    "tracer",
    "registry",
    "session",
]


class ObsSession:
    """One enable()..disable() window: a tracer plus a metrics registry."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.tracer = Tracer(clock=clock)
        self.registry = MetricsRegistry()
        self._previous: "ObsSession | None" = None


_active: ObsSession | None = None


def enable(clock: Callable[[], float] = time.perf_counter) -> ObsSession:
    """Install (and return) a fresh session; the previous one is stacked."""
    global _active
    new = ObsSession(clock=clock)
    new._previous = _active
    _active = new
    return new


def disable() -> ObsSession | None:
    """Deactivate the current session (its data stays readable); returns it."""
    global _active
    finished = _active
    if finished is not None:
        _active = finished._previous
    return finished


def active() -> ObsSession | None:
    return _active


def is_enabled() -> bool:
    return _active is not None


def tracer():
    """The active tracer, or the no-op singleton."""
    s = _active
    return s.tracer if s is not None else NOOP_TRACER


def registry():
    """The active metrics registry, or the no-op singleton."""
    s = _active
    return s.registry if s is not None else NOOP_REGISTRY


@contextmanager
def session(clock: Callable[[], float] = time.perf_counter) -> Iterator[ObsSession]:
    """``with obs.session() as s:`` — enable for a block, always disable."""
    s = enable(clock=clock)
    try:
        yield s
    finally:
        # Unwind to *this* session even if the block leaked an enable().
        while True:
            finished = disable()
            if finished is s or finished is None:
                break
