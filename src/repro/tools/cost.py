"""Tool-cost accounting (paper Table 1).

For the motivating example — measure execution time and the fraction of
cycles in synchronization/spinning for processor counts 1, 2, 4, ...,
2^(n-1) — the paper counts runs, total processors, and output files for
the existing-tools methodology (``time`` + ``speedshop``) versus
Scal-Tool's run plan (Table 3).  These closed forms regenerate Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ToolCost", "existing_tools_cost", "scal_tool_cost", "table1_rows"]


@dataclass(frozen=True)
class ToolCost:
    """Resources one methodology needs for the n-point scaling study."""

    label: str
    runs: int
    processors: int
    files: int

    def row(self) -> tuple[str, int, int, int]:
        return (self.label, self.runs, self.processors, self.files)


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigError("n must be >= 1 (processor counts 1 .. 2^(n-1))")


def time_cost(n: int) -> ToolCost:
    """``time``: one run per processor count."""
    _check_n(n)
    return ToolCost("Execution Time: (time)", n, 2**n - 1, n)


def speedshop_cost(n: int) -> ToolCost:
    """``speedshop``: one (intrusive) profiled run per processor count."""
    _check_n(n)
    return ToolCost("Synch+Spin Fraction: (speedshop)", n, 2**n - 1, n)


def existing_tools_cost(n: int) -> ToolCost:
    """Paper Table 1 "Total with Existing Tools": 2n runs, 2^(n+1)-2, 2n."""
    t, s = time_cost(n), speedshop_cost(n)
    return ToolCost(
        "Total with Existing Tools",
        t.runs + s.runs,
        t.processors + s.processors,
        t.files + s.files,
    )


def scal_tool_cost(n: int) -> ToolCost:
    """Paper Table 1 "Total with Scal-Tool": 2n-1 runs, 2^n+n-2, 2n-1.

    n multiprocessor runs at the base size (1, 2, ..., 2^(n-1) processors)
    plus n-1 uniprocessor runs at fractional sizes, one file each.
    """
    _check_n(n)
    return ToolCost("Total with Scal-Tool", 2 * n - 1, 2**n + n - 2, 2 * n - 1)


def table1_rows(n: int) -> list[tuple[str, int, int, int]]:
    """All four rows of Table 1 for the given n."""
    return [
        time_cost(n).row(),
        speedshop_cost(n).row(),
        existing_tools_cost(n).row(),
        scal_tool_cost(n).row(),
    ]


def processor_savings(n: int) -> float:
    """Scal-Tool's processor usage relative to the existing tools.

    The paper: "for runs up to 32 processors (n = 6), Scal-Tool needs only
    about 50% of the processors".
    """
    return scal_tool_cost(n).processors / existing_tools_cost(n).processors
