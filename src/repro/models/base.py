"""The model protocol and shared fit machinery.

A :class:`ScalabilityModel` turns a :class:`~repro.models.dataset.SpeedupDataset`
into a :class:`ModelFit`: fitted coefficients with seeded-bootstrap CIs, a
speedup-axis R², per-point residuals, the predicted peak-speedup count
n\\*, and a graded :class:`~repro.obs.diagnostics.FitDiagnostics` record
(kind ``model_fit``) so every fitted number carries the same quality
evidence the Scal-Tool estimators do.

Degenerate curves fail *before* any algebra runs — :func:`validate_for_fit`
raises the same typed errors the estimator layer uses
(:class:`~repro.errors.InsufficientDataError` /
:class:`~repro.errors.EstimationError`, offending inputs named) instead of
letting a rank-deficient solve return NaN coefficients:

* fewer points than the model's minimum (4: two coefficients plus real
  residual evidence);
* duplicate or non-positive processor counts;
* non-finite or non-positive speedups;
* all-equal speedups (no scaling signal to fit);
* an oscillating curve (more than one rise/fall reversal — a clean
  retrograde curve has exactly one, which the models represent; a sawtooth
  is measurement noise);
* no n=1 baseline to anchor the normalization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..errors import EstimationError, InsufficientDataError
from ..obs.diagnostics import FitDiagnostics, apply_rules
from .dataset import SpeedupDataset

__all__ = [
    "MIN_FIT_POINTS",
    "ModelFit",
    "ScalabilityModel",
    "validate_for_fit",
    "normalized_speedups",
    "speedup_r_squared",
    "model_fit_diagnostics",
]

#: Two coefficients plus residual evidence: the paper-suite minimum.
MIN_FIT_POINTS = 4


@runtime_checkable
class ScalabilityModel(Protocol):
    """Anything that fits a closed-form model to a speedup curve."""

    name: str
    equation: str

    def fit(self, dataset: SpeedupDataset) -> "ModelFit":  # pragma: no cover - protocol
        ...


@dataclass
class ModelFit:
    """One model's fit of one dataset.

    ``params``/``ci`` hold the fitted coefficients and their seeded
    bootstrap 95% intervals; ``residuals`` are measured − modeled on the
    *speedup* axis (one per dataset point), and ``r_squared`` is computed
    there too, so the three models are comparable even though each fits a
    different linearization internally.  ``peak_n`` is the continuous
    n\\* maximizing the modeled speedup (``None`` when the model is
    monotone and never peaks).
    """

    model: str
    equation: str
    label: str
    params: dict[str, float]
    ci: dict[str, list[float]]
    r_squared: float
    residual_rms: float
    residuals: list[float]
    n_points: int
    peak_n: float | None
    peak_speedup: float | None
    diagnostics: FitDiagnostics
    predict: Callable[[float], float] = field(repr=False, compare=False, default=None)
    band: Callable[[float], tuple[float, float] | None] = field(
        repr=False, compare=False, default=None
    )

    @property
    def grade(self) -> str:
        return self.diagnostics.grade

    def to_dict(self) -> dict:
        """JSON-able form (prediction callables stay on the live object)."""
        return {
            "model": self.model,
            "equation": self.equation,
            "label": self.label,
            "params": {k: float(v) for k, v in self.params.items()},
            "ci": {k: [float(lo), float(hi)] for k, (lo, hi) in self.ci.items()},
            "r_squared": float(self.r_squared),
            "residual_rms": float(self.residual_rms),
            "residuals": [float(r) for r in self.residuals],
            "n_points": int(self.n_points),
            "peak_n": None if self.peak_n is None else float(self.peak_n),
            "peak_speedup": None if self.peak_speedup is None else float(self.peak_speedup),
            "grade": self.grade,
            "diagnostics": self.diagnostics.to_dict(),
        }


def validate_for_fit(
    dataset: SpeedupDataset, model: str, min_points: int = MIN_FIT_POINTS
) -> None:
    """Raise a typed error for any curve a closed-form fit cannot survive."""
    counts = dataset.counts
    speedups = dataset.speedups
    if len(counts) < min_points:
        raise InsufficientDataError(
            f"{model} needs >= {min_points} speedup points",
            inputs={"counts": counts, "have": len(counts)},
        )
    if len(set(counts)) != len(counts):
        dupes = sorted({n for n in counts if counts.count(n) > 1})
        raise EstimationError(
            f"{model}: duplicate processor counts", inputs={"counts": dupes}
        )
    bad_counts = [n for n in counts if n < 1]
    if bad_counts:
        raise EstimationError(
            f"{model}: processor counts must be >= 1", inputs={"counts": bad_counts}
        )
    if 1 not in counts:
        raise EstimationError(
            f"{model}: no n=1 baseline to normalize against",
            inputs={"counts": counts},
        )
    bad = [(n, s) for n, s in zip(counts, speedups) if not math.isfinite(s) or s <= 0]
    if bad:
        raise EstimationError(
            f"{model}: speedups must be finite and positive",
            inputs={"offending": bad},
        )
    if max(speedups) - min(speedups) < 1e-12:
        raise EstimationError(
            f"{model}: all speedups equal; the curve carries no scaling signal",
            inputs={"speedup": speedups[0], "counts": counts},
        )
    # A single rise->fall reversal is a retrograde curve (exactly what these
    # models represent); a second reversal means the curve oscillates.
    diffs = [b - a for a, b in zip(speedups, speedups[1:]) if abs(b - a) > 1e-12]
    reversals = sum(1 for a, b in zip(diffs, diffs[1:]) if (a > 0) != (b > 0))
    if reversals > 1:
        flips = [
            counts[i + 1]
            for i, (a, b) in enumerate(zip(diffs, diffs[1:]))
            if (a > 0) != (b > 0)
        ]
        raise EstimationError(
            f"{model}: speedup curve oscillates (not a scaling trend)",
            inputs={"reversal_counts": flips, "speedups": speedups},
        )


def normalized_speedups(dataset: SpeedupDataset) -> list[float]:
    """Speedups rescaled so S(1) = 1 (external curves may be unanchored)."""
    s1 = dataset.speedup_at(1)
    return [s / s1 for s in dataset.speedups]


def speedup_r_squared(measured: list[float], modeled: list[float]) -> float:
    """R² on the speedup axis (1.0 for a perfect constant-curve prediction)."""
    y = np.asarray(measured, dtype=float)
    yhat = np.asarray(modeled, dtype=float)
    ss_res = float(np.sum((y - yhat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot > 0:
        return 1.0 - ss_res / ss_tot
    return 1.0 if ss_res < 1e-12 else 0.0


def model_fit_diagnostics(
    name: str,
    equation: str,
    dataset: SpeedupDataset,
    estimates: dict[str, float],
    ci: dict[str, list[float]],
    r_squared: float,
    residuals: list[float],
    clamped: list[str],
    extra_details: dict | None = None,
) -> FitDiagnostics:
    """Evidence + grade for one closed-form model fit (kind ``model_fit``)."""
    superlinear = [
        n for n, s in zip(dataset.counts, normalized_speedups(dataset)) if s > n * (1 + 1e-9)
    ]
    fd = FitDiagnostics(
        name=name,
        kind="model_fit",
        equation=equation,
        n_points=len(dataset.points),
        r_squared=float(r_squared),
        residual_rms=float(np.sqrt(np.mean(np.square(residuals)))) if residuals else 0.0,
        residuals=[float(r) for r in residuals],
        estimates={k: float(v) for k, v in estimates.items()},
        ci=ci,
        details={
            "clamped": list(clamped),
            "superlinear_counts": [int(n) for n in superlinear],
            "counts": [int(n) for n in dataset.counts],
            **(extra_details or {}),
        },
    )
    return apply_rules(fd)
