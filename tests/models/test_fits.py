"""Closed-form fits: parameter recovery, peaks, and typed degeneracy."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import EstimationError, InsufficientDataError
from repro.models import (
    GranularityModel,
    SpeedupDataset,
    SpeedupPoint,
    USLModel,
    granularity_speedup,
    usl_speedup,
    validate_for_fit,
)

COUNTS = (1, 2, 4, 8, 16, 32, 64)


def dataset_from(fn, counts=COUNTS, label="synthetic"):
    return SpeedupDataset(
        label=label, points=[SpeedupPoint(n=n, speedup=fn(n)) for n in counts]
    )


class TestUSLRecovery:
    def test_exact_recovery(self):
        sigma, kappa = 0.08, 0.002
        fit = USLModel().fit(dataset_from(lambda n: usl_speedup(n, sigma, kappa)))
        assert fit.params["sigma"] == pytest.approx(sigma, abs=1e-9)
        assert fit.params["kappa"] == pytest.approx(kappa, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.peak_n == pytest.approx(math.sqrt((1 - sigma) / kappa))

    def test_noisy_recovery_within_tolerance(self):
        sigma, kappa = 0.05, 0.001
        rng = random.Random(20260806)
        fit = USLModel().fit(
            dataset_from(
                lambda n: usl_speedup(n, sigma, kappa) * (1 + rng.uniform(-0.02, 0.02))
            )
        )
        assert fit.params["sigma"] == pytest.approx(sigma, rel=0.5)
        assert fit.params["kappa"] == pytest.approx(kappa, rel=0.5)
        assert fit.r_squared > 0.98
        # the seeded bootstrap brackets the truth
        lo, hi = fit.ci["sigma"]
        assert lo <= sigma <= hi

    def test_amdahl_curve_clamps_kappa_to_zero(self):
        # pure contention, no coherency term: kappa must clamp, not go negative
        fit = USLModel().fit(dataset_from(lambda n: n / (1 + 0.1 * (n - 1))))
        assert 0.0 <= fit.params["kappa"] < 1e-12
        assert fit.params["sigma"] == pytest.approx(0.1, abs=1e-6)
        # effectively monotone: no peak inside any real machine range
        assert fit.peak_n is None or fit.peak_n > 1e4

    def test_deterministic(self):
        ds = dataset_from(lambda n: usl_speedup(n, 0.06, 0.0015))
        a, b = USLModel().fit(ds), USLModel().fit(ds)
        assert a.params == b.params
        assert a.ci == b.ci


class TestGranularityRecovery:
    def test_exact_recovery_and_peak(self):
        s, theta = 0.12, 0.015
        fit = GranularityModel().fit(
            dataset_from(lambda n: granularity_speedup(n, s, theta))
        )
        assert fit.params["serial_frac"] == pytest.approx(s, abs=1e-9)
        assert fit.params["overhead"] == pytest.approx(theta, abs=1e-9)
        granularity = (1 - s) / theta
        assert fit.diagnostics.details["granularity"] == pytest.approx(granularity)
        assert fit.peak_n == pytest.approx(granularity * math.log(2))

    def test_structurally_distinct_from_usl(self):
        # the log-overhead form must NOT reproduce a USL curve exactly
        # (its predecessor, theta*(p-1), was algebraically identical)
        ds = dataset_from(lambda n: usl_speedup(n, 0.05, 0.002))
        fit = GranularityModel().fit(ds)
        assert fit.residual_rms > 1e-6
        assert fit.r_squared < 1.0

    def test_constraints_hold_on_hostile_curve(self):
        # near-linear scaling drives the unconstrained serial fraction negative
        fit = GranularityModel().fit(dataset_from(lambda n: n * 0.999))
        assert 0.0 <= fit.params["serial_frac"] <= 1.0
        assert fit.params["overhead"] >= 0.0
        assert all(math.isfinite(v) for v in fit.params.values())


class TestDegenerateCurves:
    def fit_both(self, points):
        ds = SpeedupDataset(label="bad", points=points)
        for model in (USLModel(), GranularityModel()):
            with pytest.raises(EstimationError) as err:
                model.fit(ds)
            yield err.value

    def test_too_few_points(self):
        points = [SpeedupPoint(n=n, speedup=float(n)) for n in (1, 2)]
        for err in self.fit_both(points):
            assert isinstance(err, InsufficientDataError)
            assert err.inputs["have"] == 2

    def test_missing_baseline_named(self):
        points = [SpeedupPoint(n=n, speedup=float(n)) for n in (2, 4, 8, 16)]
        for err in self.fit_both(points):
            assert "n=1" in str(err)
            assert err.inputs["counts"] == [2, 4, 8, 16]

    def test_non_positive_speedup_named(self):
        points = [
            SpeedupPoint(n=1, speedup=1.0),
            SpeedupPoint(n=2, speedup=-0.5),
            SpeedupPoint(n=4, speedup=3.0),
            SpeedupPoint(n=8, speedup=5.0),
        ]
        for err in self.fit_both(points):
            assert (2, -0.5) in err.inputs["offending"]

    def test_all_equal_speedups(self):
        points = [SpeedupPoint(n=n, speedup=1.0) for n in (1, 2, 4, 8)]
        for err in self.fit_both(points):
            assert "no scaling signal" in str(err)

    def test_oscillating_curve_rejected_retrograde_allowed(self):
        sawtooth = [1.0, 3.0, 2.0, 4.0, 3.0]
        points = [
            SpeedupPoint(n=n, speedup=s) for n, s in zip((1, 2, 4, 8, 16), sawtooth)
        ]
        ds = SpeedupDataset(label="sawtooth", points=points)
        with pytest.raises(EstimationError, match="oscillat"):
            validate_for_fit(ds, "test")

        retrograde = dataset_from(lambda n: usl_speedup(n, 0.1, 0.01), (1, 2, 4, 8, 16))
        validate_for_fit(retrograde, "test")  # single peak: fine
        fit = USLModel().fit(retrograde)
        assert fit.peak_n is not None

    def test_duplicate_counts_rejected(self):
        ds = SpeedupDataset(
            label="dupe",
            points=[
                SpeedupPoint(n=1, speedup=1.0),
                SpeedupPoint(n=2, speedup=1.8),
                SpeedupPoint(n=2, speedup=1.9),
                SpeedupPoint(n=4, speedup=3.0),
            ],
        )
        with pytest.raises(EstimationError, match="duplicate") as err:
            validate_for_fit(ds, "test")
        assert err.value.inputs["counts"] == [2]
