#!/usr/bin/env python3
"""What-if analysis: evaluate machine changes without re-running (Section 2.6).

"For example, it is usually hard to estimate the effect of doubling the
L2 cache size on application performance."  Scal-Tool does it from the
model equations: this script asks, for T3dheat,

* what would a 2x / 4x / 8x L2 buy?          (Eq. 11)
* what would a 2x faster memory system buy?   (tm scaling)
* what would 4x faster synchronization buy?   (tsyn scaling)
* what would a new sync primitive change?

Run:  python examples/whatif_l2_upgrade.py
"""

from repro.core import ScalTool, WhatIf
from repro.runner import CampaignConfig
from repro.runner.cache import cached_campaign
from repro.viz.tables import format_table
from repro.workloads import T3dheat


def main() -> None:
    workload = T3dheat()
    config = CampaignConfig(s0=workload.default_size(), processor_counts=(1, 2, 4, 8, 16, 32))
    campaign = cached_campaign(workload, config)
    analysis = ScalTool(campaign).analyze()
    whatif = WhatIf(analysis, campaign)

    print("T3dheat: the application is NOT re-run for any of these.\n")

    for k in (2.0, 4.0, 8.0):
        pred = whatif.scale_l2(k)
        print(format_table(pred.rows(), title=f"L2 cache x{k:g} (Eq. 11)"))
        print()

    pred = whatif.scale_parameters(tm_factor=0.5)
    print(format_table(pred.rows(), title="Memory system 2x faster (tm x 0.5)"))
    print()

    pred = whatif.scale_parameters(tsyn_factor=0.25)
    print(format_table(pred.rows(), title="Synchronization 4x faster (tsyn x 0.25)"))
    print()

    pred = whatif.new_sync_primitive(tsyn_new=20.0)
    print(format_table(pred.rows(), title="New synchronization primitive (tsyn = 20 cycles)"))
    print(f"caveat: {pred.note}")

    print(
        "\nReading the results: at 1 processor T3dheat is conflict-bound, so the "
        "L2 upgrade pays; at 32 it is synchronization-bound, so only the sync "
        "experiments pay there."
    )


if __name__ == "__main__":
    main()
