#!/usr/bin/env python3
"""Offline analysis from counter files: the tool's file-based workflow.

A campaign writes one perfex-format counter report per run ("one output
file", as the paper's Table 1 counts resources).  This script

1. runs a small Swim campaign and saves it to a directory,
2. pretends to be a different session: re-parses the perfex text files
   and the JSONL manifest from disk,
3. runs Scal-Tool on the reloaded measurements and shows the analyses
   agree bit-for-bit.

Run:  python examples/parse_counters.py
"""

import tempfile
from pathlib import Path

from repro.core import ScalTool
from repro.runner import CampaignConfig, ScalToolCampaign
from repro.runner.campaign import CampaignData
from repro.tools.perfex import parse_report
from repro.workloads import Swim


def main() -> None:
    workload = Swim(iters=3)
    config = CampaignConfig(s0=workload.default_size(), processor_counts=(1, 2, 4))

    with tempfile.TemporaryDirectory() as tmp:
        out_dir = Path(tmp) / "swim_campaign"
        print("Running the campaign and writing one counter file per run...")
        data = ScalToolCampaign(workload, config).run()
        data.save(out_dir)

        perfex_files = sorted(out_dir.glob("*.perfex"))
        print(f"  wrote {len(perfex_files)} perfex files + campaign.jsonl to {out_dir}\n")

        # Show one raw counter report, as a user would see it.
        sample = perfex_files[0].read_text()
        print("One raw counter file:")
        print("\n".join(sample.splitlines()[:14]))
        print("  ...\n")

        # Parse every perfex file back (this is the "parse perf output" path).
        total_cycles = 0.0
        for path in perfex_files:
            meta, totals, per_cpu = parse_report(path.read_text())
            total_cycles += totals.cycles
        print(f"Parsed {len(perfex_files)} reports; campaign total: {total_cycles:,.0f} cycles\n")

        # Reload the manifest and analyse offline.
        reloaded = CampaignData.load(out_dir)
        offline = ScalTool(reloaded).analyze()
        online = ScalTool(data).analyze()

        print(offline.report())
        drift = max(
            abs(offline.curves.base[n] - online.curves.base[n])
            for n in offline.curves.processor_counts
        )
        print(f"\noffline vs online analysis drift: {drift:.3g} cycles (should be ~0)")


if __name__ == "__main__":
    main()
