"""The Scal-Tool façade: counter files in, bottleneck analysis out.

Usage::

    campaign = ScalToolCampaign(T3dheat(), CampaignConfig(s0=...)).run()
    analysis = ScalTool(campaign).analyze()
    print(analysis.report())

``ScalTool`` consumes only hardware-visible counters (the records'
ground-truth fields are ignored), exactly matching the paper's claim that
the model needs nothing but the event counter values from the Table 3
runs plus the two micro-kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InsufficientDataError
from ..obs import runtime as obs
from ..obs.diagnostics import (
    GRADE_SUSPECT,
    GRADE_WARN,
    AnalysisDiagnostics,
    plateau_diagnostics,
    sanity_diagnostics,
)
from ..runner.campaign import CampaignData
from ..runner.records import RunRecord
from .bottlenecks import BottleneckCurves, build_curves, cpi_inf_by_n, cpi_infinf_by_n
from .cache_analysis import CacheSpaceAnalysis, analyze_cache_space
from .estimators import ParameterEstimates, estimate_parameters
from .sync_analysis import SyncAnalysis, analyze_sync

__all__ = ["ScalTool", "ScalToolAnalysis"]


@dataclass
class ScalToolAnalysis:
    """Everything one analysis produced."""

    workload: str
    s0: int
    params: ParameterEstimates
    cache: CacheSpaceAnalysis
    sync: SyncAnalysis
    curves: BottleneckCurves
    warnings: list[str] = field(default_factory=list)
    #: Graded fit-quality evidence for every estimation step; ``None``
    #: only for analyses built before the diagnostics layer existed.
    diagnostics: AnalysisDiagnostics | None = None

    @property
    def health(self) -> str:
        """Worst grade across all estimation checks (``ok`` if none ran)."""
        return self.diagnostics.health if self.diagnostics else "ok"

    def report(self) -> str:
        """Human-readable analysis report (the tool's terminal output)."""
        from .report import format_analysis  # deferred: report imports this module's types

        return format_analysis(self)

    def mp_fraction(self, n: int) -> float:
        """Estimated MP share of the accumulated cycles at n."""
        return self.curves.mp_cost(n) / self.curves.base[n]

    def dominant_bottleneck(self, n: int) -> str:
        """Which isolated cost is largest at n (the tool's headline answer)."""
        costs = {
            "insufficient caching space": self.curves.l2lim_cost[n],
            "synchronization": self.curves.sync_cost[n],
            "load imbalance": self.curves.imb_cost[n],
        }
        return max(costs, key=costs.get)


def _range_sanity(
    base_runs: dict[int, RunRecord],
    params: ParameterEstimates,
    sync: SyncAnalysis,
):
    """The Eqs. 6–10 range-sanity sweep over everything the model consumed.

    Checks the *raw counters* (hit rates in [0, 1], positive CPIs) as well
    as the fitted quantities (non-negative latencies, positive cpi0, the
    Eq. 9 fraction budget); every violation is a graded finding.
    """
    violations: list[tuple[str, str]] = []
    checks = 0
    for n in sorted(base_runs):
        c = base_runs[n].counters
        checks += 2
        if not (0.0 <= c.l2_local_hit_rate <= 1.0):
            violations.append(
                (GRADE_SUSPECT, f"measured L2 hit rate at n={n} out of [0, 1]: {c.l2_local_hit_rate:.4f}")
            )
        if c.cpi <= 0:
            violations.append(
                (GRADE_SUSPECT, f"measured CPI at n={n} is not positive: {c.cpi:.4f}")
            )
    checks += 1
    if params.cpi0 <= 0:
        violations.append(
            (GRADE_SUSPECT, f"unbiased cpi0 is not positive: {params.cpi0:.4f}")
        )
    for name, value in (("t2", params.t2), ("tm(1)", params.tm1)):
        checks += 1
        if value < 0:
            violations.append((GRADE_SUSPECT, f"negative latency {name}={value:.2f}"))
    for n, tm in sorted(params.tm_by_n.items()):
        checks += 1
        if tm < 0:
            violations.append((GRADE_SUSPECT, f"negative latency tm({n})={tm:.2f}"))
    for n in sorted(sync.frac_syn_by_n):
        fsyn = sync.frac_syn_by_n[n]
        fimb = sync.frac_imb_by_n.get(n, 0.0)
        checks += 1
        if fsyn < 0 or fimb < 0 or fsyn + fimb > 1.0 + 1e-6:
            violations.append(
                (
                    GRADE_WARN,
                    f"Eq. 9 fractions at n={n} break the budget: "
                    f"frac_syn={fsyn:.4f} frac_imb={fimb:.4f}",
                )
            )
    return sanity_diagnostics(violations, checks)


class ScalTool:
    """Runs the Section 2 model over one campaign's counter files."""

    def __init__(self, campaign: CampaignData) -> None:
        self.campaign = campaign
        self._machine = self._machine_summary(campaign)

    @staticmethod
    def _machine_summary(campaign: CampaignData) -> dict:
        for rec in campaign.records:
            if rec.machine:
                return rec.machine
        raise InsufficientDataError("campaign records carry no machine description")

    @property
    def l1_bytes(self) -> int:
        return int(self._machine["l1_bytes"])

    @property
    def l2_bytes(self) -> int:
        return int(self._machine["l2_bytes"])

    def _counters_only(self, runs: dict[int, RunRecord]) -> dict[int, RunRecord]:
        """Strip ground truth: the model must not see it."""
        return {k: r.without_ground_truth() for k, r in runs.items()}

    def analyze(self) -> ScalToolAnalysis:
        campaign = self.campaign
        tracer = obs.tracer()
        with tracer.span(
            "analysis.analyze", workload=campaign.workload, records=len(campaign.records)
        ):
            with tracer.span("analysis.collect"):
                base_runs = self._counters_only(
                    campaign.require("base-size runs", campaign.base_runs())
                )
                uniproc = self._counters_only(
                    campaign.require("uniprocessor runs", campaign.uniprocessor_runs())
                )
                sync_kernel = self._counters_only(campaign.sync_kernel_runs())
                spin_kernel = self._counters_only(campaign.spin_kernel_runs())

            tm_growth: dict[int, float] | None = None
            if sync_kernel and spin_kernel:
                # The sync kernel's tsyn(n) doubles as the interconnect-latency
                # growth profile used as the tm(n) fallback floor.
                from .sync_analysis import cpi_imb_estimate, tsyn_by_n

                with tracer.span("analysis.tm_growth"):
                    try:
                        tm_growth = tsyn_by_n(sync_kernel, cpi_imb_estimate(spin_kernel))
                    except InsufficientDataError:
                        tm_growth = None

            with tracer.span("analysis.estimate_parameters"):
                params = estimate_parameters(
                    uniproc, base_runs, self.l1_bytes, self.l2_bytes, tm_growth=tm_growth
                )
            with tracer.span("analysis.cache_space"):
                cache = analyze_cache_space(uniproc, base_runs, campaign.s0)
            with tracer.span("analysis.sync"):
                sync = analyze_sync(
                    base_runs,
                    sync_kernel,
                    spin_kernel,
                    params.cpi0,
                    cpi_inf_by_n(base_runs, params, cache),
                    cpi_infinf_by_n(base_runs, params, cache),
                )
            with tracer.span("analysis.curves"):
                curves = build_curves(base_runs, params, cache, sync)
            with tracer.span("analysis.diagnostics"):
                diagnostics = AnalysisDiagnostics()
                for check in params.diagnostics:
                    diagnostics.add(check)
                diagnostics.add(plateau_diagnostics(cache.curve, cache.compulsory))
                diagnostics.add(_range_sanity(base_runs, params, sync))
                diagnostics.publish(obs.registry())
        return ScalToolAnalysis(
            workload=campaign.workload,
            s0=campaign.s0,
            params=params,
            cache=cache,
            sync=sync,
            curves=curves,
            warnings=list(params.warnings) + list(sync.warnings),
            diagnostics=diagnostics,
        )
