"""Fixtures for the blame (scaling-loss localization) tests.

One module-scoped synthetic campaign at four processor counts: small
enough to build in seconds, wide enough that the loss window
(midpoint -> top) is a real sub-range of the sweep.
"""

from __future__ import annotations

import pytest

from repro.core import ScalTool
from repro.runner import CampaignConfig, ScalToolCampaign
from repro.workloads import make_workload

BLAME_S0 = 163840
BLAME_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def blame_campaign_data():
    workload = make_workload("synthetic")
    cfg = CampaignConfig(s0=BLAME_S0, processor_counts=BLAME_COUNTS)
    return ScalToolCampaign(workload, cfg).run()


@pytest.fixture(scope="module")
def blame_analysis(blame_campaign_data):
    return ScalTool(blame_campaign_data).analyze()
