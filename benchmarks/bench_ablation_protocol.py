"""Ablation: MESI (Illinois) vs MSI — why the protocol matters to the model.

The Origin 2000 runs the Illinois protocol (paper Section 3 cites
Papamarcos & Patel), whose Exclusive state makes private read-modify-write
traffic silent.  Under plain MSI every first store to a read-installed
line is an upgrade — which both slows the machine and floods event 31,
destroying the paper's ntsyn measurement.  This ablation runs Swim under
both protocols and quantifies the damage.
"""

import pytest

from repro.machine.config import origin2000_scaled
from repro.machine.system import DsmMachine
from repro.viz.tables import format_table
from repro.workloads import Swim

N = 8


@pytest.fixture(scope="module")
def runs():
    out = {}
    for protocol in ("mesi", "msi"):
        cfg = origin2000_scaled(n_processors=N)
        from dataclasses import replace

        cfg = replace(cfg, protocol=protocol)
        wl = Swim(iters=3)
        out[protocol] = DsmMachine(cfg).run(wl, wl.default_size())
    return out


def test_ablation_protocol(benchmark, emit, runs):
    def summarize():
        rows = []
        for protocol, res in runs.items():
            c, g = res.counters, res.ground_truth
            rows.append(
                {
                    "protocol": protocol,
                    "cycles": c.cycles,
                    "event31 (ntsyn source)": c.store_exclusive_to_shared,
                    "fetchops (true sync ops)": g.barriers,
                    "data upgrades": g.upgrades_data,
                    "contamination": 1.0
                    - g.barriers / max(1.0, c.store_exclusive_to_shared),
                }
            )
        return rows

    rows = benchmark(summarize)
    emit(
        "ablation_protocol",
        format_table(rows, title=f"MESI vs MSI on Swim at n={N}"),
    )

    by = {r["protocol"]: r for r in rows}
    # MSI floods the counter the paper's Eq. 10 relies on ...
    assert by["msi"]["event31 (ntsyn source)"] > 2 * by["mesi"]["event31 (ntsyn source)"]
    assert by["msi"]["contamination"] > 0.7
    # ... and costs real cycles
    assert by["msi"]["cycles"] > by["mesi"]["cycles"]
    # under MESI the counter remains a serviceable sync proxy
    assert by["mesi"]["contamination"] < 0.6
    # the fetchop count itself is protocol-independent
    assert by["msi"]["fetchops (true sync ops)"] == by["mesi"]["fetchops (true sync ops)"]
