"""Counter sets, derived rates, and the ground-truth ledger."""

import pytest

from repro.errors import CounterFormatError
from repro.machine.counters import EVENT_CATALOG, CounterSet, GroundTruth


def sample_counters() -> CounterSet:
    return CounterSet(
        cycles=10_000.0,
        graduated_instructions=5_000.0,
        graduated_loads=1_200.0,
        graduated_stores=550.0,
        l1_data_misses=350.0,
        l2_misses=70.0,
        store_exclusive_to_shared=12.0,
    )


class TestDerived:
    def test_cpi(self):
        assert sample_counters().cpi == pytest.approx(2.0)

    def test_mem_refs(self):
        assert sample_counters().mem_refs == 1750

    def test_m_frac(self):
        assert sample_counters().m_frac == pytest.approx(0.35)

    def test_l1_hit_rate(self):
        assert sample_counters().l1_hit_rate == pytest.approx(1 - 350 / 1750)

    def test_l2_local_hit_rate(self):
        assert sample_counters().l2_local_hit_rate == pytest.approx(1 - 70 / 350)

    def test_h2_hm(self):
        c = sample_counters()
        assert c.h2 == pytest.approx((350 - 70) / 5000)
        assert c.hm == pytest.approx(70 / 5000)

    def test_h2_hm_identity(self):
        # Eq 6/7: h2 + hm must equal the per-instruction L1 miss rate.
        c = sample_counters()
        assert c.h2 + c.hm == pytest.approx(c.l1_data_misses / c.graduated_instructions)

    def test_empty_counters_safe(self):
        c = CounterSet()
        assert c.cpi == 0.0
        assert c.m_frac == 0.0
        assert c.l1_hit_rate == 1.0


class TestArithmetic:
    def test_add(self):
        total = sample_counters() + sample_counters()
        assert total.cycles == 20_000
        assert total.l2_misses == 140

    def test_iadd(self):
        c = sample_counters()
        c += sample_counters()
        assert c.graduated_instructions == 10_000

    def test_total(self):
        parts = [sample_counters() for _ in range(3)]
        assert CounterSet.total(parts).cycles == 30_000

    def test_scaled(self):
        assert sample_counters().scaled(0.5).cycles == 5_000

    def test_rounded(self):
        c = CounterSet(cycles=10.6, graduated_instructions=3.2)
        r = c.rounded()
        assert r.cycles == 11.0 and r.graduated_instructions == 3.0


class TestSerialisation:
    def test_roundtrip(self):
        c = sample_counters()
        assert CounterSet.from_dict(c.to_dict()) == c

    def test_unknown_field_rejected(self):
        with pytest.raises(CounterFormatError):
            CounterSet.from_dict({"bogus": 1.0})


class TestEventCatalog:
    def test_key_events_present(self):
        descriptions = {desc for desc, _ in EVENT_CATALOG.values()}
        assert "Cycles" in descriptions
        assert any("shared block" in d for d in descriptions)

    def test_fields_exist_on_counterset(self):
        c = CounterSet()
        for _, field in EVENT_CATALOG.values():
            assert hasattr(c, field)

    def test_event_31_is_the_ntsyn_counter(self):
        assert EVENT_CATALOG[31][1] == "store_exclusive_to_shared"


class TestGroundTruth:
    def test_ledger_total(self):
        gt = GroundTruth(compute_cycles=100, sync_cycles=20, spin_cycles=10, memory_stall_cycles=5)
        assert gt.total_cycles == 135

    def test_mp_cycles(self):
        gt = GroundTruth(sync_cycles=20, spin_cycles=10)
        assert gt.multiprocessor_cycles == 30

    def test_total_misses(self):
        gt = GroundTruth(cold_misses=3, coherence_misses=4, replacement_misses=5)
        assert gt.total_misses == 12

    def test_add(self):
        total = GroundTruth(barriers=2) + GroundTruth(barriers=3)
        assert total.barriers == 5

    def test_roundtrip(self):
        gt = GroundTruth(sync_cycles=1.5, cold_misses=7)
        back = GroundTruth.from_dict(gt.to_dict())
        assert back.sync_cycles == 1.5 and back.cold_misses == 7

    def test_unknown_field_rejected(self):
        with pytest.raises(CounterFormatError):
            GroundTruth.from_dict({"nonsense": 1})
