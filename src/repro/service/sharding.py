"""Consistent-hash sharding of job fingerprints onto workers.

The dispatcher routes every job to exactly one worker — its *home
shard* — chosen by consistent-hashing the job's content-addressed
fingerprint (``service/requests.py``).  Because the fingerprint is a
content address over the canonical payload, identical requests land on
the same worker by construction, which removes cross-process dedup
races without any locking on the submit path: only the home shard ever
claims that job's specs.

The ring hashes each shard at :data:`VNODES` virtual points so adding
or removing one worker remaps only ~1/N of the fingerprint space — the
standard consistent-hashing property — which keeps warm per-worker run
caches useful across topology changes.

Everything here is pure and deterministic: dispatcher and workers build
the same ring from ``(shard_count,)`` alone and therefore agree on
ownership without coordinating.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "shard_for"]

#: Virtual nodes per shard.  128 keeps the worst/best shard load within
#: a few percent of uniform for the fingerprint distribution (sha256).
VNODES = 128


def _point(label: str) -> int:
    """A ring position: the first 8 bytes of sha256, as an int."""
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over integer shard ids ``0..count-1``.

    >>> ring = HashRing(4)
    >>> ring.owner("j0123456789abcdef") in range(4)
    True
    >>> HashRing(4).owner("jdeadbeefdeadbeef") == ring.owner("jdeadbeefdeadbeef")
    True
    """

    def __init__(self, count: int, vnodes: int = VNODES) -> None:
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        self.count = int(count)
        self.vnodes = int(vnodes)
        points: list[tuple[int, int]] = []
        for shard in range(self.count):
            for v in range(self.vnodes):
                points.append((_point(f"shard-{shard}-vnode-{v}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def owner(self, key: str) -> int:
        """The shard that owns ``key`` (a job fingerprint or spec key)."""
        if self.count == 1:
            return 0
        idx = bisect.bisect_right(self._points, _point(key)) % len(self._points)
        return self._owners[idx]

    def owns(self, shard: int, key: str) -> bool:
        return self.owner(key) == shard

    def spread(self, keys: list[str]) -> dict[int, int]:
        """How many of ``keys`` each shard owns (diagnostics / tests)."""
        out = {shard: 0 for shard in range(self.count)}
        for key in keys:
            out[self.owner(key)] += 1
        return out


def shard_for(key: str, count: int) -> int:
    """Convenience: the owner of ``key`` on a fresh ``HashRing(count)``."""
    return HashRing(count).owner(key)
