"""Table 3: the runs needed to gather Scal-Tool's empirical data.

Regenerates the (data-set size x processor count) run matrix for the
paper's shape (s0 at every count; fractional sizes on the uniprocessor)
and verifies it against both the closed-form accounting and the actual
campaign planner.
"""

from repro.core.runplan import table3_matrix
from repro.runner import CampaignConfig, ScalToolCampaign
from repro.workloads import T3dheat


def regenerate(s0: int, counts):
    return table3_matrix(s0, counts)


def test_table3(benchmark, emit):
    wl = T3dheat()
    s0 = wl.default_size()
    counts = (1, 2, 4, 8, 16, 32)
    matrix = benchmark(regenerate, s0, counts)
    emit("table3_runplan", matrix.format())

    assert matrix.runs() == 2 * len(counts) - 1
    assert matrix.processors() == 2 ** len(counts) + len(counts) - 2

    # the campaign planner executes a superset of Table 3 (it extends the
    # fractional chain to the L1 for the Figure 3-a sweep)
    campaign = ScalToolCampaign(wl, CampaignConfig(s0=s0, processor_counts=counts))
    planned = campaign.planned_runs()
    base_points = {(s, n) for role, s, n in planned if role == "app_base"}
    assert base_points == {(s0, n) for n in counts}
    frac_sizes = {s for role, s, n in planned if role == "app_frac"}
    for i in range(1, len(counts)):
        assert s0 // (2**i) in frac_sizes
