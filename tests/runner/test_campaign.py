"""Campaign runner: plan, execution, persistence, caching."""

import pytest

from repro.errors import ConfigError
from repro.runner.campaign import CampaignConfig, CampaignData, ScalToolCampaign
from repro.runner.cache import cached_campaign
from repro.runner.records import ROLE_APP_BASE, ROLE_APP_FRAC, ROLE_SPIN_KERNEL, ROLE_SYNC_KERNEL

from ..conftest import small_synthetic, tiny_machine_config


def factory(n):
    return tiny_machine_config(n_processors=n)


def quick_config(**kw):
    defaults = dict(
        s0=16 * 1024,
        processor_counts=(1, 2),
        sync_kernel_barriers=10,
        spin_kernel_episodes=3,
    )
    defaults.update(kw)
    return CampaignConfig(**defaults)


class TestConfig:
    def test_must_start_at_one(self):
        with pytest.raises(ConfigError):
            CampaignConfig(s0=1024, processor_counts=(2, 4))

    def test_must_be_increasing(self):
        with pytest.raises(ConfigError):
            CampaignConfig(s0=1024, processor_counts=(1, 4, 2))

    def test_positive_s0(self):
        with pytest.raises(ConfigError):
            CampaignConfig(s0=0)


class TestPlan:
    def test_matches_table3_shape(self):
        campaign = ScalToolCampaign(small_synthetic(), quick_config(), machine_factory=factory)
        plan = campaign.planned_runs()
        base = [(s, n) for role, s, n in plan if role == ROLE_APP_BASE]
        assert base == [(16 * 1024, 1), (16 * 1024, 2)]
        fracs = [(s, n) for role, s, n in plan if role == ROLE_APP_FRAC]
        assert all(n == 1 for _, n in fracs)
        assert all(s < 16 * 1024 for s, _ in fracs)

    def test_fraction_sizes_reach_l1(self):
        campaign = ScalToolCampaign(small_synthetic(), quick_config(), machine_factory=factory)
        sizes = campaign.fraction_sizes()
        assert min(sizes) <= factory(1).l1.size
        assert sizes == sorted(sizes, reverse=True)

    def test_fractions_include_three_quarter_chain(self):
        campaign = ScalToolCampaign(small_synthetic(), quick_config(), machine_factory=factory)
        sizes = campaign.fraction_sizes()
        assert 16 * 1024 // 2 in sizes
        assert (3 * 16 * 1024) // 4 in sizes

    def test_kernels_planned_per_count(self):
        campaign = ScalToolCampaign(small_synthetic(), quick_config(), machine_factory=factory)
        plan = campaign.planned_runs()
        assert sum(1 for r, _, _ in plan if r == ROLE_SYNC_KERNEL) == 2
        assert sum(1 for r, _, _ in plan if r == ROLE_SPIN_KERNEL) == 2

    def test_kernels_can_be_disabled(self):
        campaign = ScalToolCampaign(
            small_synthetic(), quick_config(run_kernels=False), machine_factory=factory
        )
        assert all(r in (ROLE_APP_BASE, ROLE_APP_FRAC) for r, _, _ in campaign.planned_runs())


class TestExecution:
    def test_runs_everything(self, mini_campaign):
        assert len(mini_campaign.records) == len(
            ScalToolCampaign(
                small_synthetic(iters=3, imbalance_amp=0.2),
                CampaignConfig(s0=32 * 1024, processor_counts=(1, 2, 4)),
                machine_factory=factory,
            ).planned_runs()
        )

    def test_base_runs_lookup(self, mini_campaign):
        base = mini_campaign.base_runs()
        assert sorted(base) == [1, 2, 4]
        assert all(rec.size_bytes == mini_campaign.s0 for rec in base.values())

    def test_uniprocessor_runs_include_s0(self, mini_campaign):
        uni = mini_campaign.uniprocessor_runs()
        assert mini_campaign.s0 in uni
        assert len(uni) > 4

    def test_kernel_lookups(self, mini_campaign):
        assert sorted(mini_campaign.sync_kernel_runs()) == [1, 2, 4]
        assert sorted(mini_campaign.spin_kernel_runs()) == [1, 2, 4]

    def test_progress_callback(self):
        messages = []
        ScalToolCampaign(
            small_synthetic(),
            quick_config(processor_counts=(1,), run_kernels=False),
            machine_factory=factory,
            progress=messages.append,
        ).run()
        assert messages and "synthetic" in messages[0]


class TestPersistence:
    def test_save_and_load(self, mini_campaign, tmp_path):
        mini_campaign.save(tmp_path / "camp")
        back = CampaignData.load(tmp_path / "camp")
        assert back.workload == mini_campaign.workload
        assert back.s0 == mini_campaign.s0
        assert len(back.records) == len(mini_campaign.records)

    def test_perfex_files_written(self, mini_campaign, tmp_path):
        mini_campaign.save(tmp_path / "camp")
        perfex_files = list((tmp_path / "camp").glob("*.perfex"))
        assert len(perfex_files) == len(mini_campaign.records)
        from repro.tools.perfex import parse_report

        meta, totals, per_cpu = parse_report(perfex_files[0].read_text())
        assert "workload" in meta

    def test_one_file_per_run(self, mini_campaign, tmp_path):
        # the paper's Table 1 resource accounting: one output file per run
        mini_campaign.save(tmp_path / "camp")
        files = list((tmp_path / "camp").glob("*.perfex"))
        assert len(files) == len(mini_campaign.records)


class TestDiskCache:
    def test_cache_hit_skips_rerun(self, tmp_path):
        wl = small_synthetic()
        cfg = quick_config(processor_counts=(1,), run_kernels=False)
        first = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        second = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        assert [r.counters for r in first.records] == [r.counters for r in second.records]
        assert len(list(tmp_path.glob("*.jsonl"))) == 1

    def test_different_params_different_cache(self, tmp_path):
        cfg = quick_config(processor_counts=(1,), run_kernels=False)
        cached_campaign(small_synthetic(iters=1), cfg, machine_factory=factory, cache_dir=tmp_path)
        cached_campaign(small_synthetic(iters=2), cfg, machine_factory=factory, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.jsonl"))) == 2

    def test_refresh_forces_rerun(self, tmp_path):
        wl = small_synthetic()
        cfg = quick_config(processor_counts=(1,), run_kernels=False)
        cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path)
        data = cached_campaign(wl, cfg, machine_factory=factory, cache_dir=tmp_path, refresh=True)
        assert data.records
