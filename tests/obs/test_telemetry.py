"""Tests for BucketHistogram and the Prometheus exposition renderer."""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, BucketHistogram, MetricsRegistry
from repro.obs.telemetry import Telemetry, prometheus_name, render_prometheus


# -- BucketHistogram ------------------------------------------------------------


def test_bucket_histogram_counts_and_sum():
    h = BucketHistogram()
    for v in (0.001, 0.002, 0.2, 1000.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(1000.203)
    assert h.mean == pytest.approx(1000.203 / 4)


def test_bucket_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        BucketHistogram(bounds=(1.0, 0.5))
    with pytest.raises(ValueError):
        BucketHistogram(bounds=(1.0, 1.0))


def test_bucket_histogram_cumulative_is_monotone_and_ends_at_count():
    h = BucketHistogram()
    for v in (0.0001, 0.03, 0.03, 7.0, 500.0):  # incl. +Inf overflow
        h.observe(v)
    cumulative = h.cumulative()
    counts = [c for _, c in cumulative]
    assert counts == sorted(counts)
    le_last, n_last = cumulative[-1]
    assert le_last == math.inf
    assert n_last == h.count == 5
    # bounds are exactly the configured layout
    assert [le for le, _ in cumulative[:-1]] == list(DEFAULT_BUCKETS)


def test_bucket_histogram_percentile_estimates_within_bucket():
    h = BucketHistogram()
    for _ in range(100):
        h.observe(0.03)  # lands in (0.025, 0.05]
    # All mass in one bucket clamped by min/max -> estimate is exact.
    assert h.percentile(50) == pytest.approx(0.03)
    assert h.percentile(99) == pytest.approx(0.03)
    assert h.summary()["min"] == pytest.approx(0.03)
    assert h.summary()["max"] == pytest.approx(0.03)


def test_bucket_histogram_percentile_ordering():
    h = BucketHistogram()
    for i in range(1, 101):
        h.observe(i / 100.0)  # 0.01 .. 1.0
    p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
    assert p50 <= p90 <= p99
    # estimates stay inside the observed range
    assert 0.01 <= p50 <= 1.0 and 0.01 <= p99 <= 1.0
    with pytest.raises(ValueError):
        h.percentile(101)


def test_bucket_histogram_empty_summary():
    h = BucketHistogram()
    s = h.summary()
    assert s["count"] == 0
    assert s["min"] == 0.0 and s["max"] == 0.0
    assert h.percentile(99) == 0.0


def test_registry_with_bucket_factory_merge():
    a = MetricsRegistry(histogram_factory=BucketHistogram)
    a.observe("lat", 0.01)
    assert isinstance(a._histograms["lat"], BucketHistogram)


# -- Prometheus exposition ------------------------------------------------------


def test_prometheus_name_sanitises():
    assert prometheus_name("service.queue.wait_seconds") == "scaltool_service_queue_wait_seconds"
    assert prometheus_name("a-b.c d") == "scaltool_a_b_c_d"
    assert prometheus_name("..x..") == "scaltool_x"
    assert prometheus_name("x", prefix="") == "x"


_LINE_RE = re.compile(
    r"^(# TYPE [a-zA-Z_][a-zA-Z0-9_]* (counter|gauge|histogram)"
    r'|[a-zA-Z_][a-zA-Z0-9_]*(\{le="[^"]+"\})? [-+0-9.eEinfNa]+)$'
)


def test_render_prometheus_is_valid_exposition():
    reg = MetricsRegistry(histogram_factory=BucketHistogram)
    reg.inc("jobs.done", 3)
    reg.set_gauge("queue.depth", 2)
    reg.observe("job_seconds", 0.12)
    reg.observe("job_seconds", 1.5)
    text = render_prometheus(reg)
    assert text.endswith("\n")
    for line in text.strip().splitlines():
        assert _LINE_RE.match(line), f"bad exposition line: {line!r}"
    assert "# TYPE scaltool_jobs_done_total counter" in text
    assert "scaltool_jobs_done_total 3" in text
    assert "scaltool_queue_depth 2" in text
    assert '# TYPE scaltool_job_seconds histogram' in text
    assert 'scaltool_job_seconds_bucket{le="+Inf"} 2' in text
    assert "scaltool_job_seconds_count 2" in text


def test_render_prometheus_deterministic():
    def build():
        reg = MetricsRegistry(histogram_factory=BucketHistogram)
        reg.inc("b", 1)
        reg.inc("a", 2)
        reg.observe("h", 0.5)
        return render_prometheus(reg)

    assert build() == build()
    # names sort, so counter `a` renders before `b`
    text = build()
    assert text.index("scaltool_a_total") < text.index("scaltool_b_total")


def test_render_prometheus_exact_histogram_still_valid():
    reg = MetricsRegistry()  # exact Histogram factory
    reg.observe("h", 0.5)
    text = render_prometheus(reg)
    assert 'scaltool_h_bucket{le="+Inf"} 1' in text
    assert "scaltool_h_count 1" in text


# -- Telemetry ------------------------------------------------------------------


def test_telemetry_uptime_and_text():
    now = [100.0]
    t = Telemetry(clock=lambda: now[0])
    now[0] = 107.5
    t.inc("http.requests")
    t.observe("service.job_seconds", 0.25)
    text = t.prometheus_text()
    assert "scaltool_uptime_seconds 7.5" in text
    assert "scaltool_http_requests_total 1" in text
    assert "scaltool_service_job_seconds_bucket" in text
    assert t.uptime_seconds() == pytest.approx(7.5)
    snap = t.snapshot()
    assert snap["counters"]["http.requests"] == 1
