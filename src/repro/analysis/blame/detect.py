"""Per-vertex scaling-loss metrics and statistical flagging.

The detector reads the scaling graph and answers, per segment:

* POP-style efficiencies at the top measured count against the sweep's
  first count — parallel efficiency (accumulated cycles vs the
  baseline), transfer efficiency (1 − data-movement stall share), and
  sync efficiency (1 − synchronization share);
* the **cycle loss** over the loss window — how much of the campaign's
  accumulated-cycle growth this segment contributes.  Segments tile the
  run exactly, so per-vertex losses sum to the campaign's total scaling
  loss (the conservation property the test suite checks to 1e-6);
* per-CPI-category stall levels at the top count and their growth over
  the window, which is what the backtracker attributes.

A vertex is *flagged* when its share of the positive cycle loss sits
statistically above the campaign trend (mean + one population standard
deviation across vertices) or is an outright majority.

Evidence quality is graded through the :mod:`repro.obs.diagnostics`
rule table (kind ``scaling_loss``) rather than silently trusted: the
model's known caveat — ``tm(n)`` is a whole-run average, so a segment
whose modeled stalls exceed its own measured cycles is unreliable
evidence — grades the vertex ``suspect``, and suspect evidence is
excluded from category attribution (but still reported).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...obs.diagnostics import (
    GRADE_SUSPECT,
    AnalysisDiagnostics,
    FitDiagnostics,
    apply_rules,
)
from .graph import ScalingGraph

__all__ = [
    "CATEGORIES",
    "CATEGORY_LABELS",
    "VertexLoss",
    "Detection",
    "loss_window",
    "detect_scaling_loss",
]

#: CPI-stall categories attributed to segments, with their breakdown fields.
CATEGORIES = {
    "memory": "memory_stall_cycles",
    "sync": "sync_cycles",
    "l2": "l2_hit_stall_cycles",
    "imbalance": "residual_cycles",
}

CATEGORY_LABELS = {
    "memory": "memory-stall",
    "sync": "synchronization",
    "l2": "L2-hit stall",
    "imbalance": "residual (imbalance + unmodeled)",
}

#: A category must carry at least this share of the top count's base
#: cycles before the backtracker emits findings for it.
MATERIAL_FRACTION = 0.01


def loss_window(counts: list[int]) -> tuple[int, int]:
    """The (n_lo, n_hi) window the loss metrics are measured over.

    The top count against the sweep's midpoint — late-sweep growth is
    where MP costs live (the paper's Figures 6/9/12 all diverge there).
    Degenerates to (first, last) when the midpoint *is* the top.
    """
    n_hi = counts[-1]
    n_lo = counts[len(counts) // 2]
    if n_lo >= n_hi:
        n_lo = counts[0]
    return (n_lo, n_hi)


@dataclass
class VertexLoss:
    """One vertex's scaling-loss metrics, graded."""

    vertex: str
    grade: str
    cycle_loss: float
    cycle_loss_share: float
    flagged: bool
    efficiencies: dict[str, float]
    category_level: dict[str, float]  # stall cycles at n_hi
    category_growth: dict[str, float]  # n_lo -> n_hi change
    diagnostics: FitDiagnostics

    def to_dict(self) -> dict:
        return {
            "vertex": self.vertex,
            "grade": self.grade,
            "cycle_loss": self.cycle_loss,
            "cycle_loss_share": self.cycle_loss_share,
            "flagged": self.flagged,
            "efficiencies": dict(self.efficiencies),
            "category_level": dict(self.category_level),
            "category_growth": dict(self.category_growth),
            "diagnostics": self.diagnostics.to_dict(),
        }


@dataclass
class Detection:
    """Everything the detector measured, ready for backtracking."""

    window: tuple[int, int]
    total_loss: float
    per_vertex: dict[str, VertexLoss] = field(default_factory=dict)
    #: category -> summed stall level at n_hi over credible vertices.
    category_totals: dict[str, float] = field(default_factory=dict)
    #: category -> vertex -> share of the credible stall level.
    category_shares: dict[str, dict[str, float]] = field(default_factory=dict)
    #: vertices whose evidence was graded suspect (excluded from shares).
    excluded: list[str] = field(default_factory=list)

    def rollup(self) -> AnalysisDiagnostics:
        diag = AnalysisDiagnostics()
        for name in sorted(self.per_vertex):
            diag.add(self.per_vertex[name].diagnostics)
        return diag


def _vertex_diagnostics(vertex, counts: list[int], window: tuple[int, int]) -> FitDiagnostics:
    """Graded evidence for one vertex's loss metrics (kind ``scaling_loss``)."""
    n_lo, n_hi = window
    overshoots = {}
    for n in counts:
        b = vertex.by_n[n]
        if b.cycles > 0:
            overshoots[n] = b.modeled_cycles / b.cycles
    loss_by_n = {
        n: vertex.by_n[n].cycles - vertex.by_n[counts[0]].cycles for n in counts
    }
    deltas = [loss_by_n[b] - loss_by_n[a] for a, b in zip(counts, counts[1:])]
    sign_changes = sum(
        1 for a, b in zip(deltas, deltas[1:]) if a * b < 0 and abs(a) > 0 and abs(b) > 0
    )
    fd = FitDiagnostics(
        name=f"blame_{vertex.name}",
        kind="scaling_loss",
        equation="Eqs. 1-10 over segments",
        n_points=len(counts),
        estimates={"cycle_loss": float(loss_by_n[n_hi] - loss_by_n[n_lo])},
        details={
            "window": [int(n_lo), int(n_hi)],
            "counts": [int(n) for n in counts],
            "max_overshoot": max(overshoots.values(), default=0.0),
            "overshoot_counts": sorted(n for n, o in overshoots.items() if o > 1.05),
            "residual_fraction_top": float(vertex.by_n[n_hi].residual_fraction),
            "loss_by_n": {str(n): float(v) for n, v in loss_by_n.items()},
            "loss_sign_changes": int(sign_changes),
        },
    )
    return apply_rules(fd)


def detect_scaling_loss(graph: ScalingGraph) -> Detection:
    """Measure, grade, and flag every vertex of the scaling graph."""
    counts = graph.processor_counts
    window = loss_window(counts)
    n_lo, n_hi = window
    n_base = counts[0]
    total_loss = graph.curves["base"][n_hi] - graph.curves["base"][n_lo]

    detection = Detection(window=window, total_loss=float(total_loss))
    losses: dict[str, float] = {}
    for vertex in graph.ordered():
        b_hi = vertex.by_n[n_hi]
        b_lo = vertex.by_n[n_lo]
        b_base = vertex.by_n[n_base]
        fd = _vertex_diagnostics(vertex, counts, window)
        cycles_hi = b_hi.cycles or 1.0
        eff = {
            "parallel": b_base.cycles / cycles_hi,
            "sync": 1.0 - b_hi.sync_cycles / cycles_hi,
            "transfer": 1.0
            - (b_hi.memory_stall_cycles + b_hi.l2_hit_stall_cycles) / cycles_hi,
        }
        level = {c: float(getattr(b_hi, f)) for c, f in CATEGORIES.items()}
        growth = {
            c: float(getattr(b_hi, f) - getattr(b_lo, f)) for c, f in CATEGORIES.items()
        }
        loss = float(b_hi.cycles - b_lo.cycles)
        losses[vertex.name] = loss
        detection.per_vertex[vertex.name] = VertexLoss(
            vertex=vertex.name,
            grade=fd.grade,
            cycle_loss=loss,
            cycle_loss_share=0.0,  # filled below
            flagged=False,  # filled below
            efficiencies=eff,
            category_level=level,
            category_growth=growth,
            diagnostics=fd,
        )

    # Shares of the positive cycle loss, and the above-trend flag.
    pos_total = sum(v for v in losses.values() if v > 0)
    shares = {
        name: (max(0.0, loss) / pos_total if pos_total > 0 else 0.0)
        for name, loss in losses.items()
    }
    values = list(shares.values())
    mean = sum(values) / len(values) if values else 0.0
    std = (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5 if values else 0.0
    for name, vl in detection.per_vertex.items():
        vl.cycle_loss_share = shares[name]
        vl.flagged = (
            total_loss > 0
            and vl.cycle_loss > 0
            and (shares[name] > mean + std or shares[name] > 0.5)
        )

    # Category attribution over credible (non-suspect) evidence.
    detection.excluded = sorted(
        name for name, vl in detection.per_vertex.items() if vl.grade == GRADE_SUSPECT
    )
    credible = [
        name for name in detection.per_vertex if name not in detection.excluded
    ] or sorted(detection.per_vertex)
    for category in CATEGORIES:
        total = sum(detection.per_vertex[name].category_level[category] for name in credible)
        detection.category_totals[category] = float(total)
        detection.category_shares[category] = {
            name: (
                detection.per_vertex[name].category_level[category] / total
                if total > 0
                else 0.0
            )
            for name in sorted(credible)
        }
    return detection
