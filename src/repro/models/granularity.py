"""A Kwiatkowski-style parallel-fraction / granularity scalability model.

Kwiatkowski & Olech evaluate parallel programs through *granularity* —
the ratio of computation to the coordination overhead it pays for.  We
use the closed form of that tradeoff for tree-structured coordination:
normalized execution time

    T(p) / T(1) = 1/p + s·(1 − 1/p) + θ·log2(p)

where ``s`` is the serial fraction (1 − s the parallel fraction Amdahl
would use) and ``θ`` the coordination-overhead slope per doubling:
parallelizable work shrinks as 1/p while barrier/reduction overhead
grows with the log-depth of the processor tree.  The granularity figure
is g = (1 − s)/θ — how much parallel work each unit of overhead buys —
and the speedup S(p) = T(1)/T(p) peaks at p\\* = g·ln 2.

The log overhead term is what makes this model *structurally* different
from the USL (whose contention and coherency penalties grow linearly and
quadratically): when the granularity model fits a curve better,
coordination is tree-like and scaling dies slowly; when the USL fits
better, pairwise contention/coherency dominates and scaling dies fast.

The fit linearizes exactly: y(p) = 1/S(p) − 1/p is linear in (s, θ) over
the design [1 − 1/p, log2 p], so the solve reuses the shared
least-squares + seeded-bootstrap machinery.  Constraints 0 ≤ s ≤ 1 and
θ ≥ 0 are enforced by clamp-and-refit, flagged in the diagnostics.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs import runtime as obs
from ..obs.diagnostics import bootstrap_ci
from .base import (
    ModelFit,
    model_fit_diagnostics,
    normalized_speedups,
    speedup_r_squared,
    validate_for_fit,
)
from .dataset import SpeedupDataset

__all__ = ["GranularityModel", "granularity_speedup"]


def granularity_speedup(n: float, serial_frac: float, overhead: float) -> float:
    """S(n) for one (s, θ) pair."""
    t = 1.0 / n + serial_frac * (1.0 - 1.0 / n) + overhead * math.log2(n)
    return 1.0 / t if t > 0 else 0.0


def _solve_constrained(design: np.ndarray, y: np.ndarray) -> tuple[float, float, list[str]]:
    """Least squares under 0 <= s <= 1, θ >= 0; names the clamped params."""
    sol, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
    s, theta = float(sol[0]), float(sol[1])
    clamped: list[str] = []
    if s < 0 or s > 1 or theta < 0:
        candidates: list[tuple[float, tuple[float, float], list[str]]] = []
        for fixed_s in (None, 0.0, 1.0):
            for fixed_theta in (None, 0.0):
                if fixed_s is None and fixed_theta is None:
                    continue
                names: list[str] = []
                if fixed_s is None:
                    resid = y - design[:, 1] * (fixed_theta or 0.0)
                    c, _, _, _ = np.linalg.lstsq(design[:, :1], resid, rcond=None)
                    cand_s = min(1.0, max(0.0, float(c[0])))
                    cand_theta = fixed_theta or 0.0
                    names = ["overhead"]
                elif fixed_theta is None:
                    resid = y - design[:, 0] * fixed_s
                    c, _, _, _ = np.linalg.lstsq(design[:, 1:], resid, rcond=None)
                    cand_s = fixed_s
                    cand_theta = max(0.0, float(c[0]))
                    names = ["serial_frac"]
                else:
                    cand_s, cand_theta = fixed_s, fixed_theta
                    names = ["serial_frac", "overhead"]
                sse = float(
                    np.sum((y - design[:, 0] * cand_s - design[:, 1] * cand_theta) ** 2)
                )
                candidates.append((sse, (cand_s, cand_theta), names))
        _, (s, theta), clamped = min(candidates, key=lambda c: c[0])
    return s, theta, clamped


class GranularityModel:
    """Fit the parallel-fraction/granularity model to a speedup curve."""

    name = "granularity"
    equation = "S(p) = 1 / (1/p + s*(1-1/p) + theta*log2(p))"

    def fit(self, dataset: SpeedupDataset) -> ModelFit:
        with obs.tracer().span("models.fit", model=self.name, points=len(dataset.points)):
            validate_for_fit(dataset, "granularity fit")
            speedups = normalized_speedups(dataset)
            rows = [(n, s) for n, s in zip(dataset.counts, speedups) if n > 1]
            design = np.array([[1.0 - 1.0 / n, math.log2(n)] for n, _ in rows])
            y = np.array([1.0 / s - 1.0 / n for n, s in rows])
            serial, overhead, clamped = _solve_constrained(design, y)
            ci = bootstrap_ci(design, y, ("serial_frac", "overhead"))

            modeled = [granularity_speedup(n, serial, overhead) for n in dataset.counts]
            residuals = [m - c for m, c in zip(speedups, modeled)]
            r2 = speedup_r_squared(speedups, modeled)

            peak_n = peak_speedup = None
            granularity = None
            if overhead > 0:
                granularity = (1.0 - serial) / overhead
                # dT/dp = -(1-s)/p^2 + theta/(p ln 2) = 0  =>  p* = g ln 2
                peak_n = max(1.0, granularity * math.log(2.0))
                peak_speedup = granularity_speedup(peak_n, serial, overhead)

            diagnostics = model_fit_diagnostics(
                name="granularity_fit",
                equation=self.equation,
                dataset=dataset,
                estimates={"serial_frac": serial, "overhead": overhead},
                ci=ci,
                r_squared=r2,
                residuals=residuals,
                clamped=clamped,
                extra_details={
                    "granularity": None if granularity is None else float(granularity)
                },
            )
            obs.registry().inc("models.fit.granularity")

            def predict(n: float) -> float:
                return granularity_speedup(n, serial, overhead)

            def band(n: float) -> tuple[float, float] | None:
                if "serial_frac" not in ci or "overhead" not in ci:
                    return None
                lo = granularity_speedup(
                    n,
                    min(1.0, max(0.0, ci["serial_frac"][1])),
                    max(0.0, ci["overhead"][1]),
                )
                hi = granularity_speedup(
                    n,
                    min(1.0, max(0.0, ci["serial_frac"][0])),
                    max(0.0, ci["overhead"][0]),
                )
                point = predict(n)
                return (min(lo, point), max(hi, point))

            return ModelFit(
                model=self.name,
                equation=self.equation,
                label=dataset.label,
                params={"serial_frac": serial, "overhead": overhead},
                ci=ci,
                r_squared=r2,
                residual_rms=float(np.sqrt(np.mean(np.square(residuals)))),
                residuals=residuals,
                n_points=len(dataset.points),
                peak_n=peak_n,
                peak_speedup=peak_speedup,
                diagnostics=diagnostics,
                predict=predict,
                band=band,
            )
