"""Export an observability session: JSONL manifest + text summary.

The JSONL manifest is the machine-readable artifact (``scaltool
--metrics-out PATH``): one JSON object per line, each tagged with a
``kind`` (``meta`` / ``span`` / ``counter`` / ``gauge`` / ``histogram``).
Export is deterministic given the observed data: spans appear in start
order, metrics sort by name, and every object serialises with sorted
keys — wall-clock readings live only in ``duration_s`` / ``*_seconds``
*values*, never in names, keys, or ordering.

The text summary (:func:`format_profile`) follows the perfex report
idiom of this repository (dotted fill, right-aligned values,
self-describing ``# meta:`` comment) so profile output reads like the
counter reports the rest of the tooling produces.
"""

from __future__ import annotations

import json
from pathlib import Path

from .runtime import ObsSession

__all__ = [
    "manifest_records",
    "export_jsonl",
    "format_profile",
    "summarize_manifest",
    "TOP_SORTS",
]

_HEADER = "# scaltool profile report"
_META_PREFIX = "# meta: "


def manifest_records(session: ObsSession, meta: dict | None = None) -> list[dict]:
    """The session as a list of JSON-ready dicts (deterministic order)."""
    records: list[dict] = []
    if meta:
        records.append({"kind": "meta", **{k: meta[k] for k in sorted(meta)}})
    for span in session.tracer.in_start_order():
        records.append(span.to_dict())
    snap = session.registry.snapshot()
    for name, value in snap["counters"].items():
        records.append({"kind": "counter", "name": name, "value": value})
    for name, value in snap["gauges"].items():
        records.append({"kind": "gauge", "name": name, "value": value})
    for name, summary in snap["histograms"].items():
        records.append({"kind": "histogram", "name": name, **summary})
    return records


def export_jsonl(session: ObsSession, path: str | Path, meta: dict | None = None) -> Path:
    """Write the session manifest as JSON lines; returns the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for rec in manifest_records(session, meta=meta):
            fh.write(json.dumps(rec, sort_keys=True))
            fh.write("\n")
    return path


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} us"


def format_profile(session: ObsSession, meta: dict | None = None) -> str:
    """Perfex-style text rendering of a profiling session."""
    lines = [_HEADER]
    if meta:
        lines.append(_META_PREFIX + json.dumps(meta, sort_keys=True))

    spans = session.tracer.in_start_order()
    if spans:
        lines.append("")
        lines.append("Spans (start order):")
        for rec in spans:
            label = "  " * rec.depth + rec.name
            attrs = " ".join(f"{k}={rec.attrs[k]}" for k in sorted(rec.attrs))
            line = f"  {label:.<52s} {_fmt_seconds(rec.duration_s)}"
            if attrs:
                line += f"  {attrs}"
            lines.append(line)

    snap = session.registry.snapshot()
    if snap["counters"]:
        lines.append("")
        lines.append("Counters:")
        for name, value in snap["counters"].items():
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:.<52s} {shown:>14}")
    if snap["gauges"]:
        lines.append("")
        lines.append("Gauges:")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:.<52s} {value:>14.4f}")
    if snap["histograms"]:
        lines.append("")
        lines.append("Histograms:")
        for name, s in snap["histograms"].items():
            lines.append(
                f"  {name:.<52s} count={s['count']} mean={s['mean']:.4g} "
                f"p50={s['p50']:.4g} p90={s['p90']:.4g} p99={s['p99']:.4g} max={s['max']:.4g}"
            )
    lines.append("")
    return "\n".join(lines)


#: Valid ``scaltool obs top --sort`` orders.
TOP_SORTS = ("total", "self", "count")


def summarize_manifest(path: str | Path, limit: int = 10, sort: str = "total") -> str:
    """``scaltool obs top``: hottest span paths + metric summaries.

    Reads a JSONL manifest written by ``--metrics-out`` (or the bench
    artifact uploads), aggregates spans by path, and prints the ``limit``
    paths ranked by ``sort`` — ``total`` time (default), ``self`` time
    (total minus direct children, i.e. time spent in the span itself),
    or ``count``.  Ties break deterministically name-then-path (last
    path segment first, then the full path), so equal-duration spans
    order identically across runs.
    """
    if sort not in TOP_SORTS:
        raise ValueError(f"sort must be one of {TOP_SORTS}, got {sort!r}")
    groups: dict[str, list[float]] = {}
    histograms: list[dict] = []
    counters: list[tuple[str, float]] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        kind = rec.get("kind")
        if kind == "span":
            groups.setdefault(rec["path"], []).append(float(rec.get("duration_s", 0.0)))
        elif kind == "histogram":
            histograms.append(rec)
        elif kind == "counter":
            counters.append((rec["name"], rec["value"]))

    lines = [f"# scaltool obs top — {path}"]
    if groups:
        totals = {p: sum(d) for p, d in groups.items()}
        selfs = dict(totals)
        for p, total in totals.items():
            parent = p.rsplit("/", 1)[0] if "/" in p else None
            if parent in selfs:
                selfs[parent] = max(0.0, selfs[parent] - total)
        values = {
            "total": totals,
            "self": selfs,
            "count": {p: float(len(d)) for p, d in groups.items()},
        }[sort]

        def rank_key(item):
            span_path, _durations = item
            name = span_path.rsplit("/", 1)[-1]
            return (-values[span_path], name, span_path)

        ranked = sorted(groups.items(), key=rank_key)[: max(1, limit)]
        lines.append("")
        lines.append(f"Slowest span paths (top {len(ranked)} by {sort}):")
        for span_path, durations in ranked:
            total = sum(durations)
            worst = max(durations)
            line = (
                f"  {span_path:.<52s} {_fmt_seconds(total)}  "
                f"count={len(durations)} max={worst:.4g}s"
            )
            if sort == "self":
                line += f" self={selfs[span_path]:.4g}s"
            lines.append(line)
    if histograms:
        lines.append("")
        lines.append("Histograms:")
        for s in histograms:
            lines.append(
                f"  {s['name']:.<52s} count={s['count']} mean={s['mean']:.4g} "
                f"p50={s['p50']:.4g} p90={s['p90']:.4g} p99={s['p99']:.4g} max={s['max']:.4g}"
            )
    if counters:
        lines.append("")
        lines.append("Counters:")
        for name, value in counters:
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:.<52s} {shown:>14}")
    if not groups and not histograms and not counters:
        lines.append("(no spans or metrics in manifest)")
    lines.append("")
    return "\n".join(lines)
