"""Worker obs spooling: parallel profiles must match serial ones.

The satellite this guards: ``scaltool profile --jobs N`` used to lose
every worker-process span and metric because ``ProcessPoolExecutor``
workers cannot write into the parent's session.  The engine now spools
each worker run's private session to disk and merges the files back in
plan order, so the merged session is *structurally identical* to a
serial one — same span (path, name, depth) sequence in start order, same
counters — with only the timing values free to differ.

Also the disabled-mode contract: no obs session + no trace context means
no spool directory is ever created.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import runtime as obs
from repro.obs import spool as obs_spool
from repro.obs.sampler import SampleProfile, Sampler
from repro.runner.engine import ParallelExecutor, RunSpec, SerialExecutor, execute_spec

from ..conftest import small_synthetic, tiny_machine_config


def _specs(counts=(1, 2), size=16 * 1024):
    wl = small_synthetic()
    return [
        RunSpec.compile(wl, size, n, machine=tiny_machine_config(n_processors=n))
        for n in counts
    ]


def _canonical_shape(session) -> list[tuple[str, str, int]]:
    """Structure only: (path, name, depth) in start order, timings dropped."""
    return [(r.path, r.name, r.depth) for r in session.tracer.in_start_order()]


def _counters(session) -> dict:
    return dict(session.registry.snapshot()["counters"])


def test_parallel_merged_session_matches_serial_structure():
    specs = _specs()

    with obs.session() as serial_session:
        serial_records = SerialExecutor().run(list(specs))
    with obs.session() as parallel_session:
        parallel_records = ParallelExecutor(jobs=2).run(list(specs))

    # The run records themselves are byte-identical (determinism).
    assert [r.to_dict() for r in serial_records] == [r.to_dict() for r in parallel_records]
    # The merged parallel profile has the serial profile's exact shape.
    serial_shape = _canonical_shape(serial_session)
    assert _canonical_shape(parallel_session) == serial_shape
    # Worker spans actually made it across: the simulator's machine.run
    # spans only ever happen inside the executed run.
    assert any(name == "machine.run" for _, name, _ in serial_shape)
    # Event-volume counters fold in identically.
    assert _counters(parallel_session) == _counters(serial_session)


def test_parallel_merge_is_in_plan_order_regardless_of_finish_order():
    # 4 specs with different sizes finish out of submission order under
    # 2 workers often enough; plan-order merging hides that entirely.
    specs = _specs(counts=(1, 2, 1, 2), size=8 * 1024)
    specs[2:] = _specs(counts=(1, 2), size=32 * 1024)

    with obs.session() as serial_session:
        SerialExecutor().run(list(specs))
    with obs.session() as parallel_session:
        ParallelExecutor(jobs=2).run(list(specs))

    assert _canonical_shape(parallel_session) == _canonical_shape(serial_session)


def test_disabled_mode_creates_no_spool_dir(monkeypatch):
    created = []
    original = obs_spool.SpoolDir.__init__

    def counting_init(self):
        created.append(1)
        original(self)

    monkeypatch.setattr(obs_spool.SpoolDir, "__init__", counting_init)

    assert obs.active() is None
    records = ParallelExecutor(jobs=2).run(_specs())
    assert len(records) == 2
    assert created == [], "disabled mode must not touch the filesystem"

    # ...and with a session live, the spool dir is used and cleaned up.
    with obs.session():
        ParallelExecutor(jobs=2).run(_specs())
    assert created == [1]


def test_spool_roundtrip_preserves_spans_and_metrics(tmp_path):
    session = obs.ObsSession()
    with session.tracer.span("outer", n=2):
        with session.tracer.span("inner"):
            pass
    session.registry.inc("events", 3)
    session.registry.observe("lat", 0.5)

    path = obs_spool.write_spool(tmp_path / "run.jsonl", session, meta={"spec": "k"})
    meta, spans, metrics, profile = obs_spool.read_spool(path)
    assert meta["spec"] == "k"
    assert [(s.path, s.depth) for s in spans] == [("outer", 0), ("outer/inner", 1)]
    assert metrics["counters"] == {"events": 3}
    assert metrics["histograms"] == {"lat": [0.5]}
    assert profile is None  # no sampler ran in this worker


def test_spool_roundtrip_preserves_sampler_profile(tmp_path):
    session = obs.ObsSession()
    worker_profile = SampleProfile(interval_s=0.002)
    worker_profile.note("engine.execute/machine.run", ("a.py:f:1", "b.py:g:2"), 3)
    worker_profile.duration_s = 0.5
    worker_profile.overhead_s = 0.01

    path = obs_spool.write_spool(tmp_path / "run.jsonl", session, sampler=worker_profile)
    _meta, _spans, _metrics, profile = obs_spool.read_spool(path)
    assert profile is not None
    assert profile.counts == worker_profile.counts
    assert profile.n_samples == 3
    assert profile.interval_s == 0.002
    assert profile.duration_s == 0.5


def test_merge_spool_grafts_sampler_spans_under_open_span(tmp_path):
    worker = obs.ObsSession()
    worker_profile = SampleProfile()
    worker_profile.note("engine.execute", ("a.py:f:1",), 2)
    worker_profile.note("", ("b.py:g:2",), 1)  # sample outside any span
    path = obs_spool.write_spool(tmp_path / "w.jsonl", worker, sampler=worker_profile)

    parent = obs.ObsSession()
    merged = SampleProfile()
    with parent.tracer.span("engine.run"):
        assert obs_spool.merge_spool(path, parent.tracer, parent.registry, profile=merged)
    spans = {span for (span, _frames) in merged.counts}
    # Worker span paths re-root under the span open at merge time; the
    # span-less sample lands directly under it.
    assert spans == {"engine.run/engine.execute", "engine.run"}
    assert merged.n_samples == 3


def test_merge_spool_grafts_under_open_span(tmp_path):
    worker = obs.ObsSession()
    with worker.tracer.span("work"):
        pass
    path = obs_spool.write_spool(tmp_path / "w.jsonl", worker)

    parent = obs.ObsSession()
    with parent.tracer.span("engine.run"):
        assert obs_spool.merge_spool(path, parent.tracer, parent.registry)
    paths = [r.path for r in parent.tracer.in_start_order()]
    assert paths == ["engine.run", "engine.run/work"]


def _hot_spin(deadline: float) -> int:
    """A one-line busy loop every sampler tick must land on."""
    x = 0
    while time.perf_counter() < deadline:
        x += 1
    return x


def _busy_execute(spec):
    """Module-level (picklable) execute_fn: spin hot, then really run."""
    _hot_spin(time.perf_counter() + 0.3)
    return execute_spec(spec)


def test_serial_and_parallel_profiles_sample_the_same_hot_frames():
    """serial ≡ --jobs N for the folded-stack profile (timings aside).

    The spin dominates every run, so both samplers must catch it; in
    parallel mode the spin happens in pool workers while the parent
    sampler is paused, so it can only appear via worker self-sampling
    spooled back and merged — under the very span path the serial
    profile records it at.
    """
    specs = _specs(counts=(1, 2), size=4 * 1024)

    with obs.session():
        sampler = Sampler(interval_s=0.001).start()
        try:
            SerialExecutor(execute_fn=_busy_execute).run(list(specs))
        finally:
            serial_profile = sampler.stop()

    with obs.session():
        sampler = Sampler(interval_s=0.001).start()
        try:
            ParallelExecutor(jobs=2, execute_fn=_busy_execute).run(list(specs))
        finally:
            parallel_profile = sampler.stop()

    def hot_frames(profile):
        return {
            (file, func)
            for file, func in profile.frame_set()
            if func in ("_busy_execute", "_hot_spin")
        }

    assert hot_frames(serial_profile) == hot_frames(parallel_profile) != set()

    def spin_spans(profile):
        return {
            span
            for (span, frames) in profile.counts
            if any(":_hot_spin:" in label for label in frames)
        }

    assert (
        spin_spans(parallel_profile)
        == spin_spans(serial_profile)
        == {"engine.run/engine.execute"}
    )


def test_merge_spool_tolerates_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    parent = obs.ObsSession()
    assert obs_spool.merge_spool(bad, parent.tracer, parent.registry) is False
    assert obs_spool.merge_spool(tmp_path / "missing.jsonl", parent.tracer, parent.registry) is False
    assert parent.tracer.records == []
