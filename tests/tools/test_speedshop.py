"""speedshop PC-sampling emulation."""

import pytest

from repro.errors import ValidationError
from repro.runner.records import RunRecord
from repro.tools.speedshop import profile_record, profile_run

from ..conftest import small_synthetic


@pytest.fixture
def result(machine):
    return machine.run(small_synthetic(serial_frac=0.2, barriers_per_iter=3), 16 * 1024)


class TestProfile:
    def test_exact_matches_ground_truth(self, result):
        p = profile_run(result, exact=True)
        gt = result.ground_truth
        assert p.sync_cycles == pytest.approx(gt.sync_cycles)
        assert p.imbalance_cycles == pytest.approx(gt.spin_cycles)
        assert p.mp_cycles == pytest.approx(gt.multiprocessor_cycles)

    def test_sampled_close_to_exact(self, result):
        p = profile_run(result, sampling_period=500, seed=1)
        gt = result.ground_truth
        assert p.mp_cycles == pytest.approx(gt.multiprocessor_cycles, rel=0.2, abs=2000)

    def test_buckets_sum_to_total(self, result):
        p = profile_run(result, sampling_period=1000)
        assert p.compute_cycles + p.sync_cycles + p.imbalance_cycles == pytest.approx(
            p.total_cycles, rel=1e-6
        )

    def test_deterministic_seed(self, result):
        p1 = profile_run(result, seed=3)
        p2 = profile_run(result, seed=3)
        assert p1.sync_cycles == p2.sync_cycles

    def test_routine_table_names_match_paper(self, result):
        names = [name for name, _ in profile_run(result, exact=True).routine_table()]
        assert "mp_barrier" in names
        assert "mp_slave_wait_for_work" in names

    def test_format_renders(self, result):
        assert "speedshop" in profile_run(result).format()

    def test_profile_record(self, result):
        rec = RunRecord.from_result(result)
        p = profile_record(rec, exact=True)
        assert p.mp_cycles == pytest.approx(result.ground_truth.multiprocessor_cycles)

    def test_record_without_gt_rejected(self, result):
        rec = RunRecord.from_result(result).without_ground_truth()
        with pytest.raises(ValidationError):
            profile_record(rec)
